// Figure 19 (Appendix D.2): robustness to outliers. A standard Gaussian
// dataset is salted with a 1% fraction of outliers at magnitude mu_o; the
// moments sketch holds its accuracy while equi-width histograms collapse
// (their bins stretch to cover the outliers).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 1'000'000);
  const double outlier_frac = 0.01;

  PrintHeader("Figure 19: outlier robustness (gaussian + 1% outliers)");
  std::printf("%-10s %-12s %12s\n", "magnitude", "summary", "eps_avg");

  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {{"EW-Hist", 20},  {"EW-Hist", 100},
                             {"M-Sketch", 10}, {"Merge12", 32},
                             {"GK", 50},       {"RandomW", 40}};

  for (double mag : {10.0, 100.0, 1000.0}) {
    Rng rng(static_cast<uint64_t>(mag) + 77);
    std::vector<double> data;
    data.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      if (rng.NextDouble() < outlier_frac) {
        data.push_back(mag + 0.1 * rng.NextGaussian());
      } else {
        data.push_back(rng.NextGaussian());
      }
    }
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (const Entry& e : summaries) {
      auto s = MakeAnySummary(e.name, e.param);
      MSKETCH_CHECK(s.ok());
      for (double x : data) s.value()->Accumulate(x);
      std::printf("%-10g %s:%-8g %10.5f\n", mag, e.name, e.param,
                  MeanError(*s.value(), sorted));
    }
  }
  return 0;
}
