// Summary-router bench: per-backend answer latency and certified
// interval width across a smooth + adversarial dataset suite, emitted to
// BENCH_router.json (bench_util JsonReport).
//
// Sections:
//   smooth       healthy cells (uniform / lognormal / gauss-like): the
//                maxent path, with and without a KLL alongside (the KLL
//                column buys certificate tightening; the row records how
//                much interval width it shaves).
//   adversarial  pathological cells (two-atom, discrete, heavy-tail
//                pareto, near-singular, clustered, single-atom): the
//                degradation chain. Every row carries `certified` and
//                `contains_truth` flags — the CI gate
//                (tools/check_router_gate.py) fails if any adversarial
//                answer is uncertified or its certificate misses the
//                true quantile. `backend` is the QuantileBackend enum
//                value of the phi=0.5 answer.
//   counters     one row of cumulative RouterStats over the whole run
//                (solver failures absorbed, conditioning rejects,
//                fallback depths) so a latency regression can be read
//                together with a routing change.
//
// Interval widths are reported relative to the cell's value range
// (width / (max - min)); 0 means exact, 1 means the trivial certificate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/moments_sketch.h"
#include "cube/summary_router.h"
#include "numerics/stats.h"
#include "sketches/kll_sketch.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

const double kPhiGrid[] = {0.01, 0.1, 0.5, 0.9, 0.99};

std::vector<double> NamedData(const std::string& name, size_t n) {
  Rng rng(0xb0a7ULL + std::hash<std::string>{}(name));
  std::vector<double> out;
  out.reserve(n);
  if (name == "uniform") {
    for (size_t i = 0; i < n; ++i) out.push_back(rng.NextDouble());
  } else if (name == "lognormal") {
    for (size_t i = 0; i < n; ++i) out.push_back(rng.NextLognormal(0.0, 1.0));
  } else if (name == "gauss_mix") {
    for (size_t i = 0; i < n; ++i) {
      out.push_back(rng.NextGaussian() + (i % 2 ? 4.0 : 0.0));
    }
  } else if (name == "two_atom") {
    for (size_t i = 0; i < n; ++i) {
      out.push_back(rng.NextDouble() < 0.6 ? 1.0 : 5.0);
    }
  } else if (name == "discrete") {
    const double levels[] = {1.0, 2.0, 4.0, 8.0, 16.0};
    for (size_t i = 0; i < n; ++i) out.push_back(levels[rng.NextBelow(5)]);
  } else if (name == "pareto_heavy") {
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::pow(1.0 - rng.NextDouble(), -1.0 / 1.1));
    }
  } else if (name == "near_singular") {
    for (size_t i = 0; i < n; ++i) {
      out.push_back(1.0 + 1e-9 * rng.NextDouble());
    }
  } else if (name == "clustered") {
    for (size_t i = 0; i < n; ++i) {
      const double base = (i % 3 == 0) ? 1e-6 : 1e3;
      out.push_back(base * (1.0 + 1e-7 * rng.NextDouble()));
    }
  } else if (name == "single_atom") {
    for (size_t i = 0; i < n; ++i) out.push_back(42.0);
  }
  return out;
}

struct CellRun {
  std::vector<double> samples_ms;
  std::vector<CertifiedQuantile> answers;  // from the last rep
};

CellRun RunCell(SummaryRouter* router, const MomentsSketch& s,
                const KllSketch* kll, int reps) {
  const std::vector<double> phis(kPhiGrid, kPhiGrid + 5);
  CellRun run;
  run.samples_ms = TimeReps(reps, [&] {
    run.answers = router->QueryMany(s, kll, phis);
  });
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t rows =
      static_cast<size_t>(args.GetU64("rows", 100'000) * args.Scale());
  const int reps = static_cast<int>(args.GetU64("reps", 21));

  JsonReport report("router");
  SummaryRouter router;  // cumulative counters across the whole suite

  struct Suite {
    const char* section;
    std::vector<const char*> datasets;
  };
  const Suite suites[] = {
      {"smooth", {"uniform", "lognormal", "gauss_mix"}},
      {"adversarial",
       {"two_atom", "discrete", "pareto_heavy", "near_singular", "clustered",
        "single_atom"}},
  };

  for (const Suite& suite : suites) {
    for (const char* name : suite.datasets) {
      std::vector<double> data = NamedData(name, rows);
      MomentsSketch s(10);
      KllSketch kll(64);
      for (double v : data) {
        s.Accumulate(v);
        kll.Accumulate(v);
      }
      std::vector<double> sorted = std::move(data);
      std::sort(sorted.begin(), sorted.end());
      const double range = std::max(s.max() - s.min(), 1e-300);
      const double slack =
          1e-6 * (std::abs(s.max()) + std::abs(s.min()) + 1.0);

      // Two variants per dataset: moments-only and dual-summary.
      const std::pair<const char*, const KllSketch*> variants[] = {
          {"", nullptr}, {"+kll", &kll}};
      for (const auto& [suffix, side] : variants) {
        CellRun run = RunCell(&router, s, side, reps);
        bool certified = !run.answers.empty();
        bool contains_truth = !run.answers.empty();
        double median_width = 0.0;
        std::vector<double> widths;
        for (size_t i = 0; i < run.answers.size(); ++i) {
          const CertifiedQuantile& a = run.answers[i];
          certified = certified && a.status.ok() && a.certified;
          const double truth = QuantileOfSorted(sorted, kPhiGrid[i]);
          contains_truth = contains_truth && a.interval.lower <= truth + slack &&
                           a.interval.upper >= truth - slack;
          widths.push_back(a.interval.width() / range);
        }
        if (!widths.empty()) median_width = MedianOf(widths);
        const double backend =
            run.answers.empty()
                ? -1.0
                : static_cast<double>(run.answers[2].backend);  // phi = 0.5
        report.Add(suite.section, std::string(name) + suffix, run.samples_ms,
                   {{"rows", static_cast<double>(rows)},
                    {"rel_interval_width_p50", median_width},
                    {"backend", backend}},
                   {{"certified", certified},
                    {"contains_truth", contains_truth}});
      }
    }
  }

  const RouterStats& st = router.stats();
  report.Add("counters", "totals", {0.0},
             {{"queries", static_cast<double>(st.queries)},
              {"moments_answers", static_cast<double>(st.moments_answers)},
              {"kll_answers", static_cast<double>(st.kll_answers)},
              {"atomic_answers", static_cast<double>(st.atomic_answers)},
              {"bounds_fallbacks", static_cast<double>(st.bounds_fallbacks)},
              {"degenerate_answers",
               static_cast<double>(st.degenerate_answers)},
              {"intersected_certificates",
               static_cast<double>(st.intersected_certificates)},
              {"conditioning_rejects",
               static_cast<double>(st.conditioning_rejects)},
              {"solver_failures", static_cast<double>(st.solver_failures)},
              {"warm_solves", static_cast<double>(st.warm_solves)},
              {"cold_solves", static_cast<double>(st.cold_solves)},
              {"iteration_capped", static_cast<double>(st.iteration_capped)},
              {"atomic_screen_hits",
               static_cast<double>(st.atomic_screen_hits)}});
  report.Write();
  return 0;
}
