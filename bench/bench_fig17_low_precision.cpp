// Figure 17 (Appendix C): accuracy of low-precision moments sketches
// after ~100k merges, as bits-per-value decreases. ~20 bits suffice for
// k <= 10; higher orders need more mantissa.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/compressed_sketch.h"
#include "core/maxent_solver.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t merges = args.GetU64("merges", 100'000);
  const uint64_t cell = args.GetU64("cell-size", 20);

  PrintHeader("Figure 17: accuracy vs bits per value (100k merges)");
  std::printf("%-9s %4s %8s %12s\n", "dataset", "k", "bits", "eps_avg");

  for (const char* name : {"milan", "hepmass"}) {
    auto id = DatasetFromName(name);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), merges * cell);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    auto phis = DefaultPhiGrid();

    for (int k : {6, 10, 14}) {
      // Build the cell sketches once per k.
      std::vector<MomentsSketch> cells;
      cells.reserve(merges);
      for (uint64_t start = 0; start < data.size(); start += cell) {
        MomentsSketch s(k);
        const uint64_t end = std::min<uint64_t>(start + cell, data.size());
        for (uint64_t i = start; i < end; ++i) s.Accumulate(data[i]);
        cells.push_back(std::move(s));
      }
      for (int bits : {14, 16, 18, 20, 24, 32, 48, 64}) {
        Rng seeds(bits * 1000 + k);
        MomentsSketch merged(k);
        for (const auto& c : cells) {
          MSKETCH_CHECK(
              merged.Merge(QuantizeSketch(c, bits, seeds.NextU64())).ok());
        }
        auto est = EstimateQuantiles(merged, phis);
        if (est.ok()) {
          std::printf("%-9s %4d %8d %12.5f\n", name, k, bits,
                      MeanQuantileError(sorted, est.value(), phis));
        } else {
          std::printf("%-9s %4d %8d %12s (%s)\n", name, k, bits, "-",
                      est.status().ToString().c_str());
        }
      }
    }
  }
  return 0;
}
