// Streaming ingest engine bench: sustained multi-writer throughput and
// query-while-ingest latency, against the single-thread baselines.
//
// Sections (emitted to BENCH_ingest.json via bench_util's JsonReport):
//   baseline  single-thread AccumulateBatch into one sketch (the PR-2
//             ingest kernel ceiling) and row-at-a-time CubeStore::Ingest
//   ingest    StreamingCube at 1/2/4 shards, background publisher
//             running; per-row Append, mixed-row AppendRows, and
//             pre-grouped AppendBatch variants. Writers default to one
//             per shard; --writers=N decouples them (N writers over
//             however many shards — fewer writers walk multiple shards,
//             more writers split each shard's feed and exercise the
//             multi-writer token hand-off). `speedup_vs_accumulate` is
//             the headline: sharded throughput over the single-thread
//             AccumulateBatch baseline (scales with cores; on a
//             single-core host the threads time-slice and it sits near
//             or below 1). Rows carry the engine counters
//             (backpressure, seals, ring high-water) so a throughput
//             number can be read together with why it happened.
//   query     QueryWhere latency on a published snapshot — quiescent
//             and with writers streaming — vs the static cube numbers
//             (the BENCH_fig3 comparison point).
//
// A second report (BENCH_obs.json, section "obs") measures telemetry
// overhead: the same single-shard single-writer fill run with metrics
// enabled vs disabled (runtime kill switch), reps interleaved so clock
// drift and thermal state hit both arms equally. check_obs_gate.py
// fails CI if the enabled arm drops more than a few percent below the
// disabled arm.
//
// Rows where writers exceed the machine's hardware threads time-slice
// instead of running in parallel: their numbers say nothing about
// scaling and must not be read as regressions. Those rows are marked
// "oversubscribed": true in the JSON (the CI gate skips them).
#include <array>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/moments_sketch.h"
#include "cube/cube_store.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"
#include "ingest/streaming_cube.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

constexpr size_t kDims = 3;

struct Row {
  CubeCoords coords;
  double value;
};

std::vector<Row> MakeRows(uint64_t n) {
  auto values = GenerateDataset(DatasetId::kMilan, n);
  Rng rng(1234);
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back(Row{{static_cast<uint32_t>(rng.NextBelow(100)),
                        static_cast<uint32_t>(rng.NextBelow(10)),
                        static_cast<uint32_t>(rng.NextBelow(5))},
                       values[i]});
  }
  return rows;
}

std::vector<std::vector<Row>> PartitionByShard(const std::vector<Row>& rows,
                                               size_t shards) {
  std::vector<std::vector<Row>> parts(shards);
  for (const Row& r : rows) {
    parts[CubeCoordsHash()(r.coords) % shards].push_back(r);
  }
  return parts;
}

/// Pre-grouped micro-batches for the AppendBatch fast path: consecutive
/// same-cell runs capped at `cap` values (a keyed burst feed).
struct MicroBatch {
  CubeCoords coords;
  std::vector<double> values;
};

std::vector<std::vector<MicroBatch>> GroupPerShard(
    const std::vector<std::vector<Row>>& parts, size_t cap) {
  std::vector<std::vector<MicroBatch>> grouped(parts.size());
  for (size_t s = 0; s < parts.size(); ++s) {
    for (const Row& r : parts[s]) {
      auto& out = grouped[s];
      if (out.empty() || !(out.back().coords == r.coords) ||
          out.back().values.size() >= cap) {
        out.push_back(MicroBatch{r.coords, {}});
        out.back().values.reserve(cap);
      }
      out.back().values.push_back(r.value);
    }
  }
  return grouped;
}

/// The slice of `n` items writer `w` covers when `writers_on_shard`
/// writers split one shard's feed contiguously ([begin, end)).
std::pair<size_t, size_t> SliceOf(size_t n, size_t index,
                                  size_t writers_on_shard) {
  const size_t base = n / writers_on_shard;
  const size_t rem = n % writers_on_shard;
  const size_t begin = index * base + std::min(index, rem);
  return {begin, begin + base + (index < rem ? 1 : 0)};
}

double Mrps(uint64_t rows, double ms) { return rows / ms / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const uint64_t total_rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const int reps = static_cast<int>(args.GetU64("reps", 3));
  const int query_reps = static_cast<int>(args.GetU64("query-reps", 51));
  const bool writers_forced = args.Has("writers");
  const size_t forced_writers = args.GetU64("writers", 0);
  const double hw_threads =
      static_cast<double>(std::thread::hardware_concurrency());

  PrintHeader("Streaming ingest: multi-writer throughput + "
              "query-while-ingest");
  std::printf("rows=%llu, hardware threads=%.0f%s\n\n",
              static_cast<unsigned long long>(total_rows), hw_threads,
              writers_forced ? "  (--writers override)" : "");
  JsonReport report("ingest");

  std::vector<Row> rows = MakeRows(total_rows);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const Row& r : rows) values.push_back(r.value);

  // ------------------------------------------------------------ baseline
  double accumulate_mrps = 0.0;
  {
    auto ms = TimeReps(reps, [&] {
      MomentsSketch sketch(10);
      sketch.AccumulateBatch(values.data(), values.size());
    });
    accumulate_mrps = Mrps(total_rows, MedianOf(ms));
    std::printf("%-28s %8.1f M rows/s\n", "AccumulateBatch (1 thread)",
                accumulate_mrps);
    report.Add("baseline", "accumulate_batch", ms,
               {{"mrows_per_s", accumulate_mrps}});
  }
  {
    auto ms = TimeReps(reps, [&] {
      CubeStore store(kDims, 10);
      for (const Row& r : rows) store.Ingest(r.coords, r.value);
    });
    const double mrps = Mrps(total_rows, MedianOf(ms));
    std::printf("%-28s %8.1f M rows/s\n", "CubeStore::Ingest (1 thread)",
                mrps);
    report.Add("baseline", "cube_ingest", ms, {{"mrows_per_s", mrps}});
  }

  // -------------------------------------------------------------- ingest
  enum class Mode { kRow, kRows, kBatch64 };
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    const size_t writers =
        writers_forced ? std::max<size_t>(forced_writers, 1) : shards;
    const bool oversubscribed = static_cast<double>(writers) > hw_threads;
    auto parts = PartitionByShard(rows, shards);
    auto grouped = GroupPerShard(parts, 64);
    for (const Mode mode : {Mode::kRow, Mode::kRows, Mode::kBatch64}) {
      double epochs = 0.0, staleness = 0.0, cells = 0.0;
      IngestStats engine;
      auto ms = TimeReps(reps, [&] {
        IngestOptions options;
        options.num_shards = shards;
        options.epoch_interval = std::chrono::milliseconds(10);
        // Size chunks to the working set (5000 distinct cells in the
        // worst case, all on one shard): a chunk that cannot hold the
        // working set seals constantly and the bounded pool throttles
        // writers to pool-size chunks per epoch interval.
        options.chunk_cells = 8192;
        StreamingCube cube(kDims, MomentsSummary(10), options);
        cube.StartPublisher();
        // Writer w covers shards {s : s % writers == w} when writers
        // <= shards; when writers > shards, the writers sharing shard
        // s (w % shards == s) split its feed contiguously and drive
        // the multi-writer token hand-off on one shard.
        RunWorkers(static_cast<int>(writers), [&](int w) {
          const size_t uw = static_cast<size_t>(w);
          auto items_in = [&](size_t s) {
            return mode == Mode::kBatch64 ? grouped[s].size()
                                          : parts[s].size();
          };
          // (shard, begin, end) over the mode's per-shard item list.
          std::vector<std::array<size_t, 3>> work;
          if (writers <= shards) {
            for (size_t s = uw; s < shards; s += writers) {
              work.push_back({s, 0, items_in(s)});
            }
          } else {
            const size_t s = uw % shards;
            const size_t on_shard =
                writers / shards + (s < writers % shards ? 1 : 0);
            const auto [b, e] = SliceOf(items_in(s), uw / shards, on_shard);
            work.push_back({s, b, e});
          }
          for (const auto& [s, begin, end] : work) {
            switch (mode) {
              case Mode::kRow:
                for (size_t i = begin; i < end; ++i) {
                  cube.AppendToShard(s, parts[s][i].coords,
                                     parts[s][i].value);
                }
                break;
              case Mode::kRows: {
                // Mixed-cell rows in chunks through the batched append.
                // The chunk buffer is reused so coords assignments
                // recycle capacity instead of allocating per row.
                constexpr size_t kChunk = 256;
                std::vector<IngestRow> buf(kChunk);
                size_t fill = 0;
                for (size_t i = begin; i < end; ++i) {
                  buf[fill].coords = parts[s][i].coords;
                  buf[fill].value = parts[s][i].value;
                  if (++fill == kChunk) {
                    cube.AppendRowsToShard(s, buf.data(), fill);
                    fill = 0;
                  }
                }
                if (fill > 0) cube.AppendRowsToShard(s, buf.data(), fill);
                break;
              }
              case Mode::kBatch64:
                for (size_t i = begin; i < end; ++i) {
                  cube.AppendBatch(s, grouped[s][i].coords,
                                   grouped[s][i].values.data(),
                                   grouped[s][i].values.size());
                }
                break;
            }
          }
        });
        staleness = static_cast<double>(cube.staleness_rows());
        auto snap = cube.Flush();
        cube.StopPublisher();
        MSKETCH_CHECK(snap->rows() == total_rows);
        epochs = static_cast<double>(snap->epoch);
        cells = static_cast<double>(snap->store.num_cells());
        engine = cube.stats();
      });
      const double mrps = Mrps(total_rows, MedianOf(ms));
      const char* mode_name = mode == Mode::kRow      ? "append_row"
                              : mode == Mode::kRows   ? "append_rows256"
                                                      : "append_batch64";
      char name[64];
      std::snprintf(name, sizeof(name), "%s x%zu", mode_name, shards);
      std::printf("%-28s %8.1f M rows/s   (%.2fx accumulate baseline, "
                  "%zu writers, %.0f epochs, %llu bp)%s\n",
                  name, mrps,
                  accumulate_mrps > 0 ? mrps / accumulate_mrps : 0.0,
                  writers, epochs,
                  static_cast<unsigned long long>(engine.backpressure_events),
                  oversubscribed ? "  [oversubscribed: writers > hw threads]"
                                 : "");
      report.Add("ingest", name, ms,
                 {{"mrows_per_s", mrps},
                  {"speedup_vs_accumulate",
                   accumulate_mrps > 0 ? mrps / accumulate_mrps : 0.0},
                  {"shards", static_cast<double>(shards)},
                  {"writers", static_cast<double>(writers)},
                  {"epochs", epochs},
                  {"pre_flush_staleness_rows", staleness},
                  {"cells", cells},
                  {"hw_threads", hw_threads},
                  {"backpressure_events",
                   static_cast<double>(engine.backpressure_events)},
                  {"rows_backpressured",
                   static_cast<double>(engine.rows_backpressured)},
                  {"chunks_sealed",
                   static_cast<double>(engine.chunks_sealed)},
                  {"full_ring_high_water",
                   static_cast<double>(engine.full_ring_high_water)},
                  {"steal_giveups",
                   static_cast<double>(engine.steal_giveups)},
                  {"max_drain_ms", engine.publisher.max_drain_ms},
                  {"max_publish_ms", engine.publisher.max_publish_ms}},
                 {{"oversubscribed", oversubscribed}});
    }
  }
  std::printf("\n");

  // --------------------------------------------------------------- query
  {
    // Static reference cube with a fresh rollup (the BENCH_fig3 shape).
    DataCube<MomentsSummary> staticc(kDims, MomentsSummary(10));
    for (const Row& r : rows) staticc.Ingest(r.coords, r.value);
    staticc.BuildRollup();

    IngestOptions options;
    options.num_shards = 2;
    options.epoch_interval = std::chrono::milliseconds(10);
    options.chunk_cells = 8192;  // hold the working set (see above)
    StreamingCube streaming(kDims, MomentsSummary(10), options);
    auto parts = PartitionByShard(rows, options.num_shards);
    // The fill still needs a drainer running: each epoch steal swaps in
    // a fresh chunk, and with no drain the bounded pool would empty.
    streaming.StartPublisher();
    RunWorkers(static_cast<int>(options.num_shards), [&](int w) {
      for (const Row& r : parts[w]) {
        streaming.AppendToShard(w, r.coords, r.value);
      }
    });
    streaming.Flush();
    streaming.StopPublisher();

    struct QueryCase {
      const char* name;
      CubeFilter filter;
    };
    const std::vector<QueryCase> cases = {
        {"unfiltered", CubeFilter(kDims, kAnyValue)},
        {"one_dim", [] {
           CubeFilter f(kDims, kAnyValue);
           f[0] = 7;
           return f;
         }()},
        {"two_dim", [] {
           CubeFilter f(kDims, kAnyValue);
           f[0] = 7;
           f[1] = 3;
           return f;
         }()}};
    std::printf("%-24s %14s %14s\n", "query", "static (us)",
                "snapshot (us)");
    for (const QueryCase& qc : cases) {
      auto static_ms = TimeReps(query_reps, [&] {
        (void)staticc.MergeWhere(qc.filter);
      });
      auto snap_ms = TimeReps(query_reps, [&] {
        (void)streaming.QueryWhere(qc.filter);
      });
      const double s_us = MedianOf(static_ms) * 1e3;
      const double p_us = MedianOf(snap_ms) * 1e3;
      std::printf("%-24s %14.2f %14.2f\n", qc.name, s_us, p_us);
      report.Add("query", qc.name, snap_ms,
                 {{"static_median_ms", MedianOf(static_ms)},
                  {"snapshot_over_static",
                   s_us > 0 ? p_us / s_us : 0.0}});
    }

    // Query latency while two writers stream into the cube.
    std::vector<Row> more = MakeRows(std::max<uint64_t>(total_rows / 4, 1));
    auto more_parts = PartitionByShard(more, options.num_shards);
    streaming.StartPublisher();
    std::atomic<bool> done{false};
    std::thread writer([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (size_t w = 0; w < more_parts.size(); ++w) {
          for (const Row& r : more_parts[w]) {
            if (done.load(std::memory_order_relaxed)) return;
            streaming.AppendToShard(w, r.coords, r.value);
          }
        }
      }
    });
    auto live_ms = TimeReps(query_reps, [&] {
      (void)streaming.QueryWhere(cases[1].filter);
    });
    done.store(true, std::memory_order_release);
    writer.join();
    streaming.StopPublisher();
    const double live_us = MedianOf(live_ms) * 1e3;
    std::printf("%-24s %14s %14.2f\n", "one_dim (live ingest)", "-",
                live_us);
    report.Add("query", "one_dim_live_ingest", live_ms, {});
  }
  std::printf("\n");

  // ----------------------------------------------------------------- obs
  // Telemetry overhead: identical single-shard single-writer fills with
  // the metrics runtime switch on vs off. One shard, one writer is the
  // worst case for instrumentation cost — nothing else to hide behind —
  // and stays deterministic on small runners. Reps are interleaved
  // (off, on, off, on, ...) so both arms see the same machine state.
  {
    JsonReport obs_report("obs");
    const int obs_reps =
        static_cast<int>(args.GetU64("obs-reps", std::max(reps, 5)));
    auto fill_once = [&] {
      IngestOptions options;
      options.num_shards = 1;
      options.epoch_interval = std::chrono::milliseconds(10);
      options.chunk_cells = 8192;  // hold the working set (see above)
      StreamingCube cube(kDims, MomentsSummary(10), options);
      cube.StartPublisher();
      for (const Row& r : rows) cube.AppendToShard(0, r.coords, r.value);
      auto snap = cube.Flush();
      cube.StopPublisher();
      MSKETCH_CHECK(snap->rows() == total_rows);
    };
    std::vector<double> disabled_ms, enabled_ms;
    disabled_ms.reserve(obs_reps);
    enabled_ms.reserve(obs_reps);
    for (int r = 0; r < obs_reps; ++r) {
      obs::SetMetricsEnabled(false);
      {
        Timer t;
        fill_once();
        disabled_ms.push_back(t.Millis());
      }
      obs::SetMetricsEnabled(true);
      {
        Timer t;
        fill_once();
        enabled_ms.push_back(t.Millis());
      }
    }
    obs::SetMetricsEnabled(true);
    const double off_mrps = Mrps(total_rows, MedianOf(disabled_ms));
    const double on_mrps = Mrps(total_rows, MedianOf(enabled_ms));
    std::printf("%-28s %8.1f M rows/s\n", "ingest (metrics disabled)",
                off_mrps);
    std::printf("%-28s %8.1f M rows/s   (%.3fx disabled)\n",
                "ingest (metrics enabled)", on_mrps,
                off_mrps > 0 ? on_mrps / off_mrps : 0.0);
    obs_report.Add("obs", "ingest_disabled", disabled_ms,
                   {{"mrows_per_s", off_mrps},
                    {"reps", static_cast<double>(obs_reps)}});
    obs_report.Add("obs", "ingest_enabled", enabled_ms,
                   {{"mrows_per_s", on_mrps},
                    {"reps", static_cast<double>(obs_reps)},
                    {"enabled_over_disabled",
                     off_mrps > 0 ? on_mrps / off_mrps : 0.0}});
  }
  return 0;
}
