// Streaming ingest engine bench: sustained multi-writer throughput and
// query-while-ingest latency, against the single-thread baselines.
//
// Sections (emitted to BENCH_ingest.json via bench_util's JsonReport):
//   baseline  single-thread AccumulateBatch into one sketch (the PR-2
//             ingest kernel ceiling) and row-at-a-time CubeStore::Ingest
//   ingest    StreamingCube at 1/2/4 shards, one writer thread per
//             shard, background publisher running; per-row Append and
//             pre-grouped AppendBatch variants. `speedup_vs_accumulate`
//             is the headline: sharded throughput over the single-
//             thread AccumulateBatch baseline (scales with cores; on a
//             single-core host the threads time-slice and it sits near
//             or below 1).
//   query     QueryWhere latency on a published snapshot — quiescent
//             and with writers streaming — vs the static cube numbers
//             (the BENCH_fig3 comparison point).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/moments_sketch.h"
#include "cube/cube_store.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"
#include "ingest/streaming_cube.h"
#include "parallel/parallel_for.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

constexpr size_t kDims = 3;

struct Row {
  CubeCoords coords;
  double value;
};

std::vector<Row> MakeRows(uint64_t n) {
  auto values = GenerateDataset(DatasetId::kMilan, n);
  Rng rng(1234);
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back(Row{{static_cast<uint32_t>(rng.NextBelow(100)),
                        static_cast<uint32_t>(rng.NextBelow(10)),
                        static_cast<uint32_t>(rng.NextBelow(5))},
                       values[i]});
  }
  return rows;
}

std::vector<std::vector<Row>> PartitionByShard(const std::vector<Row>& rows,
                                               size_t shards) {
  std::vector<std::vector<Row>> parts(shards);
  for (const Row& r : rows) {
    parts[CubeCoordsHash()(r.coords) % shards].push_back(r);
  }
  return parts;
}

/// Pre-grouped micro-batches for the AppendBatch fast path: consecutive
/// same-cell runs capped at `cap` values (a keyed burst feed).
struct MicroBatch {
  CubeCoords coords;
  std::vector<double> values;
};

std::vector<std::vector<MicroBatch>> GroupPerShard(
    const std::vector<std::vector<Row>>& parts, size_t cap) {
  std::vector<std::vector<MicroBatch>> grouped(parts.size());
  for (size_t s = 0; s < parts.size(); ++s) {
    for (const Row& r : parts[s]) {
      auto& out = grouped[s];
      if (out.empty() || !(out.back().coords == r.coords) ||
          out.back().values.size() >= cap) {
        out.push_back(MicroBatch{r.coords, {}});
        out.back().values.reserve(cap);
      }
      out.back().values.push_back(r.value);
    }
  }
  return grouped;
}

double Mrps(uint64_t rows, double ms) { return rows / ms / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const uint64_t total_rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const int reps = static_cast<int>(args.GetU64("reps", 3));
  const int query_reps = static_cast<int>(args.GetU64("query-reps", 51));
  const double hw_threads =
      static_cast<double>(std::thread::hardware_concurrency());

  PrintHeader("Streaming ingest: multi-writer throughput + "
              "query-while-ingest");
  std::printf("rows=%llu, hardware threads=%.0f\n\n",
              static_cast<unsigned long long>(total_rows), hw_threads);
  JsonReport report("ingest");

  std::vector<Row> rows = MakeRows(total_rows);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const Row& r : rows) values.push_back(r.value);

  // ------------------------------------------------------------ baseline
  double accumulate_mrps = 0.0;
  {
    auto ms = TimeReps(reps, [&] {
      MomentsSketch sketch(10);
      sketch.AccumulateBatch(values.data(), values.size());
    });
    accumulate_mrps = Mrps(total_rows, MedianOf(ms));
    std::printf("%-28s %8.1f M rows/s\n", "AccumulateBatch (1 thread)",
                accumulate_mrps);
    report.Add("baseline", "accumulate_batch", ms,
               {{"mrows_per_s", accumulate_mrps}});
  }
  {
    auto ms = TimeReps(reps, [&] {
      CubeStore store(kDims, 10);
      for (const Row& r : rows) store.Ingest(r.coords, r.value);
    });
    const double mrps = Mrps(total_rows, MedianOf(ms));
    std::printf("%-28s %8.1f M rows/s\n", "CubeStore::Ingest (1 thread)",
                mrps);
    report.Add("baseline", "cube_ingest", ms, {{"mrows_per_s", mrps}});
  }

  // -------------------------------------------------------------- ingest
  //
  // Shard counts above the machine's hardware threads time-slice the
  // writers instead of running them in parallel: their throughput says
  // nothing about shard scaling and must not be read as a regression.
  // Those rows are flagged (oversubscribed=1, printed marker) and keep
  // their numbers for completeness.
  enum class Mode { kRow, kRows, kBatch64 };
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    const bool oversubscribed = static_cast<double>(shards) > hw_threads;
    auto parts = PartitionByShard(rows, shards);
    auto grouped = GroupPerShard(parts, 64);
    for (const Mode mode : {Mode::kRow, Mode::kRows, Mode::kBatch64}) {
      double epochs = 0.0, staleness = 0.0, cells = 0.0;
      auto ms = TimeReps(reps, [&] {
        IngestOptions options;
        options.num_shards = shards;
        options.epoch_interval = std::chrono::milliseconds(10);
        StreamingCube cube(kDims, MomentsSummary(10), options);
        cube.StartPublisher();
        RunWorkers(static_cast<int>(shards), [&](int w) {
          switch (mode) {
            case Mode::kRow:
              for (const Row& r : parts[w]) {
                cube.AppendToShard(w, r.coords, r.value);
              }
              break;
            case Mode::kRows: {
              // Mixed-cell rows in chunks through the one-lock batched
              // append (the PR-5 hot-path fix for append_row). The chunk
              // buffer is reused so coords assignments recycle capacity
              // instead of allocating per row.
              constexpr size_t kChunk = 256;
              std::vector<IngestRow> buf(kChunk);
              size_t fill = 0;
              for (const Row& r : parts[w]) {
                buf[fill].coords = r.coords;
                buf[fill].value = r.value;
                if (++fill == kChunk) {
                  cube.AppendRowsToShard(w, buf.data(), fill);
                  fill = 0;
                }
              }
              if (fill > 0) cube.AppendRowsToShard(w, buf.data(), fill);
              break;
            }
            case Mode::kBatch64:
              for (const MicroBatch& mb : grouped[w]) {
                cube.AppendBatch(w, mb.coords, mb.values.data(),
                                 mb.values.size());
              }
              break;
          }
        });
        staleness = static_cast<double>(cube.staleness_rows());
        auto snap = cube.Flush();
        cube.StopPublisher();
        MSKETCH_CHECK(snap->rows() == total_rows);
        epochs = static_cast<double>(snap->epoch);
        cells = static_cast<double>(snap->store.num_cells());
      });
      const double mrps = Mrps(total_rows, MedianOf(ms));
      const char* mode_name = mode == Mode::kRow      ? "append_row"
                              : mode == Mode::kRows   ? "append_rows256"
                                                      : "append_batch64";
      char name[64];
      std::snprintf(name, sizeof(name), "%s x%zu", mode_name, shards);
      std::printf("%-28s %8.1f M rows/s   (%.2fx accumulate baseline, "
                  "%.0f epochs)%s\n",
                  name, mrps,
                  accumulate_mrps > 0 ? mrps / accumulate_mrps : 0.0,
                  epochs,
                  oversubscribed ? "  [oversubscribed: shards > hw threads]"
                                 : "");
      report.Add("ingest", name, ms,
                 {{"mrows_per_s", mrps},
                  {"speedup_vs_accumulate",
                   accumulate_mrps > 0 ? mrps / accumulate_mrps : 0.0},
                  {"shards", static_cast<double>(shards)},
                  {"epochs", epochs},
                  {"pre_flush_staleness_rows", staleness},
                  {"cells", cells},
                  {"hw_threads", hw_threads},
                  {"oversubscribed", oversubscribed ? 1.0 : 0.0}});
    }
  }
  std::printf("\n");

  // --------------------------------------------------------------- query
  {
    // Static reference cube with a fresh rollup (the BENCH_fig3 shape).
    DataCube<MomentsSummary> staticc(kDims, MomentsSummary(10));
    for (const Row& r : rows) staticc.Ingest(r.coords, r.value);
    staticc.BuildRollup();

    IngestOptions options;
    options.num_shards = 2;
    options.epoch_interval = std::chrono::milliseconds(10);
    StreamingCube streaming(kDims, MomentsSummary(10), options);
    auto parts = PartitionByShard(rows, options.num_shards);
    RunWorkers(static_cast<int>(options.num_shards), [&](int w) {
      for (const Row& r : parts[w]) streaming.AppendToShard(w, r.coords, r.value);
    });
    streaming.Flush();

    struct QueryCase {
      const char* name;
      CubeFilter filter;
    };
    const std::vector<QueryCase> cases = {
        {"unfiltered", CubeFilter(kDims, kAnyValue)},
        {"one_dim", [] {
           CubeFilter f(kDims, kAnyValue);
           f[0] = 7;
           return f;
         }()},
        {"two_dim", [] {
           CubeFilter f(kDims, kAnyValue);
           f[0] = 7;
           f[1] = 3;
           return f;
         }()}};
    std::printf("%-24s %14s %14s\n", "query", "static (us)",
                "snapshot (us)");
    for (const QueryCase& qc : cases) {
      auto static_ms = TimeReps(query_reps, [&] {
        (void)staticc.MergeWhere(qc.filter);
      });
      auto snap_ms = TimeReps(query_reps, [&] {
        (void)streaming.QueryWhere(qc.filter);
      });
      const double s_us = MedianOf(static_ms) * 1e3;
      const double p_us = MedianOf(snap_ms) * 1e3;
      std::printf("%-24s %14.2f %14.2f\n", qc.name, s_us, p_us);
      report.Add("query", qc.name, snap_ms,
                 {{"static_median_ms", MedianOf(static_ms)},
                  {"snapshot_over_static",
                   s_us > 0 ? p_us / s_us : 0.0}});
    }

    // Query latency while two writers stream into the cube.
    std::vector<Row> more = MakeRows(std::max<uint64_t>(total_rows / 4, 1));
    auto more_parts = PartitionByShard(more, options.num_shards);
    streaming.StartPublisher();
    std::atomic<bool> done{false};
    std::thread writer([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (size_t w = 0; w < more_parts.size(); ++w) {
          for (const Row& r : more_parts[w]) {
            if (done.load(std::memory_order_relaxed)) return;
            streaming.AppendToShard(w, r.coords, r.value);
          }
        }
      }
    });
    auto live_ms = TimeReps(query_reps, [&] {
      (void)streaming.QueryWhere(cases[1].filter);
    });
    done.store(true, std::memory_order_release);
    writer.join();
    streaming.StopPublisher();
    const double live_us = MedianOf(live_ms) * 1e3;
    std::printf("%-24s %14s %14.2f\n", "one_dim (live ingest)", "-",
                live_us);
    report.Add("query", "one_dim_live_ingest", live_ms, {});
  }
  return 0;
}
