// Figure 11: end-to-end cube (Druid-style) query benchmark. A milan-
// shaped cube over (hour, grid id, country) holds one summary per cell;
// the query computes a p99 over the whole dataset by merging every cell.
// Compared: native sum, M-Sketch@10, S-Hist@{10,100,1000} (Druid's
// default summary at three sizes).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"
#include "sketches/shist.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

// Ingests the milan-shaped rows into a cube over (hour, grid, country).
template <typename Summary>
DataCube<Summary> BuildDruidCube(const std::vector<double>& values,
                                 uint64_t grids, Summary prototype) {
  DataCube<Summary> cube(3, std::move(prototype));
  Rng rng(0xD201D);
  for (double v : values) {
    CubeCoords coords = {static_cast<uint32_t>(rng.NextBelow(24)),
                         static_cast<uint32_t>(rng.NextBelow(grids)),
                         static_cast<uint32_t>(rng.NextBelow(10))};
    cube.Ingest(coords, v);
  }
  return cube;
}

template <typename Summary>
double TimeQuantileQuery(const DataCube<Summary>& cube, double* result) {
  Timer t;
  Summary merged = cube.MergeAll();
  auto q = merged.EstimateQuantile(0.99);
  *result = q.ok() ? q.value() : -1.0;
  return t.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  // Paper: 26M rows -> 10M cells (hour x grid x country). Default here:
  // 1M rows -> ~200k potential cells (~5 rows per occupied cell, matching
  // the paper's very sparse cells).
  const uint64_t rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const uint64_t grids = args.GetU64("grids", 850);

  PrintHeader("Figure 11: Druid-style end-to-end query");
  std::printf("paper: sum 0.27s | M-Sketch@10 1.7s | S-Hist@10 3.65s |\n"
              "       S-Hist@100 12.1s | S-Hist@1000 99s (10M cells)\n\n");
  auto values = GenerateDataset(DatasetId::kMilan, rows);

  // Native sum baseline (uses the same cube layout as the sketch query).
  {
    auto cube = BuildDruidCube(values, grids, MomentsSummary(10));
    std::printf("cube: %llu rows in %zu cells\n",
                static_cast<unsigned long long>(cube.num_rows()),
                cube.num_cells());
    Timer t;
    const double sum = cube.SumWhere(CubeFilter(3, kAnyValue));
    std::printf("%-14s %8.3f s   (result %.3g)\n", "sum", t.Seconds(), sum);
    double q99 = 0;
    const double secs = TimeQuantileQuery(cube, &q99);
    std::printf("%-14s %8.3f s   (p99 = %.2f)\n", "M-Sketch@10", secs, q99);
  }
  for (size_t bins : {10, 100, 1000}) {
    auto cube = BuildDruidCube(values, grids, SHist(bins));
    double q99 = 0;
    const double secs = TimeQuantileQuery(cube, &q99);
    std::printf("%-11s@%-4zu %6.3f s   (p99 = %.2f)\n", "S-Hist", bins,
                secs, q99);
  }
  return 0;
}
