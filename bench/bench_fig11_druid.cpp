// Figure 11: end-to-end cube (Druid-style) query benchmark. A milan-
// shaped cube over (hour, grid id, country) holds one summary per cell;
// the query computes a p99 over the whole dataset by merging every cell.
// Compared: native sum, M-Sketch@10, S-Hist@{10,100,1000} (Druid's
// default summary at three sizes).
//
// The M-Sketch cube runs on the columnar CubeStore engine. A second
// section measures what the per-dimension inverted indexes buy on
// *filtered* queries: the same selective filters answered through the
// index intersection vs. a full scan of every cell's coordinates.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "cube/cube_store.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"
#include "sketches/shist.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

// Ingests the milan-shaped rows into a cube over (hour, grid, country).
template <typename Summary>
DataCube<Summary> BuildDruidCube(const std::vector<double>& values,
                                 uint64_t grids, Summary prototype) {
  DataCube<Summary> cube(3, std::move(prototype));
  Rng rng(0xD201D);
  for (double v : values) {
    CubeCoords coords = {static_cast<uint32_t>(rng.NextBelow(24)),
                         static_cast<uint32_t>(rng.NextBelow(grids)),
                         static_cast<uint32_t>(rng.NextBelow(10))};
    cube.Ingest(coords, v);
  }
  return cube;
}

template <typename Summary>
double TimeQuantileQuery(const DataCube<Summary>& cube, double* result) {
  Timer t;
  Summary merged = cube.MergeAll();
  auto q = merged.EstimateQuantile(0.99);
  *result = q.ok() ? q.value() : -1.0;
  return t.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  // Paper: 26M rows -> 10M cells (hour x grid x country). Default here:
  // 1M rows -> ~200k potential cells (~5 rows per occupied cell, matching
  // the paper's very sparse cells).
  const uint64_t rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const uint64_t grids = args.GetU64("grids", 850);

  PrintHeader("Figure 11: Druid-style end-to-end query");
  std::printf("paper: sum 0.27s | M-Sketch@10 1.7s | S-Hist@10 3.65s |\n"
              "       S-Hist@100 12.1s | S-Hist@1000 99s (10M cells)\n\n");
  auto values = GenerateDataset(DatasetId::kMilan, rows);

  // Native sum baseline (uses the same cube layout as the sketch query).
  // Built once; the filtered-query section below reuses it.
  auto cube = BuildDruidCube(values, grids, MomentsSummary(10));
  {
    std::printf("cube: %llu rows in %zu cells\n",
                static_cast<unsigned long long>(cube.num_rows()),
                cube.num_cells());
    Timer t;
    const double sum = cube.SumWhere(CubeFilter(3, kAnyValue));
    std::printf("%-14s %8.3f s   (result %.3g)\n", "sum", t.Seconds(), sum);
    double q99 = 0;
    const double secs = TimeQuantileQuery(cube, &q99);
    std::printf("%-14s %8.3f s   (p99 = %.2f)\n", "M-Sketch@10", secs, q99);
  }
  for (size_t bins : {10, 100, 1000}) {
    auto cube = BuildDruidCube(values, grids, SHist(bins));
    double q99 = 0;
    const double secs = TimeQuantileQuery(cube, &q99);
    std::printf("%-11s@%-4zu %6.3f s   (p99 = %.2f)\n", "S-Hist", bins,
                secs, q99);
  }

  // ---- Indexed vs full-scan filtered queries (columnar M-Sketch cube).
  // Each filter pins one or more dimensions; the indexed path intersects
  // the dimensions' postings lists and merges only matching cells, the
  // scan path tests every cell's coordinates.
  {
    const CubeStore& store = cube.store();
    struct FilterCase {
      const char* label;
      CubeFilter filter;
    };
    const FilterCase cases[] = {
        {"hour=3", {3, kAnyValue, kAnyValue}},
        {"grid=17", {kAnyValue, 17, kAnyValue}},
        {"grid=17,country=2", {kAnyValue, 17, 2}},
        {"hour=3,grid=17,country=2", {3, 17, 2}},
    };
    const int reps = 20;
    std::printf("\n--- filtered queries: inverted index vs full scan "
                "(%zu cells, %d reps) ---\n",
                store.num_cells(), reps);
    std::printf("%-26s %10s %11s %11s %12s %12s %8s\n", "filter", "matched",
                "visit(idx)", "visit(scan)", "indexed(ms)", "scan(ms)",
                "speedup");
    for (const FilterCase& c : cases) {
      CubeStore::QueryStats idx_stats, scan_stats;
      Timer t_idx;
      MomentsSketch idx(10);
      for (int r = 0; r < reps; ++r) {
        idx = store.MergeWhere(c.filter, &idx_stats);
      }
      const double idx_ms = t_idx.Millis() / reps;
      Timer t_scan;
      MomentsSketch scan(10);
      for (int r = 0; r < reps; ++r) {
        scan = store.MergeWhereScan(c.filter, &scan_stats);
      }
      const double scan_ms = t_scan.Millis() / reps;
      MSKETCH_CHECK(idx.IdenticalTo(scan));
      std::printf("%-26s %10llu %11llu %11llu %12.4f %12.4f %7.1fx\n",
                  c.label,
                  static_cast<unsigned long long>(idx_stats.merges),
                  static_cast<unsigned long long>(idx_stats.visited),
                  static_cast<unsigned long long>(scan_stats.visited),
                  idx_ms, scan_ms, scan_ms / idx_ms);
    }
  }
  return 0;
}
