// Figure 16 (Appendix B): precision loss when converting power sums to
// shifted Chebyshev moments, Delta mu_i = |recovered - direct|, on
// hepmass (scaled center c ~ 0.4) vs occupancy (c ~ 1.5). The farther the
// data sits from zero, the earlier the loss explodes.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/chebyshev_moments.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"
#include "numerics/chebyshev.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const int kmax = 20;

  PrintHeader("Figure 16: Chebyshev-moment precision loss");
  std::printf("%-6s %14s %14s\n", "k", "hepmass", "occupancy");

  struct Series {
    std::vector<double> loss;
    double c = 0;
  };
  auto compute = [&](DatasetId id) {
    const uint64_t rows = std::min<uint64_t>(
        args.GetU64("rows", 500'000), DefaultRows(id));
    auto data = GenerateDataset(id, rows);
    MomentsSketch sketch(kmax);
    for (double x : data) sketch.Accumulate(x);
    ScaleMap map = MakeScaleMap(sketch.min(), sketch.max());
    auto cheb = PowerMomentsToChebyshev(sketch.StandardMoments(), map);
    // Direct accumulation of E[T_i(s(x))] — the "true" value.
    std::vector<double> direct(kmax + 1, 0.0);
    std::vector<double> tbuf(kmax + 1);
    for (double x : data) {
      ChebyshevTAll(kmax, map.Forward(x), tbuf.data());
      for (int k = 0; k <= kmax; ++k) direct[k] += tbuf[k];
    }
    Series s;
    s.c = map.center / map.radius;
    for (int k = 0; k <= kmax; ++k) {
      direct[k] /= static_cast<double>(data.size());
      s.loss.push_back(std::fabs(cheb[k] - direct[k]));
    }
    return s;
  };

  Series hepmass = compute(DatasetId::kHepmass);
  Series occupancy = compute(DatasetId::kOccupancy);
  for (int k = 0; k <= kmax; ++k) {
    std::printf("%-6d %14.3e %14.3e\n", k, hepmass.loss[k],
                occupancy.loss[k]);
  }
  std::printf("\nscaled centers: hepmass c=%.2f, occupancy c=%.2f "
              "(paper: ~0.4 vs ~1.5)\n",
              hepmass.c, occupancy.c);
  return 0;
}
