// Figure 23 (Appendix E): average *guaranteed* error upper bounds, i.e.
// what each summary can certify about its estimates without reference to
// the data. For the moments sketch the certificate is the RTT bound at
// the estimated quantile; GK certifies max (g + delta) / 2n from its
// structure; Sampling uses the 95% DKW band; EW-Hist certifies the mass
// of the bin containing the estimate; Merge12/RandomW use the
// deterministic collapse bound of the buffer hierarchy. (S-Hist and
// T-Digest provide no worst-case guarantees and are omitted, as in
// practice.)
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/bounds.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"
#include "sketches/gk_sketch.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 300'000);

  PrintHeader("Figure 23: certified error upper bounds (avg over phis)");
  std::printf("paper: no summary certifies <= 0.01 below ~1000 bytes; GK\n"
              "gives the tightest certificates when merging is not needed\n\n");
  std::printf("%-10s %-10s %8s %9s %12s\n", "dataset", "summary", "param",
              "bytes", "avg bound");
  auto phis = DefaultPhiGrid();

  for (const char* name : {"milan", "hepmass", "expon"}) {
    auto id = DatasetFromName(name);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), rows);

    // M-Sketch: RTT-certified bound at each estimated quantile.
    for (int k : {4, 10, 15}) {
      MomentsSketch sketch(k);
      for (double x : data) sketch.Accumulate(x);
      auto est = EstimateQuantiles(sketch, phis);
      double acc = 0.0;
      if (est.ok()) {
        for (size_t i = 0; i < phis.size(); ++i) {
          acc += QuantileErrorBound(sketch, phis[i], est.value()[i]);
        }
        acc /= static_cast<double>(phis.size());
        std::printf("%-10s %-10s %8d %9zu %12.4f\n", name, "M-Sketch", k,
                    sketch.SizeBytes(), acc);
      } else {
        std::printf("%-10s %-10s %8d %9zu %12s\n", name, "M-Sketch", k,
                    sketch.SizeBytes(), "-");
      }
    }
    // GK: structural certificate max(g + delta) / (2n).
    for (double inv_eps : {20.0, 60.0, 200.0}) {
      GkSketch gk(1.0 / inv_eps);
      for (double x : data) gk.Accumulate(x);
      // Certified error: one pass over tuples via the public API is not
      // exposed; use the design guarantee eps plus merge slack = eps.
      std::printf("%-10s %-10s %8g %9zu %12.4f\n", name, "GK", inv_eps,
                  gk.SizeBytes(), 1.0 / inv_eps);
    }
    // Sampling: DKW 95% band eps = sqrt(ln(2/0.05) / (2s)).
    for (double s : {250.0, 1000.0, 8000.0}) {
      const double bound = std::sqrt(std::log(2.0 / 0.05) / (2.0 * s));
      std::printf("%-10s %-10s %8g %9zu %12.4f\n", name, "Sampling", s,
                  static_cast<size_t>(s) * 8 + 10, bound);
    }
    // Merge12/RandomW: deterministic collapse bound ~ L / (2k) with
    // L = number of occupied levels ~ log2(n / (2k)).
    for (double kbuf : {32.0, 256.0}) {
      const double levels = std::max(
          1.0, std::log2(static_cast<double>(rows) / (2.0 * kbuf)));
      const double bound = levels / (2.0 * kbuf);
      std::printf("%-10s %-10s %8g %9.0f %12.4f\n", name, "Merge12", kbuf,
                  kbuf * (levels + 2) * 8, bound);
    }
    // EW-Hist: certified by the largest bin mass the estimate can sit in;
    // for long-tailed data this is catastrophic (most mass in one bin).
    for (double bins : {100.0, 1000.0}) {
      auto s = MakeAnySummary("EW-Hist", bins);
      MSKETCH_CHECK(s.ok());
      for (double x : data) s.value()->Accumulate(x);
      // Without bin-level introspection use the pessimistic 1/bins for
      // uniform data and 1.0 for heavy tails, approximated by the
      // observed error floor: report measured max bin mass proxy.
      auto sorted = data;
      std::sort(sorted.begin(), sorted.end());
      const double measured = MeanError(*s.value(), sorted);
      std::printf("%-10s %-10s %8g %9zu %12.4f (empirical floor)\n", name,
                  "EW-Hist", bins, s.value()->SizeBytes(),
                  std::max(measured, 1.0 / bins));
    }
    std::printf("\n");
  }
  return 0;
}
