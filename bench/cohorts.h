// Shared synthetic workload for the batched-estimation benches: a cube
// of latency-like cohorts whose lognormal parameters drift smoothly
// across neighboring groups (the premise behind warm-start chains) with
// mild per-group jitter. fig5's warm-vs-cold section and fig6's
// group-count sweep must measure the same workload, so the model lives
// here once.
#ifndef MSKETCH_BENCH_COHORTS_H_
#define MSKETCH_BENCH_COHORTS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/moments_summary.h"
#include "cube/data_cube.h"

namespace msketch {
namespace bench {

/// One-dimensional cube with `groups` drifting lognormal cohorts of
/// `rows_per_group` rows each (group id = the single coordinate).
inline DataCube<MomentsSummary> BuildDriftingCohortCube(
    size_t groups, int rows_per_group, uint64_t seed = 0xF165) {
  DataCube<MomentsSummary> cube(1, MomentsSummary(10));
  Rng rng(seed);
  std::vector<double> buf(rows_per_group);
  for (size_t g = 0; g < groups; ++g) {
    const double gd = static_cast<double>(g);
    const double mu =
        1.0 + 0.3 * std::sin(0.001 * gd) + 0.01 * rng.NextDouble();
    const double sigma =
        0.4 + 0.1 * std::sin(0.0003 * gd) + 0.01 * rng.NextDouble();
    for (double& x : buf) x = rng.NextLognormal(mu, sigma);
    for (double x : buf) cube.Ingest({static_cast<uint32_t>(g)}, x);
  }
  return cube;
}

/// Uniform-cells workload: `groups` cells of uniform data whose support
/// drifts over a small family of (offset, width) pairs. Most groups
/// select the same moment subset, so this is the lane solver's
/// best-case packing benchmark (the acceptance workload for lane
/// occupancy); it also models the common telemetry shape of many
/// near-identical cells.
inline DataCube<MomentsSummary> BuildUniformCellsCube(
    size_t groups, int rows_per_group, uint64_t seed = 0xFACE) {
  DataCube<MomentsSummary> cube(1, MomentsSummary(10));
  Rng rng(seed);
  std::vector<double> buf(rows_per_group);
  for (size_t g = 0; g < groups; ++g) {
    const double lo = 10.0 + 0.01 * static_cast<double>(g % 97);
    const double width = 5.0 + 0.003 * static_cast<double>(g % 53);
    for (double& x : buf) x = lo + width * rng.NextDouble();
    for (double x : buf) cube.Ingest({static_cast<uint32_t>(g)}, x);
  }
  return cube;
}

}  // namespace bench
}  // namespace msketch

#endif  // MSKETCH_BENCH_COHORTS_H_
