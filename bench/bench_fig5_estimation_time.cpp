// Figure 5: quantile estimation time vs summary size (google-benchmark).
// The moments sketch pays a ~1ms maxent solve where comparison summaries
// read quantiles in microseconds — the flip side of its 50ns merges.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

constexpr size_t kRows = 100'000;

void BM_EstimateBaseline(benchmark::State& state, const char* dataset,
                         const char* summary, double param) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  auto built = MakeAnySummary(summary, param);
  MSKETCH_CHECK(built.ok());
  for (double x : data) built.value()->Accumulate(x);
  double phi = 0.5;
  for (auto _ : state) {
    auto q = built.value()->EstimateQuantile(phi);
    benchmark::DoNotOptimize(q);
    phi = (phi == 0.5) ? 0.9 : 0.5;  // defeat result caching
  }
  state.counters["bytes"] = static_cast<double>(built.value()->SizeBytes());
}

void BM_EstimateMSketch(benchmark::State& state, const char* dataset,
                        int k) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  MomentsSketch sketch(k);
  for (double x : data) sketch.Accumulate(x);
  for (auto _ : state) {
    // Full pipeline: moment conversion + (k1,k2) selection + Newton +
    // CDF inversion, no caching.
    auto q = EstimateQuantiles(sketch, {0.5});
    benchmark::DoNotOptimize(q);
  }
  state.counters["bytes"] = static_cast<double>(sketch.SizeBytes());
}

void RegisterAll() {
  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"Merge12", {16, 64, 256}}, {"RandomW", {16, 64, 256}},
      {"GK", {20, 60}},           {"T-Digest", {20, 100, 400}},
      {"Sampling", {250, 1000, 8000}}, {"S-Hist", {10, 100, 1000}},
      {"EW-Hist", {15, 100, 1000}},
  };
  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    for (int k : {4, 10, 15}) {
      std::string name = std::string("estimate/") + dataset + "/M-Sketch/" +
                         std::to_string(k);
      benchmark::RegisterBenchmark(name.c_str(), BM_EstimateMSketch, dataset,
                                   k)
          ->MinTime(0.05);
    }
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        std::string name = std::string("estimate/") + dataset + "/" +
                           sweep.summary + "/" +
                           std::to_string(static_cast<int>(param));
        benchmark::RegisterBenchmark(name.c_str(), BM_EstimateBaseline,
                                     dataset, sweep.summary, param)
            ->MinTime(0.05);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  std::printf(
      "Figure 5: estimation time (paper: M-Sketch ~1-3ms via maxent solve;\n"
      "comparison summaries answer in microseconds)\n");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
