// Figure 5: quantile estimation time vs summary size (google-benchmark).
// The moments sketch pays a ~1ms maxent solve where comparison summaries
// read quantiles in microseconds — the flip side of its 50ns merges.
//
// Extended with the batched estimation pipeline: "M-Sketch" rows are the
// paper's cold solve (full pipeline, no caching); "M-Sketch-cached" rows
// go through EstimateQuantiles and hence the process-wide solver cache;
// "ingest" rows compare scalar Accumulate with the unrolled
// AccumulateBatch kernel; and a final section demonstrates warm-started
// batch estimation (GroupByQuantiles) against a cold per-group solve
// loop, with per-batch BatchStats.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <utility>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/cohorts.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

constexpr size_t kRows = 100'000;

void BM_EstimateBaseline(benchmark::State& state, const char* dataset,
                         const char* summary, double param) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  auto built = MakeAnySummary(summary, param);
  MSKETCH_CHECK(built.ok());
  for (double x : data) built.value()->Accumulate(x);
  double phi = 0.5;
  for (auto _ : state) {
    auto q = built.value()->EstimateQuantile(phi);
    benchmark::DoNotOptimize(q);
    phi = (phi == 0.5) ? 0.9 : 0.5;  // defeat result caching
  }
  state.counters["bytes"] = static_cast<double>(built.value()->SizeBytes());
}

void BM_EstimateMSketch(benchmark::State& state, const char* dataset,
                        int k) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  MomentsSketch sketch(k);
  for (double x : data) sketch.Accumulate(x);
  for (auto _ : state) {
    // Full cold pipeline: moment conversion + (k1,k2) selection + Newton
    // + CDF inversion, bypassing every cache tier.
    auto dist = SolveMaxEnt(sketch);
    benchmark::DoNotOptimize(dist);
    if (dist.ok()) {
      double q = dist->Quantile(0.5);
      benchmark::DoNotOptimize(q);
    }
  }
  state.counters["bytes"] = static_cast<double>(sketch.SizeBytes());
}

void BM_EstimateMSketchCached(benchmark::State& state, const char* dataset,
                              int k) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  MomentsSketch sketch(k);
  for (double x : data) sketch.Accumulate(x);
  double phi = 0.5;
  for (auto _ : state) {
    // The convenience wrapper: first call solves, the rest hit the
    // process-wide solver cache (repeated-query workloads).
    auto q = EstimateQuantiles(sketch, {phi});
    benchmark::DoNotOptimize(q);
    phi = (phi == 0.5) ? 0.9 : 0.5;
  }
  state.counters["bytes"] = static_cast<double>(sketch.SizeBytes());
}

// ------------------------------------------------- ingestion kernels

void BM_IngestScalar(benchmark::State& state, int k) {
  auto data = GenerateDataset(DatasetId::kMilan, kRows);
  for (auto _ : state) {
    MomentsSketch sketch(k);
    for (double x : data) sketch.Accumulate(x);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_IngestBatch(benchmark::State& state, int k) {
  auto data = GenerateDataset(DatasetId::kMilan, kRows);
  for (auto _ : state) {
    MomentsSketch sketch(k);
    sketch.AccumulateBatch(data.data(), data.size());
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void RegisterAll() {
  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"Merge12", {16, 64, 256}}, {"RandomW", {16, 64, 256}},
      {"GK", {20, 60}},           {"T-Digest", {20, 100, 400}},
      {"Sampling", {250, 1000, 8000}}, {"S-Hist", {10, 100, 1000}},
      {"EW-Hist", {15, 100, 1000}},
  };
  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    for (int k : {4, 10, 15}) {
      std::string name = std::string("estimate/") + dataset + "/M-Sketch/" +
                         std::to_string(k);
      benchmark::RegisterBenchmark(name.c_str(), BM_EstimateMSketch, dataset,
                                   k)
          ->MinTime(0.05);
      std::string cached_name = std::string("estimate/") + dataset +
                                "/M-Sketch-cached/" + std::to_string(k);
      benchmark::RegisterBenchmark(cached_name.c_str(),
                                   BM_EstimateMSketchCached, dataset, k)
          ->MinTime(0.05);
    }
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        std::string name = std::string("estimate/") + dataset + "/" +
                           sweep.summary + "/" +
                           std::to_string(static_cast<int>(param));
        benchmark::RegisterBenchmark(name.c_str(), BM_EstimateBaseline,
                                     dataset, sweep.summary, param)
            ->MinTime(0.05);
      }
    }
  }
  for (int k : {10, 15}) {
    benchmark::RegisterBenchmark(
        (std::string("ingest/scalar/") + std::to_string(k)).c_str(),
        BM_IngestScalar, k)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("ingest/batch/") + std::to_string(k)).c_str(),
        BM_IngestBatch, k)
        ->MinTime(0.05);
  }
}

// ------------------------------- batched estimation: lane vs scalar
//
// The acceptance experiment for the estimation engines. Two workloads
// (drifting lognormal cohorts; uniform cells — the lane solver's
// packing benchmark), three paths each:
//
//   cold    per-group SolveMaxEnt loop (the PR-2 baseline)
//   scalar  GroupByQuantiles, warm chains + cache, lane solver OFF
//   lane    GroupByQuantiles with the lane-batched SIMD Newton solver
//
// Reports wall clock per group, groups/s, the BatchStats lane counters
// (occupancy, packed solves, fallbacks), and the worst quantile
// deviation of the lane path against the scalar chain. Everything lands
// in BENCH_fig5.json.
struct BatchRunResult {
  std::vector<double> ms;  // per-rep wall clock
  BatchStats stats;
  std::vector<GroupQuantiles> results;
};

BatchRunResult RunBatch(const DataCube<MomentsSummary>& cube,
                        const std::vector<double>& phis, bool lane,
                        int threads, int reps) {
  BatchRunResult out;
  BatchOptions options;
  options.use_lane_solver = lane;
  options.threads = threads;
  for (int r = 0; r < reps; ++r) {
    BatchStats stats;
    Timer t;
    auto results = cube.GroupByQuantiles({0}, phis, options, &stats);
    out.ms.push_back(t.Millis());
    out.stats = stats;
    out.results = std::move(results);
  }
  return out;
}

void RunBatchSolverSection(JsonReport* report, const char* workload,
                           const DataCube<MomentsSummary>& cube,
                           size_t groups, int threads, int reps) {
  std::printf(
      "\n-------------------------------------------------------------\n"
      "batched estimation, %s workload (%zu groups, %d thread%s)\n",
      workload, groups, threads, threads == 1 ? "" : "s");
  const std::vector<double> phis = {0.5, 0.99};

  // Cold loop: one independent solve per group (single rep; it is the
  // slow baseline).
  uint64_t cold_newton = 0, cold_solved = 0;
  Timer tc;
  cube.store().ForEachGroup({0}, [&](const CubeCoords&,
                                     const MomentsSketch& sketch) {
    auto dist = SolveMaxEnt(sketch);
    if (!dist.ok()) return;
    cold_newton +=
        static_cast<uint64_t>(dist->diagnostics().newton_iterations);
    ++cold_solved;
  });
  const double cold_ms = tc.Millis();

  BatchRunResult scalar = RunBatch(cube, phis, /*lane=*/false, threads, reps);
  BatchRunResult lane = RunBatch(cube, phis, /*lane=*/true, threads, reps);

  // Lane-vs-scalar parity: groups fitting the same moment subset must
  // agree to Newton tolerance; subset changes (fallback chains dropping
  // moments differently) are counted, not folded into the deviation.
  double max_rel_dev = 0.0;
  size_t subset_diff = 0;
  for (size_t g = 0; g < lane.results.size(); ++g) {
    const GroupQuantiles& rl = lane.results[g];
    const GroupQuantiles& rs = scalar.results[g];
    if (!rl.status.ok() || !rs.status.ok()) continue;
    if (std::make_pair(rl.k1, rl.k2) != std::make_pair(rs.k1, rs.k2)) {
      ++subset_diff;
      continue;
    }
    for (size_t p = 0; p < phis.size(); ++p) {
      const double qs = rs.quantiles[p];
      max_rel_dev = std::max(
          max_rel_dev,
          std::fabs(rl.quantiles[p] - qs) / std::max(1.0, std::fabs(qs)));
    }
  }

  const double g = static_cast<double>(groups);
  const double scalar_ms = MedianOf(scalar.ms);
  const double lane_ms = MedianOf(lane.ms);
  const double speedup = lane_ms > 0 ? scalar_ms / lane_ms : 0.0;
  auto groups_per_s = [&](double ms) { return ms > 0 ? 1e3 * g / ms : 0.0; };
  std::printf(
      "  cold loop   : %9.1f ms  (%7.1f us/group)  iters %.2f\n", cold_ms,
      1e3 * cold_ms / g,
      cold_solved ? static_cast<double>(cold_newton) /
                        static_cast<double>(cold_solved)
                  : 0.0);
  std::printf(
      "  scalar chain: %9.1f ms  (%7.1f us/group, %8.0f groups/s)  "
      "iters %.2f\n",
      scalar_ms, 1e3 * scalar_ms / g, groups_per_s(scalar_ms),
      scalar.stats.MeanNewtonIterations());
  std::printf(
      "  lane solver : %9.1f ms  (%7.1f us/group, %8.0f groups/s)  "
      "iters %.2f  -> %.2fx scalar chain\n",
      lane_ms, 1e3 * lane_ms / g, groups_per_s(lane_ms),
      lane.stats.MeanNewtonIterations(), speedup);
  std::printf(
      "  lane stats  : occupancy %.2f | packed %llu (%llu lanes) | "
      "escalated %llu | fallbacks %llu | warm lanes %llu\n",
      lane.stats.LaneOccupancy(),
      static_cast<unsigned long long>(lane.stats.lane.packed_solves),
      static_cast<unsigned long long>(lane.stats.lane.packed_lanes),
      static_cast<unsigned long long>(lane.stats.lane.lane_escalated),
      static_cast<unsigned long long>(lane.stats.lane.lane_fallbacks),
      static_cast<unsigned long long>(lane.stats.lane.warm_lanes));
  std::printf(
      "  parity      : max relative quantile deviation vs scalar %.3g "
      "(same subset); %zu group(s) fit a different subset\n",
      max_rel_dev, subset_diff);

  const std::string section = std::string("batch_") + workload;
  report->Add(section, "cold_loop", {cold_ms},
              {{"groups", g}, {"groups_per_s", groups_per_s(cold_ms)}});
  report->Add(section, "scalar_chain", scalar.ms,
              {{"groups", g},
               {"groups_per_s", groups_per_s(scalar_ms)},
               {"mean_newton_iters", scalar.stats.MeanNewtonIterations()},
               {"cache_hits",
                static_cast<double>(scalar.stats.cache_hits)}});
  report->Add(
      section, "lane_solver", lane.ms,
      {{"groups", g},
       {"groups_per_s", groups_per_s(lane_ms)},
       {"speedup_vs_scalar_chain", speedup},
       {"lane_occupancy", lane.stats.LaneOccupancy()},
       {"packed_solves",
        static_cast<double>(lane.stats.lane.packed_solves)},
       {"packed_lanes", static_cast<double>(lane.stats.lane.packed_lanes)},
       {"lane_fallbacks",
        static_cast<double>(lane.stats.lane.lane_fallbacks)},
       {"lane_escalated",
        static_cast<double>(lane.stats.lane.lane_escalated)},
       {"mean_newton_iters", lane.stats.MeanNewtonIterations()},
       {"max_rel_dev_vs_scalar", max_rel_dev},
       {"subset_diffs", static_cast<double>(subset_diff)}});
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our custom flags before google-benchmark sees argv.
  size_t batch_groups = 10'000;
  int batch_threads = 1;
  int batch_reps = 3;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch-groups=", 15) == 0) {
      batch_groups = static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--batch-threads=", 16) == 0) {
      batch_threads = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--batch-reps=", 13) == 0) {
      batch_reps = std::atoi(argv[i] + 13);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  RegisterAll();
  benchmark::Initialize(&pass_argc, passthrough.data());
  std::printf(
      "Figure 5: estimation time (paper: M-Sketch ~1-3ms via maxent solve;\n"
      "comparison summaries answer in microseconds). M-Sketch rows are\n"
      "cold solves; M-Sketch-cached rows hit the solver cache.\n");
  benchmark::RunSpecifiedBenchmarks();
  if (batch_groups > 0) {
    JsonReport report("fig5");
    const int threads = std::max(1, batch_threads);
    const int reps = std::max(1, batch_reps);
    {
      auto cube = BuildDriftingCohortCube(batch_groups, 200);
      RunBatchSolverSection(&report, "cohorts", cube, batch_groups, threads,
                            reps);
    }
    {
      auto cube = BuildUniformCellsCube(batch_groups, 200);
      RunBatchSolverSection(&report, "uniform_cells", cube, batch_groups,
                            threads, reps);
    }
  }
  return 0;
}
