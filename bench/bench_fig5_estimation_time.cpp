// Figure 5: quantile estimation time vs summary size (google-benchmark).
// The moments sketch pays a ~1ms maxent solve where comparison summaries
// read quantiles in microseconds — the flip side of its 50ns merges.
//
// Extended with the batched estimation pipeline: "M-Sketch" rows are the
// paper's cold solve (full pipeline, no caching); "M-Sketch-cached" rows
// go through EstimateQuantiles and hence the process-wide solver cache;
// "ingest" rows compare scalar Accumulate with the unrolled
// AccumulateBatch kernel; and a final section demonstrates warm-started
// batch estimation (GroupByQuantiles) against a cold per-group solve
// loop, with per-batch BatchStats.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <utility>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/cohorts.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

constexpr size_t kRows = 100'000;

void BM_EstimateBaseline(benchmark::State& state, const char* dataset,
                         const char* summary, double param) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  auto built = MakeAnySummary(summary, param);
  MSKETCH_CHECK(built.ok());
  for (double x : data) built.value()->Accumulate(x);
  double phi = 0.5;
  for (auto _ : state) {
    auto q = built.value()->EstimateQuantile(phi);
    benchmark::DoNotOptimize(q);
    phi = (phi == 0.5) ? 0.9 : 0.5;  // defeat result caching
  }
  state.counters["bytes"] = static_cast<double>(built.value()->SizeBytes());
}

void BM_EstimateMSketch(benchmark::State& state, const char* dataset,
                        int k) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  MomentsSketch sketch(k);
  for (double x : data) sketch.Accumulate(x);
  for (auto _ : state) {
    // Full cold pipeline: moment conversion + (k1,k2) selection + Newton
    // + CDF inversion, bypassing every cache tier.
    auto dist = SolveMaxEnt(sketch);
    benchmark::DoNotOptimize(dist);
    if (dist.ok()) {
      double q = dist->Quantile(0.5);
      benchmark::DoNotOptimize(q);
    }
  }
  state.counters["bytes"] = static_cast<double>(sketch.SizeBytes());
}

void BM_EstimateMSketchCached(benchmark::State& state, const char* dataset,
                              int k) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kRows);
  MomentsSketch sketch(k);
  for (double x : data) sketch.Accumulate(x);
  double phi = 0.5;
  for (auto _ : state) {
    // The convenience wrapper: first call solves, the rest hit the
    // process-wide solver cache (repeated-query workloads).
    auto q = EstimateQuantiles(sketch, {phi});
    benchmark::DoNotOptimize(q);
    phi = (phi == 0.5) ? 0.9 : 0.5;
  }
  state.counters["bytes"] = static_cast<double>(sketch.SizeBytes());
}

// ------------------------------------------------- ingestion kernels

void BM_IngestScalar(benchmark::State& state, int k) {
  auto data = GenerateDataset(DatasetId::kMilan, kRows);
  for (auto _ : state) {
    MomentsSketch sketch(k);
    for (double x : data) sketch.Accumulate(x);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_IngestBatch(benchmark::State& state, int k) {
  auto data = GenerateDataset(DatasetId::kMilan, kRows);
  for (auto _ : state) {
    MomentsSketch sketch(k);
    sketch.AccumulateBatch(data.data(), data.size());
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void RegisterAll() {
  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"Merge12", {16, 64, 256}}, {"RandomW", {16, 64, 256}},
      {"GK", {20, 60}},           {"T-Digest", {20, 100, 400}},
      {"Sampling", {250, 1000, 8000}}, {"S-Hist", {10, 100, 1000}},
      {"EW-Hist", {15, 100, 1000}},
  };
  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    for (int k : {4, 10, 15}) {
      std::string name = std::string("estimate/") + dataset + "/M-Sketch/" +
                         std::to_string(k);
      benchmark::RegisterBenchmark(name.c_str(), BM_EstimateMSketch, dataset,
                                   k)
          ->MinTime(0.05);
      std::string cached_name = std::string("estimate/") + dataset +
                                "/M-Sketch-cached/" + std::to_string(k);
      benchmark::RegisterBenchmark(cached_name.c_str(),
                                   BM_EstimateMSketchCached, dataset, k)
          ->MinTime(0.05);
    }
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        std::string name = std::string("estimate/") + dataset + "/" +
                           sweep.summary + "/" +
                           std::to_string(static_cast<int>(param));
        benchmark::RegisterBenchmark(name.c_str(), BM_EstimateBaseline,
                                     dataset, sweep.summary, param)
            ->MinTime(0.05);
      }
    }
  }
  for (int k : {10, 15}) {
    benchmark::RegisterBenchmark(
        (std::string("ingest/scalar/") + std::to_string(k)).c_str(),
        BM_IngestScalar, k)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("ingest/batch/") + std::to_string(k)).c_str(),
        BM_IngestBatch, k)
        ->MinTime(0.05);
  }
}

// --------------------------------------- warm-vs-cold batch estimation
//
// The acceptance experiment for the batched pipeline: G drifting
// lognormal groups, solved (a) by a cold per-group loop and (b) by
// GroupByQuantiles with similarity-ordered warm-start chains and a
// per-batch solver cache. Reports wall clock per group, mean Newton
// iterations, the BatchStats tier counters, and the worst quantile
// deviation between the two paths.
void RunWarmVsColdSection(size_t groups, int threads) {
  std::printf(
      "\n-------------------------------------------------------------\n"
      "warm-vs-cold batched estimation (%zu groups, %d thread%s)\n",
      groups, threads, threads == 1 ? "" : "s");
  const std::vector<double> phis = {0.5, 0.99};
  const int rows_per_group = 200;

  DataCube<MomentsSummary> cube =
      BuildDriftingCohortCube(groups, rows_per_group);

  // (a) cold loop: one independent solve per group.
  std::vector<std::vector<double>> cold_q(groups);
  std::vector<std::pair<int, int>> cold_k(groups, {0, 0});
  uint64_t cold_newton = 0, cold_solved = 0;
  Timer tc;
  cube.store().ForEachGroup({0}, [&](const CubeCoords& key,
                                     const MomentsSketch& sketch) {
    auto dist = SolveMaxEnt(sketch);
    if (!dist.ok()) return;
    cold_newton +=
        static_cast<uint64_t>(dist->diagnostics().newton_iterations);
    ++cold_solved;
    cold_q[key[0]] = dist->Quantiles(phis);
    cold_k[key[0]] = {dist->diagnostics().k1, dist->diagnostics().k2};
  });
  const double cold_s = tc.Seconds();

  // (b) batched: similarity-ordered warm chains + per-batch cache.
  BatchOptions options;
  options.threads = threads;
  BatchStats stats;
  Timer tb;
  auto batched = cube.GroupByQuantiles({0}, phis, options, &stats);
  const double batch_s = tb.Seconds();

  // Deviation vs the cold loop. Two regimes: groups where both paths fit
  // the same moment subset must agree to Newton tolerance; on
  // near-degenerate groups a warm seed can converge where the cold zero
  // start diverges and drops moments, so the warm answer fits a
  // different (larger) subset — count those separately, keyed on the
  // actual (k1, k2) diagnostics rather than the deviation size.
  double max_rel_dev = 0.0;
  size_t subset_diff = 0;
  for (const auto& r : batched) {
    if (!r.status.ok() || cold_q[r.key[0]].empty()) continue;
    double dev = 0.0;
    for (size_t p = 0; p < phis.size(); ++p) {
      const double qc = cold_q[r.key[0]][p];
      const double denom = std::max(1.0, std::fabs(qc));
      dev = std::max(dev, std::fabs(r.quantiles[p] - qc) / denom);
    }
    if (std::make_pair(r.k1, r.k2) != cold_k[r.key[0]]) {
      ++subset_diff;
    } else {
      max_rel_dev = std::max(max_rel_dev, dev);
    }
  }

  std::printf(
      "  cold loop : %8.3f s  (%7.1f us/group)  mean Newton iters %.2f\n",
      cold_s, 1e6 * cold_s / static_cast<double>(groups),
      cold_solved ? static_cast<double>(cold_newton) /
                        static_cast<double>(cold_solved)
                  : 0.0);
  std::printf(
      "  batched   : %8.3f s  (%7.1f us/group)  mean Newton iters %.2f\n",
      batch_s, 1e6 * batch_s / static_cast<double>(groups),
      stats.MeanNewtonIterations());
  std::printf(
      "  batch stats: cold %llu | warm %llu | cache hits %llu | atomic %llu "
      "| failed %llu\n",
      static_cast<unsigned long long>(stats.cold_solves),
      static_cast<unsigned long long>(stats.warm_solves),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.atomic_fallbacks),
      static_cast<unsigned long long>(stats.failed_solves));
  std::printf(
      "  max relative quantile deviation vs cold: %.3g  (same moment "
      "subset)\n"
      "  groups fitting a different subset than cold (warm seed converged "
      "where cold dropped moments): %zu\n",
      max_rel_dev, subset_diff);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our custom flags before google-benchmark sees argv.
  size_t batch_groups = 10'000;
  int batch_threads = 1;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch-groups=", 15) == 0) {
      batch_groups = static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--batch-threads=", 16) == 0) {
      batch_threads = std::atoi(argv[i] + 16);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  RegisterAll();
  benchmark::Initialize(&pass_argc, passthrough.data());
  std::printf(
      "Figure 5: estimation time (paper: M-Sketch ~1-3ms via maxent solve;\n"
      "comparison summaries answer in microseconds). M-Sketch rows are\n"
      "cold solves; M-Sketch-cached rows hit the solver cache.\n");
  benchmark::RunSpecifiedBenchmarks();
  if (batch_groups > 0) {
    RunWarmVsColdSection(batch_groups, std::max(1, batch_threads));
  }
  return 0;
}
