// Figure 14: sliding-window threshold query over 10 days of 10-minute
// panes (4-hour windows; pass --panes=4320 for the paper's full month),
// with two injected spikes. Variants:
//   Baseline - turnstile updates, direct maxent estimate per window
//   +Simple/+Markov/+RTT - turnstile + cascade stages
//   Merge12  - re-merge all panes per window slide + estimate
// Emits BENCH_fig14.json (one row per variant) via bench_util's
// JsonReport so the window-path trajectory is tracked like fig3/fig4.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/cascade.h"
#include "datasets/datasets.h"
#include "sketches/buffer_hierarchy.h"
#include "window/sliding_window.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const int total_panes = static_cast<int>(args.GetU64("panes", 1440));
  const int window_panes = static_cast<int>(args.GetU64("window", 24));
  const uint64_t rows_per_pane =
      args.GetU64("pane-rows", 1000) * static_cast<uint64_t>(args.Scale());

  PrintHeader("Figure 14: sliding window query");
  std::printf("paper: Baseline 6.30s | +Simple 5.26 | +Markov 0.08 |\n"
              "       +RTT 0.04 | Merge12 0.48\n\n");

  // Pre-build panes (pane construction is ingest-time work, not query
  // time). Spikes at panes [1200,1212) and [3000,3012) with value 2000
  // and 1000 against a milan-like base (max ~8000, p99 ~ 500).
  auto values = GenerateDataset(DatasetId::kMilan,
                                rows_per_pane * total_panes);
  std::vector<MomentsSketch> moment_panes;
  std::vector<BufferHierarchySketch> m12_panes;
  moment_panes.reserve(total_panes);
  m12_panes.reserve(total_panes);
  size_t vi = 0;
  for (int p = 0; p < total_panes; ++p) {
    MomentsSketch mp(10);
    auto bp = MakeMerge12(32, 5000 + p);
    const bool spike = (p >= total_panes / 4 && p < total_panes / 4 + 12) ||
                       (p >= (3 * total_panes) / 4 &&
                        p < (3 * total_panes) / 4 + 12);
    for (uint64_t i = 0; i < rows_per_pane; ++i) {
      mp.Accumulate(values[vi]);
      bp.Accumulate(values[vi]);
      ++vi;
    }
    if (spike) {
      const double v = (p < total_panes / 2) ? 2000.0 : 1000.0;
      const uint64_t extra = rows_per_pane / 10;
      for (uint64_t i = 0; i < extra; ++i) {
        mp.Accumulate(v);
        bp.Accumulate(v);
      }
    }
    moment_panes.push_back(std::move(mp));
    m12_panes.push_back(std::move(bp));
  }

  const double threshold = 1500.0;
  JsonReport report("fig14");
  struct Variant {
    const char* name;
    bool cascade_enabled;
    bool simple, markov, rtt;
  };
  for (const Variant& v :
       {Variant{"Baseline", false, false, false, false},
        Variant{"+Simple", true, true, false, false},
        Variant{"+Markov", true, true, true, false},
        Variant{"+RTT", true, true, true, true}}) {
    CascadeOptions options;
    options.use_simple_check = v.simple;
    options.use_markov = v.markov;
    options.use_rtt = v.rtt;
    ThresholdCascade cascade(options);
    TurnstileWindow window(10, window_panes);
    Timer t;
    int alerts = 0;
    for (const auto& pane : moment_panes) {
      MSKETCH_CHECK(window.PushPane(pane).ok());
      if (!window.Full()) continue;
      bool above;
      if (v.cascade_enabled) {
        above = cascade.Threshold(window.Current(), 0.99, threshold);
      } else {
        auto dist = SolveMaxEnt(window.Current());
        above = dist.ok() && dist->Quantile(0.99) > threshold;
      }
      alerts += above ? 1 : 0;
    }
    const double secs = t.Seconds();
    std::printf("%-10s %8.3f s   (%d window alerts)\n", v.name, secs,
                alerts);
    report.Add("window", v.name, {secs * 1e3},
               {{"alerts", static_cast<double>(alerts)},
                {"panes", static_cast<double>(total_panes)}});
  }

  // Merge12: re-merge the window every slide, estimate directly.
  {
    RemergeWindow<BufferHierarchySketch> window(MakeMerge12(32, 1),
                                                window_panes);
    Timer t;
    int alerts = 0;
    int seen = 0;
    for (const auto& pane : m12_panes) {
      window.PushPane(pane);
      if (++seen < window_panes) continue;
      BufferHierarchySketch merged = window.Current();
      auto q = merged.EstimateQuantile(0.99);
      alerts += (q.ok() && q.value() > threshold) ? 1 : 0;
    }
    const double secs = t.Seconds();
    std::printf("%-10s %8.3f s   (%d window alerts)\n", "Merge12", secs,
                alerts);
    report.Add("window", "Merge12", {secs * 1e3},
               {{"alerts", static_cast<double>(alerts)},
                {"panes", static_cast<double>(total_panes)}});
  }
  return 0;
}
