// Table 2 methodology: per summary type, find the smallest size parameter
// achieving eps_avg <= 0.01 on a dataset (pointwise accumulation), then
// report the parameter and the observed summary size. Shared by
// bench_table2_params (which prints it) and bench_fig3_query_time (which
// times queries at those parameters).
#ifndef MSKETCH_BENCH_CALIBRATE_H_
#define MSKETCH_BENCH_CALIBRATE_H_

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace msketch {
namespace bench {

struct Calibration {
  std::string summary;
  double param = 0.0;
  size_t bytes = 0;
  double err = 1.0;
  bool achieved = false;
};

struct SummarySweep {
  std::string name;
  std::vector<double> params;  // ascending accuracy order
  double fallback;             // param to time when target unreachable
};

inline std::vector<SummarySweep> DefaultSweeps() {
  return {
      {"M-Sketch", {2, 3, 4, 6, 8, 10, 12, 14}, 10},
      {"Merge12", {8, 16, 32, 64, 128, 256}, 32},
      {"RandomW", {8, 16, 32, 64, 128, 256}, 64},
      {"GK", {10, 20, 40, 60, 100, 200}, 60},
      {"T-Digest", {10, 20, 50, 100, 200, 400}, 100},
      {"Sampling", {250, 500, 1000, 2000, 4000, 8000}, 1000},
      // The histogram sweeps stop at 1000 bins: on long-tailed data they
      // cannot reach 1% error with any practical size (Section 6.2.1 notes
      // >100k buckets needed on milan); they get timed at the paper's
      // comparison setting of 100 bins instead.
      {"S-Hist", {10, 30, 100, 300, 1000}, 100},
      {"EW-Hist", {15, 100, 1000}, 100},
  };
}

inline Calibration CalibrateOne(const SummarySweep& sweep,
                                const std::vector<double>& data,
                                const std::vector<double>& sorted,
                                double target_eps, bool round_to_int) {
  Calibration out;
  out.summary = sweep.name;
  for (double param : sweep.params) {
    auto summary = MakeAnySummary(sweep.name, param);
    MSKETCH_CHECK(summary.ok());
    for (double x : data) summary.value()->Accumulate(x);
    const double err = MeanError(*summary.value(), sorted, round_to_int);
    if (err <= target_eps) {
      out.param = param;
      out.bytes = summary.value()->SizeBytes();
      out.err = err;
      out.achieved = true;
      return out;
    }
    out.err = err;  // remember best-effort error
  }
  out.param = sweep.fallback;
  auto summary = MakeAnySummary(sweep.name, sweep.fallback);
  MSKETCH_CHECK(summary.ok());
  for (double x : data) summary.value()->Accumulate(x);
  out.bytes = summary.value()->SizeBytes();
  out.err = MeanError(*summary.value(), sorted, round_to_int);
  out.achieved = false;
  return out;
}

}  // namespace bench
}  // namespace msketch

#endif  // MSKETCH_BENCH_CALIBRATE_H_
