// Figure 13: cascade microbenchmarks on the MacroBase workload.
//   (a) threshold-check throughput as stages are added incrementally
//   (b) standalone throughput of each stage
//   (c) fraction of queries resolved by each stage
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/bounds.h"
#include "core/cascade.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const uint64_t grids = args.GetU64("grids", 100);
  const uint64_t panes = args.GetU64("panes", 20);

  PrintHeader("Figure 13: cascade stage analysis");
  std::printf("paper: (a) QPS 259 -> 2.65k -> 28.3k -> 67.8k\n"
              "       (b) per-stage QPS: Simple 14.3M, Markov 494k, RTT "
              "36.5k, MaxEnt 501\n"
              "       (c) fraction hit: 1.0 / 0.140 / 0.019 / 0.007\n\n");

  // Build the grouped subpopulation sketches once (same workload shape as
  // Figure 12), then measure the threshold checks alone.
  auto values = GenerateDataset(DatasetId::kMilan, rows);
  DataCube<MomentsSummary> cube(3, MomentsSummary(10));
  {
    Rng rng(0x3ACB0);
    for (double v : values) {
      cube.Ingest({static_cast<uint32_t>(rng.NextBelow(grids)),
                   static_cast<uint32_t>(rng.NextBelow(10)),
                   static_cast<uint32_t>(rng.NextBelow(panes))},
                  v);
    }
  }
  MomentsSummary global = cube.MergeAll();
  auto t99r = global.EstimateQuantile(0.99);
  MSKETCH_CHECK(t99r.ok());
  const double t99 = t99r.value();

  std::vector<MomentsSketch> groups;
  for (size_t d = 0; d < 3; ++d) {
    cube.ForEachGroup({d}, [&](const CubeCoords&, const MomentsSummary& s) {
      groups.push_back(s.sketch());
    });
  }
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = a + 1; b < 3; ++b) {
      cube.ForEachGroup({a, b},
                        [&](const CubeCoords&, const MomentsSummary& s) {
                          groups.push_back(s.sketch());
                        });
    }
  }
  std::printf("workload: %zu subpopulation sketches, threshold t99=%.2f\n\n",
              groups.size(), t99);

  // (a) incremental cascade throughput.
  struct Variant {
    const char* name;
    bool simple, markov, rtt;
  };
  std::printf("(a) threshold query throughput (queries/s)\n");
  for (const Variant& v :
       {Variant{"Baseline", false, false, false},
        Variant{"+Simple", true, false, false},
        Variant{"+Markov", true, true, false},
        Variant{"+RTT", true, true, true}}) {
    CascadeOptions options;
    options.use_simple_check = v.simple;
    options.use_markov = v.markov;
    options.use_rtt = v.rtt;
    ThresholdCascade cascade(options);
    // Variants without the bound stages hit the maxent solver on every
    // group; measure those on a sample to keep the bench fast.
    const size_t n = v.markov ? groups.size()
                              : std::min<size_t>(groups.size(), 400);
    Timer t;
    size_t flagged = 0;
    for (size_t i = 0; i < n; ++i) {
      flagged += cascade.Threshold(groups[i], 0.7, t99) ? 1 : 0;
    }
    const double qps = static_cast<double>(n) / t.Seconds();
    std::printf("  %-10s %12.0f qps   (%zu flagged of %zu checked)\n",
                v.name, qps, flagged, n);
  }

  // (b) standalone stage throughput; (c) fraction resolved per stage.
  std::printf("\n(b) standalone stage throughput (checks/s)\n");
  {
    Timer t;
    size_t n = 0;
    // Repeat to get above timer resolution; report per single pass.
    const int reps = 200;
    for (int rep = 0; rep < reps; ++rep) {
      for (const auto& g : groups) {
        n += (t99 > g.max() || t99 < g.min()) ? 1 : 0;
      }
    }
    asm volatile("" : : "r"(n));
    std::printf("  %-10s %12.0f\n", "Simple",
                static_cast<double>(groups.size()) * reps / t.Seconds());
    t.Reset();
    for (const auto& g : groups) {
      RankBounds b = MarkovBound(g, t99);
      (void)b;
    }
    std::printf("  %-10s %12.0f\n", "Markov",
                static_cast<double>(groups.size()) / t.Seconds());
    t.Reset();
    for (const auto& g : groups) {
      RankBounds b = RttBound(g, t99);
      (void)b;
    }
    std::printf("  %-10s %12.0f\n", "RTT",
                static_cast<double>(groups.size()) / t.Seconds());
    t.Reset();
    size_t solved = 0;
    const size_t sample = std::min<size_t>(groups.size(), 400);
    for (size_t i = 0; i < sample; ++i) {
      auto dist = SolveMaxEnt(groups[i]);
      if (dist.ok()) ++solved;
    }
    std::printf("  %-10s %12.0f   (%zu/%zu converged; %zu-group sample)\n",
                "MaxEnt", static_cast<double>(sample) / t.Seconds(), solved,
                sample, sample);
    (void)n;
  }

  std::printf("\n(c) fraction of queries resolved per stage\n");
  {
    ThresholdCascade cascade;
    for (const auto& g : groups) cascade.Threshold(g, 0.7, t99);
    const auto& st = cascade.stats();
    const double total = static_cast<double>(st.total);
    std::printf("  reach Simple  %7.3f   resolve %7.3f\n", 1.0,
                st.resolved_simple / total);
    std::printf("  reach Markov  %7.3f   resolve %7.3f\n",
                1.0 - st.resolved_simple / total,
                st.resolved_markov / total);
    std::printf("  reach RTT     %7.3f   resolve %7.3f\n",
                1.0 - (st.resolved_simple + st.resolved_markov) / total,
                st.resolved_rtt / total);
    std::printf("  reach MaxEnt  %7.3f   resolve %7.3f\n",
                st.resolved_maxent / total, st.resolved_maxent / total);
  }

  // (d) cascade in batch: GroupByThreshold routes the bound stages per
  // group and sends unresolved groups through the batch estimation tiers
  // (warm chains + solver cache) instead of isolated cold solves.
  std::printf("\n(d) batched threshold queries (GroupByThreshold)\n");
  for (size_t d = 0; d < 3; ++d) {
    // Per-group cascade loop (the (a) +RTT configuration).
    std::vector<MomentsSketch> dim_groups;
    cube.ForEachGroup({d}, [&](const CubeCoords&, const MomentsSummary& s) {
      dim_groups.push_back(s.sketch());
    });
    ThresholdCascade loop_cascade;
    Timer tl;
    size_t loop_flagged = 0;
    for (const auto& g : dim_groups) {
      loop_flagged += loop_cascade.Threshold(g, 0.7, t99) ? 1 : 0;
    }
    const double loop_ms = tl.Millis();

    BatchOptions options;
    BatchStats stats;
    Timer tb;
    auto batched = cube.GroupByThreshold({d}, 0.7, t99, options, &stats);
    const double batch_ms = tb.Millis();
    size_t batch_flagged = 0;
    for (const auto& r : batched) batch_flagged += r.exceeds ? 1 : 0;

    std::printf(
        "  dim %zu: %4zu groups  loop %8.2f ms (%zu flagged)  "
        "batch %8.2f ms (%zu flagged)\n"
        "         pruned by bounds %llu | warm %llu | cold %llu | "
        "cache hits %llu | mean Newton %.2f\n",
        d, dim_groups.size(), loop_ms, loop_flagged, batch_ms,
        batch_flagged,
        static_cast<unsigned long long>(stats.CascadePruned()),
        static_cast<unsigned long long>(stats.warm_solves),
        static_cast<unsigned long long>(stats.cold_solves),
        static_cast<unsigned long long>(stats.cache_hits),
        stats.MeanNewtonIterations());
  }
  return 0;
}
