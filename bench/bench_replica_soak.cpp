// Replication fault-injection soak (CI robustness artifact, not a
// paper figure).
//
// Builds a leader StreamingCube with replication enabled, runs one
// clean leader->follower exchange to count its frames and capture the
// wire stream (REPLICA_frames.bin, validated by tools/wal_dump.py
// --frames), then sweeps every fault kind across the exchange's frame
// boundaries. Each scenario syncs a fresh follower with the fault
// armed on the first connection, reconnecting on resets, and records
// whether it converged to the leader's epoch and how many retry
// rounds it burned.
//
// Sections (emitted to BENCH_replica.json via bench_util's JsonReport):
//   clean   the unfaulted exchange (frame count, frames captured)
//   soak    one row per fault scenario: converged flag, retries vs
//           retry_budget, resyncs, connections, certified flag
//
// tools/check_replica_gate.py fails CI on any non-converged scenario
// or any scenario whose retries exceed its budget. Default sweep
// strides the frame index to keep CI fast; --full covers every frame.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "ingest/streaming_cube.h"
#include "replica/backoff.h"
#include "replica/fault_transport.h"
#include "replica/replica_applier.h"
#include "replica/replication_source.h"
#include "replica/transport.h"

namespace msketch {
namespace bench {
namespace {

using std::chrono::milliseconds;

constexpr int kK = 7;
constexpr size_t kDims = 2;
constexpr int kKllK = 32;

ReplicationOptions SourceOptions() {
  ReplicationOptions opt;
  opt.history_epochs = 2;  // fresh followers go through the snapshot
  opt.chunk_bytes = 512;
  opt.heartbeat_interval = milliseconds(15);
  opt.recv_poll = milliseconds(2);
  opt.send_backoff.initial = milliseconds(1);
  opt.send_backoff.max = milliseconds(4);
  opt.send_backoff.max_attempts = 6;
  return opt;
}

ReplicaOptions ApplierOptions() {
  ReplicaOptions opt;
  opt.kll_k = kKllK;
  opt.retry.initial = milliseconds(1);
  opt.retry.max = milliseconds(8);
  opt.retry.max_attempts = 8;
  opt.recv_timeout = milliseconds(40);
  opt.heartbeat_miss_budget = 4;
  return opt;
}

struct Leader {
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<StreamingCube> cube;
};

Leader MakeLeader(size_t epochs) {
  IngestOptions options;
  options.num_shards = 2;
  options.enable_kll = true;
  options.kll_k = kKllK;
  Leader leader;
  leader.cube =
      std::make_unique<StreamingCube>(kDims, MomentsSummary(kK), options);
  leader.source = std::make_unique<ReplicationSource>(SourceOptions());
  Status st = leader.cube->EnableReplication(leader.source.get());
  if (!st.ok()) {
    std::fprintf(stderr, "EnableReplication: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  static const char* kRegions[] = {"us-east", "eu-west", "ap-south"};
  static const char* kServices[] = {"api", "web", "db", "cache"};
  for (size_t e = 0; e < epochs; ++e) {
    for (size_t i = 0; i < 40; ++i) {
      const double v = 0.5 + 0.37 * static_cast<double>((i * 7 + e) % 23) +
                       static_cast<double>(e);
      (void)leader.cube->AppendRow(
          {kRegions[(i + e) % 3], kServices[(i * 3 + e) % 4]}, v);
    }
    leader.cube->Flush();
  }
  return leader;
}

enum class FaultKind {
  kNone,
  kDrop,
  kDuplicate,
  kReorder,
  kTear,
  kFlip,
  kDelay,
  kReset,
};

const char* FaultName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTear: return "tear";
    case FaultKind::kFlip: return "flip";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kReset: return "reset";
  }
  return "?";
}

void ArmFault(FaultInjectingTransport* t, FaultKind kind, int64_t index) {
  switch (kind) {
    case FaultKind::kNone: break;
    case FaultKind::kDrop: t->DropFrame(index); break;
    case FaultKind::kDuplicate: t->DuplicateFrame(index); break;
    case FaultKind::kReorder: t->ReorderFrame(index); break;
    case FaultKind::kTear: t->TearFrame(index, 5); break;
    case FaultKind::kFlip: t->FlipBit(index, 37); break;
    case FaultKind::kDelay: t->DelayFrame(index, 20); break;
    case FaultKind::kReset: t->ResetAtFrame(index); break;
  }
}

struct ScenarioResult {
  bool converged = false;
  uint64_t frames_first_connection = 0;
  int connections = 0;
  bool certified_during_outage = true;
  ReplicaApplierStats applier_stats;
};

/// One scenario: fresh follower, fault armed on the first connection,
/// clean reconnects after, until converged or the attempt budget ends.
/// `capture` (optional) receives every pre-fault frame of the first
/// connection — the wire stream tools/wal_dump.py --frames audits.
ScenarioResult RunScenario(Leader* leader, FaultKind kind, int64_t index,
                           std::vector<uint8_t>* capture = nullptr) {
  ScenarioResult r;
  ReplicaApplier applier(kK, kDims, ApplierOptions());
  const uint64_t target = leader->cube->last_published_epoch();
  bool armed = false;
  for (int conn = 0; conn < 6; ++conn) {
    ++r.connections;
    auto pipe = MakeInProcessPipe();
    FaultInjectingTransport leader_end(std::move(pipe.first));
    std::unique_ptr<Transport> follower_end = std::move(pipe.second);
    if (!armed) {
      ArmFault(&leader_end, kind, index);
      if (capture != nullptr) {
        leader_end.SetSendObserver([capture](const std::vector<uint8_t>& f) {
          capture->insert(capture->end(), f.begin(), f.end());
        });
      }
      armed = true;
    }
    std::thread serve([&] { (void)leader->source->Serve(&leader_end); });
    Status st = applier.SyncWithRetry(follower_end.get());
    leader->source->RequestStop();
    follower_end->Close();
    serve.join();
    if (conn == 0) r.frames_first_connection = leader_end.stats().frames_sent;
    if (st.ok() && applier.applied_epoch() >= target) {
      r.converged = true;
      break;
    }
    const bool retryable =
        IsRetryable(st) || st.code() == StatusCode::kCorruption;
    if (!st.ok() && !retryable) break;
    if (applier.applied_epoch() > 0) {
      CertifiedQuantile q = applier.QueryQuantileCertified({"", ""}, 0.5);
      if (!q.certified || !q.status.ok()) r.certified_during_outage = false;
    }
  }
  r.applier_stats = applier.stats();
  return r;
}

int Main(int argc, char** argv) {
  Args args(argc, argv);
  PrintHeader("Replication soak: every fault kind across the exchange");
  JsonReport report("replica");

  Leader leader = MakeLeader(/*epochs=*/5);
  const uint64_t retry_budget_per_conn =
      static_cast<uint64_t>(ApplierOptions().retry.max_attempts);

  // Clean run: frame count + wire capture for wal_dump --frames.
  std::vector<uint8_t> capture;
  Timer clean_timer;
  ScenarioResult clean =
      RunScenario(&leader, FaultKind::kNone, -1, &capture);
  const double clean_ms = clean_timer.Millis();
  if (!clean.converged) {
    std::fprintf(stderr, "clean exchange did not converge\n");
    return 1;
  }
  const int64_t frames = static_cast<int64_t>(clean.frames_first_connection);
  {
    std::FILE* f = std::fopen("REPLICA_frames.bin", "wb");
    if (f != nullptr) {
      std::fwrite(capture.data(), 1, capture.size(), f);
      std::fclose(f);
      std::printf("wrote REPLICA_frames.bin (%zu bytes, %lld frames)\n",
                  capture.size(), static_cast<long long>(frames));
    }
  }
  report.Add("clean", "exchange", {clean_ms},
             {{"frames", static_cast<double>(frames)},
              {"capture_bytes", static_cast<double>(capture.size())}},
             {{"converged", true}});

  // Fault sweep. Default strides the frame index (CI time); --full
  // hits every boundary.
  const int64_t stride =
      args.Has("full") ? 1
                       : static_cast<int64_t>(args.GetU64("stride", 3));
  const FaultKind kinds[] = {FaultKind::kDrop,  FaultKind::kDuplicate,
                             FaultKind::kReorder, FaultKind::kTear,
                             FaultKind::kFlip,  FaultKind::kDelay,
                             FaultKind::kReset};
  int failures = 0;
  std::printf("\n%-12s %-7s %-10s %-8s %-8s %s\n", "fault", "frame",
              "converged", "retries", "resyncs", "connections");
  for (FaultKind kind : kinds) {
    for (int64_t index = 0; index < frames; index += stride) {
      Timer t;
      ScenarioResult r = RunScenario(&leader, kind, index);
      const double ms = t.Millis();
      const uint64_t budget =
          retry_budget_per_conn * static_cast<uint64_t>(r.connections);
      const bool within_budget = r.applier_stats.round_retries <= budget;
      if (!r.converged || !within_budget) ++failures;
      std::printf("%-12s %-7lld %-10s %-8llu %-8llu %d\n", FaultName(kind),
                  static_cast<long long>(index),
                  r.converged ? "yes" : "NO",
                  static_cast<unsigned long long>(
                      r.applier_stats.round_retries),
                  static_cast<unsigned long long>(r.applier_stats.resyncs),
                  r.connections);
      char name[64];
      std::snprintf(name, sizeof(name), "%s@%lld", FaultName(kind),
                    static_cast<long long>(index));
      report.Add(
          "soak", name, {ms},
          {{"frame", static_cast<double>(index)},
           {"retries", static_cast<double>(r.applier_stats.round_retries)},
           {"retry_budget", static_cast<double>(budget)},
           {"resyncs", static_cast<double>(r.applier_stats.resyncs)},
           {"connections", static_cast<double>(r.connections)},
           {"gaps_detected",
            static_cast<double>(r.applier_stats.gaps_detected)},
           {"corrupt_frames",
            static_cast<double>(r.applier_stats.corrupt_frames)}},
          {{"converged", r.converged},
           {"certified_during_outage", r.certified_during_outage}});
    }
  }
  std::printf("\n%d scenario failure(s)\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace msketch

int main(int argc, char** argv) { return msketch::bench::Main(argc, argv); }
