// Figure 6: total query time vs number of aggregated cells for the three
// mergeable summaries (M-Sketch k=10, Merge12 k=32, RandomW). Merge time
// dominates past ~1e4 cells, which is where the moments sketch wins; below
// ~1e2 cells its estimation cost dominates.
#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const size_t cell_size = 200;
  const size_t pool_cells = args.GetU64("pool-cells", 10'000);
  std::vector<uint64_t> cell_counts = {100, 1'000, 10'000, 100'000};
  if (args.Has("full")) cell_counts.push_back(1'000'000);

  PrintHeader("Figure 6: query time vs number of merged cells");
  std::printf("paper: M-Sketch wins for nmerge >= 1e4; estimation cost\n"
              "dominates below ~1e2 cells\n\n");
  std::printf("%-9s %-9s %10s %12s %12s %12s\n", "dataset", "summary",
              "cells", "total(ms)", "merge(ms)", "est(ms)");

  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {
      {"M-Sketch", 10}, {"Merge12", 32}, {"RandomW", 32}};

  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    auto id = DatasetFromName(dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), cell_size * pool_cells);
    for (const Entry& s : summaries) {
      auto prototype = MakeAnySummary(s.name, s.param);
      MSKETCH_CHECK(prototype.ok());
      auto pool = BuildCells(data, cell_size, *prototype.value());
      for (uint64_t n : cell_counts) {
        Timer t;
        auto merged = prototype.value()->CloneEmpty();
        for (uint64_t i = 0; i < n; ++i) {
          MSKETCH_CHECK(merged->Merge(*pool[i % pool.size()]).ok());
        }
        const double merge_ms = t.Millis();
        Timer te;
        auto q = merged->EstimateQuantile(0.99);
        MSKETCH_CHECK(q.ok());
        const double est_ms = te.Millis();
        std::printf("%-9s %-9s %10llu %12.3f %12.3f %12.3f\n", dataset,
                    s.name, static_cast<unsigned long long>(n),
                    merge_ms + est_ms, merge_ms, est_ms);
      }
    }
  }
  return 0;
}
