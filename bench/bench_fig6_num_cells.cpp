// Figure 6: total query time vs number of aggregated cells for the three
// mergeable summaries (M-Sketch k=10, Merge12 k=32, RandomW). Merge time
// dominates past ~1e4 cells, which is where the moments sketch wins; below
// ~1e2 cells its estimation cost dominates.
//
// Extended with a group-count sweep for the batched estimation pipeline:
// GROUP BY queries returning per-group quantiles pay one maxent solve per
// group, and the batch path (similarity-ordered warm chains + solver
// cache + thread sharding) amortizes that against a cold per-group loop.
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "bench/cohorts.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

// GROUP BY sweep: total estimation time vs number of groups — cold
// loop, scalar chain (lane solver off), lane-batched solver, and the
// lane solver with hardware threads. Rows land in BENCH_fig6.json.
void RunGroupCountSweep(JsonReport* report,
                        const std::vector<uint64_t>& group_counts) {
  PrintHeader("Figure 6b: GROUP BY estimation time vs number of groups");
  std::printf(
      "cold = per-group SolveMaxEnt loop; scalar = GroupByQuantiles warm\n"
      "chains (lane solver off); lane = lane-batched SIMD Newton solver;\n"
      "laneN = lane solver with threads\n\n");
  std::printf("%10s %12s %12s %12s %12s %10s %8s\n", "groups", "cold(ms)",
              "scalar(ms)", "lane(ms)", "laneN(ms)", "it/lane", "occ");
  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (uint64_t groups : group_counts) {
    DataCube<MomentsSummary> cube = BuildDriftingCohortCube(groups, 200);
    // Cold loop.
    uint64_t cold_iters = 0, cold_solves = 0;
    Timer tc;
    cube.store().ForEachGroup({0}, [&](const CubeCoords&,
                                       const MomentsSketch& sketch) {
      auto dist = SolveMaxEnt(sketch);
      if (dist.ok()) {
        cold_iters +=
            static_cast<uint64_t>(dist->diagnostics().newton_iterations);
        ++cold_solves;
      }
    });
    const double cold_ms = tc.Millis();
    auto run = [&](bool lane, int threads, BatchStats* stats) {
      BatchOptions options;
      options.use_lane_solver = lane;
      options.threads = threads;
      Timer t;
      auto results = cube.GroupByQuantiles({0}, {0.5, 0.99}, options, stats);
      MSKETCH_CHECK(results.size() == groups);
      return t.Millis();
    };
    BatchStats scalar_stats, lane_stats, threaded_stats;
    const double scalar_ms = run(false, 1, &scalar_stats);
    const double lane_ms = run(true, 1, &lane_stats);
    const double threaded_ms = run(true, hw, &threaded_stats);
    std::printf("%10llu %12.1f %12.1f %12.1f %12.1f %10.2f %8.2f\n",
                static_cast<unsigned long long>(groups), cold_ms, scalar_ms,
                lane_ms, threaded_ms, lane_stats.MeanNewtonIterations(),
                lane_stats.LaneOccupancy());
    const double g = static_cast<double>(groups);
    char name[32];
    std::snprintf(name, sizeof(name), "groups_%llu",
                  static_cast<unsigned long long>(groups));
    report->Add(
        "group_sweep", name, {lane_ms},
        {{"groups", g},
         {"cold_ms", cold_ms},
         {"scalar_chain_ms", scalar_ms},
         {"lane_ms", lane_ms},
         {"lane_threaded_ms", threaded_ms},
         {"speedup_vs_scalar_chain",
          lane_ms > 0 ? scalar_ms / lane_ms : 0.0},
         {"lane_occupancy", lane_stats.LaneOccupancy()},
         {"mean_newton_iters_lane", lane_stats.MeanNewtonIterations()}});
  }
  std::printf("\n(laneN uses %d threads)\n", hw);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const size_t cell_size = 200;
  const size_t pool_cells = args.GetU64("pool-cells", 10'000);
  std::vector<uint64_t> cell_counts = {100, 1'000, 10'000, 100'000};
  if (args.Has("full")) cell_counts.push_back(1'000'000);

  PrintHeader("Figure 6: query time vs number of merged cells");
  std::printf("paper: M-Sketch wins for nmerge >= 1e4; estimation cost\n"
              "dominates below ~1e2 cells\n\n");
  std::printf("%-9s %-9s %10s %12s %12s %12s\n", "dataset", "summary",
              "cells", "total(ms)", "merge(ms)", "est(ms)");

  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {
      {"M-Sketch", 10}, {"Merge12", 32}, {"RandomW", 32}};

  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    auto id = DatasetFromName(dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), cell_size * pool_cells);
    for (const Entry& s : summaries) {
      auto prototype = MakeAnySummary(s.name, s.param);
      MSKETCH_CHECK(prototype.ok());
      auto pool = BuildCells(data, cell_size, *prototype.value());
      for (uint64_t n : cell_counts) {
        Timer t;
        auto merged = prototype.value()->CloneEmpty();
        for (uint64_t i = 0; i < n; ++i) {
          MSKETCH_CHECK(merged->Merge(*pool[i % pool.size()]).ok());
        }
        const double merge_ms = t.Millis();
        Timer te;
        auto q = merged->EstimateQuantile(0.99);
        MSKETCH_CHECK(q.ok());
        const double est_ms = te.Millis();
        std::printf("%-9s %-9s %10llu %12.3f %12.3f %12.3f\n", dataset,
                    s.name, static_cast<unsigned long long>(n),
                    merge_ms + est_ms, merge_ms, est_ms);
      }
    }
  }

  std::vector<uint64_t> group_counts = {100, 1'000, 10'000};
  if (args.Has("full")) group_counts.push_back(100'000);
  JsonReport report("fig6");
  RunGroupCountSweep(&report, group_counts);
  return 0;
}
