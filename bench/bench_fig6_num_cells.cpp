// Figure 6: total query time vs number of aggregated cells for the three
// mergeable summaries (M-Sketch k=10, Merge12 k=32, RandomW). Merge time
// dominates past ~1e4 cells, which is where the moments sketch wins; below
// ~1e2 cells its estimation cost dominates.
//
// Extended with a group-count sweep for the batched estimation pipeline:
// GROUP BY queries returning per-group quantiles pay one maxent solve per
// group, and the batch path (similarity-ordered warm chains + solver
// cache + thread sharding) amortizes that against a cold per-group loop.
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "bench/cohorts.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

// GROUP BY sweep: total estimation time vs number of groups, cold loop
// vs batched pipeline (1 thread and hardware threads).
void RunGroupCountSweep(const std::vector<uint64_t>& group_counts) {
  PrintHeader("Figure 6b: GROUP BY estimation time vs number of groups");
  std::printf("cold = per-group SolveMaxEnt loop; batch = GroupByQuantiles\n"
              "(warm chains + solver cache); batchN = same with threads\n\n");
  std::printf("%10s %12s %12s %12s %10s %10s %12s\n", "groups", "cold(ms)",
              "batch(ms)", "batchN(ms)", "it/cold", "it/batch",
              "warm/cache");
  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (uint64_t groups : group_counts) {
    DataCube<MomentsSummary> cube = BuildDriftingCohortCube(groups, 200);
    // Cold loop.
    uint64_t cold_iters = 0, cold_solves = 0;
    Timer tc;
    cube.store().ForEachGroup({0}, [&](const CubeCoords&,
                                       const MomentsSketch& sketch) {
      auto dist = SolveMaxEnt(sketch);
      if (dist.ok()) {
        cold_iters +=
            static_cast<uint64_t>(dist->diagnostics().newton_iterations);
        ++cold_solves;
      }
    });
    const double cold_ms = tc.Millis();
    // Batched, one thread.
    BatchOptions options;
    BatchStats stats;
    Timer tb;
    auto results = cube.GroupByQuantiles({0}, {0.5, 0.99}, options, &stats);
    const double batch_ms = tb.Millis();
    // Batched, hardware threads.
    BatchOptions threaded = options;
    threaded.threads = hw;
    BatchStats tstats;
    Timer tt;
    auto tresults =
        cube.GroupByQuantiles({0}, {0.5, 0.99}, threaded, &tstats);
    const double threaded_ms = tt.Millis();
    MSKETCH_CHECK(results.size() == tresults.size());
    std::printf(
        "%10llu %12.1f %12.1f %12.1f %10.2f %10.2f %6llu/%-5llu\n",
        static_cast<unsigned long long>(groups), cold_ms, batch_ms,
        threaded_ms,
        cold_solves ? static_cast<double>(cold_iters) /
                          static_cast<double>(cold_solves)
                    : 0.0,
        stats.MeanNewtonIterations(),
        static_cast<unsigned long long>(stats.warm_solves),
        static_cast<unsigned long long>(stats.cache_hits));
  }
  std::printf("\n(batchN uses %d threads)\n", hw);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const size_t cell_size = 200;
  const size_t pool_cells = args.GetU64("pool-cells", 10'000);
  std::vector<uint64_t> cell_counts = {100, 1'000, 10'000, 100'000};
  if (args.Has("full")) cell_counts.push_back(1'000'000);

  PrintHeader("Figure 6: query time vs number of merged cells");
  std::printf("paper: M-Sketch wins for nmerge >= 1e4; estimation cost\n"
              "dominates below ~1e2 cells\n\n");
  std::printf("%-9s %-9s %10s %12s %12s %12s\n", "dataset", "summary",
              "cells", "total(ms)", "merge(ms)", "est(ms)");

  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {
      {"M-Sketch", 10}, {"Merge12", 32}, {"RandomW", 32}};

  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    auto id = DatasetFromName(dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), cell_size * pool_cells);
    for (const Entry& s : summaries) {
      auto prototype = MakeAnySummary(s.name, s.param);
      MSKETCH_CHECK(prototype.ok());
      auto pool = BuildCells(data, cell_size, *prototype.value());
      for (uint64_t n : cell_counts) {
        Timer t;
        auto merged = prototype.value()->CloneEmpty();
        for (uint64_t i = 0; i < n; ++i) {
          MSKETCH_CHECK(merged->Merge(*pool[i % pool.size()]).ok());
        }
        const double merge_ms = t.Millis();
        Timer te;
        auto q = merged->EstimateQuantile(0.99);
        MSKETCH_CHECK(q.ok());
        const double est_ms = te.Millis();
        std::printf("%-9s %-9s %10llu %12.3f %12.3f %12.3f\n", dataset,
                    s.name, static_cast<unsigned long long>(n),
                    merge_ms + est_ms, merge_ms, est_ms);
      }
    }
  }

  std::vector<uint64_t> group_counts = {100, 1'000, 10'000};
  if (args.Has("full")) group_counts.push_back(100'000);
  RunGroupCountSweep(group_counts);
  return 0;
}
