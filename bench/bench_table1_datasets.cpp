// Table 1: dataset characteristics. Prints the synthetic substitutes'
// statistics next to the paper's reported values.
#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/datasets.h"

namespace {

struct PaperRow {
  const char* name;
  double size, min, max, mean, stddev, skew;
};

// Values from Table 1 of the paper.
const PaperRow kPaper[] = {
    {"milan", 81e6, 2.3e-6, 7936, 36.77, 103.5, 8.585},
    {"hepmass", 10.5e6, -1.961, 4.378, 0.0163, 1.004, 0.2946},
    {"occupancy", 20e3, 412.8, 2077, 690.6, 311.2, 1.654},
    {"retail", 530e3, 1, 80995, 10.66, 156.8, 460.1},
    {"power", 2e6, 0.076, 11.12, 1.092, 1.057, 1.786},
    {"expon", 100e6, 1.2e-7, 16.30, 1.000, 0.999, 1.994},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msketch;
  bench::Args args(argc, argv);
  bench::PrintHeader(
      "Table 1: dataset characteristics (paper value / ours)");
  std::printf("%-10s %12s %12s %12s %10s %10s %8s\n", "dataset", "size",
              "min", "max", "mean", "stddev", "skew");

  const double scale = args.Scale();
  size_t idx = 0;
  for (DatasetId id : Table1Datasets()) {
    const PaperRow& p = kPaper[idx++];
    uint64_t rows = static_cast<uint64_t>(
        static_cast<double>(DefaultRows(id)) * scale);
    rows = std::min<uint64_t>(rows, args.GetU64("max-rows", 10'000'000));
    auto data = GenerateDataset(id, rows);
    auto d = DescribeData(data);
    std::printf("%-10s %12.3g %12.3g %12.4g %10.4g %10.4g %8.3g  (paper)\n",
                p.name, p.size, p.min, p.max, p.mean, p.stddev, p.skew);
    std::printf("%-10s %12.3g %12.3g %12.4g %10.4g %10.4g %8.3g  (ours)\n\n",
                DatasetName(id).c_str(), static_cast<double>(d.count), d.min,
                d.max, d.mean, d.stddev, d.skew);
  }
  return 0;
}
