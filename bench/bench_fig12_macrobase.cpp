// Figure 12: MacroBase anomalous-subgroup query runtime. Variants:
//   Baseline   - moments sketches, direct maxent estimate per group
//   +Simple    - add the range check
//   +Markov    - add Markov bounds
//   +RTT       - add RTT bounds (the full cascade)
//   Merge12a   - Merge12 sketches merged per group, direct estimates
//   Merge12b   - optimistic baseline: pre-computed above-threshold counts
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "cube/data_cube.h"
#include "datasets/datasets.h"
#include "macrobase/macrobase.h"
#include "sketches/buffer_hierarchy.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

struct Workload {
  std::vector<double> values;
  std::vector<CubeCoords> coords;
};

// Three grid ids get ~25x inflated values so the search has real
// candidates to find (the paper's query reported 19).
Workload MakeWorkload(uint64_t rows, uint64_t grids, uint64_t panes) {
  Workload w;
  w.values = GenerateDataset(DatasetId::kMilan, rows);
  w.coords.reserve(rows);
  Rng rng(0x3ACB0);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint32_t grid = static_cast<uint32_t>(rng.NextBelow(grids));
    if (grid == 7 || grid == 23 || grid == 61) w.values[i] *= 25.0;
    w.coords.push_back({grid, static_cast<uint32_t>(rng.NextBelow(10)),
                        static_cast<uint32_t>(rng.NextBelow(panes))});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  // Paper: 80M rows, 13M cells (grid x country x 4h pane). Default: 2M
  // rows over 100 x 10 x 42 = 42k max cells; ~5.8k groups at depth 2.
  const uint64_t rows =
      args.GetU64("rows", 1'000'000) * static_cast<uint64_t>(args.Scale());
  const uint64_t grids = args.GetU64("grids", 100);
  const uint64_t panes = args.GetU64("panes", 20);

  PrintHeader("Figure 12: MacroBase query runtime");
  std::printf("paper: Baseline 42.4s | +Simple 6.27 | +Markov 2.69 |\n"
              "       +RTT 2.47 | Merge12a 19.6 | Merge12b 9.3\n\n");
  Workload w = MakeWorkload(rows, grids, panes);

  // Moments-sketch cube variants.
  DataCube<MomentsSummary> cube(3, MomentsSummary(10));
  for (size_t i = 0; i < w.values.size(); ++i) {
    cube.Ingest(w.coords[i], w.values[i]);
  }
  struct Variant {
    const char* name;
    bool simple, markov, rtt;
  };
  for (const Variant& v :
       {Variant{"Baseline", false, false, false},
        Variant{"+Simple", true, false, false},
        Variant{"+Markov", true, true, false},
        Variant{"+RTT", true, true, true}}) {
    MacroBaseOptions options;
    options.include_pairs = true;
    options.cascade.use_simple_check = v.simple;
    options.cascade.use_markov = v.markov;
    options.cascade.use_rtt = v.rtt;
    Timer t;
    auto report = FindAnomalousSubgroups(cube, options);
    MSKETCH_CHECK(report.ok());
    std::printf(
        "%-10s %8.3f s   (merge %.3f, estimate %.3f; %llu groups, "
        "%zu flagged)\n",
        v.name, t.Seconds(), report->merge_seconds,
        report->estimation_seconds,
        static_cast<unsigned long long>(report->groups_examined),
        report->flagged.size());
  }

  // +Batch: the same subgroup search expressed as batched threshold
  // queries — GroupByThreshold runs the cascade's bound stages per group
  // and routes unresolved groups through the warm-start chain and solver
  // cache instead of isolated cold solves.
  {
    MomentsSummary global = cube.MergeAll();
    auto t99 = global.EstimateQuantile(0.99);
    MSKETCH_CHECK(t99.ok());
    Timer t;
    size_t flagged = 0;
    uint64_t groups = 0;
    BatchStats stats;
    auto run_grouping = [&](const std::vector<size_t>& dims) {
      BatchStats gs;
      auto results = cube.GroupByThreshold(dims, 0.7, t99.value(), {}, &gs);
      for (const auto& r : results) flagged += r.exceeds ? 1 : 0;
      groups += results.size();
      stats.MergeFrom(gs);
    };
    for (size_t d = 0; d < 3; ++d) run_grouping({d});
    for (size_t a = 0; a < 3; ++a) {
      for (size_t b = a + 1; b < 3; ++b) run_grouping({a, b});
    }
    std::printf(
        "%-10s %8.3f s   (%llu groups, %zu flagged; bounds pruned %llu, "
        "warm %llu, cache hits %llu)\n",
        "+Batch", t.Seconds(), static_cast<unsigned long long>(groups),
        flagged, static_cast<unsigned long long>(stats.CascadePruned()),
        static_cast<unsigned long long>(stats.warm_solves),
        static_cast<unsigned long long>(stats.cache_hits));
  }

  // Merge12a: same group search with Merge12 summaries + direct
  // estimates.
  {
    DataCube<BufferHierarchySketch> m12cube(3, MakeMerge12(32));
    for (size_t i = 0; i < w.values.size(); ++i) {
      m12cube.Ingest(w.coords[i], w.values[i]);
    }
    Timer t;
    BufferHierarchySketch all = m12cube.MergeAll();
    auto t99 = all.EstimateQuantile(0.99);
    MSKETCH_CHECK(t99.ok());
    size_t flagged = 0, groups = 0;
    auto check_grouping = [&](const std::vector<size_t>& dims) {
      m12cube.ForEachGroup(dims, [&](const CubeCoords&,
                                     const BufferHierarchySketch& s) {
        ++groups;
        auto q = s.EstimateQuantile(0.7);
        if (q.ok() && q.value() > t99.value()) ++flagged;
      });
    };
    for (size_t d = 0; d < 3; ++d) check_grouping({d});
    for (size_t a = 0; a < 3; ++a) {
      for (size_t b = a + 1; b < 3; ++b) check_grouping({a, b});
    }
    std::printf("%-10s %8.3f s   (%zu groups, %zu flagged)\n", "Merge12a",
                t.Seconds(), groups, flagged);
  }

  // Merge12b: the optimistic count-based baseline — per-cell counts of
  // values above t99 accumulated directly (requires a second data pass
  // and a known threshold, so it is not generally applicable).
  {
    // Threshold from the exact data (optimistic).
    auto sorted = w.values;
    std::sort(sorted.begin(), sorted.end());
    const double t99 = QuantileOfSorted(sorted, 0.99);
    Timer t;
    std::unordered_map<CubeCoords, std::pair<uint64_t, uint64_t>,
                       CubeCoordsHash>
        counts;  // coords -> (above, total)
    for (size_t i = 0; i < w.values.size(); ++i) {
      auto& c = counts[w.coords[i]];
      c.first += (w.values[i] > t99) ? 1 : 0;
      ++c.second;
    }
    // Aggregate counts per grouping; flag outlier rate >= 30%.
    size_t flagged = 0, groups = 0;
    auto check_grouping = [&](const std::vector<size_t>& dims) {
      std::unordered_map<CubeCoords, std::pair<uint64_t, uint64_t>,
                         CubeCoordsHash>
          agg;
      for (const auto& [coords, c] : counts) {
        CubeCoords key;
        for (size_t d : dims) key.push_back(coords[d]);
        auto& a = agg[key];
        a.first += c.first;
        a.second += c.second;
      }
      for (const auto& [key, a] : agg) {
        ++groups;
        if (a.second > 0 &&
            static_cast<double>(a.first) >=
                0.3 * static_cast<double>(a.second)) {
          ++flagged;
        }
      }
    };
    for (size_t d = 0; d < 3; ++d) check_grouping({d});
    for (size_t a = 0; a < 3; ++a) {
      for (size_t b = a + 1; b < 3; ++b) check_grouping({a, b});
    }
    std::printf("%-10s %8.3f s   (%zu groups, %zu flagged)\n", "Merge12b",
                t.Seconds(), groups, flagged);
  }
  return 0;
}
