// Figure 7: mean quantile error vs summary size across the six evaluation
// datasets, pointwise accumulation. The headline claim: the moments
// sketch reaches eps_avg <= 0.015 in under 200 bytes on every dataset,
// and EW-Hist collapses on the long-tailed ones.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t default_rows = args.GetU64("rows", 300'000) *
                                static_cast<uint64_t>(args.Scale());

  PrintHeader("Figure 7: mean error vs summary size (6 datasets)");
  std::printf("%-10s %-10s %8s %9s %10s\n", "dataset", "summary", "param",
              "bytes", "eps_avg");

  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"M-Sketch", {2, 4, 6, 10, 15}},
      {"Merge12", {8, 16, 32, 64, 256}},
      {"RandomW", {8, 16, 32, 64, 256}},
      {"GK", {10, 20, 60, 200}},
      {"T-Digest", {10, 50, 100, 400}},
      {"Sampling", {250, 1000, 4000}},
      {"S-Hist", {10, 100, 1000}},
      {"EW-Hist", {15, 100, 1000}},
  };

  for (DatasetId id : Table1Datasets()) {
    const uint64_t rows = std::min<uint64_t>(default_rows, DefaultRows(id));
    auto data = GenerateDataset(id, rows);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const bool round = id == DatasetId::kRetail;
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        auto summary = MakeAnySummary(sweep.summary, param);
        MSKETCH_CHECK(summary.ok());
        for (double x : data) summary.value()->Accumulate(x);
        const double err = MeanError(*summary.value(), sorted, round);
        std::printf("%-10s %-10s %8g %9zu %10.5f\n",
                    DatasetName(id).c_str(), sweep.summary, param,
                    summary.value()->SizeBytes(), err);
      }
    }
  }
  return 0;
}
