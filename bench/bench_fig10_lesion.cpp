// Figure 10: quantile-estimator lesion study. Eight estimators consume
// identical k=10 moments sketches — log moments only on milan, standard
// moments only on hepmass, as in the paper — and are scored on mean error
// and estimation time. Maxent-based estimators should be >= 5x more
// accurate; "opt" should be orders of magnitude faster than the
// discretized/generic solvers.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/estimators/estimators.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 300'000);

  PrintHeader("Figure 10: estimator lesion study (k = 10)");
  std::printf(
      "paper (milan):   err%%: gaussian 5.02 mnat 5.88 svd 3.51 cvx-min 2.69"
      " cvx-maxent 1.73\n                 newton/bfgs/opt 0.40 | t_est ms:"
      " opt 1.62, cvx-maxent 301, newton 83\n\n");
  std::printf("%-9s %-11s %10s %12s\n", "dataset", "estimator", "err(%)",
              "t_est(ms)");

  struct Case {
    const char* dataset;
    bool log_domain;
  };
  for (const Case& c : {Case{"milan", true}, Case{"hepmass", false}}) {
    auto id = DatasetFromName(c.dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), rows);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    MomentsSketch sketch(10);
    for (double x : data) sketch.Accumulate(x);
    auto phis = DefaultPhiGrid();

    LesionOptions options;
    options.use_log_domain = c.log_domain;
    options.grid_points = static_cast<int>(args.GetU64("grid", 1000));
    options.lp_grid_points = static_cast<int>(args.GetU64("lp-grid", 256));

    for (const auto& name : LesionEstimatorNames()) {
      auto est = MakeLesionEstimator(name, options);
      MSKETCH_CHECK(est.ok());
      // Warm once (validates), then time a few repetitions.
      auto q = est.value()->EstimateQuantiles(sketch, phis);
      if (!q.ok()) {
        std::printf("%-9s %-11s %10s   %s\n", c.dataset, name.c_str(), "-",
                    q.status().ToString().c_str());
        continue;
      }
      const int reps = (name == "cvx-maxent" || name == "cvx-min") ? 2 : 5;
      Timer t;
      for (int r = 0; r < reps; ++r) {
        auto qq = est.value()->EstimateQuantiles(sketch, phis);
        MSKETCH_CHECK(qq.ok());
      }
      const double ms = t.Millis() / reps;
      const double err =
          MeanQuantileError(sorted, q.value(), phis) * 100.0;
      std::printf("%-9s %-11s %10.3f %12.3f\n", c.dataset, name.c_str(),
                  err, ms);
    }
    std::printf("\n");
  }
  return 0;
}
