// Figure 18 (Appendix D.1): maxent accuracy on Gamma(ks, 1) distributions
// of varying shape (skew = 2/sqrt(ks)) as the sketch order grows. Log
// moments keep the estimate accurate across three orders of magnitude of
// shape parameter.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 500'000);

  PrintHeader("Figure 18: accuracy vs Gamma shape (order sweep)");
  std::printf("%-8s %6s %12s\n", "ks", "k", "eps_avg");
  auto phis = DefaultPhiGrid();

  for (double ks : {0.1, 1.0, 10.0}) {
    Rng rng(static_cast<uint64_t>(ks * 100) + 5);
    std::vector<double> data;
    data.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      data.push_back(rng.NextGamma(ks, 1.0));
    }
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (int k = 2; k <= 14; k += 2) {
      MomentsSketch sketch(k);
      for (double x : data) sketch.Accumulate(x);
      auto est = EstimateQuantiles(sketch, phis);
      if (est.ok()) {
        std::printf("%-8g %6d %12.6f\n", ks, k,
                    MeanQuantileError(sorted, est.value(), phis));
      } else {
        std::printf("%-8g %6d %12s (%s)\n", ks, k, "-",
                    est.status().ToString().c_str());
      }
    }
  }
  return 0;
}
