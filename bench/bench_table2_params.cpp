// Table 2: summary size parameters sufficient for eps_avg <= 0.01 on
// milan and hepmass, found by sweeping each summary's parameter (the
// paper's methodology), with the space used at that setting.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibrate.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 300'000) *
                        static_cast<uint64_t>(args.Scale());

  PrintHeader("Table 2: summary parameters for eps_avg <= 0.01");
  std::printf("paper reference (milan):   M-Sketch k=10 (200B), Merge12 k=32"
              " (5920B),\n  RandomW eps=1/40 (3200B), GK eps=1/60 (720B),"
              " T-Digest d=5.0 (769B),\n  Sampling 1000 (8010B), S-Hist/EW-"
              "Hist: target unreachable, timed at 100 bins\n\n");

  for (const char* name : {"milan", "hepmass"}) {
    auto id = DatasetFromName(name);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), rows);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());

    std::printf("--- %s (%llu rows) ---\n", name,
                static_cast<unsigned long long>(rows));
    std::printf("%-10s %10s %10s %10s %s\n", "summary", "param", "bytes",
                "eps_avg", "achieved");
    for (const auto& sweep : DefaultSweeps()) {
      Timer t;
      Calibration c = CalibrateOne(sweep, data, sorted, 0.01,
                                   /*round_to_int=*/false);
      std::printf("%-10s %10g %10zu %10.4f %-3s   (%.1fs)\n",
                  c.summary.c_str(), c.param, c.bytes, c.err,
                  c.achieved ? "yes" : "NO", t.Seconds());
    }
    std::printf("\n");
  }
  return 0;
}
