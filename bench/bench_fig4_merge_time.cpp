// Figure 4: per-merge latency vs summary size on milan, hepmass, and
// exponential (google-benchmark). Cells of 200 rows are pre-built; the
// benchmark measures merging them into a running aggregate, which is the
// inner loop of every cube query.
//
// Also runs a "merge-path" section first (plain timers, no
// google-benchmark): the columnar filtered-merge kernels — exact
// MergeWhere baseline vs the planned QueryWhere without and with the
// rollup index — across ~10% / ~50% / ~90% selectivity filters at
// k = 10, plus the full-cube scalar-vs-SIMD range merge. Results land in
// BENCH_fig4.json (median/p95 per row) so the perf trajectory is
// tracked across PRs; CI runs `--merge-only` and uploads the JSON.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "cube/cube_store.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

struct Config {
  const char* dataset;
  const char* summary;
  double param;
};

constexpr size_t kCellSize = 200;
constexpr size_t kNumCells = 1000;

void BM_Merge(benchmark::State& state, Config cfg) {
  auto id = DatasetFromName(cfg.dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kCellSize * kNumCells);
  auto prototype = MakeAnySummary(cfg.summary, cfg.param);
  MSKETCH_CHECK(prototype.ok());
  auto cells = BuildCells(data, kCellSize, *prototype.value());

  auto accumulator = prototype.value()->CloneEmpty();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    MSKETCH_CHECK(accumulator->Merge(*cells[i]).ok());
    if (++i == cells.size()) {
      i = 0;
      state.PauseTiming();
      bytes = std::max(bytes, accumulator->SizeBytes());
      accumulator = prototype.value()->CloneEmpty();
      state.ResumeTiming();
    }
  }
  bytes = std::max(bytes, accumulator->SizeBytes());
  state.counters["bytes"] = static_cast<double>(bytes);
}

void RegisterAll() {
  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"M-Sketch", {4, 10, 15}},  {"Merge12", {16, 64, 256}},
      {"RandomW", {16, 64, 256}}, {"GK", {20, 60}},
      {"T-Digest", {20, 100, 400}}, {"Sampling", {250, 1000, 8000}},
      {"S-Hist", {10, 100, 1000}},  {"EW-Hist", {15, 100, 1000}},
  };
  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        std::string name = std::string("merge/") + dataset + "/" +
                           sweep.summary + "/" + std::to_string(
                                                     static_cast<int>(param));
        benchmark::RegisterBenchmark(
            name.c_str(), BM_Merge, Config{dataset, sweep.summary, param})
            ->MinTime(0.05);
      }
    }
  }
}

// ------------------------------------------------- merge-path section

// Cube with controllable single-dimension selectivities:
//   dim 0: cell_index % 10            -> each value matches ~10% of cells
//   dim 1: 1 when cell_index % 10 == 0, else 0
//                                     -> value 0 ~90%, value 1 ~10%
//   dim 2: 0 when cell_index % 20 == 0, else 1
//                                     -> value 1 ~95%, value 0 ~5%
//   dim 3: cell_index                 -> one cell per value
CubeStore BuildMergePathStore(size_t num_cells, int k) {
  CubeStore store(4, k);
  Rng rng(421);
  for (size_t c = 0; c < num_cells; ++c) {
    const CubeCoords coords = {static_cast<uint32_t>(c % 10),
                               static_cast<uint32_t>(c % 10 == 0 ? 1 : 0),
                               static_cast<uint32_t>(c % 20 == 0 ? 0 : 1),
                               static_cast<uint32_t>(c)};
    store.Ingest(coords, rng.NextLognormal(0.0, 0.7));
    store.Ingest(coords, rng.NextLognormal(0.0, 0.7));
  }
  return store;
}

void RunMergePathSection(const Args& args) {
  const int k = 10;
  const size_t num_cells =
      static_cast<size_t>(args.GetU64("cells", 50'000) * args.Scale());
  const int reps = static_cast<int>(args.GetU64("reps", 15));
  PrintHeader("merge-path: filtered columnar merge at k = 10, " +
              std::to_string(num_cells) + " cells");
  CubeStore store = BuildMergePathStore(num_cells, k);
  JsonReport report("fig4");
  const double n = static_cast<double>(store.num_cells());

  // Full-cube merge: exact scalar kernel vs the SIMD column reduction.
  std::printf("%-28s %-12s %10s %10s %14s\n", "query", "plan", "med(ms)",
              "p95(ms)", "cells/s");
  auto add_row = [&](const std::string& section, const std::string& name,
                     const char* plan, double matching,
                     const std::vector<double>& ms,
                     std::vector<std::pair<std::string, double>> extra = {}) {
    const double med = MedianOf(ms);
    const double rate = med > 0.0 ? matching / (med * 1e-3) : 0.0;
    extra.emplace_back("cells_per_s", rate);
    extra.emplace_back("matching_cells", matching);
    report.Add(section, name, ms, extra);
    std::printf("%-28s %-12s %10.3f %10.3f %14.3e\n", name.c_str(), plan,
                med, PercentileOf(ms, 0.95), rate);
  };

  {
    MomentsSketch sink(k);
    auto scalar_ms = TimeReps(reps, [&] {
      MomentsSketch out(k);
      MSKETCH_CHECK(out.MergeFlatRange(store.Columns(), 0,
                                       store.num_cells()).ok());
      sink = std::move(out);
    });
    add_row("full-merge", "MergeFlatRange(scalar)", "-", n, scalar_ms);
    auto simd_ms = TimeReps(reps, [&] {
      MomentsSketch out(k);
      MSKETCH_CHECK(out.MergeFlatRangeFast(store.Columns(), 0,
                                           store.num_cells()).ok());
      sink = std::move(out);
    });
    add_row("full-merge", "MergeFlatRangeFast(simd)", "-", n, simd_ms);
  }

  // Filtered merges across selectivities; exact baseline vs planned
  // query without a rollup vs with a fresh rollup.
  struct FilterCase {
    const char* name;
    CubeFilter filter;
  };
  const std::vector<FilterCase> cases = {
      {"sel~10% (d0=3)", {3, kAnyValue, kAnyValue, kAnyValue}},
      {"sel~10% (d1=1)", {kAnyValue, 1, kAnyValue, kAnyValue}},
      {"sel~90% (d1=0)", {kAnyValue, 0, kAnyValue, kAnyValue}},
      {"sel~86% (d1=0,d2=1)", {kAnyValue, 0, 1, kAnyValue}},
      {"sel~9% (d0=3,d1=0)", {3, 0, kAnyValue, kAnyValue}},
  };
  MomentsSketch sink(k);
  for (const FilterCase& c : cases) {
    CubeStore::QueryStats stats;
    store.MergeWhereScan(c.filter, &stats);
    const double m = static_cast<double>(stats.merges);
    auto base_ms = TimeReps(
        reps, [&] { sink = store.MergeWhere(c.filter); });
    add_row(std::string("filtered/") + c.name, "MergeWhere(exact)",
            "intersect", m, base_ms);
    auto plan_ms = TimeReps(
        reps, [&] { sink = store.QueryWhere(c.filter, &stats); });
    add_row(std::string("filtered/") + c.name, "QueryWhere(no rollup)",
            QueryPlanName(stats.plan), m, plan_ms);
  }

  {
    Timer t;
    store.BuildRollup(RollupOptions{});
    const double build_ms = t.Millis();
    std::printf("rollup build: %.2f ms, %zu nodes, %.2f MB\n", build_ms,
                store.rollup()->num_nodes(),
                static_cast<double>(store.rollup()->SizeBytes()) / 1e6);
    report.Add("rollup-build", "BuildRollup", {build_ms},
               {{"nodes", static_cast<double>(store.rollup()->num_nodes())},
                {"bytes", static_cast<double>(store.rollup()->SizeBytes())}});
  }
  for (const FilterCase& c : cases) {
    CubeStore::QueryStats stats;
    store.QueryWhere(c.filter, &stats);
    const double m = static_cast<double>(stats.merges);
    auto rollup_ms = TimeReps(
        reps, [&] { sink = store.QueryWhere(c.filter, &stats); });
    add_row(std::string("filtered/") + c.name, "QueryWhere(rollup)",
            QueryPlanName(stats.plan), m, rollup_ms,
            {{"span_merges", static_cast<double>(stats.span_merges)},
             {"residual_merges", static_cast<double>(stats.residual_merges)},
             {"subtract_merges",
              static_cast<double>(stats.subtract_merges)}});
  }
  const PlanCounters& pc = store.plan_counters();
  std::printf(
      "plan counters: scan=%llu intersect=%llu rollup=%llu "
      "complement=%llu\n\n",
      static_cast<unsigned long long>(pc.scan.load()),
      static_cast<unsigned long long>(pc.intersect.load()),
      static_cast<unsigned long long>(pc.rollup.load()),
      static_cast<unsigned long long>(pc.complement.load()));
  (void)sink;
  report.Write();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  RunMergePathSection(args);
  if (args.Has("merge-only")) return 0;
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  std::printf(
      "Figure 4: per-merge latency (paper: M-Sketch < 50ns across sizes;\n"
      "other summaries 16-50x slower at comparable accuracy)\n");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
