// Figure 4: per-merge latency vs summary size on milan, hepmass, and
// exponential (google-benchmark). Cells of 200 rows are pre-built; the
// benchmark measures merging them into a running aggregate, which is the
// inner loop of every cube query.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

struct Config {
  const char* dataset;
  const char* summary;
  double param;
};

constexpr size_t kCellSize = 200;
constexpr size_t kNumCells = 1000;

void BM_Merge(benchmark::State& state, Config cfg) {
  auto id = DatasetFromName(cfg.dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), kCellSize * kNumCells);
  auto prototype = MakeAnySummary(cfg.summary, cfg.param);
  MSKETCH_CHECK(prototype.ok());
  auto cells = BuildCells(data, kCellSize, *prototype.value());

  auto accumulator = prototype.value()->CloneEmpty();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    MSKETCH_CHECK(accumulator->Merge(*cells[i]).ok());
    if (++i == cells.size()) {
      i = 0;
      state.PauseTiming();
      bytes = std::max(bytes, accumulator->SizeBytes());
      accumulator = prototype.value()->CloneEmpty();
      state.ResumeTiming();
    }
  }
  bytes = std::max(bytes, accumulator->SizeBytes());
  state.counters["bytes"] = static_cast<double>(bytes);
}

void RegisterAll() {
  struct Sweep {
    const char* summary;
    std::vector<double> params;
  };
  const std::vector<Sweep> sweeps = {
      {"M-Sketch", {4, 10, 15}},  {"Merge12", {16, 64, 256}},
      {"RandomW", {16, 64, 256}}, {"GK", {20, 60}},
      {"T-Digest", {20, 100, 400}}, {"Sampling", {250, 1000, 8000}},
      {"S-Hist", {10, 100, 1000}},  {"EW-Hist", {15, 100, 1000}},
  };
  for (const char* dataset : {"milan", "hepmass", "expon"}) {
    for (const auto& sweep : sweeps) {
      for (double param : sweep.params) {
        std::string name = std::string("merge/") + dataset + "/" +
                           sweep.summary + "/" + std::to_string(
                                                     static_cast<int>(param));
        benchmark::RegisterBenchmark(
            name.c_str(), BM_Merge, Config{dataset, sweep.summary, param})
            ->MinTime(0.05);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  std::printf(
      "Figure 4: per-merge latency (paper: M-Sketch < 50ns across sizes;\n"
      "other summaries 16-50x slower at comparable accuracy)\n");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
