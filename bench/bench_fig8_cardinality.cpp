// Figure 8: maximum entropy accuracy vs dataset cardinality. Data is n
// distinct uniformly spaced values in [-1, 1]; the maxent estimate
// degrades as the dataset becomes discrete and the solver fails to
// converge below ~5 distinct values (Section 6.2.3).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 100'000);

  PrintHeader("Figure 8: maxent accuracy vs cardinality");
  std::printf("paper: error rises below ~1e2 distinct values; solver fails\n"
              "to converge for < 5 distinct values\n\n");
  std::printf("%-12s %-10s %10s %12s\n", "cardinality", "summary",
              "eps_avg", "note");

  for (uint64_t card : {2, 3, 4, 5, 8, 16, 32, 64, 128, 256, 1024}) {
    // n distinct uniformly spaced points in [-1, 1], uniform frequencies.
    Rng rng(card * 7 + 1);
    std::vector<double> data;
    data.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      const uint64_t j = rng.NextBelow(card);
      const double x =
          (card == 1) ? 0.0
                      : -1.0 + 2.0 * static_cast<double>(j) /
                                   static_cast<double>(card - 1);
      data.push_back(x);
    }
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());

    // M-Sketch via the raw solver so convergence failures are visible.
    {
      MomentsSketch sketch(10);
      for (double x : data) sketch.Accumulate(x);
      auto phis = DefaultPhiGrid();
      auto est = EstimateQuantiles(sketch, phis);
      if (est.ok()) {
        const double err = MeanQuantileError(sorted, est.value(), phis);
        std::printf("%-12llu %-10s %10.4f\n",
                    static_cast<unsigned long long>(card), "M-Sketch:10",
                    err);
      } else {
        std::printf("%-12llu %-10s %10s   %s\n",
                    static_cast<unsigned long long>(card), "M-Sketch:10",
                    "-", est.status().ToString().c_str());
      }
    }
    // Comparison summaries are unaffected by discreteness.
    struct Entry {
      const char* name;
      double param;
    };
    for (const Entry& e :
         {Entry{"Merge12", 32}, Entry{"GK", 50}, Entry{"RandomW", 40}}) {
      auto s = MakeAnySummary(e.name, e.param);
      MSKETCH_CHECK(s.ok());
      for (double x : data) s.value()->Accumulate(x);
      std::printf("%-12llu %s:%-6g %8.4f\n",
                  static_cast<unsigned long long>(card), e.name, e.param,
                  MeanError(*s.value(), sorted));
    }
  }
  return 0;
}
