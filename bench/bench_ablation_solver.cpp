// Ablation bench for the solver design choices DESIGN.md calls out:
//   (1) Chebyshev basis vs raw monomials (conditioning, Section 4.3.1)
//   (2) condition-number-driven (k1,k2) selection vs fixed budgets
//   (3) Clenshaw-Curtis grid resolution vs accuracy/time
//   (4) primary-domain choice (x vs log) on long-tailed data
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/chebyshev_moments.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"
#include "numerics/eigen.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

// (1) Conditioning: Hessian condition number at the uniform start in the
// monomial basis vs the Chebyshev basis, as k grows. This is the reason
// the solver never touches raw powers (paper: kappa ~ 3e31 at k = 8).
void BasisConditioning() {
  std::printf("(1) uniform-Hessian condition number, monomial vs Chebyshev\n");
  std::printf("    %-4s %14s %14s\n", "k", "monomial", "chebyshev");
  for (int k : {2, 4, 6, 8, 10, 12}) {
    // Gram matrices over u in [-1,1] with uniform density 1/2:
    // monomial: H_ij = 1/2 int u^(i+j) du ; chebyshev: via T_i T_j.
    Matrix mono(k + 1, k + 1), cheb(k + 1, k + 1);
    for (int i = 0; i <= k; ++i) {
      for (int j = 0; j <= k; ++j) {
        const int p = i + j;
        mono(i, j) = (p % 2 == 0) ? 1.0 / (p + 1) : 0.0;
        // int T_i T_j = 1/2 (int T_{i+j} + int T_|i-j|).
        auto intT = [](int n) {
          return (n % 2 == 0) ? 2.0 / (1.0 - n * n) : 0.0;
        };
        cheb(i, j) = 0.25 * (intT(i + j) + intT(std::abs(i - j)));
      }
    }
    std::printf("    %-4d %14.3e %14.3e\n", k,
                SymmetricConditionNumber(mono),
                SymmetricConditionNumber(cheb));
  }
}

// (2) + (3) + (4): accuracy/time on milan and hepmass as we knock out
// individual design choices.
void SolverAblations(const char* dataset, uint64_t rows) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), rows);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  MomentsSketch sketch(10);
  for (double x : data) sketch.Accumulate(x);
  auto phis = DefaultPhiGrid();

  struct Variant {
    const char* name;
    MaxEntOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full solver", MaxEntOptions{}});
  {
    MaxEntOptions o;  // no conditioning guard: accept everything
    o.kappa_max = 1e300;
    variants.push_back({"no kappa guard", o});
  }
  {
    MaxEntOptions o;  // aggressive conditioning: tiny budget
    o.kappa_max = 100.0;
    variants.push_back({"kappa_max=100", o});
  }
  {
    MaxEntOptions o;  // coarse fixed grid
    o.min_grid = 32;
    o.max_grid = 32;
    variants.push_back({"grid=32 fixed", o});
  }
  {
    MaxEntOptions o;  // fine fixed grid
    o.min_grid = 1024;
    o.max_grid = 1024;
    variants.push_back({"grid=1024 fixed", o});
  }
  {
    MaxEntOptions o;  // standard moments only (x-primary forced)
    o.use_log_moments = false;
    variants.push_back({"std moments only", o});
  }
  {
    MaxEntOptions o;  // log moments only
    o.use_std_moments = false;
    variants.push_back({"log moments only", o});
  }

  std::printf("\n(2-4) solver variants on %s (k=10)\n", dataset);
  std::printf("    %-18s %10s %12s %8s %8s\n", "variant", "eps_avg",
              "t_est(ms)", "k1", "k2");
  for (const auto& v : variants) {
    Timer t;
    auto dist = SolveMaxEnt(sketch, v.options);
    const double ms = t.Millis();
    if (!dist.ok()) {
      std::printf("    %-18s %10s %12.3f   (%s)\n", v.name, "-", ms,
                  dist.status().ToString().c_str());
      continue;
    }
    auto est = dist->Quantiles(phis);
    const double err = MeanQuantileError(sorted, est, phis);
    std::printf("    %-18s %10.5f %12.3f %8d %8d\n", v.name, err, ms,
                dist->diagnostics().k1, dist->diagnostics().k2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 200'000);
  PrintHeader("Ablation: solver design choices (DESIGN.md section 4)");
  BasisConditioning();
  SolverAblations("milan", rows);
  SolverAblations("hepmass", rows);
  return 0;
}
