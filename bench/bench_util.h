// Shared helpers for the per-figure benchmark binaries.
//
// Every bench prints the same rows/series as the corresponding paper
// table or figure. Defaults are scaled ~10x down from the paper so the
// whole suite finishes in minutes; pass --scale=N (N x default rows) or
// --full to grow workloads.
#ifndef MSKETCH_BENCH_BENCH_UTIL_H_
#define MSKETCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/moments_summary.h"
#include "numerics/stats.h"
#include "sketches/quantile_summary.h"
#include "sketches/summary_factory.h"

namespace msketch {
namespace bench {

// ------------------------------------------------------------ CLI flags

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool Has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == "--" + flag) return true;
      if (a.rfind("--" + flag + "=", 0) == 0) return true;
    }
    return false;
  }

  double GetDouble(const std::string& flag, double fallback) const {
    const std::string prefix = "--" + flag + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return std::stod(a.substr(prefix.size()));
    }
    return fallback;
  }

  uint64_t GetU64(const std::string& flag, uint64_t fallback) const {
    return static_cast<uint64_t>(
        GetDouble(flag, static_cast<double>(fallback)));
  }

  /// Workload multiplier: --full = 10x, --scale=N = Nx.
  double Scale() const {
    if (Has("full")) return 10.0;
    return GetDouble("scale", 1.0);
  }

 private:
  std::vector<std::string> args_;
};

// --------------------------------------------------------------- timing

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------- summaries incl. ours

/// MakeSummary extended with "M-Sketch" (param: order k).
inline Result<std::unique_ptr<QuantileSummary>> MakeAnySummary(
    const std::string& name, double param) {
  if (name == "M-Sketch") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<MomentsSummary>(
        MomentsSummary(static_cast<int>(param)), name));
  }
  return MakeSummary(name, param);
}

/// Pre-aggregates `data` into cells of `cell_size` rows each.
inline std::vector<std::unique_ptr<QuantileSummary>> BuildCells(
    const std::vector<double>& data, size_t cell_size,
    const QuantileSummary& prototype) {
  std::vector<std::unique_ptr<QuantileSummary>> cells;
  cells.reserve(data.size() / cell_size + 1);
  for (size_t start = 0; start < data.size(); start += cell_size) {
    auto cell = prototype.CloneEmpty();
    const size_t end = std::min(start + cell_size, data.size());
    for (size_t i = start; i < end; ++i) cell->Accumulate(data[i]);
    cells.push_back(std::move(cell));
  }
  return cells;
}

/// Mean quantile error of a built summary over the paper's 21-phi grid.
/// `sorted` must be the sorted source data. Integer-valued datasets pass
/// round_to_int (the paper rounds retail estimates).
inline double MeanError(const QuantileSummary& summary,
                        const std::vector<double>& sorted,
                        bool round_to_int = false) {
  auto phis = DefaultPhiGrid();
  std::vector<double> ests;
  ests.reserve(phis.size());
  for (double phi : phis) {
    auto q = summary.EstimateQuantile(phi);
    double v = q.ok() ? q.value() : sorted.front();
    if (round_to_int) v = std::round(v);
    ests.push_back(v);
  }
  return MeanQuantileError(sorted, ests, phis);
}

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

// ------------------------------------------------- machine-readable output
//
// Each figure bench can emit a BENCH_<fig>.json next to the binary so
// the perf trajectory is trackable across PRs (CI uploads them as
// artifacts). Schema: {"bench": "<fig>", "sections": [{"section": ...,
// "name": ..., "median_ms": ..., "p95_ms": ..., "extra": {...}}]}.

/// p-th percentile (0 <= p <= 1) by nearest-rank on a copy of `samples`.
inline double PercentileOf(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

inline double MedianOf(const std::vector<double>& samples) {
  return PercentileOf(samples, 0.5);
}

/// Runs `fn` `reps` times and returns per-rep milliseconds.
template <typename Fn>
std::vector<double> TimeReps(int reps, Fn&& fn) {
  std::vector<double> ms;
  ms.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    ms.push_back(t.Millis());
  }
  return ms;
}

/// Collects named timing rows and writes them as BENCH_<fig>.json on
/// destruction (or an explicit Write). Keys and numeric values only —
/// enough for a trend dashboard, simple enough to have no dependencies.
class JsonReport {
 public:
  explicit JsonReport(const std::string& fig) : fig_(fig) {}
  ~JsonReport() { Write(); }

  /// Adds one row; `extra` carries counters (throughput, plan counts...)
  /// and `flags` carries true/false markers (emitted as JSON booleans).
  void Add(const std::string& section, const std::string& name,
           const std::vector<double>& samples_ms,
           const std::vector<std::pair<std::string, double>>& extra = {},
           const std::vector<std::pair<std::string, bool>>& flags = {}) {
    Row row;
    row.section = section;
    row.name = name;
    row.median_ms = MedianOf(samples_ms);
    row.p95_ms = PercentileOf(samples_ms, 0.95);
    row.extra = extra;
    row.flags = flags;
    rows_.push_back(std::move(row));
  }

  void Write() {
    if (written_ || rows_.empty()) return;
    written_ = true;
    const std::string path = "BENCH_" + fig_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"sections\": [\n",
                 fig_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"section\": \"%s\", \"name\": \"%s\", "
                   "\"median_ms\": %.6g, \"p95_ms\": %.6g",
                   r.section.c_str(), r.name.c_str(), r.median_ms, r.p95_ms);
      for (const auto& [key, value] : r.extra) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      for (const auto& [key, value] : r.flags) {
        std::fprintf(f, ", \"%s\": %s", key.c_str(),
                     value ? "true" : "false");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string section;
    std::string name;
    double median_ms = 0.0;
    double p95_ms = 0.0;
    std::vector<std::pair<std::string, double>> extra;
    std::vector<std::pair<std::string, bool>> flags;
  };
  std::string fig_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace msketch

#endif  // MSKETCH_BENCH_BENCH_UTIL_H_
