// Shared helpers for the per-figure benchmark binaries.
//
// Every bench prints the same rows/series as the corresponding paper
// table or figure. Defaults are scaled ~10x down from the paper so the
// whole suite finishes in minutes; pass --scale=N (N x default rows) or
// --full to grow workloads.
#ifndef MSKETCH_BENCH_BENCH_UTIL_H_
#define MSKETCH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/moments_summary.h"
#include "numerics/stats.h"
#include "sketches/quantile_summary.h"
#include "sketches/summary_factory.h"

namespace msketch {
namespace bench {

// ------------------------------------------------------------ CLI flags

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool Has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == "--" + flag) return true;
      if (a.rfind("--" + flag + "=", 0) == 0) return true;
    }
    return false;
  }

  double GetDouble(const std::string& flag, double fallback) const {
    const std::string prefix = "--" + flag + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return std::stod(a.substr(prefix.size()));
    }
    return fallback;
  }

  uint64_t GetU64(const std::string& flag, uint64_t fallback) const {
    return static_cast<uint64_t>(
        GetDouble(flag, static_cast<double>(fallback)));
  }

  /// Workload multiplier: --full = 10x, --scale=N = Nx.
  double Scale() const {
    if (Has("full")) return 10.0;
    return GetDouble("scale", 1.0);
  }

 private:
  std::vector<std::string> args_;
};

// --------------------------------------------------------------- timing

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------- summaries incl. ours

/// MakeSummary extended with "M-Sketch" (param: order k).
inline Result<std::unique_ptr<QuantileSummary>> MakeAnySummary(
    const std::string& name, double param) {
  if (name == "M-Sketch") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<MomentsSummary>(
        MomentsSummary(static_cast<int>(param)), name));
  }
  return MakeSummary(name, param);
}

/// Pre-aggregates `data` into cells of `cell_size` rows each.
inline std::vector<std::unique_ptr<QuantileSummary>> BuildCells(
    const std::vector<double>& data, size_t cell_size,
    const QuantileSummary& prototype) {
  std::vector<std::unique_ptr<QuantileSummary>> cells;
  cells.reserve(data.size() / cell_size + 1);
  for (size_t start = 0; start < data.size(); start += cell_size) {
    auto cell = prototype.CloneEmpty();
    const size_t end = std::min(start + cell_size, data.size());
    for (size_t i = start; i < end; ++i) cell->Accumulate(data[i]);
    cells.push_back(std::move(cell));
  }
  return cells;
}

/// Mean quantile error of a built summary over the paper's 21-phi grid.
/// `sorted` must be the sorted source data. Integer-valued datasets pass
/// round_to_int (the paper rounds retail estimates).
inline double MeanError(const QuantileSummary& summary,
                        const std::vector<double>& sorted,
                        bool round_to_int = false) {
  auto phis = DefaultPhiGrid();
  std::vector<double> ests;
  ests.reserve(phis.size());
  for (double phi : phis) {
    auto q = summary.EstimateQuantile(phi);
    double v = q.ok() ? q.value() : sorted.front();
    if (round_to_int) v = std::round(v);
    ests.push_back(v);
  }
  return MeanQuantileError(sorted, ests, phis);
}

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace msketch

#endif  // MSKETCH_BENCH_BENCH_UTIL_H_
