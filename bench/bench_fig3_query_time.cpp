// Figure 3: total query time (merge all pre-aggregated cells + estimate a
// quantile) for summaries instantiated at the smallest size achieving
// eps_avg <= 0.01 (Table 2 parameters). Also prints the paper's sorting /
// streaming baselines for context.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibrate.h"
#include "common/rng.h"
#include "cube/cube_store.h"
#include "cube/dim_index.h"
#include "datasets/datasets.h"

namespace {

// Pre-galloping intersection (binary search from scratch per probe id),
// kept local as the microbench baseline.
std::vector<uint32_t> IntersectBinaryProbe(
    const std::vector<uint32_t>& probe, const std::vector<uint32_t>& other) {
  std::vector<uint32_t> out;
  out.reserve(probe.size());
  for (uint32_t id : probe) {
    if (std::binary_search(other.begin(), other.end(), id)) out.push_back(id);
  }
  return out;
}

// Postings intersection microbench: a small probe list against a larger
// list at increasing skew. Galloping cursors win big at high skew and
// must not lose at low skew (where the cursors run linear).
void RunIntersectionSection(msketch::bench::JsonReport* report,
                            double scale) {
  using namespace msketch;
  using namespace msketch::bench;
  PrintHeader("intersection microbench: binary-probe vs galloping cursors");
  std::printf("%-24s %10s %12s %12s %8s\n", "lists", "matches", "binary(ms)",
              "gallop(ms)", "ratio");
  const size_t probe_len = static_cast<size_t>(20'000 * scale);
  Rng rng(515);
  for (size_t skew : {1, 8, 64, 512}) {
    // Probe ids stride through a universe `skew` times denser.
    const size_t other_len = probe_len * skew;
    std::vector<uint32_t> probe, other;
    probe.reserve(probe_len);
    other.reserve(other_len);
    for (size_t i = 0; i < other_len; ++i) {
      other.push_back(static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < probe_len; ++i) {
      // ~half the probe ids hit `other`, the rest fall past its end.
      probe.push_back(static_cast<uint32_t>(
          rng.NextBelow(2) == 0 ? i * skew : other_len + i));
    }
    std::sort(probe.begin(), probe.end());
    probe.erase(std::unique(probe.begin(), probe.end()), probe.end());

    std::vector<uint32_t> out_a, out_b;
    auto binary_ms =
        TimeReps(11, [&] { out_a = IntersectBinaryProbe(probe, other); });
    auto gallop_ms =
        TimeReps(11, [&] { out_b = IntersectPostings({&probe, &other}); });
    MSKETCH_CHECK(out_a == out_b);
    const double med_b = MedianOf(binary_ms), med_g = MedianOf(gallop_ms);
    char name[64];
    std::snprintf(name, sizeof(name), "%zu vs %zu (skew %zux)", probe.size(),
                  other.size(), skew);
    std::printf("%-24s %10zu %12.3f %12.3f %8.2f\n", name, out_a.size(),
                med_b, med_g, med_g > 0 ? med_b / med_g : 0.0);
    report->Add("intersect", name, gallop_ms,
                {{"binary_median_ms", med_b},
                 {"matches", static_cast<double>(out_a.size())}});
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  JsonReport report("fig3");
  // Paper: milan 81M rows -> 406k cells of 200. Default here: 2M rows ->
  // 10k cells (the merge-time ordering is row-count independent).
  const uint64_t milan_rows = args.GetU64("rows", 2'000'000) *
                              static_cast<uint64_t>(args.Scale());
  const uint64_t hepmass_rows = milan_rows / 2;
  const size_t cell_size = args.GetU64("cell-size", 200);
  const uint64_t calib_rows = std::min<uint64_t>(milan_rows, 300'000);

  PrintHeader("Figure 3: total query time at eps_avg <= 0.01");
  std::printf(
      "paper (milan, 406k cells): M-Sketch 22.6ms | Merge12 824 | RandomW "
      "337 |\n  GK 2070 | T-Digest 2850 | Sampling 1840 | S-Hist 552 | "
      "EW-Hist 268\n\n");

  struct Case {
    const char* dataset;
    uint64_t rows;
  };
  for (const Case& c : {Case{"milan", milan_rows},
                        Case{"hepmass", hepmass_rows}}) {
    auto id = DatasetFromName(c.dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), c.rows);
    auto sorted = data;
    Timer sort_timer;
    std::sort(sorted.begin(), sorted.end());
    const double sort_ms = sort_timer.Millis();

    // Calibrate on a prefix (cheap), then time on the full cell set.
    std::vector<double> calib(data.begin(),
                              data.begin() + std::min<size_t>(
                                                 calib_rows, data.size()));
    auto calib_sorted = calib;
    std::sort(calib_sorted.begin(), calib_sorted.end());

    std::printf("--- %s: %llu rows, %llu cells of %zu ---\n", c.dataset,
                static_cast<unsigned long long>(c.rows),
                static_cast<unsigned long long>(c.rows / cell_size),
                cell_size);
    std::printf("%-10s %8s %10s %12s %10s\n", "summary", "param", "bytes",
                "query(ms)", "eps_avg");
    int msketch_k = 10;  // calibrated below; paper default as fallback
    for (const auto& sweep : DefaultSweeps()) {
      Calibration cal =
          CalibrateOne(sweep, calib, calib_sorted, 0.01, false);
      if (cal.summary == "M-Sketch") msketch_k = static_cast<int>(cal.param);
      auto prototype = MakeAnySummary(cal.summary, cal.param);
      MSKETCH_CHECK(prototype.ok());
      auto cells = BuildCells(data, cell_size, *prototype.value());

      Timer t;
      auto merged = prototype.value()->CloneEmpty();
      for (const auto& cell : cells) {
        MSKETCH_CHECK(merged->Merge(*cell).ok());
      }
      auto q = merged->EstimateQuantile(0.5);
      const double query_ms = t.Millis();
      const double err = MeanError(*merged, sorted);
      std::printf("%-10s %8g %10zu %12.2f %10.4f%s\n", cal.summary.c_str(),
                  cal.param, cal.bytes, query_ms, err,
                  cal.achieved ? "" : "   (target eps unreachable)");
      (void)q;
    }
    // Columnar M-Sketch at the same calibrated order as the M-Sketch
    // row above: the same cells laid out struct-of-arrays in a
    // CubeStore (one cell per id), merged by the flat range kernel
    // instead of object-by-object — isolates what the columnar layout
    // buys on the merge-dominated path.
    {
      CubeStore store(1, msketch_k);
      for (size_t i = 0; i < data.size(); ++i) {
        store.Ingest({static_cast<uint32_t>(i / cell_size)}, data[i]);
      }
      Timer t;
      MomentsSketch merged = store.MergeAll();
      MomentsSummary summary(std::move(merged));
      auto q = summary.EstimateQuantile(0.5);
      const double query_ms = t.Millis();
      const double err =
          MeanError(SummaryAdapter<MomentsSummary>(summary, "M-Sk(col)"),
                    sorted);
      std::printf("%-10s %8d %10zu %12.2f %10.4f   (flat-merge kernel)\n",
                  "M-Sk(col)", msketch_k,
                  store.SummaryBytes() / store.num_cells(), query_ms, err);
      report.Add(std::string("query/") + c.dataset, "M-Sk(col)", {query_ms},
                 {{"cells", static_cast<double>(store.num_cells())}});
      // SIMD range kernel, then the planned query against a fresh
      // rollup (the unconstrained query returns the pre-merged total).
      t.Reset();
      MomentsSketch simd(msketch_k);
      MSKETCH_CHECK(
          simd.MergeFlatRangeFast(store.Columns(), 0, store.num_cells())
              .ok());
      MomentsSummary simd_summary(std::move(simd));
      auto q_simd = simd_summary.EstimateQuantile(0.5);
      const double simd_ms = t.Millis();
      std::printf("%-10s %8d %10zu %12.2f %10s   (simd range kernel)\n",
                  "M-Sk(simd)", msketch_k,
                  store.SummaryBytes() / store.num_cells(), simd_ms, "-");
      report.Add(std::string("query/") + c.dataset, "M-Sk(simd)", {simd_ms},
                 {{"cells", static_cast<double>(store.num_cells())}});
      store.BuildRollup();
      t.Reset();
      CubeStore::QueryStats stats;
      MomentsSummary planned(
          store.QueryWhere(CubeFilter(1, kAnyValue), &stats));
      auto q_plan = planned.EstimateQuantile(0.5);
      const double plan_ms = t.Millis();
      std::printf("%-10s %8d %10zu %12.2f %10s   (rollup total, plan=%s)\n",
                  "M-Sk(roll)", msketch_k,
                  store.SummaryBytes() / store.num_cells(), plan_ms, "-",
                  QueryPlanName(stats.plan));
      report.Add(std::string("query/") + c.dataset, "M-Sk(rollup)",
                 {plan_ms},
                 {{"cells", static_cast<double>(store.num_cells())}});
      (void)q;
      (void)q_simd;
      (void)q_plan;
    }
    std::printf("baseline: std::sort of raw data: %.1f ms\n\n", sort_ms);
  }
  RunIntersectionSection(&report, args.Scale());
  return 0;
}
