// Figure 3: total query time (merge all pre-aggregated cells + estimate a
// quantile) for summaries instantiated at the smallest size achieving
// eps_avg <= 0.01 (Table 2 parameters). Also prints the paper's sorting /
// streaming baselines for context.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibrate.h"
#include "cube/cube_store.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  // Paper: milan 81M rows -> 406k cells of 200. Default here: 2M rows ->
  // 10k cells (the merge-time ordering is row-count independent).
  const uint64_t milan_rows = args.GetU64("rows", 2'000'000) *
                              static_cast<uint64_t>(args.Scale());
  const uint64_t hepmass_rows = milan_rows / 2;
  const size_t cell_size = args.GetU64("cell-size", 200);
  const uint64_t calib_rows = std::min<uint64_t>(milan_rows, 300'000);

  PrintHeader("Figure 3: total query time at eps_avg <= 0.01");
  std::printf(
      "paper (milan, 406k cells): M-Sketch 22.6ms | Merge12 824 | RandomW "
      "337 |\n  GK 2070 | T-Digest 2850 | Sampling 1840 | S-Hist 552 | "
      "EW-Hist 268\n\n");

  struct Case {
    const char* dataset;
    uint64_t rows;
  };
  for (const Case& c : {Case{"milan", milan_rows},
                        Case{"hepmass", hepmass_rows}}) {
    auto id = DatasetFromName(c.dataset);
    MSKETCH_CHECK(id.ok());
    auto data = GenerateDataset(id.value(), c.rows);
    auto sorted = data;
    Timer sort_timer;
    std::sort(sorted.begin(), sorted.end());
    const double sort_ms = sort_timer.Millis();

    // Calibrate on a prefix (cheap), then time on the full cell set.
    std::vector<double> calib(data.begin(),
                              data.begin() + std::min<size_t>(
                                                 calib_rows, data.size()));
    auto calib_sorted = calib;
    std::sort(calib_sorted.begin(), calib_sorted.end());

    std::printf("--- %s: %llu rows, %llu cells of %zu ---\n", c.dataset,
                static_cast<unsigned long long>(c.rows),
                static_cast<unsigned long long>(c.rows / cell_size),
                cell_size);
    std::printf("%-10s %8s %10s %12s %10s\n", "summary", "param", "bytes",
                "query(ms)", "eps_avg");
    int msketch_k = 10;  // calibrated below; paper default as fallback
    for (const auto& sweep : DefaultSweeps()) {
      Calibration cal =
          CalibrateOne(sweep, calib, calib_sorted, 0.01, false);
      if (cal.summary == "M-Sketch") msketch_k = static_cast<int>(cal.param);
      auto prototype = MakeAnySummary(cal.summary, cal.param);
      MSKETCH_CHECK(prototype.ok());
      auto cells = BuildCells(data, cell_size, *prototype.value());

      Timer t;
      auto merged = prototype.value()->CloneEmpty();
      for (const auto& cell : cells) {
        MSKETCH_CHECK(merged->Merge(*cell).ok());
      }
      auto q = merged->EstimateQuantile(0.5);
      const double query_ms = t.Millis();
      const double err = MeanError(*merged, sorted);
      std::printf("%-10s %8g %10zu %12.2f %10.4f%s\n", cal.summary.c_str(),
                  cal.param, cal.bytes, query_ms, err,
                  cal.achieved ? "" : "   (target eps unreachable)");
      (void)q;
    }
    // Columnar M-Sketch at the same calibrated order as the M-Sketch
    // row above: the same cells laid out struct-of-arrays in a
    // CubeStore (one cell per id), merged by the flat range kernel
    // instead of object-by-object — isolates what the columnar layout
    // buys on the merge-dominated path.
    {
      CubeStore store(1, msketch_k);
      for (size_t i = 0; i < data.size(); ++i) {
        store.Ingest({static_cast<uint32_t>(i / cell_size)}, data[i]);
      }
      Timer t;
      MomentsSketch merged = store.MergeAll();
      MomentsSummary summary(std::move(merged));
      auto q = summary.EstimateQuantile(0.5);
      const double query_ms = t.Millis();
      const double err =
          MeanError(SummaryAdapter<MomentsSummary>(summary, "M-Sk(col)"),
                    sorted);
      std::printf("%-10s %8d %10zu %12.2f %10.4f   (flat-merge kernel)\n",
                  "M-Sk(col)", msketch_k,
                  store.SummaryBytes() / store.num_cells(), query_ms, err);
      (void)q;
    }
    std::printf("baseline: std::sort of raw data: %.1f ms\n\n", sort_ms);
  }
  return 0;
}
