// Figure 9: accuracy with and without log moments at equal space budget.
// "With log": up to k/2 standard + k/2 log moments; "no log": k standard
// moments only. Log moments rescue the long-tailed datasets (milan,
// retail) and change little elsewhere (occupancy).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 200'000);

  PrintHeader("Figure 9: effect of log moments at equal space budget");
  std::printf("%-10s %6s %14s %14s\n", "dataset", "k", "with-log",
              "no-log");

  for (const char* name : {"milan", "retail", "occupancy"}) {
    auto id = DatasetFromName(name);
    MSKETCH_CHECK(id.ok());
    auto data =
        GenerateDataset(id.value(), std::min<uint64_t>(rows,
                                                       DefaultRows(id.value())));
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const bool round = id.value() == DatasetId::kRetail;
    auto phis = DefaultPhiGrid();

    for (int k : {2, 4, 6, 8, 10, 12}) {
      MomentsSketch sketch(k);
      for (double x : data) sketch.Accumulate(x);

      auto eval = [&](const MaxEntOptions& opts) -> double {
        auto est = EstimateQuantiles(sketch, phis, opts);
        if (!est.ok()) return -1.0;
        if (round) {
          for (double& v : est.value()) v = std::round(v);
        }
        return MeanQuantileError(sorted, est.value(), phis);
      };

      MaxEntOptions with_log;  // k/2 of each family
      with_log.max_k1 = (k + 1) / 2;
      with_log.max_k2 = (k + 1) / 2;
      MaxEntOptions no_log;
      no_log.use_log_moments = false;

      std::printf("%-10s %6d %14.5f %14.5f\n", name, k, eval(with_log),
                  eval(no_log));
    }
  }
  return 0;
}
