// Figures 24 + 25 (Appendix F): strong and weak scaling of parallel
// merging. Merges are embarrassingly parallel, so the moments sketch's
// single-thread advantage carries over unchanged.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "cube/cube_store.h"
#include "datasets/datasets.h"
#include "parallel/parallel_merge.h"
#include "core/moments_summary.h"
#include "sketches/buffer_hierarchy.h"
#include "sketches/gk_sketch.h"
#include "sketches/tdigest.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

template <typename Summary>
std::vector<Summary> BuildParts(const std::vector<double>& data,
                                size_t cell, Summary prototype) {
  std::vector<Summary> parts;
  parts.reserve(data.size() / cell + 1);
  for (size_t start = 0; start < data.size(); start += cell) {
    Summary s = prototype.CloneEmpty();
    const size_t end = std::min(start + cell, data.size());
    for (size_t i = start; i < end; ++i) s.Accumulate(data[i]);
    parts.push_back(std::move(s));
  }
  return parts;
}

template <typename Summary>
void RunScaling(const char* label, const std::vector<Summary>& parts,
                const std::vector<int>& threads) {
  for (int t : threads) {
    Timer timer;
    Summary merged = ParallelMerge(parts, t);
    const double ms = timer.Millis();
    std::printf("%-10s threads=%-3d %12.1f merges/ms   (%.2f ms total)\n",
                label, t, static_cast<double>(parts.size()) / ms, ms);
    (void)merged;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t num_parts =
      args.GetU64("parts", 40'000) * static_cast<size_t>(args.Scale());
  const size_t cell = 200;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> threads = {1, 2, 4};
  if (hw >= 8) threads.push_back(8);
  if (hw >= 16) threads.push_back(16);

  PrintHeader("Figures 24+25: parallel merge scaling");
  std::printf("hardware threads: %d\n\n", hw);
  auto data = GenerateDataset(DatasetId::kMilan, num_parts * cell);

  std::printf("--- Figure 24: strong scaling (%zu summaries) ---\n",
              num_parts);
  // Columnar engine: the same partitions stored struct-of-arrays in a
  // CubeStore, merged by sharding the contiguous cell-id range across
  // threads (unit-stride column reductions per worker).
  {
    CubeStore store(1, 10);
    for (size_t i = 0; i < data.size(); ++i) {
      store.Ingest({static_cast<uint32_t>(i / cell)}, data[i]);
    }
    const FlatMomentColumns cols = store.Columns();
    for (int t : threads) {
      Timer timer;
      MomentsSketch merged =
          ParallelMergeRange(cols, 0, store.num_cells(), t);
      const double ms = timer.Millis();
      std::printf("%-10s threads=%-3d %12.1f merges/ms   (%.2f ms total)\n",
                  "M-Sk(col)", t,
                  static_cast<double>(store.num_cells()) / ms, ms);
      (void)merged;
    }
  }
  RunScaling("M-Sketch", BuildParts(data, cell, MomentsSketch(10)), threads);
  RunScaling("Merge12", BuildParts(data, cell, MakeMerge12(32)), threads);
  RunScaling("GK", BuildParts(data, cell, GkSketch(1.0 / 50)), threads);
  RunScaling("T-Digest", BuildParts(data, cell, TDigest(100)), threads);

  std::printf("\n--- Figure 25: weak scaling (%zu summaries per thread) "
              "---\n",
              num_parts / 4);
  for (int t : threads) {
    const size_t n = (num_parts / 4) * static_cast<size_t>(t);
    auto sub = GenerateDataset(DatasetId::kMilan, n * cell, 99);
    auto parts = BuildParts(sub, cell, MomentsSketch(10));
    Timer timer;
    MomentsSketch merged = ParallelMerge(parts, t);
    const double ms = timer.Millis();
    std::printf("M-Sketch   threads=%-3d %12.1f merges/ms   (%zu parts)\n",
                t, static_cast<double>(parts.size()) / ms, parts.size());
    (void)merged;
  }
  return 0;
}
