// Figures 21 + 22 (Appendix D.4): the Microsoft production workload
// (synthetic substitute): integer-valued long-tailed metric over cells of
// wildly varying size (min 5, lognormal tail). Prints the workload's
// distributional shape (Fig 21), then per-merge latency and accuracy for
// each summary over the heterogeneous cells (Fig 22). GK's growth under
// heterogeneous merging is reported explicitly.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/datasets.h"
#include "sketches/gk_sketch.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows =
      args.GetU64("rows", 2'000'000) * static_cast<uint64_t>(args.Scale());
  const uint64_t cells = args.GetU64("cells", 5'000);

  PrintHeader("Figures 21+22: production workload (synthetic)");
  ProductionWorkload w = GenerateProductionWorkload(rows, cells);

  // Fig 21: workload shape.
  {
    auto sorted_vals = w.values;
    std::sort(sorted_vals.begin(), sorted_vals.end());
    auto sorted_sizes = w.cell_sizes;
    std::sort(sorted_sizes.begin(), sorted_sizes.end());
    std::printf("values:      ");
    for (double phi : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      std::printf("p%g=%.0f  ", phi * 100,
                  QuantileOfSorted(sorted_vals, phi));
    }
    std::printf("\ncell sizes:  ");
    for (double phi : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      std::printf("p%g=%.0f  ",
                  phi * 100,
                  static_cast<double>(sorted_sizes[static_cast<size_t>(
                      phi * (sorted_sizes.size() - 1))]));
    }
    std::printf("min=%llu max=%llu mean=%.0f\n\n",
                static_cast<unsigned long long>(sorted_sizes.front()),
                static_cast<unsigned long long>(sorted_sizes.back()),
                static_cast<double>(w.values.size()) /
                    static_cast<double>(w.cell_sizes.size()));
  }

  // Fig 22: merge time + accuracy over heterogeneous cells.
  auto sorted = w.values;
  std::sort(sorted.begin(), sorted.end());
  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {{"M-Sketch", 10}, {"Merge12", 32},
                             {"RandomW", 32},  {"GK", 50},
                             {"T-Digest", 100}, {"Sampling", 1000},
                             {"S-Hist", 100},  {"EW-Hist", 100}};
  std::printf("%-10s %14s %12s %14s\n", "summary", "us/merge", "eps_avg",
              "merged bytes");
  for (const Entry& e : summaries) {
    auto prototype = MakeAnySummary(e.name, e.param);
    MSKETCH_CHECK(prototype.ok());
    // Build per-cell summaries with the real heterogeneous sizes.
    std::vector<std::unique_ptr<QuantileSummary>> cell_summaries;
    cell_summaries.reserve(w.cell_sizes.size());
    size_t vi = 0;
    for (uint64_t size : w.cell_sizes) {
      auto cell = prototype.value()->CloneEmpty();
      for (uint64_t i = 0; i < size; ++i) {
        cell->Accumulate(w.values[vi++]);
      }
      cell_summaries.push_back(std::move(cell));
    }
    auto merged = prototype.value()->CloneEmpty();
    Timer t;
    for (const auto& c : cell_summaries) {
      MSKETCH_CHECK(merged->Merge(*c).ok());
    }
    const double us =
        t.Millis() * 1000.0 / static_cast<double>(cell_summaries.size());
    const double err = MeanError(*merged, sorted, /*round_to_int=*/true);
    std::printf("%-10s %14.3f %12.5f %14zu\n", e.name, us, err,
                merged->SizeBytes());
  }
  std::printf("\n(GK is not strictly mergeable: its merged size above "
              "reflects growth\n from combining heterogeneous summaries — "
              "Appendix D.4.)\n");
  return 0;
}
