// Figure 20 (Appendix D.3): per-merge latency with larger pre-aggregation
// cells — 2000 elements (milan, hepmass, exponential) and 10000 elements
// (gauss). The moments sketch is size-invariant; growable summaries get
// slower as their cells reach capacity.
#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/datasets.h"

namespace {

using namespace msketch;
using namespace msketch::bench;

void RunCase(const char* dataset, size_t cell_size, size_t num_cells) {
  auto id = DatasetFromName(dataset);
  MSKETCH_CHECK(id.ok());
  auto data = GenerateDataset(id.value(), cell_size * num_cells);

  struct Entry {
    const char* name;
    double param;
  };
  const Entry summaries[] = {{"M-Sketch", 10}, {"T-Digest", 100},
                             {"Merge12", 32},  {"Sampling", 1000},
                             {"GK", 50},       {"EW-Hist", 100},
                             {"S-Hist", 100}};
  for (const Entry& e : summaries) {
    auto prototype = MakeAnySummary(e.name, e.param);
    MSKETCH_CHECK(prototype.ok());
    auto cells = BuildCells(data, cell_size, *prototype.value());
    auto accumulator = prototype.value()->CloneEmpty();
    Timer t;
    int merges = 0;
    for (const auto& c : cells) {
      MSKETCH_CHECK(accumulator->Merge(*c).ok());
      ++merges;
    }
    const double per_merge_us = t.Millis() * 1000.0 / merges;
    std::printf("%-9s cell=%-6zu %-10s %10.3f us/merge  (%zu bytes)\n",
                dataset, cell_size, e.name, per_merge_us,
                cells[0]->SizeBytes());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t cells = args.GetU64("cells", 500);
  PrintHeader("Figure 20: merge latency with larger cells");
  RunCase("milan", 2000, cells);
  RunCase("hepmass", 2000, cells);
  RunCase("expon", 2000, cells);
  RunCase("gauss", 10000, cells / 2);
  return 0;
}
