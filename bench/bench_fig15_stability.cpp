// Figure 15 (Appendix B): highest usable moment order vs data offset c.
// Compares the conservative bound k <= 13.35 / (0.78 + log10(|c|+1))
// (Eq. 21) against the empirically stable order on uniform data supported
// on [c-1, c+1]: the largest k whose Chebyshev moment, recovered from the
// sketch's power sums, still matches a directly accumulated value to the
// Appendix B precision target 3^-k (1/(k-1) - 1/k).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/chebyshev_moments.h"
#include "core/moments_sketch.h"
#include "numerics/chebyshev.h"

int main(int argc, char** argv) {
  using namespace msketch;
  using namespace msketch::bench;
  Args args(argc, argv);
  const uint64_t rows = args.GetU64("rows", 500'000);
  const int kmax = 40;

  PrintHeader("Figure 15: stable moment order vs offset c");
  std::printf("%-8s %12s %12s\n", "c", "bound(Eq21)", "empirical");

  for (double c : {0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0}) {
    // Uniform data on [c-1, c+1]. Two passes: the sketch's scale map is
    // only known once min/max are observed, and the direct reference must
    // use the *same* map or map distortion (~1e-5) would dominate.
    Rng rng(static_cast<uint64_t>(c * 1000) + 3);
    MomentsSketch sketch(kmax);
    std::vector<double> xs;
    xs.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      const double x = c + rng.Uniform(-1.0, 1.0);
      xs.push_back(x);
      sketch.Accumulate(x);
    }
    ScaleMap map = MakeScaleMap(sketch.min(), sketch.max());
    std::vector<double> direct(kmax + 1, 0.0);  // direct E[T_i(s(x))]
    std::vector<double> tbuf(kmax + 1);
    for (double x : xs) {
      ChebyshevTAll(kmax, map.Forward(x), tbuf.data());
      for (int k = 0; k <= kmax; ++k) direct[k] += tbuf[k];
    }
    for (int k = 0; k <= kmax; ++k) direct[k] /= static_cast<double>(rows);
    auto cheb = PowerMomentsToChebyshev(sketch.StandardMoments(), map);

    int empirical = 1;
    for (int k = 2; k <= kmax; ++k) {
      const double target =
          std::pow(3.0, -k) * (1.0 / (k - 1.0) - 1.0 / k);
      if (std::fabs(cheb[k] - direct[k]) > target) break;
      empirical = k;
    }
    // The raw Eq. 21 value (uncapped, unlike StableKBound's runtime cap).
    const double bound = 13.35 / (0.78 + std::log10(std::fabs(c) + 1.0));
    std::printf("%-8.1f %12.1f %12d\n", c, bound, empirical);
  }
  std::printf("\n(StableKBound clamps the runtime value to [2, 15].)\n");
  return 0;
}
