// MacroBase-style threshold search (Section 7.2.1): find device cohorts
// whose 70th percentile latency exceeds the fleet-wide 99th percentile —
// i.e. cohorts whose outlier rate is ~30x the base rate. The cascade
// (range check -> Markov -> RTT -> maxent) prunes the vast majority of
// cohorts without running the expensive estimator.
//
//   $ ./threshold_alerts
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/cascade.h"
#include "core/moments_summary.h"
#include "cube/data_cube.h"
#include "cube/dictionary.h"
#include "macrobase/macrobase.h"

int main() {
  using namespace msketch;

  // Dimensions: hardware model (64 values) x app version (8 values).
  // Model 17 + v3 has a pathological interaction.
  Dictionary hw_dict, version_dict;
  DataCube<MomentsSummary> cube(2, MomentsSummary(10));
  Rng rng(19);
  for (int i = 0; i < 1'000'000; ++i) {
    const uint32_t hw = static_cast<uint32_t>(rng.NextBelow(64));
    const uint32_t ver = static_cast<uint32_t>(rng.NextBelow(8));
    double latency = rng.NextLognormal(2.0, 0.6);
    if (hw == 17 && ver == 3) latency *= 40.0;  // planted regression
    cube.Ingest({hw, ver}, latency);
  }

  MacroBaseOptions options;
  options.global_phi = 0.99;
  options.subgroup_phi = 0.7;
  options.include_pairs = true;  // search hw x version interactions too

  auto report = FindAnomalousSubgroups(cube, options);
  if (!report.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("global p99 threshold: %.2f ms\n", report->global_threshold);
  std::printf("groups examined: %llu\n",
              static_cast<unsigned long long>(report->groups_examined));
  std::printf("flagged cohorts (%zu):\n", report->flagged.size());
  for (const auto& sg : report->flagged) {
    std::printf("  ");
    for (size_t i = 0; i < sg.dims.size(); ++i) {
      const char* dim_name = (sg.dims[i] == 0) ? "hw" : "version";
      std::printf("%s=%u ", dim_name, sg.values[i]);
    }
    std::printf(" (n=%llu)\n", static_cast<unsigned long long>(sg.count));
  }

  const auto& st = report->cascade_stats;
  std::printf("\ncascade resolution (of %llu checks):\n",
              static_cast<unsigned long long>(st.total));
  std::printf("  simple range : %llu\n",
              static_cast<unsigned long long>(st.resolved_simple));
  std::printf("  Markov bound : %llu\n",
              static_cast<unsigned long long>(st.resolved_markov));
  std::printf("  RTT bound    : %llu\n",
              static_cast<unsigned long long>(st.resolved_rtt));
  std::printf("  maxent solve : %llu\n",
              static_cast<unsigned long long>(st.resolved_maxent));
  std::printf("time: %.3f s merging, %.3f s estimating\n",
              report->merge_seconds, report->estimation_seconds);

  // Multi-threshold alert sweep on one cohort: "which severity tiers does
  // hw=17/v3 breach?" The cascade memoizes the solved distribution for
  // the last sketch it saw, so the five checks below run one maxent
  // solve, not five.
  MomentsSummary cohort = cube.MergeWhere({17, 3});
  ThresholdCascade sweep_cascade;
  std::printf("\nseverity sweep for hw=17 version=3 (p70 latency):\n");
  for (double tier : {250.0, 300.0, 350.0, 400.0, 450.0}) {
    const bool breached =
        sweep_cascade.Threshold(cohort.sketch(), 0.7, tier);
    std::printf("  > %6.0f ms : %s\n", tier, breached ? "BREACH" : "ok");
  }
  const auto& sw = sweep_cascade.stats();
  std::printf(
      "  (%llu checks; %llu reached the solver, %llu reused the memoized "
      "solution)\n",
      static_cast<unsigned long long>(sw.total),
      static_cast<unsigned long long>(sw.resolved_maxent),
      static_cast<unsigned long long>(sw.maxent_memo_hits));
  return 0;
}
