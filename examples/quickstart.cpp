// Quickstart: build moments sketches over two partitions of a dataset,
// merge them, and estimate quantiles — the 30-second tour of the API.
//
//   $ ./quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

int main() {
  using namespace msketch;

  // 1. Build a sketch per data partition. k = 10 tracks powers x^1..x^10
  //    and log-powers log(x)^1..log(x)^10 in ~184 bytes.
  MomentsSketch shard_a(/*k=*/10);
  MomentsSketch shard_b(/*k=*/10);

  Rng rng(42);
  for (int i = 0; i < 500000; ++i) {
    shard_a.Accumulate(rng.NextLognormal(0.0, 1.0));  // e.g. request latency
  }
  for (int i = 0; i < 500000; ++i) {
    shard_b.Accumulate(rng.NextLognormal(0.3, 1.2));  // a slower shard
  }

  // 2. Merge: pointwise sums + two comparisons. This is the ~50 ns
  //    operation that makes million-cell roll-ups interactive.
  MomentsSketch combined = shard_a;  // sketches are plain value types
  if (Status s = combined.Merge(shard_b); !s.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("combined sketch: n=%llu, range=[%.4f, %.4f], %zu bytes\n",
              static_cast<unsigned long long>(combined.count()),
              combined.min(), combined.max(), combined.SizeBytes());

  // 3. Estimate quantiles: solve the maximum entropy problem once, then
  //    read off as many quantiles as needed.
  Result<MaxEntDistribution> dist = SolveMaxEnt(combined);
  if (!dist.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", dist.status().ToString().c_str());
    return 1;
  }
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    std::printf("  p%-4.0f = %8.4f\n", phi * 100, dist->Quantile(phi));
  }
  const auto& diag = dist->diagnostics();
  std::printf(
      "solver: k1=%d std moments, k2=%d log moments, %d Newton iters, "
      "grid %d, cond %.1f\n",
      diag.k1, diag.k2, diag.newton_iterations, diag.grid_size,
      diag.condition_number);
  return 0;
}
