// One scrape over every subsystem: drives the full engine — sharded
// ingest with the background publisher, a durable WAL + checkpoint,
// certified point and GROUP BY queries through the summary router, the
// lane-batched solver and its warm-start cache — then prints the
// structured JSON export on stdout. Human-readable progress goes to
// stderr so the output pipes cleanly:
//
//   $ ./obs_scrape | python3 tools/metrics_dump.py \
//         --require=msk_ingest_rows_appended_total \
//         --require=msk_publisher_drain_seconds \
//         --require=msk_query_seconds \
//         --require=msk_router_interval_width \
//         --require=msk_solver_cache_hits_total \
//         --require=msk_wal_append_seconds
//
// CI runs exactly that pipe: the acceptance bar for the telemetry
// layer is that a single scrape covers ingest, publisher, solver,
// router, and the WAL at once.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "ingest/streaming_cube.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

int main() {
  using namespace msketch;

  char dir_template[] = "/tmp/obs_scrape_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed; running without durability\n");
  }

  // dims: region x endpoint; metric: request latency (ms). KLL dual-write
  // on so the router exercises certificate intersection.
  IngestOptions options;
  options.num_shards = 2;
  options.epoch_interval = std::chrono::milliseconds(5);
  options.enable_kll = true;
  StreamingCube cube(/*num_dims=*/2, MomentsSummary(10), options);
  if (dir != nullptr) {
    DurabilityOptions durability;
    durability.dir = std::string(dir);
    durability.checkpoint_every_epochs = 4;  // force a checkpoint too
    MSKETCH_CHECK(cube.EnableDurability(durability).ok());
  }
  cube.StartPublisher();

  const char* regions[] = {"us-east", "us-west", "eu-west"};
  const char* endpoints[] = {"search", "checkout", "browse"};
  RunWorkers(2, [&](int w) {
    Rng rng(40 + w);
    for (int i = 0; i < 50000; ++i) {
      MSKETCH_CHECK(cube.AppendRow({regions[rng.NextBelow(3)],
                                    endpoints[rng.NextBelow(3)]},
                                   rng.NextLognormal(3.0, 0.7))
                        .ok());
    }
  });
  auto snap = cube.Flush();
  std::fprintf(stderr, "ingested %llu rows into %zu cells over %llu epochs\n",
               static_cast<unsigned long long>(snap->rows()),
               snap->store.num_cells(),
               static_cast<unsigned long long>(snap->epoch));

  // Queries: plain merge, certified point, certified GROUP BY (router +
  // lane solver + solver cache), plus a threshold scan.
  (void)cube.QueryWhere(CubeFilter(2, kAnyValue));
  auto filter = cube.EncodeFilter({"eu-west", "checkout"});
  MSKETCH_CHECK(filter.ok());
  const CertifiedQuantile p99 =
      cube.QueryQuantileCertified(filter.value(), 0.99);
  std::fprintf(stderr, "eu-west checkout p99 = %.1f ms in [%.1f, %.1f]\n",
               p99.estimate, p99.interval.lower, p99.interval.upper);
  (void)cube.GroupByQuantilesCertified({0}, {0.5, 0.99});
  (void)cube.GroupByQuantiles({0, 1}, {0.5, 0.9, 0.99});
  (void)cube.GroupByQuantiles({0, 1}, {0.5, 0.9, 0.99});  // warm: cache hits
  (void)cube.GroupByThreshold({1}, 0.99, 100.0);

  cube.StopPublisher();

  // The scrape. Everything above fed the one global registry; stdout
  // carries the JSON export and nothing else.
  const obs::MetricsSnapshot scrape = obs::GlobalRegistry().Scrape();
  const std::vector<obs::SpanRecord> spans = obs::GlobalTracer().Snapshot();
  std::fprintf(stderr, "scrape: %zu samples, %zu spans captured\n",
               scrape.samples.size(), spans.size());
  const std::string json = obs::ExportJson(scrape, &spans);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
