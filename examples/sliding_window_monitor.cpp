// Sliding-window alerting (Section 7.2.2): a stream of 10-minute panes is
// monitored with 4-hour windows; turnstile updates (merge new pane,
// subtract old) keep each slide O(k) instead of O(window) merges, and the
// threshold cascade filters windows before any maxent solve.
//
//   $ ./sliding_window_monitor
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/cascade.h"
#include "window/sliding_window.h"

int main() {
  using namespace msketch;

  const int kPanesPerWindow = 24;        // 4 h of 10-min panes
  const int kTotalPanes = 4320;          // one month
  const double kThreshold = 1500.0;      // alert when p99 > threshold
  Rng rng(11);

  TurnstileWindow window(/*k=*/10, kPanesPerWindow);
  ThresholdCascade cascade;

  int alerts = 0;
  int first_alert = -1, last_alert = -1;
  for (int pane_idx = 0; pane_idx < kTotalPanes; ++pane_idx) {
    // Build this pane's sketch from raw events. Two injected anomalies
    // (spikes spanning 12 panes each) mirror the paper's workload.
    MomentsSketch pane(10);
    const bool spike = (pane_idx >= 1200 && pane_idx < 1212) ||
                       (pane_idx >= 3000 && pane_idx < 3012);
    for (int i = 0; i < 2000; ++i) {
      pane.Accumulate(rng.NextLognormal(4.0, 1.0));  // ~55 typical
    }
    if (spike) {
      for (int i = 0; i < 200; ++i) pane.Accumulate(2000.0);
    }

    if (!window.PushPane(pane).ok()) continue;
    if (!window.Full()) continue;

    // Cascade decides "p99 > threshold?" — usually from bounds alone.
    if (cascade.Threshold(window.Current(), 0.99, kThreshold)) {
      ++alerts;
      if (first_alert < 0) first_alert = pane_idx;
      last_alert = pane_idx;
    }
  }

  std::printf("panes processed : %d\n", kTotalPanes);
  std::printf("windows alerted : %d (first at pane %d, last at pane %d)\n",
              alerts, first_alert, last_alert);
  const auto& st = cascade.stats();
  std::printf("cascade: %llu checks — simple %llu, markov %llu, rtt %llu, "
              "maxent %llu\n",
              static_cast<unsigned long long>(st.total),
              static_cast<unsigned long long>(st.resolved_simple),
              static_cast<unsigned long long>(st.resolved_markov),
              static_cast<unsigned long long>(st.resolved_rtt),
              static_cast<unsigned long long>(st.resolved_maxent));
  return 0;
}
