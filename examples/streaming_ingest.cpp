// Query-while-ingest: writer threads stream telemetry rows into a
// StreamingCube while the main thread watches live quantiles on the
// published snapshots — no locks in the query path, bounded staleness.
//
//   $ ./streaming_ingest
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/rng.h"
#include "ingest/streaming_cube.h"
#include "parallel/parallel_for.h"

int main() {
  using namespace msketch;

  // dims: region x endpoint; metric: request latency (ms).
  IngestOptions options;
  options.num_shards = 4;
  options.epoch_interval = std::chrono::milliseconds(10);
  StreamingCube cube(/*num_dims=*/2, MomentsSummary(10), options);
  cube.StartPublisher();

  const char* regions[] = {"us-east", "us-west", "eu-west"};
  const char* endpoints[] = {"search", "checkout", "browse"};

  std::atomic<bool> done{false};
  std::thread writers([&] {
    RunWorkers(4, [&](int w) {
      Rng rng(40 + w);
      while (!done.load(std::memory_order_acquire)) {
        const char* region = regions[rng.NextBelow(3)];
        const char* endpoint = endpoints[rng.NextBelow(3)];
        // checkout in eu-west degrades: the live p99 should show it.
        const double slow =
            (region == regions[2] && endpoint == endpoints[1]) ? 4.0 : 1.0;
        MSKETCH_CHECK(
            cube.AppendRow({region, endpoint},
                           slow * rng.NextLognormal(3.0, 0.7))
                .ok());
      }
    });
  });

  for (int tick = 0; tick < 5; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto snap = cube.Snapshot();  // one consistent state for all queries
    std::printf("epoch %llu: %llu rows published, %llu in flight\n",
                static_cast<unsigned long long>(snap->epoch),
                static_cast<unsigned long long>(snap->rows()),
                static_cast<unsigned long long>(cube.staleness_rows()));
    for (const char* region : regions) {
      auto filter = cube.EncodeFilter({region, "checkout"});
      if (!filter.ok()) continue;  // dictionary may not have seen it yet
      auto p99 = cube.QueryQuantile(filter.value(), 0.99);
      if (p99.ok()) {
        std::printf("  p99 latency, %s checkout : %7.1f ms\n", region,
                    p99.value());
      }
    }
  }

  done.store(true, std::memory_order_release);
  writers.join();
  auto final_snap = cube.Flush();  // read-your-writes for the epilogue
  std::printf("final: %llu rows, %zu cells, staleness %llu\n",
              static_cast<unsigned long long>(final_snap->rows()),
              final_snap->store.num_cells(),
              static_cast<unsigned long long>(cube.staleness_rows()));
  cube.StopPublisher();
  return 0;
}
