// Telemetry data cube: the paper's motivating deployment (Section 1). A
// fleet of devices reports request latencies tagged with country, app
// version, and OS; a Druid-like cube pre-aggregates one moments sketch
// per dimension combination, and roll-up queries merge the relevant
// cells.
//
//   $ ./telemetry_cube
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/moments_summary.h"
#include "cube/data_cube.h"
#include "cube/dictionary.h"

int main() {
  using namespace msketch;

  const std::vector<std::string> countries = {"USA", "CAN", "MEX", "BRA"};
  const std::vector<std::string> versions = {"v7", "v8", "v9"};
  const std::vector<std::string> oses = {"iOS6.1", "iOS6.2", "iOS6.3"};

  Dictionary country_dict, version_dict, os_dict;
  DataCube<MomentsSummary> cube(/*num_dims=*/3, MomentsSummary(10));

  // Simulate telemetry: latency is lognormal; v9 on iOS6.3 has a
  // regression that fattens its tail.
  Rng rng(7);
  const int kRows = 2'000'000;
  for (int i = 0; i < kRows; ++i) {
    const auto& country = countries[rng.NextBelow(countries.size())];
    const auto& version = versions[rng.NextBelow(versions.size())];
    const auto& os = oses[rng.NextBelow(oses.size())];
    double latency_ms = rng.NextLognormal(3.0, 0.7);  // ~20ms median
    if (version == "v9" && os == "iOS6.3") {
      latency_ms *= (rng.NextDouble() < 0.1) ? 8.0 : 1.2;
    }
    cube.Ingest({country_dict.Intern(country), version_dict.Intern(version),
                 os_dict.Intern(os)},
                latency_ms);
  }
  std::printf("cube: %llu rows in %zu cells (%zu summary bytes)\n\n",
              static_cast<unsigned long long>(cube.num_rows()),
              cube.num_cells(), cube.SummaryBytes());

  // Roll-up: p99 latency per app version (merges cells across the other
  // dimensions).
  std::printf("p99 latency by app version:\n");
  cube.ForEachGroup({1}, [&](const CubeCoords& key,
                             const MomentsSummary& summary) {
    auto q = summary.EstimateQuantile(0.99);
    std::printf("  %-4s  p99 = %8.2f ms   (n=%llu)\n",
                version_dict.ValueOf(key[0]).c_str(),
                q.ok() ? q.value() : -1.0,
                static_cast<unsigned long long>(summary.count()));
  });

  // Drill-down: p99 for v9 by OS — pinpoints the regression.
  std::printf("\np99 latency for v9 by OS:\n");
  const uint32_t v9 = version_dict.Find("v9").value();
  for (const auto& os : oses) {
    CubeFilter filter = {kAnyValue, static_cast<int64_t>(v9),
                         static_cast<int64_t>(os_dict.Find(os).value())};
    uint64_t merges = 0;
    MomentsSummary merged = cube.MergeWhere(filter, &merges);
    auto q = merged.EstimateQuantile(0.99);
    std::printf("  %-7s p99 = %8.2f ms   (%llu cell merges)\n", os.c_str(),
                q.ok() ? q.value() : -1.0,
                static_cast<unsigned long long>(merges));
  }

  // The same filter answered with a native sum (mean latency) — the
  // cheap aggregate the sketch query is competing with.
  CubeFilter v9_filter = {kAnyValue, static_cast<int64_t>(v9), kAnyValue};
  const double total = cube.SumWhere(v9_filter);
  const uint64_t n = cube.MergeWhere(v9_filter).count();
  std::printf("\nv9 mean latency (native sum): %.2f ms over %llu rows\n",
              total / static_cast<double>(n),
              static_cast<unsigned long long>(n));
  return 0;
}
