#include "replica/replica_applier.h"

#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/durable_log.h"
#include "persist/wal.h"
#include "replica/frame.h"

namespace msketch {

namespace {
/// True when a failed sync round is worth re-Helloing: transient
/// transport trouble, or link corruption — unlike storage corruption,
/// a damaged plan is transient because the leader retransmits clean
/// state from the follower's applied epoch on the next round.
bool RoundRetryable(const Status& st) {
  return IsRetryable(st) || st.code() == StatusCode::kCorruption;
}
}  // namespace

ReplicaApplier::ReplicaApplier(int k, size_t num_dims, ReplicaOptions options)
    : k_(k),
      num_dims_(num_dims),
      options_(options),
      store_(num_dims, k),
      dicts_(num_dims),
      router_(options.router) {
  // The KLL side column must be armed before the first cell lands —
  // the delta catch-up path applies straight into this store.
  if (options_.kll_k > 0) store_.EnableKll(options_.kll_k);
  obs_collector_id_ = obs::GlobalRegistry().AddCollector(
      [this](obs::MetricsEmitter& em) {
        const ReplicaApplierStats s = stats();
        em.EmitCounter("msk_replica_epochs_applied_total", {},
                       "Epoch delta records applied by the follower",
                       s.epochs_applied);
        em.EmitCounter("msk_replica_resyncs_total", {},
                       "Full snapshot installs (resyncs)", s.resyncs);
        em.EmitCounter("msk_replica_gaps_detected_total", {},
                       "Frames skipped because a predecessor was lost",
                       s.gaps_detected);
        em.EmitCounter("msk_replica_corrupt_frames_total", {},
                       "Frames rejected as torn or corrupt",
                       s.corrupt_frames);
        em.EmitCounter("msk_replica_dup_frames_total", {},
                       "Duplicate or stale frames skipped idempotently",
                       s.dup_frames);
        em.EmitCounter("msk_replica_round_retries_total", {},
                       "Sync rounds retried after a recoverable failure",
                       s.round_retries);
        em.EmitCounter("msk_replica_heartbeat_misses_total", {},
                       "Waits that counted against the stall budget",
                       s.heartbeat_misses);
        em.EmitGauge("msk_replica_lag_epochs", {},
                     "Epochs the follower trails the leader by",
                     static_cast<double>(lag_epochs()));
      });
}

ReplicaApplier::~ReplicaApplier() {
  obs::GlobalRegistry().RemoveCollector(obs_collector_id_);
}

Status ReplicaApplier::SendWithBackoff(Transport* t,
                                       const std::vector<uint8_t>& wire) {
  Backoff backoff(options_.retry, options_.seed);
  Status st;
  for (;;) {
    st = t->Send(wire);
    if (st.ok() || !backoff.ShouldRetry(st)) return st;
    std::this_thread::sleep_for(backoff.NextDelay());
  }
}

void ReplicaApplier::BumpLeaderEpoch(uint64_t epoch) {
  uint64_t leader = leader_epoch_.load(std::memory_order_relaxed);
  while (leader < epoch &&
         !leader_epoch_.compare_exchange_weak(leader, epoch)) {
  }
}

// Frame handlers absorb abnormal frames instead of aborting: the
// leader pumps its whole plan without waiting for acks, so after one
// lost or damaged frame the rest of the plan is already in flight.
// Skipping stale frames (with counters) lets one round drain the
// damaged plan; the closing kCaughtUp then reveals the shortfall
// (through > applied) and the round retries from clean applied state.

Status ReplicaApplier::ApplyDeltaRecord(const std::vector<uint8_t>& payload) {
  BytesReader reader(payload);
  Result<WalEpochRecord> decoded = DecodeEpochRecord(&reader);
  if (!decoded.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt_frames;
    return Status::OK();  // skip; the caught-up check reveals the hole
  }
  WalEpochRecord rec = std::move(decoded).value();

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t applied = applied_epoch_.load(std::memory_order_relaxed);
  if (rec.epoch <= applied) {  // duplicate delivery: already applied
    ++stats_.dup_frames;
    return Status::OK();
  }
  if (rec.epoch != applied + 1) {  // a predecessor was lost: skip
    ++stats_.gaps_detected;
    return Status::OK();
  }
  if (rec.dict_start.size() != dicts_.size()) {
    ++stats_.corrupt_frames;
    return Status::OK();
  }
  // Dictionary patch, RecoverState's idempotent rule: the delta's
  // prefix may already be interned (a retransmitted record); only the
  // genuinely new tail appends. A start beyond our size is a gap.
  for (size_t d = 0; d < dicts_.size(); ++d) {
    const uint32_t start = rec.dict_start[d];
    if (start > dicts_[d].size()) {
      ++stats_.gaps_detected;
      return Status::OK();
    }
  }
  for (size_t d = 0; d < dicts_.size(); ++d) {
    const size_t have = dicts_[d].size();
    const uint32_t start = rec.dict_start[d];
    for (size_t i = have - start; i < rec.dict_values[d].size(); ++i) {
      dicts_[d].Intern(rec.dict_values[d][i]);
    }
  }
  // The exact ApplyDelta (+ ApplyKllDelta) sequence the leader's
  // publisher executed for this epoch — bit-exact columns. Failures
  // here are real (local apply broke), not link noise: propagate.
  for (const WalCell& cell : rec.cells) {
    MSKETCH_RETURN_NOT_OK(store_.ApplyDelta(cell.coords, cell.sketch));
    if (cell.has_kll && store_.kll_enabled()) {
      MSKETCH_RETURN_NOT_OK(store_.ApplyKllDelta(cell.coords, cell.kll));
    }
  }
  ++stats_.epochs_applied;
  stats_.cells_applied += rec.cells.size();
  applied_epoch_.store(rec.epoch, std::memory_order_release);
  return Status::OK();
}

Status ReplicaApplier::ApplySnapBegin(const std::vector<uint8_t>& payload) {
  Result<SnapBeginFrame> begin = DecodeSnapBegin(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (!begin.ok()) {
    ++stats_.corrupt_frames;
    return Status::OK();
  }
  const SnapBeginFrame& b = begin.value();
  if (b.first_chunk > 0) {
    // A resumed transfer must continue exactly where our partial image
    // ends; anything else would splice two images — drop the partial
    // and let the next round request a fresh transfer.
    if (!snap_.active || snap_.epoch != b.snapshot_epoch ||
        snap_.next_chunk != b.first_chunk ||
        snap_.total_bytes != b.total_bytes) {
      ++stats_.gaps_detected;
      snap_ = SnapshotAssembly();
    }
    return Status::OK();
  }
  snap_ = SnapshotAssembly();
  snap_.active = true;
  snap_.epoch = b.snapshot_epoch;
  snap_.total_bytes = b.total_bytes;
  snap_.num_chunks = b.num_chunks;
  snap_.chunk_bytes = b.chunk_bytes;
  snap_.buffer.reserve(b.total_bytes);
  return Status::OK();
}

Status ReplicaApplier::ApplySnapChunk(const std::vector<uint8_t>& payload) {
  Result<SnapChunkFrame> chunk = DecodeSnapChunk(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (!chunk.ok()) {
    ++stats_.corrupt_frames;
    return Status::OK();
  }
  if (!snap_.active) {  // stale chunk of a transfer we never began
    ++stats_.dup_frames;
    return Status::OK();
  }
  if (chunk.value().chunk_index < snap_.next_chunk) {  // duplicate
    ++stats_.dup_frames;
    return Status::OK();
  }
  if (chunk.value().chunk_index > snap_.next_chunk) {
    // A chunk before this one was lost. Keep next_chunk parked at the
    // first missing index — the next Hello resumes the transfer there.
    ++stats_.gaps_detected;
    return Status::OK();
  }
  snap_.buffer.insert(snap_.buffer.end(), chunk.value().bytes.begin(),
                      chunk.value().bytes.end());
  ++snap_.next_chunk;
  ++stats_.snapshot_chunks;
  return Status::OK();
}

Status ReplicaApplier::InstallSnapshot(const std::vector<uint8_t>& payload) {
  Result<SnapEndFrame> decoded = DecodeSnapEnd(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (!decoded.ok()) {
    ++stats_.corrupt_frames;
    return Status::OK();
  }
  const SnapEndFrame& end = decoded.value();
  if (!snap_.active || snap_.epoch != end.snapshot_epoch ||
      snap_.next_chunk != snap_.num_chunks ||
      snap_.buffer.size() != snap_.total_bytes) {
    // Image incomplete (lost chunks): keep the partial for resume.
    ++stats_.gaps_detected;
    return Status::OK();
  }
  obs::Span span("replica.resync");
  // Install gate: the whole-image CRC proves every chunk arrived
  // intact and in order — only then does the image touch the store.
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(snap_.buffer.data(), snap_.buffer.size()));
  if (crc != end.image_crc) {
    ++stats_.corrupt_frames;
    snap_ = SnapshotAssembly();  // the image is trash; restart transfer
    return Status::OK();
  }
  Result<CheckpointData> ckpt = DecodeCheckpointImage(snap_.buffer);
  if (!ckpt.ok()) {
    ++stats_.corrupt_frames;
    snap_ = SnapshotAssembly();
    return Status::OK();
  }
  if (ckpt.value().num_dims != num_dims_ || ckpt.value().k != k_) {
    snap_ = SnapshotAssembly();
    return Status::InvalidArgument(
        "replica: snapshot shape does not match the applier");
  }
  // Rebuild through the recovery path: checkpoint cells in id order,
  // bit-exact columns, dictionaries, and KLL side column. Failures
  // here are real, not link noise: propagate.
  RecoveredState state;
  state.checkpoint = std::move(ckpt).value();
  state.dict_values = state.checkpoint.dict_values;
  CubeStore fresh(num_dims_, k_);
  MSKETCH_RETURN_NOT_OK(RebuildStore(state, &fresh, nullptr));
  std::vector<Dictionary> fresh_dicts(num_dims_);
  for (size_t d = 0; d < num_dims_; ++d) {
    for (const std::string& v : state.dict_values[d]) {
      fresh_dicts[d].Intern(v);
    }
  }
  store_ = std::move(fresh);
  dicts_ = std::move(fresh_dicts);
  const uint64_t epoch = state.checkpoint.epoch;
  snap_ = SnapshotAssembly();
  ++stats_.resyncs;
  applied_epoch_.store(epoch, std::memory_order_release);
  return Status::OK();
}

Status ReplicaApplier::SyncOnce(Transport* transport) {
  obs::Span span("replica.apply");
  HelloFrame hello;
  hello.have_epoch = applied_epoch();
  hello.k = static_cast<uint32_t>(k_);
  hello.num_dims = static_cast<uint32_t>(num_dims_);
  hello.kll_k = static_cast<uint32_t>(options_.kll_k);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rounds;
    // Resume a partial snapshot only while chunks are still missing; a
    // transfer that lost just its SnapEnd restarts (the source cannot
    // ship an empty chunk range).
    if (snap_.active && snap_.next_chunk < snap_.num_chunks) {
      hello.resume = true;
      hello.resume_epoch = snap_.epoch;
      hello.resume_next_chunk = snap_.next_chunk;
      ++stats_.snapshot_resumes;
    }
  }
  MSKETCH_RETURN_IF_ERROR(SendWithBackoff(
      transport, EncodeFrame(FrameType::kHello, EncodeHello(hello))));

  int non_data_waits = 0;
  bool heard_heartbeat = false;
  for (;;) {
    Result<std::vector<uint8_t>> wire = transport->Recv(options_.recv_timeout);
    if (!wire.ok()) {
      if (!transport->connected()) return wire.status();
      ++non_data_waits;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.heartbeat_misses;
      }
      if (non_data_waits >= std::max(options_.heartbeat_miss_budget, 1)) {
        // Silent link, no proof of life: treat as down and reconnect.
        if (!heard_heartbeat) {
          return Status::Unavailable("replica: leader silent");
        }
        // The leader is alive but the frames we need never arrived —
        // the round is stalled on a lost tail; re-Hello resyncs it.
        return Status::Corruption("replica: sync round stalled");
      }
      continue;
    }
    Result<Frame> frame = DecodeFrame(wire.value());
    if (!frame.ok()) {
      // Torn or bit-flipped frame: skip it. Whatever it carried shows
      // up as a gap downstream; the caught-up check forces the retry.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt_frames;
      non_data_waits = 0;
      continue;
    }
    // Data frames prove the plan is still flowing; heartbeats must NOT
    // reset the stall counter — they are what an idle leader sends
    // after a lost tail, and each one counts against the budget below.
    if (frame.value().type != FrameType::kHeartbeat) non_data_waits = 0;
    switch (frame.value().type) {
      case FrameType::kDelta:
        MSKETCH_RETURN_IF_ERROR(ApplyDeltaRecord(frame.value().payload));
        break;
      case FrameType::kSnapBegin:
        MSKETCH_RETURN_IF_ERROR(ApplySnapBegin(frame.value().payload));
        break;
      case FrameType::kSnapChunk:
        MSKETCH_RETURN_IF_ERROR(ApplySnapChunk(frame.value().payload));
        break;
      case FrameType::kSnapEnd:
        MSKETCH_RETURN_IF_ERROR(InstallSnapshot(frame.value().payload));
        break;
      case FrameType::kCaughtUp: {
        Result<CaughtUpFrame> caught = DecodeCaughtUp(frame.value().payload);
        if (!caught.ok()) {
          // The plan's closing frame is unreadable: we cannot verify
          // completeness, so the round must retry.
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_frames;
          return Status::Corruption("replica: unreadable caught-up frame");
        }
        const uint64_t through = caught.value().through_epoch;
        BumpLeaderEpoch(through);
        if (through > applied_epoch()) {
          // The plan claimed epochs that never landed — frames were
          // lost or skipped. Re-Hello from the applied state.
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.gaps_detected;
          return Status::Corruption("replica: caught-up beyond applied");
        }
        return Status::OK();  // round complete
      }
      case FrameType::kHeartbeat: {
        obs::Span hb_span("replica.heartbeat");
        Result<HeartbeatFrame> hb = DecodeHeartbeat(frame.value().payload);
        if (!hb.ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_frames;
          break;
        }
        heard_heartbeat = true;
        BumpLeaderEpoch(hb.value().current_epoch);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.heartbeats_seen;
          // A heartbeat mid-round means the leader went idle while we
          // still wait — evidence of a lost tail, so it counts against
          // the stall budget like a timeout.
          ++stats_.heartbeat_misses;
        }
        ++non_data_waits;
        if (non_data_waits >= std::max(options_.heartbeat_miss_budget, 1)) {
          return Status::Corruption("replica: sync round stalled");
        }
        break;
      }
      case FrameType::kError: {
        Result<ErrorFrame> err = DecodeError(frame.value().payload);
        if (!err.ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_frames;
          return Status::Corruption("replica: unreadable error frame");
        }
        // Terminal refusal (shape mismatch): not retryable.
        return Status::InvalidArgument("replica: leader refused: " +
                                       err.value().message);
      }
      default: {  // unreachable: DecodeFrame rejects unknown types
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt_frames;
        break;
      }
    }
  }
}

Status ReplicaApplier::SyncWithRetry(Transport* transport) {
  Backoff backoff(options_.retry, options_.seed + 1);
  Status st;
  for (;;) {
    st = SyncOnce(transport);
    if (st.ok()) return st;
    // A dead link is the caller's problem: reconnect, then sync again.
    if (!transport->connected()) return st;
    if (!RoundRetryable(st)) return st;
    if (backoff.attempts() + 1 >= std::max(options_.retry.max_attempts, 1)) {
      return st;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.round_retries;
    }
    std::this_thread::sleep_for(backoff.NextDelay());
  }
}

CertifiedQuantile ReplicaApplier::QueryQuantileCertified(
    const std::vector<std::string>& filter, double phi) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.certified_queries;
  CubeFilter cube_filter(num_dims_, kAnyValue);
  for (size_t d = 0; d < num_dims_ && d < filter.size(); ++d) {
    if (filter[d].empty()) continue;
    Result<uint32_t> id = dicts_[d].Find(filter[d]);
    // Unknown value: matches nothing (an out-of-range constraint), so
    // the query reports empty input rather than erroring.
    cube_filter[d] = id.ok() ? static_cast<int64_t>(id.value())
                             : static_cast<int64_t>(0x100000000LL);
  }
  MomentsSketch moments = store_.QueryWhere(cube_filter);
  const KllSketch* kll = nullptr;
  KllSketch kll_merged;
  if (store_.kll_enabled()) {
    Result<KllSketch> merged = store_.MergeKllWhere(cube_filter);
    if (merged.ok() && merged.value().count() > 0) {
      kll_merged = std::move(merged).value();
      kll = &kll_merged;
    }
  }
  return router_.Query(moments, kll, phi);
}

void ReplicaApplier::Inspect(
    const std::function<void(const CubeStore&,
                             const std::vector<Dictionary>&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  fn(store_, dicts_);
}

ReplicaApplierStats ReplicaApplier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace msketch
