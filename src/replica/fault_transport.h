// FaultInjectingTransport: deterministic link-fault injection for the
// replication soak, modeled on persist/fault_env.h's fault plans.
//
// Wraps one Transport endpoint and perturbs its OUTGOING frames by
// cumulative send index (0-based), so a test can aim one fault at any
// frame boundary of a known-length exchange:
//
//   drop        the frame never reaches the peer
//   duplicate   the frame is delivered twice
//   reorder     the frame is held and delivered after its successor
//   tear        only the first `keep` bytes reach the peer
//   flip bit    one bit of the wire image is inverted
//   delay       delivery is stalled by a fixed latency
//   reset       this send and everything after fails kUnavailable and
//               the underlying connection closes (both sides see it)
//
// One plan slot per fault kind; -1 disarms. Faults trigger once (the
// retried frame goes through clean), matching FaultInjectingEnv's
// crash-once discipline so sweeps terminate. Counters record what
// actually fired. All state sits behind one mutex — frame pumps are
// not hot paths.
#ifndef MSKETCH_REPLICA_FAULT_TRANSPORT_H_
#define MSKETCH_REPLICA_FAULT_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "replica/transport.h"

namespace msketch {

struct FaultTransportStats {
  uint64_t frames_sent = 0;     // attempted sends (faulted or not)
  uint64_t frames_dropped = 0;
  uint64_t frames_duplicated = 0;
  uint64_t frames_reordered = 0;
  uint64_t frames_torn = 0;
  uint64_t bits_flipped = 0;
  uint64_t frames_delayed = 0;
  uint64_t resets = 0;
};

class FaultInjectingTransport : public Transport {
 public:
  explicit FaultInjectingTransport(std::unique_ptr<Transport> inner);

  // ---------------------------------------------------------- fault plan
  // Each arms one fault at outgoing frame `index` (0-based over this
  // endpoint's lifetime sends). Pass -1 to disarm.

  void DropFrame(int64_t index);
  void DuplicateFrame(int64_t index);
  /// Holds frame `index` and delivers it after the following send.
  void ReorderFrame(int64_t index);
  /// Delivers only the first `keep_bytes` bytes of frame `index`.
  void TearFrame(int64_t index, size_t keep_bytes);
  /// Inverts bit `bit` (0 = LSB of byte 0) of frame `index`'s wire
  /// image.
  void FlipBit(int64_t index, size_t bit);
  /// Sleeps `millis` before delivering frame `index`.
  void DelayFrame(int64_t index, int millis);
  /// Frame `index` and all later sends fail kUnavailable; the
  /// underlying connection closes so the peer observes the reset too.
  void ResetAtFrame(int64_t index);

  /// Observes every outgoing frame BEFORE faults apply (what the
  /// sender actually produced — the frame-capture feed for
  /// tools/wal_dump.py --frames).
  void SetSendObserver(std::function<void(const std::vector<uint8_t>&)> fn);

  FaultTransportStats stats() const;

  // ----------------------------------------------------------- Transport
  Status Send(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> Recv(std::chrono::milliseconds timeout) override;
  void Close() override;
  bool connected() const override;

 private:
  const std::unique_ptr<Transport> inner_;

  mutable std::mutex mu_;
  int64_t drop_at_ = -1;
  int64_t duplicate_at_ = -1;
  int64_t reorder_at_ = -1;
  int64_t tear_at_ = -1;
  size_t tear_keep_bytes_ = 0;
  int64_t flip_at_ = -1;
  size_t flip_bit_ = 0;
  int64_t delay_at_ = -1;
  int delay_millis_ = 0;
  int64_t reset_at_ = -1;
  bool reset_fired_ = false;
  /// A frame held back by ReorderFrame, delivered after the next send.
  std::vector<uint8_t> held_frame_;
  bool holding_ = false;
  std::function<void(const std::vector<uint8_t>&)> observer_;
  FaultTransportStats stats_;
};

}  // namespace msketch

#endif  // MSKETCH_REPLICA_FAULT_TRANSPORT_H_
