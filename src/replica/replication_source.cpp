#include "replica/replication_source.h"

#include <thread>
#include <utility>

#include "common/crc32c.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/frame.h"

namespace msketch {

ReplicationSource::ReplicationSource(ReplicationOptions options)
    : options_(options) {
  MSKETCH_CHECK(options_.history_epochs >= 1);
  MSKETCH_CHECK(options_.chunk_bytes >= 1);
  // Scrape-time collector, mirroring the StreamingCube pattern: the
  // frame pumps touch only the local stats_ under mu_; the registry is
  // only read at scrape.
  obs_collector_id_ = obs::GlobalRegistry().AddCollector(
      [this](obs::MetricsEmitter& em) {
        const ReplicationSourceStats s = stats();
        em.EmitCounter("msk_replica_epochs_shipped_total", {},
                       "Epoch delta records shipped to followers",
                       s.epochs_shipped);
        em.EmitCounter("msk_replica_snapshots_shipped_total", {},
                       "Full snapshot transfers started", s.snapshots_shipped);
        em.EmitCounter("msk_replica_chunks_shipped_total", {},
                       "Snapshot chunks shipped", s.chunks_shipped);
        em.EmitCounter("msk_replica_bytes_shipped_total", {},
                       "Replication payload bytes shipped", s.bytes_shipped);
        em.EmitCounter("msk_replica_heartbeats_sent_total", {},
                       "Leader heartbeats sent", s.heartbeats_sent);
        em.EmitCounter("msk_replica_send_retries_total", {},
                       "Frame sends retried after a transient failure",
                       s.send_retries);
        em.EmitCounter("msk_replica_send_failures_total", {},
                       "Frame sends abandoned (budget exhausted or "
                       "non-retryable)",
                       s.send_failures);
        em.EmitGauge("msk_replica_bytes_in_flight", {},
                     "Snapshot bytes queued for the current transfer",
                     static_cast<double>(s.bytes_in_flight));
      });
}

ReplicationSource::~ReplicationSource() {
  obs::GlobalRegistry().RemoveCollector(obs_collector_id_);
}

void ReplicationSource::SetSnapshotProvider(SnapshotProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  provider_ = std::move(provider);
}

void ReplicationSource::SetShape(int k, size_t num_dims, int kll_k) {
  std::lock_guard<std::mutex> lock(mu_);
  k_ = k;
  num_dims_ = num_dims;
  kll_k_ = kll_k;
  shape_set_ = true;
  if (shipped_dict_sizes_.empty()) shipped_dict_sizes_.resize(num_dims, 0);
}

void ReplicationSource::OnEpoch(uint64_t epoch,
                                const std::vector<WalCellRef>& cells,
                                const std::vector<Dictionary>& dicts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shipped_dict_sizes_.size() != dicts.size()) {
    shipped_dict_sizes_.assign(dicts.size(), 0);
  }
  // Encode exactly like DurableLog::LogEpoch: the record carries the
  // dictionary values beyond the shipped watermark, so a follower
  // replaying records in epoch order re-interns ids identically.
  std::vector<uint32_t> dict_start(dicts.size());
  std::vector<std::vector<std::string>> dict_delta(dicts.size());
  for (size_t d = 0; d < dicts.size(); ++d) {
    dict_start[d] = shipped_dict_sizes_[d];
    const uint32_t size = static_cast<uint32_t>(dicts[d].size());
    dict_delta[d].reserve(size - dict_start[d]);
    for (uint32_t id = dict_start[d]; id < size; ++id) {
      dict_delta[d].push_back(dicts[d].ValueOf(id));
    }
  }
  BytesWriter payload;
  EncodeEpochRecord(epoch, dict_start, dict_delta, cells, &payload);
  history_.push_back({epoch, payload.Take()});
  while (history_.size() > options_.history_epochs) {
    history_.pop_front();
    ++stats_.history_evictions;
  }
  for (size_t d = 0; d < dicts.size(); ++d) {
    shipped_dict_sizes_[d] = static_cast<uint32_t>(dicts[d].size());
  }
  current_epoch_.store(epoch, std::memory_order_release);
}

Status ReplicationSource::SendWithRetry(Transport* t,
                                        const std::vector<uint8_t>& wire) {
  Backoff backoff(options_.send_backoff, options_.seed);
  Status st;
  for (;;) {
    st = t->Send(wire);
    if (st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_shipped += wire.size();
      return st;
    }
    if (!backoff.ShouldRetry(st)) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.send_retries;
    }
    std::this_thread::sleep_for(backoff.NextDelay());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.send_failures;
  return st;
}

Status ReplicationSource::ShipSnapshot(Transport* t,
                                       const SnapshotImage& image,
                                       uint32_t first_chunk) {
  const std::vector<uint8_t>& bytes = *image.bytes;
  const size_t chunk_bytes = options_.chunk_bytes;
  const uint32_t num_chunks = static_cast<uint32_t>(
      (bytes.size() + chunk_bytes - 1) / chunk_bytes);
  SnapBeginFrame begin;
  begin.snapshot_epoch = image.epoch;
  begin.total_bytes = bytes.size();
  begin.num_chunks = num_chunks;
  begin.chunk_bytes = static_cast<uint32_t>(chunk_bytes);
  begin.first_chunk = first_chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_in_flight =
        bytes.size() - static_cast<size_t>(first_chunk) * chunk_bytes;
  }
  MSKETCH_RETURN_IF_ERROR(SendWithRetry(
      t, EncodeFrame(FrameType::kSnapBegin, EncodeSnapBegin(begin))));
  for (uint32_t c = first_chunk; c < num_chunks; ++c) {
    SnapChunkFrame chunk;
    chunk.chunk_index = c;
    const size_t off = static_cast<size_t>(c) * chunk_bytes;
    const size_t len = std::min(chunk_bytes, bytes.size() - off);
    chunk.bytes.assign(bytes.begin() + off, bytes.begin() + off + len);
    MSKETCH_RETURN_IF_ERROR(SendWithRetry(
        t, EncodeFrame(FrameType::kSnapChunk, EncodeSnapChunk(chunk))));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.chunks_shipped;
    stats_.bytes_in_flight -= std::min<uint64_t>(stats_.bytes_in_flight, len);
  }
  SnapEndFrame end;
  end.snapshot_epoch = image.epoch;
  end.image_crc = crc32c::Mask(crc32c::Value(bytes.data(), bytes.size()));
  return SendWithRetry(t,
                       EncodeFrame(FrameType::kSnapEnd, EncodeSnapEnd(end)));
}

Status ReplicationSource::ShipDeltasAndCaughtUp(Transport* t,
                                                uint64_t after_epoch) {
  // Copy the records to ship outside the lock (OnEpoch keeps running).
  std::vector<std::vector<uint8_t>> records;
  uint64_t through = after_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const HistoryEntry& e : history_) {
      if (e.epoch <= after_epoch) continue;
      // Records must chain consecutively onto `after_epoch`; a gap
      // (evicted prefix) means the rest is stale — ship nothing past
      // it and let the follower detect the shortfall and resync.
      if (e.epoch != through + 1) break;
      records.push_back(e.record);
      through = e.epoch;
    }
  }
  for (const std::vector<uint8_t>& rec : records) {
    MSKETCH_RETURN_IF_ERROR(
        SendWithRetry(t, EncodeFrame(FrameType::kDelta, rec)));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.epochs_shipped;
  }
  CaughtUpFrame caught;
  caught.through_epoch = through;
  return SendWithRetry(
      t, EncodeFrame(FrameType::kCaughtUp, EncodeCaughtUp(caught)));
}

Status ReplicationSource::HandleHello(Transport* t, const HelloFrame& hello) {
  obs::Span span("replica.ship");
  bool shape_mismatch = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hellos_served;
    shape_mismatch =
        shape_set_ &&
        (hello.k != static_cast<uint32_t>(k_) || hello.num_dims != num_dims_ ||
         hello.kll_k != static_cast<uint32_t>(kll_k_));
  }
  if (shape_mismatch) {
    ErrorFrame err;
    err.code = static_cast<uint32_t>(StatusCode::kInvalidArgument);
    err.message = "replica shape does not match the leader";
    Status st =
        SendWithRetry(t, EncodeFrame(FrameType::kError, EncodeError(err)));
    return st.ok() ? Status::InvalidArgument(err.message) : st;
  }

  // Resume a cached snapshot transfer if the follower asks and the
  // image is still the one we cut.
  SnapshotImage resume_image;
  bool resume = false;
  if (hello.resume) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_snapshot_.bytes != nullptr &&
        cached_snapshot_.epoch == hello.resume_epoch) {
      resume_image = cached_snapshot_;
      resume = true;
      ++stats_.snapshots_resumed;
    }
  }
  if (resume) {
    MSKETCH_RETURN_IF_ERROR(
        ShipSnapshot(t, resume_image, hello.resume_next_chunk));
    return ShipDeltasAndCaughtUp(t, resume_image.epoch);
  }

  const uint64_t current = current_epoch();
  if (hello.have_epoch >= current) {
    CaughtUpFrame caught;
    caught.through_epoch = current;
    return SendWithRetry(
        t, EncodeFrame(FrameType::kCaughtUp, EncodeCaughtUp(caught)));
  }

  // Delta catch-up when the history still chains onto have_epoch.
  bool deltas_cover = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deltas_cover = !history_.empty() &&
                   history_.front().epoch <= hello.have_epoch + 1;
  }
  if (deltas_cover) return ShipDeltasAndCaughtUp(t, hello.have_epoch);

  // Full resync: cut (and cache) a fresh snapshot, ship it chunked,
  // then the deltas the history holds beyond it.
  SnapshotProvider provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    provider = provider_;
  }
  if (!provider) {
    return Status::Unsupported("replication source has no snapshot provider");
  }
  Result<SnapshotImage> image = provider();
  if (!image.ok()) return image.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    cached_snapshot_ = image.value();
    ++stats_.snapshots_shipped;
  }
  MSKETCH_RETURN_IF_ERROR(ShipSnapshot(t, image.value(), 0));
  return ShipDeltasAndCaughtUp(t, image.value().epoch);
}

Status ReplicationSource::Serve(Transport* transport) {
  stop_requested_.store(false, std::memory_order_release);
  auto last_send = std::chrono::steady_clock::now();
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire)) {
      return Status::OK();
    }
    if (!transport->connected()) {
      return Status::Unavailable("replica link closed");
    }
    Result<std::vector<uint8_t>> wire = transport->Recv(options_.recv_poll);
    if (!wire.ok()) {
      if (!transport->connected()) return wire.status();
      // Idle: heartbeat so the follower can tell quiet from dead.
      const auto now = std::chrono::steady_clock::now();
      if (now - last_send >= options_.heartbeat_interval) {
        HeartbeatFrame hb;
        hb.current_epoch = current_epoch();
        Status st = SendWithRetry(
            transport,
            EncodeFrame(FrameType::kHeartbeat, EncodeHeartbeat(hb)));
        if (!st.ok() && !transport->connected()) return st;
        last_send = now;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.heartbeats_sent;
      }
      continue;
    }
    Result<Frame> frame = DecodeFrame(wire.value());
    if (!frame.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt_requests;
      continue;  // the follower retries its request
    }
    switch (frame.value().type) {
      case FrameType::kHello: {
        Result<HelloFrame> hello = DecodeHello(frame.value().payload);
        if (!hello.ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_requests;
          break;
        }
        Status st = HandleHello(transport, hello.value());
        if (!st.ok() && !transport->connected()) return st;
        last_send = std::chrono::steady_clock::now();
        break;
      }
      case FrameType::kHeartbeat:
        break;  // follower liveness probe; nothing to do
      default: {
        // A follower never sends data frames; count and ignore.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt_requests;
        break;
      }
    }
  }
}

void ReplicationSource::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
}

ReplicationSourceStats ReplicationSource::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace msketch
