// ReplicaApplier: the follower side of snapshot shipping + delta
// replication.
//
// The applier owns a follower-local CubeStore + dictionaries and pulls
// state from a leader's ReplicationSource over a Transport. One sync
// round (SyncOnce) sends a Hello carrying the applied epoch and shape,
// then applies the leader's plan frame by frame:
//
//   * kDelta records must chain consecutively onto the applied epoch —
//     the WAL replay rule (RecoverState). Anything else (duplicates,
//     gaps, corrupt payloads) is SKIPPED with a counter, never applied:
//     the leader pumps its whole plan without waiting for acks, so one
//     round must absorb a damaged plan rather than abort at the first
//     bad frame and choke on the leftovers.
//   * a snapshot transfer (kSnapBegin/kSnapChunk*/kSnapEnd) assembles
//     the checkpoint image chunk by chunk; duplicate/stale chunks are
//     skipped, a lost chunk parks the assembly at the first missing
//     index. The image only installs after the whole-image CRC in
//     kSnapEnd verifies, then rebuilds a fresh store through the
//     recovery path (RebuildStore) — bit-exact columns, dictionaries,
//     and KLL side column. A partially assembled image survives the
//     round, so the next Hello resumes the transfer at the first
//     missing chunk.
//   * kCaughtUp ends the round. A caught-up epoch beyond the applied
//     one proves frames were lost or skipped — the round returns
//     kCorruption and the next Hello resyncs from the applied state.
//
// Stall detection: while waiting mid-round, receive timeouts and
// leader heartbeats both count against a miss budget (a heartbeat
// mid-round means the leader believes it finished while frames we
// needed never arrived). Budget exhaustion aborts the round —
// kCorruption (re-Hello) when heartbeats prove the leader alive,
// kUnavailable (reconnect) when the link is silent.
//
// SyncWithRetry wraps rounds in bounded backoff. Link corruption is
// round-retryable (the leader retransmits clean state on the next
// Hello), unlike storage corruption; kUnavailable returns to the
// caller once the transport is dead — reconnecting is the caller's
// job.
//
// Availability: the store is only locked while a frame applies, so
// certified queries (QueryQuantileCertified) keep answering from the
// last applied epoch throughout any outage — bounded staleness, never
// unavailability.
#ifndef MSKETCH_REPLICA_REPLICA_APPLIER_H_
#define MSKETCH_REPLICA_REPLICA_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/cube_store.h"
#include "cube/dictionary.h"
#include "cube/summary_router.h"
#include "replica/backoff.h"
#include "replica/transport.h"

namespace msketch {

struct ReplicaOptions {
  /// KLL side-column capacity; 0 = moments only. Must match the
  /// leader's shape (the Hello carries it; a mismatch is refused).
  int kll_k = 0;
  /// Certified query path configuration (SummaryRouter).
  RouterOptions router;
  /// Per-round retry schedule (SyncWithRetry).
  BackoffPolicy retry;
  /// How long one Recv waits before counting a heartbeat miss.
  std::chrono::milliseconds recv_timeout{200};
  /// Consecutive non-data waits (timeouts + mid-round heartbeats)
  /// tolerated before the round is declared stalled.
  int heartbeat_miss_budget = 3;
  /// Backoff jitter stream seed (deterministic soaks).
  uint64_t seed = 0xf0110eedULL;
};

struct ReplicaApplierStats {
  uint64_t rounds = 0;
  uint64_t epochs_applied = 0;
  uint64_t cells_applied = 0;
  /// Full snapshot installs (each one is a resync).
  uint64_t resyncs = 0;
  uint64_t snapshot_chunks = 0;
  /// Rounds that resumed a partially assembled snapshot.
  uint64_t snapshot_resumes = 0;
  uint64_t gaps_detected = 0;
  uint64_t corrupt_frames = 0;
  uint64_t dup_frames = 0;
  uint64_t round_retries = 0;
  uint64_t heartbeat_misses = 0;
  uint64_t heartbeats_seen = 0;
  uint64_t certified_queries = 0;
};

class ReplicaApplier {
 public:
  ReplicaApplier(int k, size_t num_dims, ReplicaOptions options = {});
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// One sync round: Hello -> apply the leader's plan -> CaughtUp.
  /// kCorruption = damaged/stalled round (re-Hello resyncs);
  /// kUnavailable = link down (reconnect and call again).
  Status SyncOnce(Transport* transport);

  /// SyncOnce under bounded backoff. Retries corrupt and transient
  /// rounds; returns once a round completes, the budget exhausts, the
  /// transport dies, or the error is terminal (e.g. shape refusal).
  Status SyncWithRetry(Transport* transport);

  /// Highest epoch fully applied to the local store.
  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  /// Highest leader epoch heard (heartbeats / caught-up frames).
  uint64_t leader_epoch() const {
    return leader_epoch_.load(std::memory_order_acquire);
  }
  /// Bounded staleness: epochs the local store trails the leader by.
  uint64_t lag_epochs() const {
    const uint64_t leader = leader_epoch();
    const uint64_t applied = applied_epoch();
    return leader > applied ? leader - applied : 0;
  }

  /// Certified phi-quantile over the applied state. One string per
  /// dimension; "" = unconstrained. An unknown value matches nothing
  /// (empty input -> non-OK status, the router's only error). Answers
  /// come from the last applied epoch — available during any outage.
  CertifiedQuantile QueryQuantileCertified(
      const std::vector<std::string>& filter, double phi);

  /// Read access to the applied state under the applier's lock (test
  /// oracles fingerprint the store through this).
  void Inspect(const std::function<void(const CubeStore&,
                                        const std::vector<Dictionary>&)>& fn)
      const;

  ReplicaApplierStats stats() const;

 private:
  /// In-progress snapshot assembly (survives round aborts for resume).
  struct SnapshotAssembly {
    bool active = false;
    uint64_t epoch = 0;
    uint64_t total_bytes = 0;
    uint32_t num_chunks = 0;
    uint32_t chunk_bytes = 0;
    uint32_t next_chunk = 0;
    std::vector<uint8_t> buffer;
  };

  /// Sends one frame with bounded retry on transient transport errors.
  Status SendWithBackoff(Transport* t, const std::vector<uint8_t>& wire);
  /// Raises the observed leader epoch (monotone).
  void BumpLeaderEpoch(uint64_t epoch);

  // Frame handlers. Abnormal frames (duplicate, gapped, corrupt) are
  // absorbed — counted and skipped, Status::OK — so one round drains a
  // damaged plan; only real local-apply failures propagate.

  /// Applies one epoch record: chain check, dictionary patch, cells.
  Status ApplyDeltaRecord(const std::vector<uint8_t>& payload);
  /// Starts (or validates the resume of) a snapshot transfer.
  Status ApplySnapBegin(const std::vector<uint8_t>& payload);
  /// Appends one snapshot chunk (dup/stale skip, gap parks assembly).
  Status ApplySnapChunk(const std::vector<uint8_t>& payload);
  /// Verifies the assembled image against kSnapEnd and installs it.
  Status InstallSnapshot(const std::vector<uint8_t>& payload);

  const int k_;
  const size_t num_dims_;
  const ReplicaOptions options_;

  mutable std::mutex mu_;
  CubeStore store_;
  std::vector<Dictionary> dicts_;
  SummaryRouter router_;
  SnapshotAssembly snap_;
  ReplicaApplierStats stats_;

  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> leader_epoch_{0};
  int obs_collector_id_ = 0;
};

}  // namespace msketch

#endif  // MSKETCH_REPLICA_REPLICA_APPLIER_H_
