#include "replica/frame.h"

#include "common/crc32c.h"

namespace msketch {

namespace {

// Frame payloads beyond this are lying length prefixes, not real
// transfers (matches the WAL's record bound).
constexpr uint32_t kMaxFrameLen = 1u << 30;

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kError);
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  const uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = crc32c::Extend(0, &type_byte, 1);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  BytesWriter w;
  w.PutU32(crc32c::Mask(crc));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU8(type_byte);
  std::vector<uint8_t> wire = w.Take();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t len) {
  BytesReader header(data, len);
  uint32_t masked = 0, payload_len = 0;
  uint8_t type_byte = 0;
  if (!header.GetU32(&masked).ok() || !header.GetU32(&payload_len).ok() ||
      !header.GetU8(&type_byte).ok()) {
    return Status::Corruption("frame: torn header");
  }
  if (payload_len > kMaxFrameLen) {
    return Status::Corruption("frame: length prefix exceeds bound");
  }
  if (header.remaining() != payload_len) {
    return Status::Corruption("frame: torn payload");
  }
  uint32_t crc = crc32c::Extend(0, &type_byte, 1);
  crc = crc32c::Extend(crc, header.data() + header.pos(), payload_len);
  if (crc32c::Unmask(masked) != crc) {
    return Status::Corruption("frame: checksum mismatch");
  }
  if (!KnownType(type_byte)) {
    return Status::Corruption("frame: unknown type");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload.assign(header.data() + header.pos(),
                       header.data() + header.pos() + payload_len);
  return frame;
}

std::vector<uint8_t> EncodeHello(const HelloFrame& f) {
  BytesWriter w;
  w.PutU64(f.have_epoch);
  w.PutU32(f.k);
  w.PutU32(f.num_dims);
  w.PutU32(f.kll_k);
  w.PutU8(f.resume ? 1 : 0);
  w.PutU64(f.resume_epoch);
  w.PutU32(f.resume_next_chunk);
  return w.Take();
}

Result<HelloFrame> DecodeHello(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  HelloFrame f;
  uint8_t resume = 0;
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.have_epoch));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.k));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.num_dims));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.kll_k));
  MSKETCH_RETURN_NOT_OK(in.GetU8(&resume));
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.resume_epoch));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.resume_next_chunk));
  if (resume > 1) return Status::Corruption("hello: bad resume flag");
  f.resume = resume == 1;
  return f;
}

std::vector<uint8_t> EncodeSnapBegin(const SnapBeginFrame& f) {
  BytesWriter w;
  w.PutU64(f.snapshot_epoch);
  w.PutU64(f.total_bytes);
  w.PutU32(f.num_chunks);
  w.PutU32(f.chunk_bytes);
  w.PutU32(f.first_chunk);
  return w.Take();
}

Result<SnapBeginFrame> DecodeSnapBegin(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  SnapBeginFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.snapshot_epoch));
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.total_bytes));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.num_chunks));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.chunk_bytes));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.first_chunk));
  if (f.chunk_bytes == 0 || f.num_chunks == 0 ||
      f.total_bytes > kMaxFrameLen ||
      f.first_chunk >= f.num_chunks) {
    return Status::Corruption("snap begin: implausible geometry");
  }
  return f;
}

std::vector<uint8_t> EncodeSnapChunk(const SnapChunkFrame& f) {
  BytesWriter w;
  w.PutU32(f.chunk_index);
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), f.bytes.begin(), f.bytes.end());
  return out;
}

Result<SnapChunkFrame> DecodeSnapChunk(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  SnapChunkFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.chunk_index));
  f.bytes.assign(in.data() + in.pos(), in.data() + in.pos() + in.remaining());
  if (f.bytes.empty()) return Status::Corruption("snap chunk: empty");
  return f;
}

std::vector<uint8_t> EncodeSnapEnd(const SnapEndFrame& f) {
  BytesWriter w;
  w.PutU64(f.snapshot_epoch);
  w.PutU32(f.image_crc);
  return w.Take();
}

Result<SnapEndFrame> DecodeSnapEnd(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  SnapEndFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.snapshot_epoch));
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.image_crc));
  return f;
}

std::vector<uint8_t> EncodeCaughtUp(const CaughtUpFrame& f) {
  BytesWriter w;
  w.PutU64(f.through_epoch);
  return w.Take();
}

Result<CaughtUpFrame> DecodeCaughtUp(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  CaughtUpFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.through_epoch));
  return f;
}

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatFrame& f) {
  BytesWriter w;
  w.PutU64(f.current_epoch);
  return w.Take();
}

Result<HeartbeatFrame> DecodeHeartbeat(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  HeartbeatFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU64(&f.current_epoch));
  return f;
}

std::vector<uint8_t> EncodeError(const ErrorFrame& f) {
  BytesWriter w;
  w.PutU32(f.code);
  w.PutString(f.message);
  return w.Take();
}

Result<ErrorFrame> DecodeError(const std::vector<uint8_t>& payload) {
  BytesReader in(payload.data(), payload.size());
  ErrorFrame f;
  MSKETCH_RETURN_NOT_OK(in.GetU32(&f.code));
  MSKETCH_RETURN_NOT_OK(in.GetString(&f.message));
  return f;
}

}  // namespace msketch
