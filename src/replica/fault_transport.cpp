#include "replica/fault_transport.h"

#include <thread>
#include <utility>

namespace msketch {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)) {}

void FaultInjectingTransport::DropFrame(int64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_at_ = index;
}

void FaultInjectingTransport::DuplicateFrame(int64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  duplicate_at_ = index;
}

void FaultInjectingTransport::ReorderFrame(int64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  reorder_at_ = index;
}

void FaultInjectingTransport::TearFrame(int64_t index, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  tear_at_ = index;
  tear_keep_bytes_ = keep_bytes;
}

void FaultInjectingTransport::FlipBit(int64_t index, size_t bit) {
  std::lock_guard<std::mutex> lock(mu_);
  flip_at_ = index;
  flip_bit_ = bit;
}

void FaultInjectingTransport::DelayFrame(int64_t index, int millis) {
  std::lock_guard<std::mutex> lock(mu_);
  delay_at_ = index;
  delay_millis_ = millis;
}

void FaultInjectingTransport::ResetAtFrame(int64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  reset_at_ = index;
}

void FaultInjectingTransport::SetSendObserver(
    std::function<void(const std::vector<uint8_t>&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(fn);
}

FaultTransportStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status FaultInjectingTransport::Send(const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> to_send = frame;
  std::vector<uint8_t> flush_held;
  bool drop = false, duplicate = false, hold = false;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t index = static_cast<int64_t>(stats_.frames_sent++);
    if (observer_) observer_(frame);
    if (reset_fired_ || (reset_at_ >= 0 && index >= reset_at_)) {
      if (!reset_fired_) {
        reset_fired_ = true;
        ++stats_.resets;
        inner_->Close();
      }
      return Status::Unavailable("fault transport: injected reset");
    }
    if (index == drop_at_) {
      drop_at_ = -1;
      ++stats_.frames_dropped;
      drop = true;
    }
    if (index == duplicate_at_) {
      duplicate_at_ = -1;
      ++stats_.frames_duplicated;
      duplicate = true;
    }
    if (index == tear_at_) {
      tear_at_ = -1;
      ++stats_.frames_torn;
      if (to_send.size() > tear_keep_bytes_) to_send.resize(tear_keep_bytes_);
    }
    if (index == flip_at_) {
      flip_at_ = -1;
      ++stats_.bits_flipped;
      const size_t byte = flip_bit_ / 8;
      if (byte < to_send.size()) {
        to_send[byte] ^= static_cast<uint8_t>(1u << (flip_bit_ % 8));
      }
    }
    if (index == delay_at_) {
      delay_at_ = -1;
      ++stats_.frames_delayed;
      delay_ms = delay_millis_;
    }
    if (index == reorder_at_) {
      reorder_at_ = -1;
      held_frame_ = std::move(to_send);
      holding_ = true;
      hold = true;
    } else if (holding_) {
      // The successor flushes the held frame AFTER itself: swap order.
      ++stats_.frames_reordered;
      flush_held = std::move(held_frame_);
      holding_ = false;
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (drop || hold) return Status::OK();  // sender believes it went out
  MSKETCH_RETURN_NOT_OK(inner_->Send(to_send));
  if (duplicate) MSKETCH_RETURN_NOT_OK(inner_->Send(to_send));
  if (!flush_held.empty()) MSKETCH_RETURN_NOT_OK(inner_->Send(flush_held));
  return Status::OK();
}

Result<std::vector<uint8_t>> FaultInjectingTransport::Recv(
    std::chrono::milliseconds timeout) {
  return inner_->Recv(timeout);
}

void FaultInjectingTransport::Close() { inner_->Close(); }

bool FaultInjectingTransport::connected() const {
  return inner_->connected();
}

}  // namespace msketch
