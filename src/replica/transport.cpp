#include "replica/transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace msketch {

namespace {

/// Shared state of one pipe: a queue per direction plus the reset flag.
struct PipeState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<uint8_t>> queues[2];  // indexed by receiver side
  bool closed = false;
};

class PipeEndpoint : public Transport {
 public:
  PipeEndpoint(std::shared_ptr<PipeState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~PipeEndpoint() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->closed) {
        return Status::Unavailable("pipe: connection reset");
      }
      state_->queues[1 - side_].push_back(frame);
    }
    state_->cv.notify_all();
    return Status::OK();
  }

  Result<std::vector<uint8_t>> Recv(
      std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    std::deque<std::vector<uint8_t>>& inbox = state_->queues[side_];
    state_->cv.wait_for(lock, timeout, [&] {
      return !inbox.empty() || state_->closed;
    });
    // Frames queued before the reset still deliver (the peer sent them
    // while the link was up); only an empty inbox surfaces the reset.
    if (!inbox.empty()) {
      std::vector<uint8_t> frame = std::move(inbox.front());
      inbox.pop_front();
      return frame;
    }
    if (state_->closed) {
      return Status::Unavailable("pipe: connection reset");
    }
    return Status::Unavailable("pipe: recv timeout");
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->closed = true;
    }
    state_->cv.notify_all();
  }

  bool connected() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return !state_->closed;
  }

 private:
  const std::shared_ptr<PipeState> state_;
  const int side_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakeInProcessPipe() {
  auto state = std::make_shared<PipeState>();
  return {std::make_unique<PipeEndpoint>(state, 0),
          std::make_unique<PipeEndpoint>(state, 1)};
}

}  // namespace msketch
