// Bounded exponential backoff with jitter and a retry budget.
//
// Every replication retry loop — leader sends, follower sync rounds —
// runs through one of these: retries are gated on IsRetryable() (status
// class, never message text), delays double from `initial` to `max`
// with ±`jitter` randomization (deterministic xoshiro stream, seeded
// per owner, so soaks replay exactly), and the loop gives up after
// `max_attempts` — unbounded retry is a liveness bug the CI gate
// rejects.
#ifndef MSKETCH_REPLICA_BACKOFF_H_
#define MSKETCH_REPLICA_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace msketch {

struct BackoffPolicy {
  std::chrono::milliseconds initial{1};
  std::chrono::milliseconds max{64};
  double multiplier = 2.0;
  /// Fractional jitter: each delay is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter]. Decorrelates retry storms.
  double jitter = 0.2;
  /// Total attempts (first try included). <= 0 means a single attempt.
  int max_attempts = 8;
};

/// One retry episode. Reset() rearms it for the next episode.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  /// True when the budget allows another attempt after a failure with
  /// `status`; false on a non-retryable status or an exhausted budget.
  bool ShouldRetry(const Status& status) {
    if (!IsRetryable(status)) return false;
    return attempts_ + 1 < std::max(policy_.max_attempts, 1);
  }

  /// The next delay (advances the schedule and the attempt count).
  std::chrono::milliseconds NextDelay() {
    ++attempts_;
    const double scale =
        1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    const double millis =
        static_cast<double>(current_.count()) * std::max(scale, 0.0);
    current_ = std::min(
        std::chrono::milliseconds(static_cast<int64_t>(
            static_cast<double>(current_.count()) * policy_.multiplier)),
        policy_.max);
    return std::chrono::milliseconds(
        std::max<int64_t>(static_cast<int64_t>(millis), 0));
  }

  int attempts() const { return attempts_; }

  void Reset() {
    attempts_ = 0;
    current_ = policy_.initial;
  }

 private:
  const BackoffPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
  std::chrono::milliseconds current_ = policy_.initial;
};

}  // namespace msketch

#endif  // MSKETCH_REPLICA_BACKOFF_H_
