// Pluggable message transport for replication.
//
// A Transport endpoint carries whole wire frames (frame.h) in both
// directions. The contract is deliberately weak — the link may drop,
// duplicate, reorder, tear, or corrupt frames, stall, or reset — and
// the replication protocol must survive all of it (the
// FaultInjectingTransport wrapper injects exactly those faults in
// tests). Errors are classified, never string-matched: a timeout or a
// reset surfaces as kUnavailable (retryable, see common/status.h);
// frame integrity is the receiver's job via DecodeFrame.
#ifndef MSKETCH_REPLICA_TRANSPORT_H_
#define MSKETCH_REPLICA_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"

namespace msketch {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one wire frame to the peer. kUnavailable once the
  /// connection has reset (either side closed).
  virtual Status Send(const std::vector<uint8_t>& frame) = 0;

  /// Blocks up to `timeout` for the next inbound frame. kUnavailable
  /// on timeout (peer may just be idle — check connected()) and on
  /// reset. Frames are delivered in the order the link presents them,
  /// which after fault injection need not be send order.
  virtual Result<std::vector<uint8_t>> Recv(
      std::chrono::milliseconds timeout) = 0;

  /// Resets the connection: both directions fail from now on, on both
  /// endpoints. Idempotent.
  virtual void Close() = 0;

  /// False once either endpoint closed. A Recv timeout with
  /// connected() == true means "idle", with false it means "dead".
  virtual bool connected() const = 0;
};

/// An in-process bidirectional pipe: two connected endpoints backed by
/// bounded-latency queues (mutex + condvar; frame pumps are not hot
/// paths). Closing either endpoint resets both.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakeInProcessPipe();

}  // namespace msketch

#endif  // MSKETCH_REPLICA_TRANSPORT_H_
