// ReplicationSource: the leader side of snapshot shipping + delta
// replication.
//
// The source is fed by the leader cube's publish pipeline — OnEpoch()
// receives every published epoch's drained delta batch (the same
// WalCellRef view the durable log gets) and encodes it into a bounded
// in-memory history of WAL-format epoch records. Serve() answers one
// follower connection with a follower-driven pull protocol (frame.h):
//
//   * a Hello whose have_epoch the delta history covers gets the
//     missing kDelta records (consecutive epochs), then kCaughtUp;
//   * a Hello too far behind (history evicted) gets a full snapshot —
//     the checkpoint image from the SnapshotProvider, shipped as
//     CRC32C-framed chunks (kSnapBegin / kSnapChunk* / kSnapEnd), then
//     the deltas beyond the snapshot epoch, then kCaughtUp;
//   * a resume Hello for the still-cached snapshot image restarts the
//     chunk stream at the requested index instead of re-cutting;
//   * idle gaps emit kHeartbeat so the follower can tell a quiet
//     leader from a dead one.
//
// Every send runs through bounded exponential backoff with jitter and
// a retry budget (backoff.h); a dead transport ends Serve() — the
// follower reconnects and resumes. OnEpoch never blocks on a follower
// and never fails the publish (availability-first, mirroring the
// durability hook's never-block-publish contract).
#ifndef MSKETCH_REPLICA_REPLICATION_SOURCE_H_
#define MSKETCH_REPLICA_REPLICATION_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/dictionary.h"
#include "persist/wal.h"
#include "replica/backoff.h"
#include "replica/transport.h"

namespace msketch {

/// A cut snapshot: the full checkpoint image (persist/checkpoint.h
/// encoding, CRC trailer included) for one epoch. Shared so a cached
/// image can serve resumed transfers without copying.
struct SnapshotImage {
  uint64_t epoch = 0;
  std::shared_ptr<const std::vector<uint8_t>> bytes;
};

struct ReplicationSourceStats {
  uint64_t hellos_served = 0;
  uint64_t epochs_shipped = 0;
  uint64_t snapshots_shipped = 0;
  uint64_t snapshots_resumed = 0;
  uint64_t chunks_shipped = 0;
  uint64_t bytes_shipped = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t send_retries = 0;
  uint64_t send_failures = 0;
  uint64_t corrupt_requests = 0;
  uint64_t history_evictions = 0;
  /// Snapshot bytes queued for the current transfer, not yet shipped.
  uint64_t bytes_in_flight = 0;
};

struct ReplicationOptions {
  /// Encoded epoch records kept for delta catch-up; followers further
  /// behind than this resync from a snapshot.
  size_t history_epochs = 1024;
  /// Snapshot chunk payload size.
  size_t chunk_bytes = 64 * 1024;
  /// Per-send retry schedule (transient transport errors only).
  BackoffPolicy send_backoff;
  /// Idle heartbeat cadence while serving.
  std::chrono::milliseconds heartbeat_interval{100};
  /// Serve()'s request poll granularity (also the stop-check latency).
  std::chrono::milliseconds recv_poll{20};
  /// Backoff jitter stream seed (deterministic soaks).
  uint64_t seed = 0x5eed5eedULL;
};

class ReplicationSource {
 public:
  explicit ReplicationSource(ReplicationOptions options = {});
  ~ReplicationSource();

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Cuts a full checkpoint image of the leader's current published
  /// state. Wired by StreamingCube::EnableReplication; standalone
  /// tests install their own.
  using SnapshotProvider = std::function<Result<SnapshotImage>()>;
  void SetSnapshotProvider(SnapshotProvider provider);

  /// The leader's shape, checked against every Hello (a mismatched
  /// follower gets a terminal kError frame, not a byte stream it will
  /// misparse). kll_k = 0 means no KLL side column.
  void SetShape(int k, size_t num_dims, int kll_k);

  /// Publish-pipeline tee: encodes epoch `epoch`'s drained batch (and
  /// the dictionary delta beyond the shipped watermark) into the delta
  /// history. Must be called in epoch order (the publisher hook
  /// guarantees it). Never fails the publish.
  void OnEpoch(uint64_t epoch, const std::vector<WalCellRef>& cells,
               const std::vector<Dictionary>& dicts);

  /// Serves one follower connection until the transport dies or
  /// RequestStop(). Returns why it stopped (kUnavailable = link down —
  /// the normal end of a connection).
  Status Serve(Transport* transport);
  /// Makes Serve() return within ~recv_poll (sticky until the next
  /// Serve call observes it; one serving loop per source at a time).
  void RequestStop();

  /// Highest epoch OnEpoch has seen (0 before the first).
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  ReplicationSourceStats stats() const;

 private:
  struct HistoryEntry {
    uint64_t epoch = 0;
    std::vector<uint8_t> record;  // wal.h epoch-record payload
  };

  /// Sends one frame with bounded retry/backoff on retryable errors.
  Status SendWithRetry(Transport* t, const std::vector<uint8_t>& wire);
  /// Answers one Hello: deltas, snapshot + deltas, or caught-up.
  Status HandleHello(Transport* t, const struct HelloFrame& hello);
  /// Ships `image` chunks [first_chunk, num_chunks), then SnapEnd.
  Status ShipSnapshot(Transport* t, const SnapshotImage& image,
                      uint32_t first_chunk);
  /// Ships history deltas in (after_epoch, current] then kCaughtUp.
  Status ShipDeltasAndCaughtUp(Transport* t, uint64_t after_epoch);

  const ReplicationOptions options_;

  mutable std::mutex mu_;
  SnapshotProvider provider_;
  int k_ = 0;
  size_t num_dims_ = 0;
  int kll_k_ = 0;
  bool shape_set_ = false;
  std::deque<HistoryEntry> history_;
  /// Per-dimension count of dictionary values already encoded into the
  /// history (the shipping twin of DurableLog::logged_dict_sizes_).
  std::vector<uint32_t> shipped_dict_sizes_;
  /// Last cut snapshot image, kept for resumed transfers.
  SnapshotImage cached_snapshot_;
  ReplicationSourceStats stats_;

  std::atomic<uint64_t> current_epoch_{0};
  std::atomic<bool> stop_requested_{false};
  int obs_collector_id_ = 0;
};

}  // namespace msketch

#endif  // MSKETCH_REPLICA_REPLICATION_SOURCE_H_
