// Replication wire frames: the unit of transfer between a leader's
// ReplicationSource and a follower's ReplicaApplier.
//
// Every frame is CRC32C-framed exactly like a WAL record (wal.h):
//
//   u32 masked-CRC32C(type + payload) | u32 payload_len | u8 type | payload
//
// so the receiver detects torn frames (length prefix exceeds bytes on
// the wire), flipped bits (CRC mismatch), and unknown types without
// trusting the link. A frame is also the tear unit: transports deliver
// whole frames or garbage, never silently spliced halves.
//
// Protocol (follower-driven pull; see src/replica/README.md):
//
//   kHello      follower -> leader  "I have epoch E, shaped (k, dims,
//                                   kll_k); resume chunk C of snapshot
//                                   S if you still hold it"
//   kSnapBegin  leader -> follower  snapshot transfer header
//   kSnapChunk  leader -> follower  one chunk of the checkpoint image
//   kSnapEnd    leader -> follower  whole-image CRC (install gate)
//   kDelta      leader -> follower  one epoch WAL record (wal.h payload)
//   kCaughtUp   leader -> follower  plan complete through epoch E
//   kHeartbeat  either direction    liveness + current epoch
//   kError      leader -> follower  terminal refusal (shape mismatch)
#ifndef MSKETCH_REPLICA_FRAME_H_
#define MSKETCH_REPLICA_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace msketch {

enum class FrameType : uint8_t {
  kHello = 1,
  kSnapBegin = 2,
  kSnapChunk = 3,
  kSnapEnd = 4,
  kDelta = 5,
  kCaughtUp = 6,
  kHeartbeat = 7,
  kError = 8,
};

/// A decoded frame: the type byte plus the raw payload (each type's
/// payload has its own Encode/Decode pair below; kDelta's payload is a
/// wal.h epoch record, decoded by DecodeEpochRecord).
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<uint8_t> payload;
};

/// Seals `payload` into a wire frame (CRC + length + type + payload).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Validates and decodes one wire frame. Corruption on a short buffer,
/// a lying length prefix, a CRC mismatch, or an unknown type byte.
Result<Frame> DecodeFrame(const uint8_t* data, size_t len);
inline Result<Frame> DecodeFrame(const std::vector<uint8_t>& wire) {
  return DecodeFrame(wire.data(), wire.size());
}

// ------------------------------------------------------- frame payloads

struct HelloFrame {
  uint64_t have_epoch = 0;
  uint32_t k = 0;
  uint32_t num_dims = 0;
  uint32_t kll_k = 0;  // 0 = no KLL side column
  /// Resume request: the follower holds chunks [0, resume_next_chunk)
  /// of the snapshot cut at `resume_epoch` and wants the rest.
  bool resume = false;
  uint64_t resume_epoch = 0;
  uint32_t resume_next_chunk = 0;
};

struct SnapBeginFrame {
  uint64_t snapshot_epoch = 0;
  uint64_t total_bytes = 0;
  uint32_t num_chunks = 0;
  uint32_t chunk_bytes = 0;   // every chunk but the last is this size
  uint32_t first_chunk = 0;   // > 0 on a resumed transfer
};

struct SnapChunkFrame {
  uint32_t chunk_index = 0;
  std::vector<uint8_t> bytes;
};

struct SnapEndFrame {
  uint64_t snapshot_epoch = 0;
  uint32_t image_crc = 0;  // masked CRC32C of the whole checkpoint image
};

struct CaughtUpFrame {
  uint64_t through_epoch = 0;
};

struct HeartbeatFrame {
  uint64_t current_epoch = 0;
};

struct ErrorFrame {
  uint32_t code = 0;  // StatusCode of the refusal
  std::string message;
};

std::vector<uint8_t> EncodeHello(const HelloFrame& f);
Result<HelloFrame> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSnapBegin(const SnapBeginFrame& f);
Result<SnapBeginFrame> DecodeSnapBegin(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSnapChunk(const SnapChunkFrame& f);
Result<SnapChunkFrame> DecodeSnapChunk(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSnapEnd(const SnapEndFrame& f);
Result<SnapEndFrame> DecodeSnapEnd(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeCaughtUp(const CaughtUpFrame& f);
Result<CaughtUpFrame> DecodeCaughtUp(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatFrame& f);
Result<HeartbeatFrame> DecodeHeartbeat(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeError(const ErrorFrame& f);
Result<ErrorFrame> DecodeError(const std::vector<uint8_t>& payload);

}  // namespace msketch

#endif  // MSKETCH_REPLICA_FRAME_H_
