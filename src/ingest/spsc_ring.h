// Bounded lock-free single-producer / single-consumer ring, the chunk
// hand-off primitive of the streaming ingest engine.
//
// Classic head/tail index ring with cached counterpart indices (the
// producer re-reads `head` only when its cached copy says full, the
// consumer re-reads `tail` only when its cached copy says empty), so
// the steady-state fast path touches one shared atomic per operation.
// Push publishes the slot with a release store on `tail`; Pop consumes
// with an acquire load — the only synchronization the payload needs.
//
// "Single producer" and "single consumer" are ROLES, not thread
// identities: the ingest shard hands the producer role between writer
// threads through its parked-token CAS (an acquire/release chain), and
// the consumer role is serialized under the publisher's publish lock.
// Any such happens-before chain makes the cached plain-field accesses
// race-free.
#ifndef MSKETCH_INGEST_SPSC_RING_H_
#define MSKETCH_INGEST_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace msketch {

/// Pause-instruction hint for spin loops (backpressure, token waits).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two >= min_capacity; the ring
  /// holds exactly capacity() items when full.
  explicit SpscRing(size_t min_capacity) {
    MSKETCH_CHECK(min_capacity >= 1);
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (never blocks).
  bool Push(T item) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    slots_[t & mask_] = item;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty (never blocks).
  bool Pop(T* out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    *out = slots_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy occupancy estimate (stats only).
  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                               head_.load(std::memory_order_relaxed));
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  size_t mask_ = 0;
  std::vector<T> slots_;
  // Producer-written / consumer-written indices on separate cache lines;
  // the caches are private to their role's happens-before chain.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;  // producer-local
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;  // consumer-local
};

}  // namespace msketch

#endif  // MSKETCH_INGEST_SPSC_RING_H_
