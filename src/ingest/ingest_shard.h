// Per-writer ingest shard: the write side of the streaming ingest
// engine (see src/ingest/README.md).
//
// A shard buffers incoming rows as per-cell moments-sketch *deltas*,
// keyed by dictionary-encoded cell coordinates. Appends never touch the
// published cube: each cell keeps a small pending-value buffer that is
// folded into the cell's delta sketch through the 4-lane
// MomentsSketch::AccumulateBatch kernel once full, so the hot path is a
// hash probe plus one buffered store per row, and the expensive power
// chains run batched. The epoch publisher periodically Drain()s every
// shard — an O(1)-lock handoff that swaps the whole delta map out — and
// folds the deltas into the next snapshot with the flat drain kernels.
//
// Thread safety: one mutex per shard. The intended deployment gives
// each writer thread its own shard (uncontended lock), but any thread
// may append to any shard; the publisher's drain contends only for the
// duration of a map swap plus the final pending-buffer flushes.
//
// Determinism: within a shard, each cell's values accumulate in arrival
// order, and AccumulateBatch is bit-identical to an in-order Accumulate
// loop — so a drained delta is bit-identical to a single-threaded
// sketch fed the same per-cell value sequence.
#ifndef MSKETCH_INGEST_INGEST_SHARD_H_
#define MSKETCH_INGEST_INGEST_SHARD_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/moments_sketch.h"
#include "cube/cube_types.h"

namespace msketch {

/// One encoded row for the batched append paths.
struct IngestRow {
  CubeCoords coords;
  double value = 0.0;
};

class IngestShard {
 public:
  /// `batch_size`: pending values buffered per cell before a flush
  /// through AccumulateBatch (also the drain-time flush granularity).
  IngestShard(size_t num_dims, int k, size_t batch_size);

  /// Buffers one row into the cell at `coords`.
  void Append(const CubeCoords& coords, double value);

  /// Buffers `n` rows for one cell — one hash probe for the whole run
  /// (pre-grouped micro-batches are the high-rate ingest fast path).
  void AppendBatch(const CubeCoords& coords, const double* values, size_t n);

  /// Buffers `n` mixed-cell rows under ONE lock acquisition, with a
  /// last-cell memo that skips the hash probe for consecutive same-cell
  /// rows. Semantically identical to `n` Append calls (same per-cell
  /// value order), amortizing the per-row mutex + counter cost that
  /// dominates the row-at-a-time path.
  void AppendRows(const IngestRow* rows, size_t n);

  /// One drained cell delta: the sketch holds the cell's buffered
  /// moment state (counts, min/max, power and log sums).
  struct DeltaCell {
    CubeCoords coords;
    MomentsSketch sketch;
  };

  /// Flushes every pending buffer and moves the accumulated deltas out,
  /// leaving the shard empty. Order of the returned cells is
  /// unspecified; the publisher sorts the combined batch.
  std::vector<DeltaCell> Drain();

  /// Rows appended so far (relaxed; readable while writers run).
  uint64_t rows_appended() const {
    return rows_appended_.load(std::memory_order_relaxed);
  }

  size_t num_dims() const { return num_dims_; }
  int k() const { return k_; }

 private:
  struct Cell {
    MomentsSketch sketch;
    std::vector<double> pending;
  };

  // Folds the cell's pending values into its delta sketch.
  void FlushCell(Cell* cell);

  const size_t num_dims_;
  const int k_;
  const size_t batch_size_;
  std::atomic<uint64_t> rows_appended_{0};
  std::mutex mutex_;
  std::unordered_map<CubeCoords, Cell, CubeCoordsHash> cells_;
};

}  // namespace msketch

#endif  // MSKETCH_INGEST_INGEST_SHARD_H_
