// Per-writer ingest shard: the lock-free write side of the streaming
// ingest engine (see src/ingest/README.md for the full protocol).
//
// A shard owns a small pool of fixed-capacity DeltaChunks (flat
// columnar cell deltas, core/delta_chunk.h) and two bounded SPSC rings:
// a FULL ring carrying sealed chunks to the epoch publisher and a FREE
// ring carrying recycled chunks back. Writers fill the current chunk —
// a flat-table slot probe plus one buffered store per row, with the
// power chains running batched through the shared AccumulateBatch
// kernel — and hand it over with a release store. No std::mutex exists
// anywhere in this class; the only writer-side waiting is backpressure
// (spin-then-yield) when the publisher falls behind and the FREE ring
// is empty.
//
// Ownership protocol (the parked token). `parked_` holds one of:
//
//   chunk pointer  the current working chunk, parked: a writer may
//                  claim it (CAS -> kHeld) and the publisher may steal
//                  it (CAS -> nullptr);
//   kHeld          a writer is mid-append; the publisher waits briefly
//                  or gives up (those rows ride the next epoch);
//   nullptr        no working chunk; the next writer pops a fresh one
//                  from the FREE ring.
//
// The CAS acquire/release chain serializes writers (any thread may
// append to any shard) and carries the happens-before edges that make
// the chunk contents, the slot directory, and the ring index caches
// race-free without locks.
//
// Backpressure: when a seal finds the FREE ring empty the writer spins
// (pause), then yields, until the publisher recycles a chunk. The
// episode and the rows riding on the stalled call are counted in
// stats() — appends never drop rows and never allocate past the pool.
//
// Determinism: within a shard, each cell's values accumulate in arrival
// order into one slot per chunk, and the fold kernel is bit-identical
// to an in-order Accumulate loop — so a drained delta matches a
// single-threaded sketch fed the same per-cell value sequence, exactly,
// whenever the cell's stream lands in one chunk (see README for the
// multi-chunk FP-reassociation caveat).
#ifndef MSKETCH_INGEST_INGEST_SHARD_H_
#define MSKETCH_INGEST_INGEST_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/delta_chunk.h"
#include "core/moments_sketch.h"
#include "cube/cube_types.h"
#include "ingest/spsc_ring.h"

namespace msketch {

/// One encoded row for the batched append paths.
struct IngestRow {
  CubeCoords coords;
  double value = 0.0;
};

/// Writer/hand-off counters, readable while writers run (all relaxed).
struct IngestShardStats {
  uint64_t rows_appended = 0;
  /// Rows whose append stalled waiting for a free chunk (each stalled
  /// call counts the rows it was carrying).
  uint64_t rows_backpressured = 0;
  /// Distinct ring-full wait episodes.
  uint64_t backpressure_events = 0;
  uint64_t chunks_sealed = 0;
  uint64_t chunks_drained = 0;
  /// Peak FULL-ring occupancy observed at seal time.
  uint64_t full_ring_high_water = 0;
  /// Drains that found the working chunk held by a mid-append writer
  /// and left it for the next epoch.
  uint64_t steal_giveups = 0;
  /// Backpressure waits that exhausted the stall budget (the append
  /// returned kDeadlineExceeded instead of spinning forever against a
  /// dead or wedged publisher).
  uint64_t deadline_events = 0;
  /// Rows carried by those failed appends (not appended; the caller
  /// must retry or drop them).
  uint64_t rows_deadline_failed = 0;
};

class IngestShard {
 public:
  /// Distinct cells a chunk can hold before the writer must seal it.
  static constexpr size_t kDefaultChunkCells = 2048;
  /// Chunks in the shard pool (working set + in-flight + recycling).
  static constexpr size_t kDefaultChunksPerShard = 4;
  /// Default backpressure stall budget: generous enough that a merely
  /// slow publisher never trips it, finite so a dead one turns a silent
  /// hang into kDeadlineExceeded.
  static constexpr std::chrono::milliseconds kDefaultStallBudget{10000};

  /// `batch_size`: pending values buffered per cell before a flush
  /// through the AccumulateBatch kernel (also the drain-time flush
  /// granularity). `chunk_cells`/`chunks` bound the shard's memory:
  /// appends backpressure rather than allocate past the pool.
  /// `stall_budget` bounds one append's backpressure wait (<= 0 waits
  /// forever, the pre-budget behavior). `kll_k` > 0 dual-writes every
  /// row into a per-cell KLL rank sketch alongside the moment state
  /// (the router's fallback backend); 0 keeps the moments-only path.
  IngestShard(size_t num_dims, int k, size_t batch_size,
              size_t chunk_cells = kDefaultChunkCells,
              size_t chunks = kDefaultChunksPerShard,
              std::chrono::milliseconds stall_budget = kDefaultStallBudget,
              int kll_k = 0);

  IngestShard(const IngestShard&) = delete;
  IngestShard& operator=(const IngestShard&) = delete;

  // Appends buffer rows into the working chunk. They fail only with
  // kDeadlineExceeded, when backpressure outlasts the stall budget
  // because no drainer is recycling chunks (publisher stopped, wedged,
  // or never started); the failed call's rows are NOT appended, and
  // rows already buffered by earlier calls are unaffected.

  /// Buffers one row into the cell at `coords`.
  Status Append(const CubeCoords& coords, double value);

  /// Buffers `n` rows for one cell — one directory probe and one token
  /// acquisition for the whole run (pre-grouped micro-batches are the
  /// high-rate ingest fast path).
  Status AppendBatch(const CubeCoords& coords, const double* values, size_t n);

  /// Buffers `n` mixed-cell rows under ONE token acquisition, with a
  /// last-cell memo that skips the directory probe for consecutive
  /// same-cell rows. Semantically identical to `n` Append calls (same
  /// per-cell value order). On a stall-budget failure, rows before the
  /// failure point stay appended; the error reports the dropped count.
  Status AppendRows(const IngestRow* rows, size_t n);

  /// One drained cell delta: the sketch holds the cell's buffered
  /// moment state (counts, min/max, power and log sums); `kll` holds
  /// the same rows' rank sketch when the shard dual-writes (empty,
  /// count() == 0, otherwise).
  struct DeltaCell {
    CubeCoords coords;
    MomentsSketch sketch;
    KllSketch kll;
  };

  /// Publisher side: pops every sealed chunk from the FULL ring, steals
  /// the parked working chunk (bounded wait if a writer holds it —
  /// give-ups ride the next drain), orders the chunks by service entry,
  /// converts slots to per-cell deltas, and recycles the chunks through
  /// the FREE ring. Writers never stall on a drain. Callers must
  /// serialize Drain() against itself (the publisher's publish lock
  /// does; tests call it single-threaded).
  std::vector<DeltaCell> Drain();

  /// Rows appended so far (relaxed; readable while writers run). Rows
  /// are counted before the chunk carrying them can publish, so
  /// published rows never exceed this.
  uint64_t rows_appended() const {
    return rows_appended_.load(std::memory_order_relaxed);
  }

  IngestShardStats stats() const;

  size_t num_dims() const { return num_dims_; }
  int k() const { return k_; }
  size_t chunk_cells() const { return chunk_cells_; }
  size_t num_chunks() const { return pool_.size(); }

 private:
  /// The token-held sentinel (any non-chunk, non-null pointer).
  DeltaChunk* Held() const {
    return const_cast<DeltaChunk*>(
        reinterpret_cast<const DeltaChunk*>(&held_marker_));
  }

  /// Claims the writer token, spinning while another writer holds it.
  /// Returns the current working chunk, or nullptr if there is none
  /// (fresh shard, or the publisher stole it).
  DeltaChunk* AcquireCurrent();
  /// Parks `chunk` as the working chunk and releases the token.
  void Park(DeltaChunk* chunk);
  /// Publisher side of the token: nullptr if no chunk is parked or a
  /// writer held it past the bounded wait.
  DeltaChunk* StealParked();

  /// Pops a fresh chunk (backpressure-spinning if the FREE ring is
  /// empty), stamps its service session, and clears the directory.
  /// Token must be held. Returns nullptr when the wait exceeds the
  /// stall budget (the caller surfaces kDeadlineExceeded).
  DeltaChunk* TakeFresh(size_t rows_at_stake);
  /// The kDeadlineExceeded status for a failed append of `dropped` rows.
  Status StallError(size_t dropped) const;
  /// Folds `chunk` and pushes it onto the FULL ring, first flushing any
  /// rows this call pushed into it but has not yet counted.
  void Seal(DeltaChunk* chunk, uint64_t* uncounted);
  /// Directory lookup for `coords` in the working chunk, sealing and
  /// replacing the chunk when a new cell finds it full.
  size_t SlotOf(DeltaChunk** chunk, const CubeCoords& coords,
                size_t rows_at_stake, uint64_t* uncounted);

  // Flat open-addressed directory over the working chunk's slots:
  // entry = (hash tag << 32) | (slot + 1), 0 = empty. Sized for load
  // factor <= 1/2 at a full chunk, cleared on every chunk switch.
  // Token-protected, like every non-atomic member below it.
  size_t DirFind(DeltaChunk* chunk, const CubeCoords& coords, uint64_t hash);
  void DirInsert(uint64_t hash, size_t slot);

  const size_t num_dims_;
  const int k_;
  const size_t batch_size_;
  const size_t chunk_cells_;
  const std::chrono::milliseconds stall_budget_;

  std::vector<std::unique_ptr<DeltaChunk>> pool_;
  SpscRing<DeltaChunk*> full_ring_;
  SpscRing<DeltaChunk*> free_ring_;
  std::atomic<DeltaChunk*> parked_{nullptr};

  // Token-protected writer state.
  std::vector<uint64_t> dir_;
  size_t dir_mask_ = 0;
  uint64_t next_session_ = 1;

  std::atomic<uint64_t> rows_appended_{0};
  std::atomic<uint64_t> rows_backpressured_{0};
  std::atomic<uint64_t> backpressure_events_{0};
  std::atomic<uint64_t> chunks_sealed_{0};
  std::atomic<uint64_t> chunks_drained_{0};
  std::atomic<uint64_t> full_ring_high_water_{0};
  std::atomic<uint64_t> steal_giveups_{0};
  std::atomic<uint64_t> deadline_events_{0};
  std::atomic<uint64_t> rows_deadline_failed_{0};

  static const char held_marker_;
};

}  // namespace msketch

#endif  // MSKETCH_INGEST_INGEST_SHARD_H_
