// StreamingCube: query-while-ingest façade over the streaming ingest
// engine (sharded writers + epoch-published snapshots).
//
// Writers append rows — dictionary-encoded coordinates plus a metric
// value — into per-shard delta buffers; the epoch publisher folds the
// deltas into immutable cube snapshots on a fixed cadence (or on
// Flush()); queries run the full static-cube machinery — planned
// QueryWhere, rollup spans, batched GROUP BY — against the latest
// published snapshot. Consistency contract (src/ingest/README.md):
//
//   * a query sees every row drained into the snapshot it runs on — a
//     consistent prefix of each shard's append stream, never a torn or
//     partially applied epoch;
//   * staleness is bounded by one epoch interval plus publish time;
//     Flush() publishes synchronously, after which queries see every
//     row appended before the Flush call;
//   * a fully drained StreamingCube holds the state of a single-writer
//     DataCube fed the same per-shard row streams: counts, min/max and
//     cell sets exactly, moment sums to FP re-association. Per-cell
//     bit-identity additionally needs each cell's values to reach the
//     cube as one in-order sequence — one shard per cell (the default
//     coordinate-hash routing) AND a single drain (epoch boundaries
//     split a cell's stream into separately-summed deltas) — or
//     exact-arithmetic data, for which any interleaving is
//     bit-identical.
//
// Thread safety: any number of writer threads (Append*), one or more
// query threads, plus the background publisher may run concurrently.
// Snapshot handles returned by Snapshot()/Flush() pin a buffer; release
// them before destroying the cube.
#ifndef MSKETCH_INGEST_STREAMING_CUBE_H_
#define MSKETCH_INGEST_STREAMING_CUBE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/moments_summary.h"
#include "cube/batch_query.h"
#include "cube/cube_store.h"
#include "cube/cube_types.h"
#include "cube/dictionary.h"
#include "cube/summary_router.h"
#include "ingest/epoch_publisher.h"
#include "ingest/ingest_shard.h"
#include "persist/durable_log.h"

namespace msketch {

class ReplicationSource;

/// Aggregated engine counters (StreamingCube::stats()): writer-side
/// hand-off behavior summed over shards, the dictionary's exclusive
/// intern count, and publisher drain/publish latency — enough to read
/// the scaling curve (backpressure means the publisher is the
/// bottleneck; a hot dict_exclusive_locks means the value universe is
/// still growing).
struct IngestStats {
  uint64_t rows_appended = 0;
  uint64_t rows_backpressured = 0;
  uint64_t backpressure_events = 0;
  uint64_t chunks_sealed = 0;
  uint64_t chunks_drained = 0;
  /// Max over shards of the FULL-ring occupancy high-water.
  uint64_t full_ring_high_water = 0;
  uint64_t steal_giveups = 0;
  /// Writer-path blocking-lock acquisitions: every mutex the encode or
  /// append path can take bumps this (currently only the dictionary
  /// intern lock). Zero over an interval == the writer hot path ran
  /// entirely lock-free.
  uint64_t dict_exclusive_locks = 0;
  /// Stall-budget expirations across shards (appends that returned
  /// kDeadlineExceeded) and the rows those calls failed to append.
  uint64_t deadline_events = 0;
  uint64_t rows_deadline_failed = 0;
  PublisherStats publisher;
};

class StreamingCube {
 public:
  /// The prototype fixes the sketch order and estimator options, as in
  /// DataCube<MomentsSummary>. The background publisher is NOT started;
  /// call StartPublisher() (or drive epochs manually via Flush()).
  StreamingCube(size_t num_dims, MomentsSummary prototype,
                IngestOptions options = IngestOptions());
  ~StreamingCube();

  StreamingCube(const StreamingCube&) = delete;
  StreamingCube& operator=(const StreamingCube&) = delete;

  // ------------------------------------------------------------ writers
  //
  // Appends fail only with kDeadlineExceeded, when backpressure outlasts
  // IngestOptions::backpressure_stall_budget because nothing is draining
  // (publisher stopped or wedged); the failed call's rows are not
  // appended.

  /// Appends one row, routing to a shard by coordinate hash. The hash
  /// routing makes every cell shard-affine, which keeps per-cell
  /// accumulation order deterministic no matter which thread appends.
  Status Append(const CubeCoords& coords, double value) {
    return AppendToShard(CubeCoordsHash()(coords) % shards_.size(), coords,
                         value);
  }

  /// Appends one row into an explicit shard (writer-per-shard setups).
  Status AppendToShard(size_t shard, const CubeCoords& coords, double value) {
    return shards_[shard]->Append(coords, value);
  }

  /// Appends a pre-grouped run of values for one cell (single hash
  /// probe; the high-rate path).
  Status AppendBatch(size_t shard, const CubeCoords& coords,
                     const double* values, size_t n) {
    return shards_[shard]->AppendBatch(coords, values, n);
  }

  /// Appends a run of encoded mixed-cell rows into one shard under a
  /// single shard-lock acquisition (IngestShard::AppendRows) — the
  /// high-rate path for writer-per-shard feeds that cannot pre-group
  /// rows by cell.
  Status AppendRowsToShard(size_t shard, const IngestRow* rows, size_t n) {
    return shards_[shard]->AppendRows(rows, n);
  }

  /// Appends encoded rows, routing each to its coordinate-hash shard.
  /// Rows for the same shard are delivered as one batch (per-cell order
  /// preserved), so the per-row lock cost amortizes across the batch.
  Status AppendRows(const IngestRow* rows, size_t n);

  /// Dictionary-encodes a row of string dimension values (interning new
  /// ones) and appends it.
  Status AppendRow(const std::vector<std::string>& dims, double value);

  /// Batch variant of AppendRow: encodes all `n` rows against one
  /// lock-free dictionary version, then appends via the batched shard
  /// path. A malformed row aborts the batch before any append; a
  /// stall-budget failure mid-batch leaves the rows appended before it.
  Status AppendRowBatch(const std::vector<std::vector<std::string>>& rows,
                        const double* values);

  /// Interns `dims` and returns the encoded coordinates (for callers
  /// that batch rows per cell before appending).
  Result<CubeCoords> EncodeRow(const std::vector<std::string>& dims);

  /// Batch encode. The fast path is lock-free: one acquire load of the
  /// current dictionary version covers the whole batch. Only when a row
  /// carries a never-seen value does the call take the intern lock —
  /// once for the entire batch — to publish a new version.
  Result<std::vector<CubeCoords>> EncodeRows(
      const std::vector<std::vector<std::string>>& rows);

  /// Encodes a string filter: empty string = unconstrained dimension.
  /// Unknown values yield an error (nothing to match).
  Result<CubeFilter> EncodeFilter(const std::vector<std::string>& dims) const;

  /// Decodes one dimension value id (thread-safe dictionary read).
  Result<std::string> DecodeValue(size_t dim, uint32_t id) const;

  // ------------------------------------------------------------- epochs

  /// Synchronously drains all shards and publishes a fresh snapshot
  /// covering every row appended before this call.
  std::shared_ptr<const CubeSnapshot> Flush() { return publisher_->Publish(); }

  /// The latest published snapshot. Hold the handle to run several
  /// queries against one consistent state.
  std::shared_ptr<const CubeSnapshot> Snapshot() const {
    return publisher_->Current();
  }

  /// Background epoch publication at options.epoch_interval.
  void StartPublisher() { publisher_->Start(); }
  void StopPublisher() { publisher_->Stop(); }

  /// Called after every non-empty publish with the new snapshot (e.g.
  /// the sliding-window pane feed). Set before StartPublisher().
  void SetEpochSink(EpochPublisher::EpochSink sink) {
    user_sink_ = std::move(sink);
  }

  // --------------------------------------------------------- durability
  //
  // See src/persist/README.md for the full protocol and the recovery
  // guarantees; src/ingest/README.md states the contract.

  /// Makes this cube crash-recoverable: commits a baseline (empty
  /// checkpoint + empty WAL) under `options.dir` and wires the epoch
  /// pipeline so every published epoch's delta batch is WAL-logged
  /// before it becomes visible, with periodic snapshot checkpoints.
  /// Only legal on a fresh cube (nothing appended or published) — an
  /// existing durable directory must go through Recover() instead.
  Status EnableDurability(const DurabilityOptions& options);

  /// Rebuilds a cube from `durability.dir`: loads the last checkpoint,
  /// replays the WAL tail (truncating torn or corrupt records), and
  /// re-opens the directory for continued durable ingest. The recovered
  /// cube's published state is bit-exact to the pre-crash cube at its
  /// last durable epoch. `prototype` and `num_dims` must match the
  /// recorded shape.
  static Result<std::unique_ptr<StreamingCube>> Recover(
      size_t num_dims, MomentsSummary prototype, IngestOptions options,
      const DurabilityOptions& durability, RecoveryStats* stats = nullptr);

  /// Tees every published epoch's delta batch (and the dictionary
  /// delta) into `source` so followers can replicate this cube, and
  /// wires the snapshot provider (a full checkpoint image of the
  /// current published state) for follower resyncs. `source` is
  /// borrowed and must outlive the cube. Composes with durability —
  /// the same publish hook feeds both — and, like the durable log,
  /// never blocks or fails a publish. Call before rows are appended.
  Status EnableReplication(ReplicationSource* source);

  /// True when EnableDurability (or Recover) wired a durable log.
  bool durable() const { return log_ != nullptr; }
  /// Durability counters (zero-value struct when not durable).
  DurabilityStats durability_stats() const {
    return log_ ? log_->stats() : DurabilityStats();
  }

  // ------------------------------------------------------------ queries
  //
  // Convenience wrappers that run against the latest snapshot. Each
  // call pins the snapshot for its own duration only; hold Snapshot()
  // yourself for multi-query consistency.

  MomentsSummary QueryWhere(const CubeFilter& filter,
                            CubeStore::QueryStats* stats = nullptr) const;
  Result<double> QueryQuantile(const CubeFilter& filter, double phi) const;

  // Certified variants: every answer over a non-empty selection carries
  // an error interval provably enclosing the true quantile, assembled by
  // the multi-backend summary router (moments bounds, intersected with
  // the KLL rank certificate when IngestOptions::enable_kll dual-wrote
  // one). Solver failures on pathological cells degrade through
  // atomic-fit -> KLL -> bounds-midpoint instead of surfacing; the only
  // non-OK status is an empty selection/group.
  CertifiedQuantile QueryQuantileCertified(const CubeFilter& filter,
                                           double phi,
                                           RouterStats* stats = nullptr) const;
  std::vector<GroupQuantilesCertified> GroupByQuantilesCertified(
      const std::vector<size_t>& group_dims, const std::vector<double>& phis,
      const RouterOptions& options, RouterStats* stats = nullptr) const;
  /// Overload defaulting the router's maxent options to the cube's
  /// estimator options (can't be a default argument — it depends on
  /// member state).
  std::vector<GroupQuantilesCertified> GroupByQuantilesCertified(
      const std::vector<size_t>& group_dims,
      const std::vector<double>& phis) const;
  std::vector<GroupQuantiles> GroupByQuantiles(
      const std::vector<size_t>& group_dims, const std::vector<double>& phis,
      const BatchOptions& options = BatchOptions(),
      BatchStats* stats = nullptr) const;
  std::vector<GroupThreshold> GroupByThreshold(
      const std::vector<size_t>& group_dims, double phi, double t,
      const BatchOptions& options = BatchOptions(),
      BatchStats* stats = nullptr) const;

  // --------------------------------------------------------- accounting

  /// Rows appended across all shards (includes rows not yet published).
  uint64_t rows_appended() const;
  /// Rows covered by the latest published snapshot.
  uint64_t rows_published() const { return Snapshot()->rows(); }
  /// The staleness bound: appended-but-not-yet-published rows. Zero
  /// right after Flush() (with writers paused).
  uint64_t staleness_rows() const {
    // Read the published count first: rows only move appended ->
    // published, so this ordering can only over-report staleness, never
    // report published rows as missing.
    const uint64_t published = rows_published();
    return rows_appended() - published;
  }
  uint64_t last_published_epoch() const { return Snapshot()->epoch; }

  size_t num_dims() const { return num_dims_; }
  size_t num_shards() const { return shards_.size(); }
  int k() const { return prototype_k_; }
  const MaxEntOptions& estimator_options() const { return options_maxent_; }

  /// Engine counters aggregated across shards, the dictionary, and the
  /// publisher. Safe to call while writers and the publisher run.
  IngestStats stats() const;
  /// One shard's counters (diagnostics; shard load balance).
  IngestShardStats shard_stats(size_t shard) const {
    return shards_[shard]->stats();
  }

 private:
  /// An immutable dictionary version. Readers load the current version
  /// with one acquire load and use it lock-free; interning publishes a
  /// copied successor (read-copy-update). Retired versions stay alive
  /// in dict_versions_ until the cube is destroyed — versions are tiny
  /// next to the cube and this keeps reader lifetimes trivial (no
  /// hazard pointers, no reader registration).
  struct DictSnapshot {
    std::vector<Dictionary> dicts;
  };

  /// The current dictionary version (acquire load to read).
  const DictSnapshot* Dicts() const {
    return dict_.load(std::memory_order_acquire);
  }
  /// Interns every (dim, value) pair in `rows` that the current version
  /// lacks, publishing one new version under one intern_mu_ hold.
  /// Returns the version containing every value in `rows`.
  const DictSnapshot* InternMissing(
      const std::vector<std::vector<std::string>>& rows);

  /// Recovery: re-interns the recovered per-dimension values, in order,
  /// as the first real dictionary version (ids are intern order, so the
  /// recovered ids equal the originals). Dictionaries must be empty.
  void InstallDicts(const std::vector<std::vector<std::string>>& values);
  /// The publisher's durability hook: logs epoch `E`'s drained batch
  /// (and the dictionary delta) through log_.
  Status LogEpochDurable(uint64_t epoch,
                         const EpochPublisher::DeltaBatch& batch);
  /// The publisher's epoch sink: drives periodic checkpoints, then
  /// forwards to the user sink.
  void OnEpochPublished(const CubeSnapshot& snap);

  const size_t num_dims_;
  const int prototype_k_;
  const MaxEntOptions options_maxent_;
  const IngestOptions options_;

  // Dictionary versions: dict_ points at the newest, dict_versions_
  // (guarded by intern_mu_) owns them all. dict_exclusive_locks_ counts
  // intern_mu_ acquisitions — the writer-hot-path "zero mutex" witness.
  std::atomic<const DictSnapshot*> dict_{nullptr};
  std::mutex intern_mu_;
  std::vector<std::unique_ptr<DictSnapshot>> dict_versions_;
  mutable std::atomic<uint64_t> dict_exclusive_locks_{0};

  std::vector<std::unique_ptr<IngestShard>> shards_;
  /// Metrics collector registered with obs::GlobalRegistry(): scrape
  /// time reads of the shard/publisher/durability counters (the hot
  /// paths carry no registry calls). Unregistered in the destructor
  /// before any member is torn down.
  int obs_collector_id_ = 0;
  /// Set by EnableDurability/Recover; must outlive publisher_ (whose
  /// hook and sink call into it), hence declared before it.
  std::unique_ptr<DurableLog> log_;
  /// Borrowed replication tee (EnableReplication); referenced by the
  /// publish hook, hence declared before publisher_ too.
  ReplicationSource* replica_source_ = nullptr;
  /// The user's epoch sink; invoked by OnEpochPublished after the
  /// durability work (same thread and ordering contract as before).
  EpochPublisher::EpochSink user_sink_;
  std::unique_ptr<EpochPublisher> publisher_;
};

}  // namespace msketch

#endif  // MSKETCH_INGEST_STREAMING_CUBE_H_
