#include "ingest/streaming_cube.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/replication_source.h"

namespace msketch {

namespace {

// End-to-end query latency histogram, one per query kind. The registry
// lookup runs once per kind (function-local static at each call site).
obs::Histogram* QueryHist(const char* kind) {
  return obs::GlobalRegistry().GetHistogram(
      "msk_query_seconds", {{"kind", kind}},
      "End-to-end StreamingCube query latency by kind",
      obs::HistogramUnit::kSeconds);
}

std::string ShardLabel(size_t shard) { return std::to_string(shard); }

}  // namespace

StreamingCube::StreamingCube(size_t num_dims, MomentsSummary prototype,
                             IngestOptions options)
    : num_dims_(num_dims),
      prototype_k_(prototype.k()),
      options_maxent_(prototype.options()),
      options_(options) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(options_.num_shards >= 1);
  auto initial = std::make_unique<DictSnapshot>();
  initial->dicts.resize(num_dims_);
  dict_.store(initial.get(), std::memory_order_release);
  dict_versions_.push_back(std::move(initial));
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<IngestShard>(
        num_dims_, prototype_k_, options_.batch_size, options_.chunk_cells,
        options_.chunks_per_shard, options_.backpressure_stall_budget,
        options_.enable_kll ? options_.kll_k : 0));
  }
  std::vector<IngestShard*> shard_ptrs;
  shard_ptrs.reserve(shards_.size());
  for (auto& s : shards_) shard_ptrs.push_back(s.get());
  publisher_ = std::make_unique<EpochPublisher>(num_dims_, prototype_k_,
                                                options_, shard_ptrs);
  // The cube always owns the publisher's sink; OnEpochPublished forwards
  // to the user's sink after the durability work (if any).
  publisher_->SetEpochSink(
      [this](const CubeSnapshot& snap) { OnEpochPublished(snap); });
  // Scrape-time collector: reads the existing relaxed-atomic *Stats
  // surfaces, so the writer hot path carries zero registry calls. The
  // callback runs under the registry's collector mutex; the destructor
  // unregisters (and thereby drains in-flight scrapes) before teardown.
  obs_collector_id_ = obs::GlobalRegistry().AddCollector(
      [this](obs::MetricsEmitter& em) {
        const IngestStats agg = stats();
        em.EmitCounter("msk_ingest_rows_appended_total", {},
                       "Rows appended across all shards", agg.rows_appended);
        em.EmitCounter("msk_ingest_rows_backpressured_total", {},
                       "Rows that waited on chunk-pool backpressure",
                       agg.rows_backpressured);
        em.EmitCounter("msk_ingest_backpressure_events_total", {},
                       "Appends that hit chunk-pool backpressure",
                       agg.backpressure_events);
        em.EmitCounter("msk_ingest_chunks_sealed_total", {},
                       "Delta chunks sealed to the publisher ring",
                       agg.chunks_sealed);
        em.EmitCounter("msk_ingest_chunks_drained_total", {},
                       "Delta chunks drained by the publisher",
                       agg.chunks_drained);
        em.EmitCounter("msk_ingest_steal_giveups_total", {},
                       "Chunk-steal attempts that gave up",
                       agg.steal_giveups);
        em.EmitCounter("msk_ingest_deadline_events_total", {},
                       "Appends that failed the backpressure stall budget",
                       agg.deadline_events);
        em.EmitCounter("msk_ingest_rows_deadline_failed_total", {},
                       "Rows not appended due to stall-budget expiry",
                       agg.rows_deadline_failed);
        em.EmitCounter("msk_ingest_dict_exclusive_locks_total", {},
                       "Writer-path exclusive dictionary-intern locks",
                       agg.dict_exclusive_locks);
        // Defensive null check: Restore() (recovery) briefly swaps the
        // published snapshot out while this collector is registered.
        const std::shared_ptr<const CubeSnapshot> snap = Snapshot();
        const uint64_t published = snap ? snap->rows() : 0;
        em.EmitGauge("msk_ingest_staleness_rows", {},
                     "Appended-but-not-yet-published rows",
                     static_cast<double>(agg.rows_appended - published));
        for (size_t s = 0; s < shards_.size(); ++s) {
          const IngestShardStats ss = shards_[s]->stats();
          const obs::Labels labels = {{"shard", ShardLabel(s)}};
          em.EmitCounter("msk_ingest_shard_rows_appended_total", labels,
                         "Rows appended into one shard", ss.rows_appended);
          em.EmitGauge("msk_ingest_shard_ring_high_water", labels,
                       "FULL-ring occupancy high-water for one shard",
                       static_cast<double>(ss.full_ring_high_water));
        }
        const PublisherStats ps = agg.publisher;
        em.EmitCounter("msk_publisher_epochs_published_total", {},
                       "Epoch snapshots published", ps.epochs_published);
        em.EmitCounter("msk_publisher_durability_failures_total", {},
                       "Epochs whose durability hook failed",
                       ps.durability_failures);
        em.EmitHistogram("msk_publisher_drain_seconds", {},
                         "Per-publish shard drain latency", ps.drain_hist);
        em.EmitHistogram("msk_publisher_publish_seconds", {},
                         "Whole-publish latency (drain+replay+rollup+swap)",
                         ps.publish_hist);
        em.EmitHistogram("msk_publisher_durability_seconds", {},
                         "Durability hook (WAL append+fsync) latency",
                         ps.durability_hist);
        if (log_ != nullptr) {
          const DurabilityStats ds = log_->stats();
          em.EmitCounter("msk_wal_epochs_logged_total", {},
                         "Epoch delta batches appended to the WAL",
                         ds.epochs_logged);
          em.EmitCounter("msk_wal_bytes_total", {},
                         "Bytes appended to the WAL", ds.wal_bytes);
          em.EmitCounter("msk_wal_syncs_total", {}, "WAL fsync calls",
                         ds.wal_syncs);
          em.EmitCounter("msk_wal_write_retries_total", {},
                         "Short-write retries on WAL appends",
                         ds.write_retries);
          em.EmitCounter("msk_wal_append_failures_total", {},
                         "WAL appends that failed", ds.wal_append_failures);
          em.EmitCounter("msk_checkpoints_written_total", {},
                         "Full-state checkpoints committed",
                         ds.checkpoints_written);
          em.EmitCounter("msk_checkpoint_failures_total", {},
                         "Checkpoint attempts that failed",
                         ds.checkpoint_failures);
          em.EmitGauge("msk_wal_broken", {},
                       "1 when the WAL is marked broken (re-bases at the "
                       "next checkpoint)",
                       ds.log_broken ? 1.0 : 0.0);
        }
      });
}

StreamingCube::~StreamingCube() {
  // Block until no scrape can be reading members, then stop publishing.
  obs::GlobalRegistry().RemoveCollector(obs_collector_id_);
  publisher_->Stop();
}

Status StreamingCube::AppendRow(const std::vector<std::string>& dims,
                                double value) {
  Result<CubeCoords> coords = EncodeRow(dims);
  if (!coords.ok()) return coords.status();
  return Append(coords.value(), value);
}

Status StreamingCube::AppendRows(const IngestRow* rows, size_t n) {
  if (n == 0) return Status::OK();
  // Partition into per-shard runs, preserving arrival order within each
  // shard (cells are shard-affine, so per-cell order is preserved too).
  std::vector<std::vector<IngestRow>> parts(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    parts[CubeCoordsHash()(rows[i].coords) % shards_.size()].push_back(
        rows[i]);
  }
  // A stalled shard fails its own run; the other shards' runs still
  // append (per-shard streams are independent). The first error wins —
  // with one wedged drainer every shard is wedged, so one is enough.
  Status first;
  for (size_t s = 0; s < parts.size(); ++s) {
    if (!parts[s].empty()) {
      Status st = shards_[s]->AppendRows(parts[s].data(), parts[s].size());
      if (!st.ok() && first.ok()) first = std::move(st);
    }
  }
  return first;
}

Status StreamingCube::AppendRowBatch(
    const std::vector<std::vector<std::string>>& rows, const double* values) {
  Result<std::vector<CubeCoords>> coords = EncodeRows(rows);
  if (!coords.ok()) return coords.status();
  std::vector<IngestRow> encoded(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    encoded[i].coords = std::move(coords.value()[i]);
    encoded[i].value = values[i];
  }
  return AppendRows(encoded.data(), encoded.size());
}

Status StreamingCube::EnableDurability(const DurabilityOptions& options) {
  if (log_) {
    return Status::InvalidArgument("EnableDurability: already durable");
  }
  if (rows_appended() != 0 || publisher_->epochs_published() != 0) {
    return Status::InvalidArgument(
        "EnableDurability: cube already holds data — durability must cover "
        "every row (use Recover() to reopen a durable directory)");
  }
  // Baseline: an empty checkpoint at epoch 0 (the constructor's empty
  // snapshot) plus an empty WAL. Committed before the first row can be
  // acknowledged, so the directory is always recoverable.
  CubeStore empty(num_dims_, prototype_k_);
  // The baseline checkpoint records the KLL side column's existence, so
  // recovery re-arms it before replaying any cell.
  if (options_.enable_kll) empty.EnableKll(options_.kll_k);
  Result<std::unique_ptr<DurableLog>> log = DurableLog::Open(
      options, /*epoch=*/0, empty, Dicts()->dicts, /*allow_existing=*/false);
  if (!log.ok()) return log.status();
  log_ = std::move(log).value();
  publisher_->SetDurabilityHook(
      [this](uint64_t epoch, const EpochPublisher::DeltaBatch& batch) {
        return LogEpochDurable(epoch, batch);
      });
  return Status::OK();
}

Status StreamingCube::LogEpochDurable(
    uint64_t epoch, const EpochPublisher::DeltaBatch& batch) {
  std::vector<WalCellRef> refs;
  refs.reserve(batch.size());
  for (const IngestShard::DeltaCell& dc : batch) {
    refs.push_back(
        {&dc.coords, &dc.sketch, dc.kll.count() > 0 ? &dc.kll : nullptr});
  }
  // The current dictionary version covers every id in the batch: rows
  // encode against a version no newer than the one visible at publish
  // time, and versions only grow.
  //
  // Replication tee first: OnEpoch never fails, and followers want the
  // epoch even when the durable log is broken (availability-first).
  if (replica_source_ != nullptr) {
    replica_source_->OnEpoch(epoch, refs, Dicts()->dicts);
  }
  if (log_ == nullptr) return Status::OK();
  return log_->LogEpoch(epoch, refs, Dicts()->dicts);
}

Status StreamingCube::EnableReplication(ReplicationSource* source) {
  if (source == nullptr) {
    return Status::InvalidArgument("EnableReplication: null source");
  }
  if (replica_source_ != nullptr) {
    return Status::InvalidArgument("EnableReplication: already enabled");
  }
  replica_source_ = source;
  source->SetShape(prototype_k_, num_dims_,
                   options_.enable_kll ? options_.kll_k : 0);
  source->SetSnapshotProvider([this]() -> Result<SnapshotImage> {
    std::shared_ptr<const CubeSnapshot> snap = Snapshot();
    std::vector<uint8_t> bytes;
    // Same dictionary rule as Checkpoint: the current version covers
    // every id the published store uses (versions only grow).
    MSKETCH_RETURN_IF_ERROR(
        EncodeCheckpointImage(snap->epoch, snap->store, Dicts()->dicts,
                              &bytes));
    SnapshotImage image;
    image.epoch = snap->epoch;
    image.bytes =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    return image;
  });
  publisher_->SetDurabilityHook(
      [this](uint64_t epoch, const EpochPublisher::DeltaBatch& batch) {
        return LogEpochDurable(epoch, batch);
      });
  return Status::OK();
}

void StreamingCube::OnEpochPublished(const CubeSnapshot& snap) {
  if (log_ && log_->ShouldCheckpoint()) {
    // Best-effort: a failure is counted in DurabilityStats and retried
    // at the next published epoch (ShouldCheckpoint stays true).
    Status st = log_->Checkpoint(snap.epoch, snap.store, Dicts()->dicts);
    (void)st;
  }
  if (user_sink_) user_sink_(snap);
}

Result<std::unique_ptr<StreamingCube>> StreamingCube::Recover(
    size_t num_dims, MomentsSummary prototype, IngestOptions options,
    const DurabilityOptions& durability, RecoveryStats* stats) {
  obs::Span span("ingest.recover");
  RecoveryStats local;
  RecoveryStats* rs = stats ? stats : &local;
  *rs = RecoveryStats();
  Env* env = durability.env != nullptr ? durability.env : Env::Default();
  Result<RecoveredState> state = RecoverState(env, durability.dir, rs);
  if (!state.ok()) return state.status();
  if (state.value().checkpoint.num_dims != num_dims ||
      state.value().checkpoint.k != prototype.k()) {
    return Status::InvalidArgument(
        "Recover: cube shape does not match the durable directory "
        "(num_dims/k recorded at EnableDurability time)");
  }
  CubeStore store(num_dims, prototype.k());
  MSKETCH_RETURN_IF_ERROR(RebuildStore(state.value(), &store, rs));

  auto cube = std::unique_ptr<StreamingCube>(
      new StreamingCube(num_dims, std::move(prototype), std::move(options)));
  cube->InstallDicts(state.value().dict_values);
  const uint64_t epoch = state.value().epochs.empty()
                             ? state.value().checkpoint.epoch
                             : state.value().epochs.back().epoch;
  MSKETCH_RETURN_IF_ERROR(cube->publisher_->Restore(epoch, store));
  // Re-open the directory for continued logging: commits a fresh
  // baseline (checkpoint at the recovered epoch + empty WAL), so a
  // recovered-then-crashed cube recovers again without replaying the old
  // tail twice.
  Result<std::unique_ptr<DurableLog>> log = DurableLog::Open(
      durability, epoch, store, cube->Dicts()->dicts, /*allow_existing=*/true);
  if (!log.ok()) return log.status();
  cube->log_ = std::move(log).value();
  cube->publisher_->SetDurabilityHook(
      [raw = cube.get()](uint64_t e, const EpochPublisher::DeltaBatch& batch) {
        return raw->LogEpochDurable(e, batch);
      });
  // Recovery outcome counters (coarse one-shot events; no hot path).
  obs::MetricsRegistry& reg = obs::GlobalRegistry();
  reg.GetCounter("msk_recovery_runs_total", {},
                 "Successful StreamingCube::Recover calls")
      ->Add(1);
  reg.GetCounter("msk_recovery_epochs_replayed_total", {},
                 "WAL epochs replayed during recovery")
      ->Add(rs->epochs_replayed);
  reg.GetCounter("msk_recovery_cells_replayed_total", {},
                 "Cells replayed from the WAL during recovery")
      ->Add(rs->cells_replayed);
  reg.GetCounter("msk_recovery_rows_recovered_total", {},
                 "Rows restored into the recovered cube")
      ->Add(rs->rows_recovered);
  reg.GetCounter("msk_recovery_bytes_truncated_total", {},
                 "Torn-tail WAL bytes truncated during recovery")
      ->Add(rs->bytes_truncated);
  reg.GetCounter("msk_recovery_checksum_failures_total", {},
                 "Checksum mismatches encountered during recovery")
      ->Add(rs->checksum_failures);
  return cube;
}

void StreamingCube::InstallDicts(
    const std::vector<std::vector<std::string>>& values) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  dict_exclusive_locks_.fetch_add(1, std::memory_order_relaxed);
  auto next = std::make_unique<DictSnapshot>(*dict_versions_.back());
  MSKETCH_CHECK(values.size() == num_dims_);
  for (size_t d = 0; d < num_dims_; ++d) {
    MSKETCH_CHECK(next->dicts[d].size() == 0);  // recovery precedes use
    for (const std::string& v : values[d]) next->dicts[d].Intern(v);
  }
  const DictSnapshot* published = next.get();
  dict_versions_.push_back(std::move(next));
  dict_.store(published, std::memory_order_release);
}

const StreamingCube::DictSnapshot* StreamingCube::InternMissing(
    const std::vector<std::vector<std::string>>& rows) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  dict_exclusive_locks_.fetch_add(1, std::memory_order_relaxed);
  // Copy the newest version (dict_versions_.back(), which intern_mu_
  // guards — dict_ always points at it). Intern is idempotent, so rows
  // another interner published while we waited for the lock just
  // resolve to their existing ids.
  auto next = std::make_unique<DictSnapshot>(*dict_versions_.back());
  for (const std::vector<std::string>& row : rows) {
    for (size_t d = 0; d < num_dims_; ++d) {
      next->dicts[d].Intern(row[d]);
    }
  }
  const DictSnapshot* published = next.get();
  dict_versions_.push_back(std::move(next));
  // The release store pairs with readers' acquire loads: a reader that
  // sees the new pointer sees the fully built dictionaries.
  dict_.store(published, std::memory_order_release);
  return published;
}

Result<CubeCoords> StreamingCube::EncodeRow(
    const std::vector<std::string>& dims) {
  if (dims.size() != num_dims_) {
    return Status::InvalidArgument("EncodeRow: wrong dimension arity");
  }
  CubeCoords coords(num_dims_);
  // Fast path: every value already interned — one acquire load, no lock.
  const DictSnapshot* snap = Dicts();
  bool all_known = true;
  for (size_t d = 0; d < num_dims_; ++d) {
    Result<uint32_t> id = snap->dicts[d].Find(dims[d]);
    if (!id.ok()) {
      all_known = false;
      break;
    }
    coords[d] = id.value();
  }
  if (all_known) return coords;
  // Slow path: publish a version containing this row, then encode from
  // it (every value is present by construction).
  snap = InternMissing({dims});
  for (size_t d = 0; d < num_dims_; ++d) {
    coords[d] = snap->dicts[d].Find(dims[d]).value();
  }
  return coords;
}

Result<std::vector<CubeCoords>> StreamingCube::EncodeRows(
    const std::vector<std::vector<std::string>>& rows) {
  // Validate arity for every row before interning anything, so a
  // malformed batch fails without publishing a partial version.
  for (const std::vector<std::string>& row : rows) {
    if (row.size() != num_dims_) {
      return Status::InvalidArgument("EncodeRows: wrong dimension arity");
    }
  }
  std::vector<CubeCoords> out(rows.size(), CubeCoords(num_dims_));
  // Fast path: one acquire load covers the whole batch; misses are
  // remembered and resolved against the upgraded version below.
  const DictSnapshot* snap = Dicts();
  size_t first_miss = rows.size();
  for (size_t i = 0; i < rows.size() && first_miss == rows.size(); ++i) {
    for (size_t d = 0; d < num_dims_; ++d) {
      Result<uint32_t> id = snap->dicts[d].Find(rows[i][d]);
      if (!id.ok()) {
        first_miss = i;
        break;
      }
      out[i][d] = id.value();
    }
  }
  if (first_miss == rows.size()) return out;
  // Slow path: exactly one exclusive upgrade for the whole batch, no
  // matter how many rows or values are new.
  snap = InternMissing(rows);
  for (size_t i = first_miss; i < rows.size(); ++i) {
    for (size_t d = 0; d < num_dims_; ++d) {
      out[i][d] = snap->dicts[d].Find(rows[i][d]).value();
    }
  }
  return out;
}

Result<CubeFilter> StreamingCube::EncodeFilter(
    const std::vector<std::string>& dims) const {
  if (dims.size() != num_dims_) {
    return Status::InvalidArgument("EncodeFilter: wrong dimension arity");
  }
  CubeFilter filter(num_dims_, kAnyValue);
  const DictSnapshot* snap = Dicts();
  for (size_t d = 0; d < num_dims_; ++d) {
    if (dims[d].empty()) continue;
    Result<uint32_t> id = snap->dicts[d].Find(dims[d]);
    if (!id.ok()) return id.status();
    filter[d] = static_cast<int64_t>(id.value());
  }
  return filter;
}

Result<std::string> StreamingCube::DecodeValue(size_t dim,
                                               uint32_t id) const {
  if (dim >= num_dims_) {
    return Status::InvalidArgument("DecodeValue: dimension out of range");
  }
  const DictSnapshot* snap = Dicts();
  if (id >= snap->dicts[dim].size()) {
    return Status::OutOfRange("DecodeValue: unknown value id");
  }
  return snap->dicts[dim].ValueOf(id);
}

MomentsSummary StreamingCube::QueryWhere(const CubeFilter& filter,
                                         CubeStore::QueryStats* stats) const {
  static obs::Histogram* const hist = QueryHist("where");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.where");
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return MomentsSummary(snap->store.QueryWhere(filter, stats),
                        options_maxent_);
}

Result<double> StreamingCube::QueryQuantile(const CubeFilter& filter,
                                            double phi) const {
  static obs::Histogram* const hist = QueryHist("quantile");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.quantile");
  MomentsSummary merged = QueryWhere(filter);
  if (merged.count() == 0) {
    return Status::InvalidArgument("QueryQuantile: empty selection");
  }
  return merged.EstimateQuantile(phi);
}

CertifiedQuantile StreamingCube::QueryQuantileCertified(
    const CubeFilter& filter, double phi, RouterStats* stats) const {
  static obs::Histogram* const hist = QueryHist("quantile_certified");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.certified");
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  const MomentsSketch moments = snap->store.QueryWhere(filter);
  KllSketch kll;
  const KllSketch* kll_ptr = nullptr;
  if (snap->store.kll_enabled()) {
    Result<KllSketch> merged = snap->store.MergeKllWhere(filter);
    if (merged.ok()) {
      kll = std::move(merged).value();
      kll_ptr = &kll;
    }
  }
  RouterOptions opt;
  opt.maxent = options_maxent_;
  SummaryRouter router(opt);
  CertifiedQuantile out = router.Query(moments, kll_ptr, phi);
  if (stats != nullptr) stats->MergeFrom(router.stats());
  return out;
}

std::vector<GroupQuantilesCertified> StreamingCube::GroupByQuantilesCertified(
    const std::vector<size_t>& group_dims, const std::vector<double>& phis,
    const RouterOptions& options, RouterStats* stats) const {
  static obs::Histogram* const hist = QueryHist("groupby_certified");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.certified_groupby");
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return msketch::GroupByQuantilesCertified(snap->store, group_dims, phis,
                                            options, stats);
}

std::vector<GroupQuantilesCertified> StreamingCube::GroupByQuantilesCertified(
    const std::vector<size_t>& group_dims,
    const std::vector<double>& phis) const {
  RouterOptions opt;
  opt.maxent = options_maxent_;
  return GroupByQuantilesCertified(group_dims, phis, opt, nullptr);
}

std::vector<GroupQuantiles> StreamingCube::GroupByQuantiles(
    const std::vector<size_t>& group_dims, const std::vector<double>& phis,
    const BatchOptions& options, BatchStats* stats) const {
  static obs::Histogram* const hist = QueryHist("groupby_quantiles");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.groupby");
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return msketch::GroupByQuantiles(snap->store, group_dims, phis, options,
                                   stats);
}

std::vector<GroupThreshold> StreamingCube::GroupByThreshold(
    const std::vector<size_t>& group_dims, double phi, double t,
    const BatchOptions& options, BatchStats* stats) const {
  static obs::Histogram* const hist = QueryHist("groupby_threshold");
  obs::ScopedLatencyTimer timer(hist);
  obs::Span span("query.threshold");
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return msketch::GroupByThreshold(snap->store, group_dims, phi, t, options,
                                   stats);
}

uint64_t StreamingCube::rows_appended() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->rows_appended();
  return total;
}

IngestStats StreamingCube::stats() const {
  IngestStats agg;
  for (const auto& shard : shards_) {
    const IngestShardStats s = shard->stats();
    agg.rows_appended += s.rows_appended;
    agg.rows_backpressured += s.rows_backpressured;
    agg.backpressure_events += s.backpressure_events;
    agg.chunks_sealed += s.chunks_sealed;
    agg.chunks_drained += s.chunks_drained;
    agg.full_ring_high_water =
        std::max(agg.full_ring_high_water, s.full_ring_high_water);
    agg.steal_giveups += s.steal_giveups;
    agg.deadline_events += s.deadline_events;
    agg.rows_deadline_failed += s.rows_deadline_failed;
  }
  agg.dict_exclusive_locks =
      dict_exclusive_locks_.load(std::memory_order_relaxed);
  agg.publisher = publisher_->stats();
  return agg;
}

}  // namespace msketch
