#include "ingest/streaming_cube.h"

#include <utility>

#include "common/macros.h"

namespace msketch {

StreamingCube::StreamingCube(size_t num_dims, MomentsSummary prototype,
                             IngestOptions options)
    : num_dims_(num_dims),
      prototype_k_(prototype.k()),
      options_maxent_(prototype.options()),
      options_(options),
      dicts_(num_dims) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(options_.num_shards >= 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<IngestShard>(num_dims_, prototype_k_,
                                                    options_.batch_size));
  }
  std::vector<IngestShard*> shard_ptrs;
  shard_ptrs.reserve(shards_.size());
  for (auto& s : shards_) shard_ptrs.push_back(s.get());
  publisher_ = std::make_unique<EpochPublisher>(num_dims_, prototype_k_,
                                                options_, shard_ptrs);
}

StreamingCube::~StreamingCube() { publisher_->Stop(); }

Status StreamingCube::AppendRow(const std::vector<std::string>& dims,
                                double value) {
  Result<CubeCoords> coords = EncodeRow(dims);
  if (!coords.ok()) return coords.status();
  Append(coords.value(), value);
  return Status::OK();
}

void StreamingCube::AppendRows(const IngestRow* rows, size_t n) {
  if (n == 0) return;
  // Partition into per-shard runs, preserving arrival order within each
  // shard (cells are shard-affine, so per-cell order is preserved too).
  std::vector<std::vector<IngestRow>> parts(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    parts[CubeCoordsHash()(rows[i].coords) % shards_.size()].push_back(
        rows[i]);
  }
  for (size_t s = 0; s < parts.size(); ++s) {
    if (!parts[s].empty()) {
      shards_[s]->AppendRows(parts[s].data(), parts[s].size());
    }
  }
}

Status StreamingCube::AppendRowBatch(
    const std::vector<std::vector<std::string>>& rows, const double* values) {
  Result<std::vector<CubeCoords>> coords = EncodeRows(rows);
  if (!coords.ok()) return coords.status();
  std::vector<IngestRow> encoded(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    encoded[i].coords = std::move(coords.value()[i]);
    encoded[i].value = values[i];
  }
  AppendRows(encoded.data(), encoded.size());
  return Status::OK();
}

Result<CubeCoords> StreamingCube::EncodeRow(
    const std::vector<std::string>& dims) {
  if (dims.size() != num_dims_) {
    return Status::InvalidArgument("EncodeRow: wrong dimension arity");
  }
  CubeCoords coords(num_dims_);
  // Fast path: every value already interned, shared lock only.
  {
    std::shared_lock<std::shared_mutex> lock(dict_mu_);
    bool all_known = true;
    for (size_t d = 0; d < num_dims_; ++d) {
      Result<uint32_t> id = dicts_[d].Find(dims[d]);
      if (!id.ok()) {
        all_known = false;
        break;
      }
      coords[d] = id.value();
    }
    if (all_known) return coords;
  }
  std::unique_lock<std::shared_mutex> lock(dict_mu_);
  for (size_t d = 0; d < num_dims_; ++d) {
    coords[d] = dicts_[d].Intern(dims[d]);
  }
  return coords;
}

Result<std::vector<CubeCoords>> StreamingCube::EncodeRows(
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<CubeCoords> out(rows.size(), CubeCoords(num_dims_));
  // Fast path: one shared lock for the whole batch; every value already
  // interned. Misses remember where to resume under the exclusive lock.
  size_t first_miss = rows.size();
  {
    std::shared_lock<std::shared_mutex> lock(dict_mu_);
    for (size_t i = 0; i < rows.size() && first_miss == rows.size(); ++i) {
      if (rows[i].size() != num_dims_) {
        return Status::InvalidArgument("EncodeRows: wrong dimension arity");
      }
      for (size_t d = 0; d < num_dims_; ++d) {
        Result<uint32_t> id = dicts_[d].Find(rows[i][d]);
        if (!id.ok()) {
          first_miss = i;
          break;
        }
        out[i][d] = id.value();
      }
    }
  }
  if (first_miss == rows.size()) return out;
  std::unique_lock<std::shared_mutex> lock(dict_mu_);
  for (size_t i = first_miss; i < rows.size(); ++i) {
    if (rows[i].size() != num_dims_) {
      return Status::InvalidArgument("EncodeRows: wrong dimension arity");
    }
    for (size_t d = 0; d < num_dims_; ++d) {
      out[i][d] = dicts_[d].Intern(rows[i][d]);
    }
  }
  return out;
}

Result<CubeFilter> StreamingCube::EncodeFilter(
    const std::vector<std::string>& dims) const {
  if (dims.size() != num_dims_) {
    return Status::InvalidArgument("EncodeFilter: wrong dimension arity");
  }
  CubeFilter filter(num_dims_, kAnyValue);
  std::shared_lock<std::shared_mutex> lock(dict_mu_);
  for (size_t d = 0; d < num_dims_; ++d) {
    if (dims[d].empty()) continue;
    Result<uint32_t> id = dicts_[d].Find(dims[d]);
    if (!id.ok()) return id.status();
    filter[d] = static_cast<int64_t>(id.value());
  }
  return filter;
}

Result<std::string> StreamingCube::DecodeValue(size_t dim,
                                               uint32_t id) const {
  if (dim >= num_dims_) {
    return Status::InvalidArgument("DecodeValue: dimension out of range");
  }
  std::shared_lock<std::shared_mutex> lock(dict_mu_);
  if (id >= dicts_[dim].size()) {
    return Status::OutOfRange("DecodeValue: unknown value id");
  }
  return dicts_[dim].ValueOf(id);
}

MomentsSummary StreamingCube::QueryWhere(const CubeFilter& filter,
                                         CubeStore::QueryStats* stats) const {
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return MomentsSummary(snap->store.QueryWhere(filter, stats),
                        options_maxent_);
}

Result<double> StreamingCube::QueryQuantile(const CubeFilter& filter,
                                            double phi) const {
  MomentsSummary merged = QueryWhere(filter);
  if (merged.count() == 0) {
    return Status::InvalidArgument("QueryQuantile: empty selection");
  }
  return merged.EstimateQuantile(phi);
}

std::vector<GroupQuantiles> StreamingCube::GroupByQuantiles(
    const std::vector<size_t>& group_dims, const std::vector<double>& phis,
    const BatchOptions& options, BatchStats* stats) const {
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return msketch::GroupByQuantiles(snap->store, group_dims, phis, options,
                                   stats);
}

std::vector<GroupThreshold> StreamingCube::GroupByThreshold(
    const std::vector<size_t>& group_dims, double phi, double t,
    const BatchOptions& options, BatchStats* stats) const {
  std::shared_ptr<const CubeSnapshot> snap = Snapshot();
  return msketch::GroupByThreshold(snap->store, group_dims, phi, t, options,
                                   stats);
}

uint64_t StreamingCube::rows_appended() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->rows_appended();
  return total;
}

}  // namespace msketch
