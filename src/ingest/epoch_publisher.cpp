#include "ingest/epoch_publisher.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/trace.h"

namespace msketch {

EpochPublisher::EpochPublisher(size_t num_dims, int k,
                               const IngestOptions& options,
                               std::vector<IngestShard*> shards)
    : num_dims_(num_dims),
      k_(k),
      options_(options),
      shards_(std::move(shards)) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(k >= 1 && k <= 64);
  MSKETCH_CHECK(options_.snapshot_buffers >= 2);
  MSKETCH_CHECK(!shards_.empty());
  total_buffers_ = options_.snapshot_buffers;
  buffer_epoch_.assign(total_buffers_, 0);
  for (size_t b = 0; b < total_buffers_; ++b) {
    auto snap = std::make_unique<CubeSnapshot>(num_dims_, k_);
    if (options_.enable_kll) snap->store.EnableKll(options_.kll_k);
    snap->buffer_index = b;
    free_.push_back(std::move(snap));
  }
  // Publish an empty epoch-0 snapshot so readers always have a cube.
  // Nothing is drained here: rows already sitting in the shards belong
  // to the first real epoch (epoch 0 is structurally empty, which is
  // what lets the catch-up replay skip it).
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  std::unique_ptr<CubeSnapshot> buf = TakeBuffer();
  if (options_.build_rollup) buf->store.BuildRollup(options_.rollup);
  std::shared_ptr<const CubeSnapshot> snap(
      buf.release(), [this](const CubeSnapshot* s) {
        ReturnBuffer(const_cast<CubeSnapshot*>(s));
      });
  std::atomic_store(&published_, snap);
}

EpochPublisher::~EpochPublisher() {
  Stop();
  // Drop the publisher's own reference, then wait for every reader
  // handle to return its buffer: buffers must not outlive the pool.
  std::atomic_store(&published_, std::shared_ptr<const CubeSnapshot>());
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return free_.size() == total_buffers_; });
}

std::shared_ptr<const CubeSnapshot> EpochPublisher::Current() const {
  return std::atomic_load(&published_);
}

EpochPublisher::DeltaBatch EpochPublisher::DrainShards() {
  DeltaBatch all;
  for (IngestShard* shard : shards_) {
    DeltaBatch part = shard->Drain();
    std::move(part.begin(), part.end(), std::back_inserter(all));
  }
  // Deterministic application order: cells ascend by coordinates, and
  // the stable sort keeps a cell's multiple shard deltas in shard order
  // (they were appended shard-major above).
  std::stable_sort(all.begin(), all.end(),
                   [](const IngestShard::DeltaCell& a,
                      const IngestShard::DeltaCell& b) {
                     return a.coords < b.coords;
                   });
  return all;
}

void EpochPublisher::ApplyBatch(CubeStore* store, const DeltaBatch& batch) {
  for (const IngestShard::DeltaCell& dc : batch) {
    // Arity and order are publisher invariants; a failure here is a
    // programming error, not a data error.
    MSKETCH_CHECK(store->ApplyDelta(dc.coords, dc.sketch).ok());
    // The rank-sketch side column replays the same deterministic merge
    // sequence into every buffer, so all buffers stay bit-identical.
    if (store->kll_enabled() && dc.kll.count() > 0) {
      MSKETCH_CHECK(store->ApplyKllDelta(dc.coords, dc.kll).ok());
    }
  }
}

std::shared_ptr<const CubeSnapshot> EpochPublisher::Publish() {
  using Clock = std::chrono::steady_clock;
  obs::Span publish_span("ingest.publish");
  std::unique_lock<std::mutex> publish_lock(publish_mu_);
  const Clock::time_point t0 = Clock::now();
  DeltaBatch batch;
  {
    obs::Span drain_span("ingest.drain");
    batch = DrainShards();
  }
  latency_.last_drain_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  latency_.max_drain_ms =
      std::max(latency_.max_drain_ms, latency_.last_drain_ms);
  // The drain ran either way: empty sweeps belong in the distribution
  // too (they are the publisher's idle heartbeat cost).
  drain_h_.Observe(latency_.last_drain_ms * 1e-3);
  if (batch.empty()) {
    // Nothing new arrived: the current snapshot already covers every
    // appended row, so re-publishing would only churn buffers.
    return Current();
  }
  const uint64_t epoch = next_epoch_++;
  if (durability_) {
    // Write-ahead: the batch is offered to the log before any query can
    // observe the epoch. A failure is counted and publication proceeds
    // — the durability layer marks itself broken and re-bases at its
    // next checkpoint; ingest never stalls on a dead disk.
    const Clock::time_point d0 = Clock::now();
    if (!durability_(epoch, batch).ok()) {
      latency_.durability_failures++;
    }
    latency_.last_durability_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - d0).count();
    latency_.max_durability_ms =
        std::max(latency_.max_durability_ms, latency_.last_durability_ms);
    durability_h_.Observe(latency_.last_durability_ms * 1e-3);
  }
  // The epoch's pane delta: merged total of the batch, in batch order.
  MomentsSketch epoch_delta(k_);
  for (const IngestShard::DeltaCell& dc : batch) {
    MSKETCH_CHECK(epoch_delta.Merge(dc.sketch).ok());
  }
  history_.emplace_back(epoch, std::move(batch));

  std::unique_ptr<CubeSnapshot> buf = TakeBuffer();
  // Catch the buffer up on every batch it missed while it was the
  // published snapshot — one batch in steady state. `buf->epoch` is the
  // epoch the buffer has applied through (0 for a fresh buffer; the
  // epoch-0 batch is always empty, so nothing is skipped).
  for (const auto& [e, b] : history_) {
    if (e > buf->epoch) ApplyBatch(&buf->store, b);
  }
  buf->epoch = epoch;
  buf->epoch_delta = std::move(epoch_delta);
  if (options_.build_rollup) {
    if (buf->store.rollup() == nullptr) {
      buf->store.BuildRollup(options_.rollup);
    } else {
      buf->store.RefreshRollup();
    }
  }
  buffer_epoch_[buf->buffer_index] = epoch;
  // Batches already replayed into every buffer can go.
  const uint64_t applied_min =
      *std::min_element(buffer_epoch_.begin(), buffer_epoch_.end());
  while (!history_.empty() && history_.front().first <= applied_min) {
    history_.pop_front();
  }

  std::shared_ptr<const CubeSnapshot> snap(
      buf.release(), [this](const CubeSnapshot* s) {
        ReturnBuffer(const_cast<CubeSnapshot*>(s));
      });
  std::atomic_store(&published_, snap);
  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  latency_.last_publish_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  latency_.max_publish_ms =
      std::max(latency_.max_publish_ms, latency_.last_publish_ms);
  publish_h_.Observe(latency_.last_publish_ms * 1e-3);
  // The sink runs outside publish_mu_ so it may query the publisher
  // (Current, lag_batches); sink_mu_ is taken before the publish lock
  // drops, which keeps sink invocations in epoch order.
  std::lock_guard<std::mutex> sink_lock(sink_mu_);
  publish_lock.unlock();
  if (sink_) sink_(*snap);
  return snap;
}

Status EpochPublisher::Restore(uint64_t epoch, const CubeStore& store) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  if (next_epoch_ != 1 || !history_.empty()) {
    return Status::InvalidArgument(
        "Restore: publisher has already published real epochs");
  }
  // Drop the constructor's epoch-0 snapshot and wait for its buffer (no
  // reader can hold a handle yet — recovery owns the cube privately).
  std::atomic_store(&published_, std::shared_ptr<const CubeSnapshot>());
  std::unique_lock<std::mutex> pool_lock(pool_mu_);
  pool_cv_.wait(pool_lock, [&] { return free_.size() == total_buffers_; });
  for (std::unique_ptr<CubeSnapshot>& buf : free_) {
    buf->store = store;  // copy-assign re-points the cached column bases
    buf->epoch = epoch;
    buf->epoch_delta = MomentsSketch(k_);
    if (options_.build_rollup) buf->store.BuildRollup(options_.rollup);
  }
  pool_lock.unlock();
  buffer_epoch_.assign(total_buffers_, epoch);
  next_epoch_ = epoch + 1;
  std::unique_ptr<CubeSnapshot> buf = TakeBuffer();
  std::shared_ptr<const CubeSnapshot> snap(
      buf.release(), [this](const CubeSnapshot* s) {
        ReturnBuffer(const_cast<CubeSnapshot*>(s));
      });
  std::atomic_store(&published_, snap);
  return Status::OK();
}

std::unique_ptr<CubeSnapshot> EpochPublisher::TakeBuffer() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return !free_.empty(); });
  // FIFO: take the longest-idle buffer so every pool member cycles
  // through publishes. LIFO would let a third buffer sit idle forever
  // with its applied-epoch stuck at 0, pinning the whole batch history
  // in memory (the trim below keys off the minimum applied epoch).
  std::unique_ptr<CubeSnapshot> buf = std::move(free_.front());
  free_.pop_front();
  return buf;
}

void EpochPublisher::ReturnBuffer(CubeSnapshot* snap) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  free_.emplace_back(snap);
  pool_cv_.notify_all();
}

void EpochPublisher::Start() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (loop_.joinable()) return;
  stop_requested_ = false;
  loop_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(stop_mu_);
        stop_cv_.wait_for(lk, options_.epoch_interval,
                          [&] { return stop_requested_; });
        if (stop_requested_) return;
      }
      Publish();
    }
  });
}

void EpochPublisher::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
    to_join = std::move(loop_);
  }
  stop_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

}  // namespace msketch
