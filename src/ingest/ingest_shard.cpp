#include "ingest/ingest_shard.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"

namespace msketch {
namespace {

// Spins with pause before yielding in the token and backpressure waits:
// long enough to ride out another writer's append, short enough that a
// preempted owner (single-core hosts) gets the CPU back quickly.
constexpr int kTokenSpins = 128;
constexpr int kBackpressureSpins = 1024;
// The publisher's bounded wait for a mid-append writer. Interleaved
// yields keep a preempted writer schedulable; past the bound the parked
// rows simply ride the next epoch.
constexpr int kStealSpins = 65536;
constexpr int kStealYieldEvery = 1024;
// Yields between stall-budget clock reads: the deadline only matters at
// multi-second granularity, so the backpressure loop checks the clock
// rarely enough that the steady-state wait stays syscall-free.
constexpr int kStallCheckEveryYields = 64;

constexpr size_t kDirNotFound = static_cast<size_t>(-1);
// SlotOf's stall-budget failure sentinel (distinct from kDirNotFound,
// which never escapes DirFind).
constexpr size_t kSlotStalled = static_cast<size_t>(-2);

}  // namespace

const char IngestShard::held_marker_ = 0;

IngestShard::IngestShard(size_t num_dims, int k, size_t batch_size,
                         size_t chunk_cells, size_t chunks,
                         std::chrono::milliseconds stall_budget, int kll_k)
    : num_dims_(num_dims),
      k_(k),
      batch_size_(batch_size),
      chunk_cells_(chunk_cells),
      stall_budget_(stall_budget),
      full_ring_(chunks),
      free_ring_(chunks) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(k >= 1 && k <= 64);
  MSKETCH_CHECK(batch_size >= 1);
  MSKETCH_CHECK(chunk_cells >= 1);
  MSKETCH_CHECK(chunks >= 2);
  pool_.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    pool_.push_back(
        std::make_unique<DeltaChunk>(k, chunk_cells, batch_size, kll_k));
    MSKETCH_CHECK(free_ring_.Push(pool_.back().get()));
  }
  size_t dir_cap = 1;
  while (dir_cap < 2 * chunk_cells) dir_cap <<= 1;
  dir_.assign(dir_cap, 0);
  dir_mask_ = dir_cap - 1;
}

DeltaChunk* IngestShard::AcquireCurrent() {
  int spins = 0;
  for (;;) {
    DeltaChunk* cur = parked_.load(std::memory_order_relaxed);
    if (cur != Held()) {
      if (parked_.compare_exchange_weak(cur, Held(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return cur;
      }
      continue;  // lost a race; the new state decides the next move
    }
    if (++spins < kTokenSpins) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
}

void IngestShard::Park(DeltaChunk* chunk) {
  parked_.store(chunk, std::memory_order_release);
}

DeltaChunk* IngestShard::StealParked() {
  for (int spins = 0; spins < kStealSpins; ++spins) {
    DeltaChunk* cur = parked_.load(std::memory_order_relaxed);
    if (cur == nullptr) return nullptr;  // no working chunk
    if (cur != Held()) {
      if (parked_.compare_exchange_weak(cur, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return cur;
      }
      continue;
    }
    if (spins % kStealYieldEvery == kStealYieldEvery - 1) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }
  }
  steal_giveups_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;  // writer mid-append: its rows ride the next epoch
}

DeltaChunk* IngestShard::TakeFresh(size_t rows_at_stake) {
  DeltaChunk* chunk = nullptr;
  if (!free_ring_.Pop(&chunk)) {
    // Pool exhausted: the publisher is behind. Spin-then-yield until a
    // drain recycles a chunk; never drop rows, never allocate. The
    // stall budget bounds the wait: a publisher that died (or was never
    // started) must surface as an error, not an unkillable spin loop.
    backpressure_events_.fetch_add(1, std::memory_order_relaxed);
    rows_backpressured_.fetch_add(rows_at_stake, std::memory_order_relaxed);
    const bool bounded = stall_budget_.count() > 0;
    std::chrono::steady_clock::time_point deadline;
    int spins = 0;
    int yields = 0;
    while (!free_ring_.Pop(&chunk)) {
      if (++spins < kBackpressureSpins) {
        CpuRelax();
        continue;
      }
      std::this_thread::yield();
      if (!bounded) continue;
      // The clock is read only on this slow path, and only every few
      // dozen yields — a stalled writer burns no syscall budget and a
      // healthy one never gets here.
      if (++yields == 1) {
        deadline = std::chrono::steady_clock::now() + stall_budget_;
      } else if (yields % kStallCheckEveryYields == 0 &&
                 std::chrono::steady_clock::now() >= deadline) {
        deadline_events_.fetch_add(1, std::memory_order_relaxed);
        rows_deadline_failed_.fetch_add(rows_at_stake,
                                        std::memory_order_relaxed);
        return nullptr;
      }
    }
  }
  chunk->set_session(next_session_++);
  std::fill(dir_.begin(), dir_.end(), uint64_t{0});
  return chunk;
}

Status IngestShard::StallError(size_t dropped) const {
  return Status::DeadlineExceeded(
      "ingest backpressure stall exceeded " +
      std::to_string(stall_budget_.count()) +
      "ms (no drainer recycling chunks — publisher stopped or wedged); " +
      std::to_string(dropped) + " row(s) not appended");
}

void IngestShard::Seal(DeltaChunk* chunk, uint64_t* uncounted) {
  // Rows pushed by the in-progress call must be visible in
  // rows_appended_ before the chunk can publish (readers assert that
  // published rows never exceed appended rows).
  if (*uncounted > 0) {
    rows_appended_.fetch_add(*uncounted, std::memory_order_relaxed);
    *uncounted = 0;
  }
  chunk->FoldAll();
  MSKETCH_CHECK(full_ring_.Push(chunk));  // ring capacity == pool size
  chunks_sealed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t occ = full_ring_.SizeApprox();
  uint64_t hw = full_ring_high_water_.load(std::memory_order_relaxed);
  while (occ > hw && !full_ring_high_water_.compare_exchange_weak(
                         hw, occ, std::memory_order_relaxed,
                         std::memory_order_relaxed)) {
  }
}

size_t IngestShard::DirFind(DeltaChunk* chunk, const CubeCoords& coords,
                            uint64_t hash) {
  size_t idx = hash & dir_mask_;
  const uint32_t want_tag = static_cast<uint32_t>(hash);
  for (;;) {
    const uint64_t entry = dir_[idx];
    if (entry == 0) return kDirNotFound;
    if (static_cast<uint32_t>(entry >> 32) == want_tag) {
      const size_t slot = static_cast<size_t>(entry & 0xffffffffu) - 1;
      if (chunk->SlotCoords(slot) == coords) return slot;
    }
    idx = (idx + 1) & dir_mask_;
  }
}

void IngestShard::DirInsert(uint64_t hash, size_t slot) {
  size_t idx = hash & dir_mask_;
  while (dir_[idx] != 0) idx = (idx + 1) & dir_mask_;
  dir_[idx] = (static_cast<uint64_t>(static_cast<uint32_t>(hash)) << 32) |
              static_cast<uint64_t>(slot + 1);
}

size_t IngestShard::SlotOf(DeltaChunk** chunk, const CubeCoords& coords,
                           size_t rows_at_stake, uint64_t* uncounted) {
  const uint64_t hash = CubeCoordsHash()(coords);
  const size_t found = DirFind(*chunk, coords, hash);
  if (found != kDirNotFound) return found;
  if ((*chunk)->full()) {
    Seal(*chunk, uncounted);
    *chunk = TakeFresh(rows_at_stake);
    if (*chunk == nullptr) return kSlotStalled;
  }
  const size_t slot = (*chunk)->AddSlot(coords);
  DirInsert(hash, slot);
  return slot;
}

Status IngestShard::Append(const CubeCoords& coords, double value) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  DeltaChunk* chunk = AcquireCurrent();
  if (chunk == nullptr) chunk = TakeFresh(1);
  if (chunk == nullptr) {
    Park(nullptr);  // release the token with no working chunk
    return StallError(1);
  }
  uint64_t uncounted = 0;
  const size_t slot = SlotOf(&chunk, coords, 1, &uncounted);
  if (slot == kSlotStalled) {
    Park(nullptr);
    return StallError(1);
  }
  chunk->Push(slot, value);
  rows_appended_.fetch_add(1, std::memory_order_relaxed);
  Park(chunk);
  return Status::OK();
}

Status IngestShard::AppendBatch(const CubeCoords& coords,
                                const double* values, size_t n) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  if (n == 0) return Status::OK();
  DeltaChunk* chunk = AcquireCurrent();
  if (chunk == nullptr) chunk = TakeFresh(n);
  if (chunk == nullptr) {
    Park(nullptr);
    return StallError(n);
  }
  uint64_t uncounted = 0;
  const size_t slot = SlotOf(&chunk, coords, n, &uncounted);
  if (slot == kSlotStalled) {
    Park(nullptr);
    return StallError(n);
  }
  chunk->PushRun(slot, values, n);
  rows_appended_.fetch_add(n, std::memory_order_relaxed);
  Park(chunk);
  return Status::OK();
}

Status IngestShard::AppendRows(const IngestRow* rows, size_t n) {
  if (n == 0) return Status::OK();
  DeltaChunk* chunk = AcquireCurrent();
  if (chunk == nullptr) chunk = TakeFresh(n);
  if (chunk == nullptr) {
    Park(nullptr);
    return StallError(n);
  }
  uint64_t uncounted = 0;
  // Last-cell memo: feeds are bursty (runs of rows for one cell), and
  // the directory probe is the next cost after the buffered store. The
  // memo pointer targets the chunk's slot-coords storage, which is
  // stable until the chunk seals — and a seal routes the next row
  // through SlotOf, which refreshes the memo.
  const CubeCoords* last = nullptr;
  size_t last_slot = 0;
  size_t appended = n;
  for (size_t i = 0; i < n; ++i) {
    const IngestRow& r = rows[i];
    MSKETCH_DCHECK(r.coords.size() == num_dims_);
    size_t slot;
    if (last != nullptr && *last == r.coords) {
      slot = last_slot;
    } else {
      slot = SlotOf(&chunk, r.coords, n - i, &uncounted);
      if (slot == kSlotStalled) {
        // Rows [0, i) are buffered (and already sealed to the
        // publisher); the rest were dropped by the stall.
        appended = i;
        break;
      }
      last = &chunk->SlotCoords(slot);
      last_slot = slot;
    }
    chunk->Push(slot, r.value);
    ++uncounted;
  }
  rows_appended_.fetch_add(uncounted, std::memory_order_relaxed);
  Park(chunk);  // nullptr after a stall: token released, no working chunk
  if (appended < n) return StallError(n - appended);
  return Status::OK();
}

std::vector<IngestShard::DeltaCell> IngestShard::Drain() {
  std::vector<DeltaChunk*> chunks;
  DeltaChunk* c = nullptr;
  // Wait-free sweep: everything already sealed, then the parked working
  // chunk (bounded wait), then anything sealed while we were stealing.
  while (full_ring_.Pop(&c)) chunks.push_back(c);
  if (DeltaChunk* stolen = StealParked()) {
    stolen->FoldAll();
    chunks.push_back(stolen);
  }
  while (full_ring_.Pop(&c)) chunks.push_back(c);
  // Service-entry order == seal order == per-cell delta order: the
  // ring is FIFO but the stolen chunk and the post-steal sweep can
  // arrive out of sequence.
  std::sort(chunks.begin(), chunks.end(),
            [](const DeltaChunk* a, const DeltaChunk* b) {
              return a->session() < b->session();
            });

  std::vector<DeltaCell> out;
  size_t total_slots = 0;
  for (const DeltaChunk* chunk : chunks) total_slots += chunk->used();
  out.reserve(total_slots);
  for (DeltaChunk* chunk : chunks) {
    const FlatMomentColumns view = chunk->View();
    const size_t used = chunk->used();
    for (size_t s = 0; s < used; ++s) {
      if (view.counts[s] == 0) continue;
      // MergeFlat into an empty sketch is a bit-exact copy of the slot
      // (0 + x == x for finite sums; min/max fold from the sentinels).
      const uint32_t id = static_cast<uint32_t>(s);
      MomentsSketch sketch(k_);
      MSKETCH_CHECK(sketch.MergeFlat(view, &id, 1).ok());
      DeltaCell dc{chunk->SlotCoords(s), std::move(sketch), KllSketch()};
      // The slot's rank sketch rides along (Reset() below re-arms the
      // slot with a fresh one).
      if (chunk->kll_enabled()) dc.kll = std::move(chunk->SlotKll(s));
      out.push_back(std::move(dc));
    }
    chunk->Reset();
    MSKETCH_CHECK(free_ring_.Push(chunk));
    chunks_drained_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

IngestShardStats IngestShard::stats() const {
  IngestShardStats s;
  s.rows_appended = rows_appended_.load(std::memory_order_relaxed);
  s.rows_backpressured =
      rows_backpressured_.load(std::memory_order_relaxed);
  s.backpressure_events =
      backpressure_events_.load(std::memory_order_relaxed);
  s.chunks_sealed = chunks_sealed_.load(std::memory_order_relaxed);
  s.chunks_drained = chunks_drained_.load(std::memory_order_relaxed);
  s.full_ring_high_water =
      full_ring_high_water_.load(std::memory_order_relaxed);
  s.steal_giveups = steal_giveups_.load(std::memory_order_relaxed);
  s.deadline_events = deadline_events_.load(std::memory_order_relaxed);
  s.rows_deadline_failed =
      rows_deadline_failed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace msketch
