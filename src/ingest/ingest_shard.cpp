#include "ingest/ingest_shard.h"

#include <utility>

#include "common/macros.h"

namespace msketch {

IngestShard::IngestShard(size_t num_dims, int k, size_t batch_size)
    : num_dims_(num_dims), k_(k), batch_size_(batch_size) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(k >= 1 && k <= 64);
  MSKETCH_CHECK(batch_size >= 1);
}

void IngestShard::Append(const CubeCoords& coords, double value) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(coords);
  if (it == cells_.end()) {
    it = cells_.emplace(coords, Cell{MomentsSketch(k_), {}}).first;
    it->second.pending.reserve(batch_size_);
  }
  Cell& cell = it->second;
  cell.pending.push_back(value);
  if (cell.pending.size() >= batch_size_) FlushCell(&cell);
  rows_appended_.fetch_add(1, std::memory_order_relaxed);
}

void IngestShard::AppendBatch(const CubeCoords& coords, const double* values,
                              size_t n) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(coords);
  if (it == cells_.end()) {
    it = cells_.emplace(coords, Cell{MomentsSketch(k_), {}}).first;
    it->second.pending.reserve(batch_size_);
  }
  Cell& cell = it->second;
  // Keep the same per-cell value order as n calls to Append: top up the
  // pending buffer to a full flush, then run whole batches straight
  // through the kernel, then buffer the tail.
  size_t i = 0;
  if (!cell.pending.empty()) {
    while (i < n && cell.pending.size() < batch_size_) {
      cell.pending.push_back(values[i++]);
    }
    if (cell.pending.size() >= batch_size_) FlushCell(&cell);
  }
  if (i < n) {
    const size_t whole = ((n - i) / batch_size_) * batch_size_;
    if (whole > 0) {
      cell.sketch.AccumulateBatch(values + i, whole);
      i += whole;
    }
    for (; i < n; ++i) cell.pending.push_back(values[i]);
  }
  rows_appended_.fetch_add(n, std::memory_order_relaxed);
}

void IngestShard::AppendRows(const IngestRow* rows, size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Last-cell memo: feeds are bursty (runs of rows for one cell), and
  // repeating the hash probe per row is the next cost after the lock.
  // The map iterator stays valid across other cells' inserts
  // (unordered_map never invalidates unrelated iterators).
  Cell* last_cell = nullptr;
  const CubeCoords* last_coords = nullptr;
  for (size_t i = 0; i < n; ++i) {
    const IngestRow& r = rows[i];
    MSKETCH_DCHECK(r.coords.size() == num_dims_);
    Cell* cell;
    if (last_cell != nullptr && *last_coords == r.coords) {
      cell = last_cell;
    } else {
      auto it = cells_.find(r.coords);
      if (it == cells_.end()) {
        it = cells_.emplace(r.coords, Cell{MomentsSketch(k_), {}}).first;
        it->second.pending.reserve(batch_size_);
      }
      cell = &it->second;
      last_cell = cell;
      last_coords = &it->first;
    }
    cell->pending.push_back(r.value);
    if (cell->pending.size() >= batch_size_) FlushCell(cell);
  }
  rows_appended_.fetch_add(n, std::memory_order_relaxed);
}

void IngestShard::FlushCell(Cell* cell) {
  if (cell->pending.empty()) return;
  cell->sketch.AccumulateBatch(cell->pending.data(), cell->pending.size());
  cell->pending.clear();
}

std::vector<IngestShard::DeltaCell> IngestShard::Drain() {
  std::unordered_map<CubeCoords, Cell, CubeCoordsHash> taken;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken.swap(cells_);
  }
  // Pending-buffer flushes run outside the lock: the swapped-out map is
  // private to this call, so writers keep appending into the fresh map
  // while the publisher finishes the deltas.
  std::vector<DeltaCell> out;
  out.reserve(taken.size());
  for (auto& [coords, cell] : taken) {
    FlushCell(&cell);
    if (cell.sketch.count() == 0) continue;
    out.push_back(DeltaCell{coords, std::move(cell.sketch)});
  }
  return out;
}

}  // namespace msketch
