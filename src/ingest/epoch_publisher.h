// Epoch publication for the streaming ingest engine: drains shard
// deltas into double-buffered immutable cube snapshots and swaps them
// in atomically, so queries run against a consistent cube while writers
// keep appending (see src/ingest/README.md for the consistency model).
//
// Mechanism. The publisher owns a small pool of CubeStore buffers
// (default two). Each Publish():
//
//   1. drains every shard's delta map (an O(1)-lock swap per shard) and
//      stable-sorts the combined batch by cell coordinates, so cells
//      are created in a deterministic order and same-cell deltas apply
//      in shard order;
//   2. takes a free buffer from the pool — a buffer is free once the
//      epoch that retired it has no readers left — and catches it up by
//      replaying every batch published since the buffer last left the
//      pool (one batch behind in steady state, the classic
//      double-buffer lag);
//   3. incrementally refreshes the buffer's rollup index (only the
//      spans covering dirty cells rebuild — CubeStore's existing
//      dirty-cell tracking does the bookkeeping);
//   4. publishes the buffer with an atomic shared_ptr swap.
//
// Reclamation is epoch-based via the snapshot handles themselves: every
// reader holds a shared_ptr whose deleter returns the buffer to the
// pool, so a retired buffer is recycled exactly when its last in-flight
// query finishes — queries never observe torn columns, and memory stays
// bounded at pool_size copies of the cube. The pointer swap is the only
// coupling between readers and the publisher; readers never block
// writers and vice versa.
//
// Lifetime rule: snapshot handles must be released before the publisher
// is destroyed (the destructor waits for all buffers to return).
#ifndef MSKETCH_INGEST_EPOCH_PUBLISHER_H_
#define MSKETCH_INGEST_EPOCH_PUBLISHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/moments_sketch.h"
#include "cube/cube_store.h"
#include "cube/rollup_index.h"
#include "ingest/ingest_shard.h"
#include "obs/metrics.h"

namespace msketch {

/// Streaming ingest engine configuration (shared by IngestShard,
/// EpochPublisher, and StreamingCube).
struct IngestOptions {
  /// Writer shards. Throughput scales with shards when each writer
  /// thread appends to its own shard.
  size_t num_shards = 4;
  /// Per-cell pending-value buffer length before an AccumulateBatch
  /// flush inside the shard.
  size_t batch_size = 64;
  /// Distinct cells a shard's delta chunk holds before the writer seals
  /// it to the publisher ring. Size it at or above the expected
  /// per-shard working set: larger keeps each cell's epoch delta in one
  /// chunk (better batching, per-cell bit-identity on a single drain);
  /// smaller trades memory for more frequent hand-offs.
  size_t chunk_cells = IngestShard::kDefaultChunkCells;
  /// Chunk pool per shard (bounds shard memory). When sealed chunks
  /// exhaust the pool, appends backpressure (spin-then-yield) until the
  /// publisher recycles one — so a drainer must run (the background
  /// publisher or periodic Flush calls) whenever writers can outrun it.
  size_t chunks_per_shard = IngestShard::kDefaultChunksPerShard;
  /// Snapshot buffers in the publisher pool. Two gives the classic
  /// double buffer; more tolerates slower readers without stalling
  /// Publish at the cost of extra cube copies.
  size_t snapshot_buffers = 2;
  /// Build and incrementally refresh the rollup index on every
  /// published snapshot (unfiltered and single-dimension queries answer
  /// from pre-merged spans).
  bool build_rollup = true;
  RollupOptions rollup;
  /// Cadence of the background publisher thread (Start()).
  std::chrono::milliseconds epoch_interval{20};
  /// Bound on one append's backpressure wait when the chunk pool is
  /// exhausted and nothing is draining: past it the append fails with
  /// kDeadlineExceeded instead of spinning forever against a stopped or
  /// wedged publisher. <= 0 waits forever (the pre-budget behavior).
  std::chrono::milliseconds backpressure_stall_budget =
      IngestShard::kDefaultStallBudget;
  /// Dual-write every row into a per-cell KLL rank sketch alongside the
  /// moment columns. This is what arms the multi-backend summary router:
  /// pathological cells (atomic, heavy-tailed, near-singular) degrade to
  /// deterministic rank certificates instead of failed solves. Costs one
  /// amortized-O(1) sketch update per row on the writer path and
  /// ~kll_k doubles per cell per snapshot buffer.
  bool enable_kll = false;
  /// Per-level KLL capacity when enable_kll is set (certified rank error
  /// ~= log2(n/k)/(2k) of the cell count).
  int kll_k = 64;
};

/// One published, immutable-while-published cube state. `epoch` is the
/// publish sequence number; `epoch_delta` is the merged sketch of the
/// rows that entered in this epoch (the sliding-window pane feed —
/// window/epoch_feed.h). Readers hold the snapshot via shared_ptr; the
/// backing buffer is recycled when the last holder releases it.
struct CubeSnapshot {
  CubeSnapshot(size_t num_dims, int k)
      : store(num_dims, k), epoch_delta(k) {}

  uint64_t epoch = 0;
  CubeStore store;
  MomentsSketch epoch_delta;
  size_t buffer_index = 0;  // pool slot backing this snapshot

  uint64_t rows() const { return store.num_rows(); }
};

/// Publisher-side latency counters (stats(); milliseconds).
struct PublisherStats {
  uint64_t epochs_published = 0;
  /// Shard drain (ring sweep + chunk-to-delta conversion) of the most
  /// recent Publish, and the maximum observed.
  double last_drain_ms = 0.0;
  double max_drain_ms = 0.0;
  /// Whole Publish (drain + replay + rollup + swap), last and maximum.
  double last_publish_ms = 0.0;
  double max_publish_ms = 0.0;
  /// Durability hook (WAL append + fsync) of the most recent Publish,
  /// and the maximum — the write-ahead cost inside the publish path.
  double last_durability_ms = 0.0;
  double max_durability_ms = 0.0;
  /// Epochs whose durability hook failed: they published (availability
  /// first) but are NOT crash-durable until the next checkpoint.
  uint64_t durability_failures = 0;
  /// Full latency distributions behind the last/max scalars above: one
  /// observation per Publish for the shard drain, the whole publish,
  /// and the durability hook (mergeable fixed-bucket histograms in
  /// seconds — a single mean hides drain stalls; these keep the tail).
  /// Scraped into the registry as
  /// msk_publisher_{drain,publish,durability}_seconds.
  obs::HistogramSnapshot drain_hist;
  obs::HistogramSnapshot publish_hist;
  obs::HistogramSnapshot durability_hist;
};

class EpochPublisher {
 public:
  using DeltaBatch = std::vector<IngestShard::DeltaCell>;
  /// Called after each non-empty publish, from the publishing thread,
  /// with the snapshot just made current.
  using EpochSink = std::function<void(const CubeSnapshot&)>;
  /// Called inside Publish with the drained batch BEFORE the epoch's
  /// snapshot becomes visible (write-ahead ordering: an epoch a query
  /// can observe has already been offered to the log). A non-OK return
  /// is counted and the publish proceeds — ingest availability is never
  /// held hostage to a failing disk; the durability layer re-bases at
  /// its next checkpoint.
  using DurabilityHook =
      std::function<Status(uint64_t epoch, const DeltaBatch& batch)>;

  /// `shards` are borrowed and must outlive the publisher. Publishes an
  /// empty epoch-0 snapshot immediately (without draining), so
  /// Current() is never null; rows already buffered in the shards enter
  /// at the first Publish().
  EpochPublisher(size_t num_dims, int k, const IngestOptions& options,
                 std::vector<IngestShard*> shards);
  /// Stops the background thread and waits for every outstanding
  /// snapshot handle to be released.
  ~EpochPublisher();

  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  /// Drains all shards and publishes one epoch. When the drain comes
  /// back empty the current snapshot already covers every appended row
  /// and is returned unchanged (no epoch is spent). Serialized against
  /// the background thread; safe to call concurrently with readers and
  /// writers.
  std::shared_ptr<const CubeSnapshot> Publish();

  /// The latest published snapshot (atomic pointer load; wait-free with
  /// respect to the publisher).
  std::shared_ptr<const CubeSnapshot> Current() const;

  /// Publish-loop thread control. Start is idempotent.
  void Start();
  void Stop();

  /// Must be set before Start() or concurrent Publish() calls. The
  /// sink runs on the publishing thread, serialized in epoch order; it
  /// may read the publisher (Current, lag_batches) but must not call
  /// Publish()/Flush() — that would re-enter the sink serialization.
  void SetEpochSink(EpochSink sink) { sink_ = std::move(sink); }

  /// Must be set before Start() or concurrent Publish() calls. Runs
  /// under the publish lock, so its latency (WAL fsync) extends the
  /// publish critical section — the price of write-ahead ordering.
  void SetDurabilityHook(DurabilityHook hook) { durability_ = std::move(hook); }

  /// Resets a freshly constructed publisher to a recovered state: every
  /// pool buffer becomes a copy of `store`, `epoch` becomes the applied
  /// and published epoch, and the next real epoch is `epoch` + 1. Only
  /// legal before the first Publish/Start and with no snapshot handles
  /// outstanding (recovery constructs the cube privately).
  Status Restore(uint64_t epoch, const CubeStore& store);

  uint64_t epochs_published() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }

  /// Delta batches retained for buffers that have not replayed them yet
  /// (diagnostics; bounded by the pool size when publishing regularly).
  size_t lag_batches() const {
    std::lock_guard<std::mutex> lock(publish_mu_);
    return history_.size();
  }

  /// Drain/publish latency counters (serialized with Publish).
  PublisherStats stats() const {
    std::lock_guard<std::mutex> lock(publish_mu_);
    PublisherStats s = latency_;
    s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
    s.drain_hist = drain_h_.Snapshot();
    s.publish_hist = publish_h_.Snapshot();
    s.durability_hist = durability_h_.Snapshot();
    return s;
  }

 private:
  std::unique_ptr<CubeSnapshot> TakeBuffer();
  void ReturnBuffer(CubeSnapshot* snap);
  /// Drains every shard and stable-sorts the combined batch by coords
  /// (stability keeps same-cell deltas in shard order).
  DeltaBatch DrainShards();
  void ApplyBatch(CubeStore* store, const DeltaBatch& batch);

  const size_t num_dims_;
  const int k_;
  const IngestOptions options_;
  std::vector<IngestShard*> shards_;

  // Buffer pool (FIFO, so every buffer cycles through publishes).
  // Buffers are mutated only between TakeBuffer and the publish swap;
  // pool_mu_/pool_cv_ carry the reader-to-publisher happens-before edge
  // when a buffer is recycled.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::deque<std::unique_ptr<CubeSnapshot>> free_;
  size_t total_buffers_;

  // Publish state (guarded by publish_mu_): batches not yet replayed
  // into every buffer, and each buffer's applied-through epoch. Epoch 0
  // is the constructor's empty snapshot; real epochs start at 1.
  mutable std::mutex publish_mu_;
  uint64_t next_epoch_ = 1;
  std::deque<std::pair<uint64_t, DeltaBatch>> history_;
  std::vector<uint64_t> buffer_epoch_;
  PublisherStats latency_;  // epochs_published_ tracked separately
  // Per-Publish latency distributions (lock-free; snapshotted into
  // PublisherStats and scraped by the StreamingCube collector).
  obs::Histogram drain_h_{obs::HistogramUnit::kSeconds};
  obs::Histogram publish_h_{obs::HistogramUnit::kSeconds};
  obs::Histogram durability_h_{obs::HistogramUnit::kSeconds};

  // The published snapshot; accessed via std::atomic_load/atomic_store.
  std::shared_ptr<const CubeSnapshot> published_;

  std::atomic<uint64_t> epochs_published_{0};
  // Serializes sink invocations in epoch order (see Publish).
  std::mutex sink_mu_;
  EpochSink sink_;
  DurabilityHook durability_;

  // Background publish loop.
  std::thread loop_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace msketch

#endif  // MSKETCH_INGEST_EPOCH_PUBLISHER_H_
