#include "datasets/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace msketch {

uint64_t DefaultRows(DatasetId id) {
  switch (id) {
    case DatasetId::kMilan: return 8'100'000;
    case DatasetId::kHepmass: return 1'050'000;
    case DatasetId::kOccupancy: return 20'000;
    case DatasetId::kRetail: return 530'000;
    case DatasetId::kPower: return 2'000'000;
    case DatasetId::kExponential: return 10'000'000;
    case DatasetId::kGauss: return 10'000'000;
  }
  return 1'000'000;
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kMilan: return "milan";
    case DatasetId::kHepmass: return "hepmass";
    case DatasetId::kOccupancy: return "occupancy";
    case DatasetId::kRetail: return "retail";
    case DatasetId::kPower: return "power";
    case DatasetId::kExponential: return "expon";
    case DatasetId::kGauss: return "gauss";
  }
  return "unknown";
}

std::vector<DatasetId> Table1Datasets() {
  return {DatasetId::kMilan,  DatasetId::kHepmass, DatasetId::kOccupancy,
          DatasetId::kRetail, DatasetId::kPower,   DatasetId::kExponential};
}

Result<DatasetId> DatasetFromName(const std::string& name) {
  for (DatasetId id : Table1Datasets()) {
    if (DatasetName(id) == name) return id;
  }
  if (name == "gauss") return DatasetId::kGauss;
  if (name == "exponential") return DatasetId::kExponential;
  return Status::InvalidArgument("unknown dataset: " + name);
}

namespace {

// milan: Internet usage CDR volumes. Table 1: min 2.3e-6, max 7936,
// mean 36.77, std 103.5, skew 8.59. A three-component lognormal mixture
// (light users / steady users / heavy cells) matches the mean/std/skew
// while keeping the log-domain shape non-Gaussian — a single lognormal
// would let two log moments reconstruct it exactly, which the real data
// does not allow (the paper needs k = 10 on milan).
std::vector<double> GenMilan(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v;
    const double u = rng->NextDouble();
    if (u < 0.04) {
      // Near-idle cells: a pile-up of tiny measurements spanning several
      // decades below the bulk (log-domain left tail).
      v = 2.3e-6 * std::exp(rng->NextExponential(0.35));
    } else if (u < 0.62) {
      v = rng->NextLognormal(1.9, 1.25);
    } else if (u < 0.90) {
      v = rng->NextLognormal(3.2, 0.85);
    } else {
      v = rng->NextLognormal(4.6, 1.05);
    }
    v = std::clamp(v, 2.3e-6, 7936.0);
    out.push_back(v);
  }
  return out;
}

// hepmass: first HEPMASS feature. Table 1: range [-1.96, 4.38], mean
// 0.016, std 1.004, skew 0.29. Two-component Gaussian mixture with a
// slightly heavier right component reproduces the mild skew; clipped to
// the observed support.
std::vector<double> GenHepmass(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v;
    if (rng->NextDouble() < 0.65) {
      v = -0.32 + 0.72 * rng->NextGaussian();
    } else {
      v = 0.62 + 1.05 * rng->NextGaussian();
    }
    v = std::clamp(v, -1.961, 4.378);
    out.push_back(v);
  }
  return out;
}

// occupancy: CO2 ppm. Table 1: range [412.8, 2077], mean 690.6, std 311,
// skew 1.65. Bimodal: a dominant "room empty" mode near the 450 ppm floor
// and an "occupied" lognormal tail; sensor discretization at ~0.1 ppm
// keeps the dataset's semi-discrete character the paper remarks on
// (Appendix B: c ~ 1.5 after scaling).
std::vector<double> GenOccupancy(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v;
    if (rng->NextDouble() < 0.60) {
      v = 445.0 + 75.0 * std::fabs(rng->NextGaussian());
    } else {
      v = 520.0 + rng->NextLognormal(5.9, 0.62);
    }
    v = std::clamp(v, 412.8, 2077.0);
    v = std::round(v * 10.0) / 10.0;
    out.push_back(v);
  }
  return out;
}

// retail: integer purchase quantities. Table 1: range [1, 80995], mean
// 10.66, std 156.8, skew 460. Mixture of common small "pack sizes"
// (1,2,3,4,6,12,24 dominate the real dataset) and a Pareto bulk-order
// tail producing the extreme skew.
std::vector<double> GenRetail(uint64_t n, Rng* rng) {
  static const double packs[] = {1, 1, 1, 2, 2, 3, 4, 6, 6, 8, 10, 12, 12,
                                 16, 24, 25, 36, 48};
  constexpr size_t kNumPacks = sizeof(packs) / sizeof(packs[0]);
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v;
    const double u = rng->NextDouble();
    if (u < 0.985) {
      v = packs[rng->NextBelow(kNumPacks)];
    } else {
      // Pareto(alpha = 1.05) scaled; rare five-digit bulk orders.
      const double p = rng->NextDouble();
      v = std::floor(30.0 / std::pow(1.0 - p, 1.0 / 1.05));
      v = std::min(v, 80995.0);
    }
    out.push_back(v);
  }
  return out;
}

// power: household Global Active Power (kW). Table 1: range
// [0.076, 11.12], mean 1.09, std 1.06, skew 1.79. Bimodal lognormal: a
// baseline-load mode ~0.3 kW and an active mode ~1.5 kW with a long tail.
std::vector<double> GenPower(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v;
    if (rng->NextDouble() < 0.55) {
      v = rng->NextLognormal(-1.1, 0.40);
    } else {
      v = rng->NextLognormal(0.45, 0.55);
    }
    v = std::clamp(v, 0.076, 11.12);
    out.push_back(v);
  }
  return out;
}

std::vector<double> GenExponential(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(rng->NextExponential(1.0));
  return out;
}

std::vector<double> GenGauss(uint64_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(rng->NextGaussian());
  return out;
}

}  // namespace

std::vector<double> GenerateDataset(DatasetId id, uint64_t n, uint64_t seed) {
  Rng rng(seed ^ (static_cast<uint64_t>(id) * 0x9E3779B1u));
  switch (id) {
    case DatasetId::kMilan: return GenMilan(n, &rng);
    case DatasetId::kHepmass: return GenHepmass(n, &rng);
    case DatasetId::kOccupancy: return GenOccupancy(n, &rng);
    case DatasetId::kRetail: return GenRetail(n, &rng);
    case DatasetId::kPower: return GenPower(n, &rng);
    case DatasetId::kExponential: return GenExponential(n, &rng);
    case DatasetId::kGauss: return GenGauss(n, &rng);
  }
  MSKETCH_CHECK_MSG(false, "unreachable dataset id");
  return {};
}

ProductionWorkload GenerateProductionWorkload(uint64_t target_rows,
                                              uint64_t target_cells,
                                              uint64_t seed) {
  // Appendix D.4: 165M rows over 400k cells; cell sizes span 5..722k with
  // mean ~2380 — a heavy-tailed (lognormal) size distribution. Values are
  // an integer-valued long-tailed performance metric.
  Rng rng(seed);
  ProductionWorkload w;
  w.cell_sizes.reserve(target_cells);
  const double mean_size = static_cast<double>(target_rows) /
                           static_cast<double>(target_cells);
  // Lognormal with sigma 1.6; mu set so the mean matches.
  const double sigma = 1.6;
  const double mu = std::log(mean_size) - sigma * sigma / 2.0;
  uint64_t total = 0;
  for (uint64_t c = 0; c < target_cells; ++c) {
    double s = rng.NextLognormal(mu, sigma);
    uint64_t size = static_cast<uint64_t>(std::max(5.0, std::round(s)));
    w.cell_sizes.push_back(size);
    total += size;
  }
  w.values.reserve(total);
  for (uint64_t c = 0; c < target_cells; ++c) {
    // Per-cell location shift makes cells heterogeneous (as in production).
    const double cell_shift = rng.NextLognormal(1.0, 0.8);
    for (uint64_t i = 0; i < w.cell_sizes[c]; ++i) {
      double v = std::round(cell_shift + rng.NextLognormal(3.0, 1.4));
      v = std::clamp(v, 1.0, 1e6);
      w.values.push_back(v);
    }
  }
  return w;
}

}  // namespace msketch
