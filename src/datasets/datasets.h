// Synthetic substitutes for the paper's evaluation datasets (Table 1).
//
// We do not have the original data (Telecom Italia milan CDRs, UCI HEPMASS
// / occupancy / retail / power, or the Microsoft production telemetry), so
// each generator is shape-matched to the characteristics the paper reports:
// support, mean, standard deviation, skewness, long-tailedness, and
// discreteness. DESIGN.md documents each substitution; tests validate the
// generated moments against the Table 1 targets.
//
// Sizes default to ~1/10 of the paper's (e.g. milan 81M -> 8.1M) so the
// benchmark suite completes in minutes; pass explicit n to scale up.
#ifndef MSKETCH_DATASETS_DATASETS_H_
#define MSKETCH_DATASETS_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace msketch {

enum class DatasetId {
  kMilan,        // long-tailed internet usage; lognormal, skew ~8.6
  kHepmass,      // near-symmetric physics feature; Gaussian mixture
  kOccupancy,    // CO2 ppm in [413, 2077]; bimodal, discretized
  kRetail,       // integer purchase quantities; extreme discrete tail
  kPower,        // household power in [0.076, 11.12]; bimodal lognormal
  kExponential,  // Exp(1), exactly as in the paper
  kGauss,        // N(0,1), used in the appendix experiments
};

/// Default row counts (paper size / 10, occupancy kept at full 20k).
uint64_t DefaultRows(DatasetId id);

/// Paper's Table 1 name for the dataset.
std::string DatasetName(DatasetId id);

/// All six Table 1 datasets in paper order.
std::vector<DatasetId> Table1Datasets();

/// Generates `n` values of the dataset with the given seed.
std::vector<double> GenerateDataset(DatasetId id, uint64_t n,
                                    uint64_t seed = 0xDA7A);

/// Parses a dataset by its Table 1 name ("milan", "hepmass", ...).
Result<DatasetId> DatasetFromName(const std::string& name);

/// Synthetic stand-in for the Microsoft production workload of Appendix
/// D.4: integer-valued, long-tailed metric plus heterogeneous cell sizes.
struct ProductionWorkload {
  std::vector<double> values;        // all rows, cell-major
  std::vector<uint64_t> cell_sizes;  // lognormal sizes, min 5
};
ProductionWorkload GenerateProductionWorkload(uint64_t target_rows,
                                              uint64_t target_cells,
                                              uint64_t seed = 0x5EED);

}  // namespace msketch

#endif  // MSKETCH_DATASETS_DATASETS_H_
