// Parallel sharded merging (Appendix F): partitions a collection of
// summaries across worker threads, merges each shard independently, then
// combines the per-thread partials sequentially. Merges are independent,
// so single-threaded merge throughput is predictive of parallel behavior.
//
// The flat overloads shard the columnar merge kernel (core/
// moments_sketch.h FlatMomentColumns) over cell-id ranges instead of
// summary objects: each worker reduces a contiguous slice of the packed
// columns, so the threads stream disjoint memory with no false sharing.
#ifndef MSKETCH_PARALLEL_PARALLEL_MERGE_H_
#define MSKETCH_PARALLEL_PARALLEL_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "core/moments_sketch.h"

namespace msketch {

template <typename Summary>
Summary ParallelMerge(const std::vector<Summary>& parts, int threads) {
  MSKETCH_CHECK(!parts.empty());
  MSKETCH_CHECK(threads >= 1);
  if (threads == 1 || parts.size() < 2 * static_cast<size_t>(threads)) {
    Summary out = parts[0].CloneEmpty();
    for (const Summary& p : parts) {
      MSKETCH_CHECK(out.Merge(p).ok());
    }
    return out;
  }
  std::vector<Summary> partials;
  partials.reserve(threads);
  for (int t = 0; t < threads; ++t) partials.push_back(parts[0].CloneEmpty());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (parts.size() + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t begin = static_cast<size_t>(t) * shard;
      const size_t end = std::min(parts.size(), begin + shard);
      for (size_t i = begin; i < end; ++i) {
        MSKETCH_CHECK(partials[t].Merge(parts[i]).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Summary out = parts[0].CloneEmpty();
  for (const Summary& p : partials) {
    MSKETCH_CHECK(out.Merge(p).ok());
  }
  return out;
}

/// Merges the cells named by `cell_ids` from columnar storage across
/// `threads` workers. Each worker folds a contiguous shard of the id
/// list into a private partial sketch via the SIMD gather kernel
/// (MergeFlatFast); partials combine sequentially in shard order, so the
/// result equals the single-thread merge up to floating-point
/// re-association (and exactly when the column sums are exact, as the
/// tests verify with dyadic data).
inline MomentsSketch ParallelMergeCells(const FlatMomentColumns& cols,
                                        const uint32_t* cell_ids, size_t n,
                                        int threads) {
  MSKETCH_CHECK(threads >= 1);
  MomentsSketch out(cols.k);
  if (threads == 1 || n < 2 * static_cast<size_t>(threads)) {
    MSKETCH_CHECK(out.MergeFlatFast(cols, cell_ids, n).ok());
    return out;
  }
  std::vector<MomentsSketch> partials(threads, MomentsSketch(cols.k));
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t begin = static_cast<size_t>(t) * shard;
      const size_t end = std::min(n, begin + shard);
      if (begin >= end) return;
      MSKETCH_CHECK(
          partials[t].MergeFlatFast(cols, cell_ids + begin, end - begin)
              .ok());
    });
  }
  for (std::thread& w : workers) w.join();
  for (const MomentsSketch& p : partials) {
    MSKETCH_CHECK(out.Merge(p).ok());
  }
  return out;
}

/// Contiguous cell-id-range variant: shards [begin, end) so every worker
/// runs the SIMD unit-stride column reduction (MergeFlatRangeFast) on
/// its own slice.
inline MomentsSketch ParallelMergeRange(const FlatMomentColumns& cols,
                                        size_t begin, size_t end,
                                        int threads) {
  MSKETCH_CHECK(threads >= 1);
  MSKETCH_CHECK(begin <= end);
  MomentsSketch out(cols.k);
  const size_t n = end - begin;
  if (threads == 1 || n < 2 * static_cast<size_t>(threads)) {
    MSKETCH_CHECK(out.MergeFlatRangeFast(cols, begin, end).ok());
    return out;
  }
  std::vector<MomentsSketch> partials(threads, MomentsSketch(cols.k));
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t lo = begin + static_cast<size_t>(t) * shard;
      const size_t hi = std::min(end, lo + shard);
      if (lo >= hi) return;
      MSKETCH_CHECK(partials[t].MergeFlatRangeFast(cols, lo, hi).ok());
    });
  }
  for (std::thread& w : workers) w.join();
  for (const MomentsSketch& p : partials) {
    MSKETCH_CHECK(out.Merge(p).ok());
  }
  return out;
}

}  // namespace msketch

#endif  // MSKETCH_PARALLEL_PARALLEL_MERGE_H_
