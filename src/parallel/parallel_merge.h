// Parallel sharded merging (Appendix F): partitions a collection of
// summaries across worker threads, merges each shard independently, then
// combines the per-thread partials sequentially. Merges are independent,
// so single-threaded merge throughput is predictive of parallel behavior.
#ifndef MSKETCH_PARALLEL_PARALLEL_MERGE_H_
#define MSKETCH_PARALLEL_PARALLEL_MERGE_H_

#include <thread>
#include <vector>

#include "common/macros.h"

namespace msketch {

template <typename Summary>
Summary ParallelMerge(const std::vector<Summary>& parts, int threads) {
  MSKETCH_CHECK(!parts.empty());
  MSKETCH_CHECK(threads >= 1);
  if (threads == 1 || parts.size() < 2 * static_cast<size_t>(threads)) {
    Summary out = parts[0].CloneEmpty();
    for (const Summary& p : parts) {
      MSKETCH_CHECK(out.Merge(p).ok());
    }
    return out;
  }
  std::vector<Summary> partials;
  partials.reserve(threads);
  for (int t = 0; t < threads; ++t) partials.push_back(parts[0].CloneEmpty());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t shard = (parts.size() + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      const size_t begin = static_cast<size_t>(t) * shard;
      const size_t end = std::min(parts.size(), begin + shard);
      for (size_t i = begin; i < end; ++i) {
        MSKETCH_CHECK(partials[t].Merge(parts[i]).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Summary out = parts[0].CloneEmpty();
  for (const Summary& p : partials) {
    MSKETCH_CHECK(out.Merge(p).ok());
  }
  return out;
}

}  // namespace msketch

#endif  // MSKETCH_PARALLEL_PARALLEL_MERGE_H_
