// Contiguous-shard parallel execution, the same sharding discipline as
// parallel_merge.h: split [0, n) into `threads` contiguous slices, one
// worker per slice, join. Contiguity matters to the batch estimation
// layer — each slice is a warm-start chain, so neighboring (similar)
// items must stay on the same worker.
#ifndef MSKETCH_PARALLEL_PARALLEL_FOR_H_
#define MSKETCH_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace msketch {

/// Runs fn(begin, end, shard_index) over `threads` contiguous shards of
/// [0, n). Runs inline (no thread spawn) for a single thread or when n is
/// too small to shard. `fn` must be safe to call concurrently on disjoint
/// ranges.
template <typename Fn>
void ParallelShards(size_t n, int threads, Fn&& fn) {
  MSKETCH_CHECK(threads >= 1);
  if (threads == 1 || n < 2 * static_cast<size_t>(threads)) {
    if (n > 0) fn(size_t{0}, n, 0);
    return;
  }
  const size_t shard = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    const size_t begin = static_cast<size_t>(t) * shard;
    const size_t end = std::min(n, begin + shard);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end, t]() { fn(begin, end, t); });
  }
  for (std::thread& w : workers) w.join();
}

/// Spawns exactly `workers` threads running fn(worker_index) and joins
/// them all. Unlike ParallelShards there is no inline fast path: each
/// worker is a real thread even for workers == 1, which is what the
/// concurrent ingest tests and benches need (they measure and stress
/// actual cross-thread interleavings, not sharded loops).
template <typename Fn>
void RunWorkers(int workers, Fn&& fn) {
  MSKETCH_CHECK(workers >= 1);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&fn, w]() { fn(w); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace msketch

#endif  // MSKETCH_PARALLEL_PARALLEL_FOR_H_
