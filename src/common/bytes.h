// Byte buffer writer/reader for sketch serialization.
//
// Little-endian fixed-width encoding; the reader validates bounds and
// reports malformed input through Status rather than aborting.
#ifndef MSKETCH_COMMON_BYTES_H_
#define MSKETCH_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace msketch {

/// Append-only byte sink.
class BytesWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutDoubles(const std::vector<double>& vs) {
    PutU32(static_cast<uint32_t>(vs.size()));
    for (double v : vs) PutDouble(v);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  /// Bytes written so far (checksum framing marks a section start here).
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// Bounds-checked byte source.
class BytesReader {
 public:
  BytesReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BytesReader(const std::vector<uint8_t>& buf)
      : BytesReader(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetI64(int64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDoubles(std::vector<double>* out);
  Status GetString(std::string* out);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }
  /// Raw cursor access for checksum verification over a decoded section.
  const uint8_t* data() const { return data_; }
  size_t pos() const { return pos_; }

 private:
  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::Serialization("buffer underflow");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace msketch

#endif  // MSKETCH_COMMON_BYTES_H_
