// Deterministic, fast RNG for workload generation and randomized algorithms.
//
// xoshiro256** — fully reproducible across platforms, unlike std::mt19937
// combined with libstdc++ distributions. All dataset generators take an
// explicit seed so experiments are repeatable.
#ifndef MSKETCH_COMMON_RNG_H_
#define MSKETCH_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace msketch {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to fill the state from one word.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with rate lambda.
  double NextExponential(double lambda) {
    double u = NextDouble();
    while (u <= 1e-300) u = NextDouble();
    return -std::log(u) / lambda;
  }

  /// Lognormal: exp(N(mu, sigma^2)).
  double NextLognormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  /// Gamma(shape, scale) via Marsaglia-Tsang, with the shape<1 boost.
  double NextGamma(double shape, double scale) {
    if (shape < 1.0) {
      double u = NextDouble();
      while (u <= 1e-300) u = NextDouble();
      return NextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = NextGaussian();
      double v = 1.0 + c * x;
      if (v <= 0) continue;
      v = v * v * v;
      double u = NextDouble();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (u > 1e-300 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v * scale;
      }
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace msketch

#endif  // MSKETCH_COMMON_RNG_H_
