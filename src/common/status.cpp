#include "common/status.h"

namespace msketch {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotConverged: return "NotConverged";
    case StatusCode::kSingular: return "Singular";
    case StatusCode::kInfeasible: return "Infeasible";
    case StatusCode::kSerialization: return "Serialization";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace msketch
