// CRC32C (Castagnoli) checksums for the persistence layer's WAL records
// and checkpoint files.
//
// Software slicing-by-8 implementation: no SSE4.2 dependency, ~1 byte per
// cycle — plenty for an fsync-bound log. The Mask/Unmask pair follows the
// LevelDB/RocksDB convention: a stored CRC is masked so that computing
// the CRC of a byte stream that itself embeds CRCs does not degenerate.
#ifndef MSKETCH_COMMON_CRC32C_H_
#define MSKETCH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace msketch {
namespace crc32c {

/// Extends `crc` (the running checksum of bytes seen so far, 0 for none)
/// with `data[0, n)`.
uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n);

/// Checksum of `data[0, n)`.
inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}

constexpr uint32_t kMaskDelta = 0xa282ead8u;

/// Masks a CRC before embedding it in a byte stream.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace crc32c
}  // namespace msketch

#endif  // MSKETCH_COMMON_CRC32C_H_
