// Status / Result<T>: Arrow/RocksDB-style error propagation.
//
// Library code never throws; fallible operations return Status (void results)
// or Result<T>. Programming errors (violated invariants) abort via the CHECK
// macros in macros.h.
#ifndef MSKETCH_COMMON_STATUS_H_
#define MSKETCH_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace msketch {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotConverged = 3,      // iterative solver failed to reach tolerance
  kSingular = 4,          // matrix factorization broke down
  kInfeasible = 5,        // optimization problem has no feasible point
  kSerialization = 6,     // malformed byte stream
  kUnsupported = 7,       // operation not valid for this configuration
  kInternal = 8,
  kIOError = 9,           // file system operation failed (may be transient)
  kCorruption = 10,       // on-disk data failed a checksum or invariant
  kDeadlineExceeded = 11,  // bounded wait expired (e.g. backpressure stall)
  kUnavailable = 12,       // peer/resource transiently unreachable — retry
};

/// Lightweight status object. Ok status carries no allocation.
class Status {
 public:
  Status() : state_(nullptr) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Singular(std::string msg) {
    return Status(StatusCode::kSingular, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Serialization(std::string msg) {
    return Status(StatusCode::kSerialization, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // shared so Status is cheap to copy
};

/// Classifies a status by whether the same operation may succeed if
/// simply retried: kUnavailable (peer down, link reset), kIOError
/// (transient file-system failures — persistent ones exhaust the
/// caller's retry budget), and kDeadlineExceeded (a bounded wait that
/// may find the resource free next time). Retry loops branch on this,
/// never on message text. Corruption, serialization, and argument
/// errors are deterministic — retrying them wastes the budget.
inline bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIOError:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}      // NOLINT implicit
  Result(Status status) : payload_(std::move(status)) {  // NOLINT implicit
    // An OK status carries no value; that is a programming error.
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }
  /// Precondition: ok(). (Checked only in debug builds via std::get.)
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::move(std::get<T>(payload_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

#define MSKETCH_RETURN_NOT_OK(expr)        \
  do {                                     \
    ::msketch::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (0)

#define MSKETCH_CONCAT_INNER(a, b) a##b
#define MSKETCH_CONCAT(a, b) MSKETCH_CONCAT_INNER(a, b)

#define MSKETCH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define MSKETCH_ASSIGN_OR_RETURN(lhs, expr) \
  MSKETCH_ASSIGN_OR_RETURN_IMPL(MSKETCH_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace msketch

#endif  // MSKETCH_COMMON_STATUS_H_
