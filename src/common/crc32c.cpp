#include "common/crc32c.h"

namespace msketch {
namespace crc32c {

namespace {

// Castagnoli polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

inline uint32_t LoadU32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n) {
  const Tables& tb = tables();
  uint32_t c = ~crc;
  // Byte-at-a-time until 8-byte alignment is cheap to exploit.
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *data++) & 0xff];
    --n;
  }
  // Slicing-by-8 over the aligned middle.
  while (n >= 8) {
    const uint32_t lo = LoadU32LE(data) ^ c;
    const uint32_t hi = LoadU32LE(data + 4);
    c = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
        tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
        tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *data++) & 0xff];
    --n;
  }
  return ~c;
}

}  // namespace crc32c
}  // namespace msketch
