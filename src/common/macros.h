// Invariant checking macros. CHECK fires in all build types; DCHECK only in
// debug builds. Failures print the condition and abort — these guard
// programming errors, not runtime data errors (those use Status).
#ifndef MSKETCH_COMMON_MACROS_H_
#define MSKETCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define MSKETCH_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define MSKETCH_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MSKETCH_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define MSKETCH_DCHECK(cond) MSKETCH_CHECK(cond)
#endif

// No-alias qualifier for hot-loop pointers (vectorization hint).
#if defined(__GNUC__) || defined(__clang__)
#define MSKETCH_GCC_RESTRICT __restrict__
#else
#define MSKETCH_GCC_RESTRICT
#endif

#endif  // MSKETCH_COMMON_MACROS_H_
