// Invariant checking macros. CHECK fires in all build types; DCHECK only in
// debug builds. Failures print the condition and abort — these guard
// programming errors, not runtime data errors (those use Status).
#ifndef MSKETCH_COMMON_MACROS_H_
#define MSKETCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define MSKETCH_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define MSKETCH_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MSKETCH_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define MSKETCH_DCHECK(cond) MSKETCH_CHECK(cond)
#endif

// Propagates a non-OK Status out of the enclosing function. Textual twin
// of MSKETCH_RETURN_NOT_OK (common/status.h) that lives here so headers
// which only need the macro need not pull in <variant> via status.h; the
// expansion compiles wherever ::msketch::Status is visible.
#define MSKETCH_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::msketch::Status _mst = (expr);         \
    if (!_mst.ok()) return _mst;             \
  } while (0)

// No-alias qualifier for hot-loop pointers (vectorization hint).
#if defined(__GNUC__) || defined(__clang__)
#define MSKETCH_GCC_RESTRICT __restrict__
#else
#define MSKETCH_GCC_RESTRICT
#endif

#endif  // MSKETCH_COMMON_MACROS_H_
