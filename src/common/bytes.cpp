#include "common/bytes.h"

namespace msketch {

Status BytesReader::GetDoubles(std::vector<double>* out) {
  uint32_t n = 0;
  MSKETCH_RETURN_NOT_OK(GetU32(&n));
  if (static_cast<size_t>(n) * sizeof(double) > remaining()) {
    return Status::Serialization("double array length exceeds buffer");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MSKETCH_RETURN_NOT_OK(GetDouble(&(*out)[i]));
  }
  return Status::OK();
}

Status BytesReader::GetString(std::string* out) {
  uint32_t n = 0;
  MSKETCH_RETURN_NOT_OK(GetU32(&n));
  if (n > remaining()) {
    return Status::Serialization("string length exceeds buffer");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t b = 0;
    MSKETCH_RETURN_NOT_OK(GetU8(&b));
    (*out)[i] = static_cast<char>(b);
  }
  return Status::OK();
}

}  // namespace msketch
