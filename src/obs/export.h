// Exporters for MetricsSnapshot: Prometheus text exposition format and
// a structured JSON dump (consumed by tools/metrics_dump.py), plus an
// optional background thread that writes periodic JSON snapshots via
// tmp-file + atomic rename.

#ifndef MSKETCH_OBS_EXPORT_H_
#define MSKETCH_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace msketch {
namespace obs {

// Prometheus text format: one `# HELP` / `# TYPE` block per family,
// histograms as cumulative `_bucket{le="..."}` series (emitted up to
// the highest occupied bucket, then `+Inf`) plus `_sum` and `_count`.
// Bucket bounds are exact powers of two over the tick scale, so the
// output is byte-stable for a given snapshot.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

// Structured JSON:
//   {"version": 1,
//    "metrics": [{"name": ..., "labels": {...}, "type": "counter",
//                 "value": N}
//                | {..., "type": "gauge", "value": X}
//                | {..., "type": "histogram", "unit": "seconds",
//                   "count": N, "sum": X,
//                   "buckets": [[bucket_index, count], ...]}],
//    "spans": [{"name": ..., "trace_id": N, "depth": N,
//               "start_ns": N, "duration_ns": N}, ...]}
// Histogram buckets list only occupied buckets as [index, count]
// pairs; bucket i >= 1 covers ticks [2^(i-1), 2^i) at `unit`'s scale.
std::string ExportJson(const MetricsSnapshot& snapshot,
                       const std::vector<SpanRecord>* spans = nullptr);

// Background thread writing the JSON export of GlobalRegistry (or a
// given registry/tracer) to `path` every `interval`. Writes go to
// `path` + ".tmp" then rename, so readers never see a torn file.
// Failed writes (unwritable path, full disk, failed rename) are counted
// in the registry's own `msk_obs_snapshot_errors` counter, so a scrape
// through any other channel reveals that the file exporter is losing
// snapshots rather than the failures vanishing silently.
class SnapshotWriter {
 public:
  SnapshotWriter(std::string path, std::chrono::milliseconds interval,
                 MetricsRegistry* registry = &GlobalRegistry(),
                 Tracer* tracer = &GlobalTracer());
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Synchronous scrape + write; returns false on I/O failure (also
  // counted in msk_obs_snapshot_errors).
  bool WriteOnce();
  void Stop();

 private:
  void Loop();

  const std::string path_;
  const std::chrono::milliseconds interval_;
  MetricsRegistry* registry_;
  Tracer* tracer_;
  Counter* errors_;  // msk_obs_snapshot_errors, owned by registry_

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace msketch

#endif  // MSKETCH_OBS_EXPORT_H_
