// Process-wide metrics: lock-free counters/gauges and deterministic
// mergeable histograms, collected through a MetricsRegistry.
//
// The design dogfoods the paper's own idea: a histogram here is a
// mergeable summary with a *fixed* bucket layout (64 log2 buckets over
// integer ticks), so per-thread shards, per-subsystem instances, and
// even snapshots from different processes merge with plain integer
// adds — bit-identical regardless of shard count or merge order,
// exactly like moments sketches merge across cells.
//
// Overhead contract (see src/obs/README.md):
//   - Counter::Add / Histogram::Observe are a relaxed fetch_add on a
//     cacheline-padded per-thread shard. No locks, no allocation.
//   - Per-row hot paths carry NO registry calls at all: existing
//     `*Stats` relaxed atomics are read at scrape time by registered
//     collector callbacks (the Prometheus collector model). Direct
//     instrumentation is reserved for coarse events (per epoch, per
//     solve, per query, per WAL append).
//   - `MetricsEnabled()` is a runtime kill switch that gates clock
//     reads in timers and spans; compiling with -DMSKETCH_OBS=0
//     removes the instrument bodies entirely.

#ifndef MSKETCH_OBS_METRICS_H_
#define MSKETCH_OBS_METRICS_H_

#ifndef MSKETCH_OBS
#define MSKETCH_OBS 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace msketch {
namespace obs {

// Runtime kill switch. Compiled out (constant false) under
// -DMSKETCH_OBS=0. Default: enabled.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Fixed shard count: determinism requires the bucket layout — not the
// shard count — to define the merged result, but a fixed power of two
// keeps the shard index computation a single mask.
inline constexpr int kMetricShards = 16;
inline constexpr int kHistogramBuckets = 64;

// Ticks per unit for kSeconds/kValue histograms (kCount uses 1).
// 2^30 ticks/second ≈ 0.93 ns resolution; bucket boundaries land on
// exact powers of two so exporters format them exactly.
inline constexpr uint64_t kTickScale = uint64_t{1} << 30;

// Stable per-thread shard index in [0, kMetricShards).
inline int ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return idx;
}

// Monotonic event count. Add() is wait-free; Value() sums the shards
// (racy reads are fine: each shard is monotone).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
#if MSKETCH_OBS
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
#if MSKETCH_OBS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

enum class HistogramUnit : uint8_t {
  kSeconds,  // observations in seconds, stored as 2^30 ticks/s
  kValue,    // dimensionless doubles (e.g. interval widths), 2^30 ticks
  kCount,    // small integers (e.g. Newton iterations), 1 tick each
};

inline uint64_t UnitTickScale(HistogramUnit unit) {
  return unit == HistogramUnit::kCount ? uint64_t{1} : kTickScale;
}

// Frozen, mergeable histogram state: integer bucket counts plus an
// integer tick sum. Merging is element-wise addition, so the result is
// bit-identical for any shard count and any merge order.
struct HistogramSnapshot {
  HistogramUnit unit = HistogramUnit::kSeconds;
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum_ticks = 0;

  void MergeFrom(const HistogramSnapshot& other) {
    for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum_ticks += other.sum_ticks;
  }

  double TickScale() const {
    return static_cast<double>(UnitTickScale(unit));
  }

  // Sum of observations in the histogram's unit.
  double Sum() const { return static_cast<double>(sum_ticks) / TickScale(); }

  // Inclusive upper bound of bucket i, in the histogram's unit.
  // Bucket 0 holds exactly tick value 0; bucket i >= 1 holds ticks in
  // [2^(i-1), 2^i), so its reported bound is 2^i / scale.
  double BucketUpperBound(int i) const {
    if (i <= 0) return 0.0;
    if (i >= kHistogramBuckets - 1) {
      // Top bucket absorbs the clamp; report +Inf via exporters.
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(uint64_t{1} << i) / TickScale();
  }

  // Deterministic quantile estimate: the upper bound of the first
  // bucket whose cumulative count reaches ceil(phi * count).
  double Quantile(double phi) const {
    if (count == 0) return 0.0;
    if (phi < 0.0) phi = 0.0;
    if (phi > 1.0) phi = 1.0;
    uint64_t target = static_cast<uint64_t>(phi * static_cast<double>(count));
    if (target < 1) target = 1;
    if (target > count) target = count;
    uint64_t cum = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cum += buckets[i];
      if (cum >= target) {
        if (i >= kHistogramBuckets - 1) {
          // Clamp bucket: best deterministic answer is the mean tick.
          return Sum() / static_cast<double>(count);
        }
        return BucketUpperBound(i);
      }
    }
    return BucketUpperBound(kHistogramBuckets - 1);
  }
};

// Fixed-layout log2 histogram with per-thread shards. Observations are
// converted to integer ticks; everything after that is exact integer
// arithmetic, which is what makes snapshots mergeable bit-identically.
class Histogram {
 public:
  explicit Histogram(HistogramUnit unit = HistogramUnit::kSeconds)
      : unit_(unit) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  HistogramUnit unit() const { return unit_; }

  // ticks == 0 -> bucket 0; otherwise bucket 1 + floor(log2(ticks)),
  // clamped to the top bucket. Bucket i >= 1 covers [2^(i-1), 2^i).
  static int BucketOf(uint64_t ticks) {
    if (ticks == 0) return 0;
    const int b = 64 - __builtin_clzll(ticks);
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
  }

  // Negative / NaN observations clamp to 0 ticks; huge values clamp to
  // the top bucket rather than overflowing.
  static uint64_t TicksOf(double value, HistogramUnit unit) {
    if (!(value > 0.0)) return 0;
    const double scaled =
        value * static_cast<double>(UnitTickScale(unit)) + 0.5;
    if (scaled >= 9.2e18) return ~uint64_t{0};
    return static_cast<uint64_t>(scaled);
  }

  void Observe(double value) { ObserveTicks(TicksOf(value, unit_)); }

  void ObserveTicks(uint64_t ticks) {
#if MSKETCH_OBS
    Shard& s = shards_[ShardIndex()];
    s.buckets[BucketOf(ticks)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum_ticks.fetch_add(ticks, std::memory_order_relaxed);
#else
    (void)ticks;
#endif
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.unit = unit_;
    for (const Shard& s : shards_) {
      for (int i = 0; i < kHistogramBuckets; ++i) {
        snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
      snap.count += s.count.load(std::memory_order_relaxed);
      snap.sum_ticks += s.sum_ticks.load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ticks{0};
  };
  HistogramUnit unit_;
  std::array<Shard, kMetricShards> shards_;
};

// Sorted label set. Kept as a vector (not a map) because metric call
// sites construct them once and registries compare them wholesale.
using Labels = std::vector<std::pair<std::string, std::string>>;

// One scraped time series.
struct Sample {
  enum class Type : uint8_t { kCounter, kGauge, kHistogram };

  std::string family;
  Labels labels;
  Type type = Type::kCounter;
  std::string help;
  uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;    // kGauge
  HistogramSnapshot hist;      // kHistogram
};

// A full scrape. Snapshots merge the way the underlying instruments
// do: counters add, histograms add bucket-wise, gauges last-write-wins
// (the argument's value survives).
struct MetricsSnapshot {
  std::vector<Sample> samples;

  void MergeFrom(const MetricsSnapshot& other);
  const Sample* Find(const std::string& family,
                     const Labels& labels = {}) const;
  // Sort by (family, labels) and fold duplicates. Scrape() returns
  // normalized snapshots; call after hand-assembling one in tests.
  void Normalize();
};

// Handed to collector callbacks at scrape time; emissions land in the
// snapshot being assembled.
class MetricsEmitter {
 public:
  explicit MetricsEmitter(std::vector<Sample>* out) : out_(out) {}

  void EmitCounter(const std::string& family, const Labels& labels,
                   const std::string& help, uint64_t value);
  void EmitGauge(const std::string& family, const Labels& labels,
                 const std::string& help, double value);
  void EmitHistogram(const std::string& family, const Labels& labels,
                     const std::string& help, const HistogramSnapshot& hist);

 private:
  std::vector<Sample>* out_;
};

// Registry: owns instruments (stable pointers for the process
// lifetime) and collector callbacks that read external *Stats structs
// at scrape time. Get* calls are idempotent on (family, labels).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& family, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& family, const Labels& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& family,
                          const Labels& labels = {},
                          const std::string& help = "",
                          HistogramUnit unit = HistogramUnit::kSeconds);

  // Collector callbacks run during Scrape() under the collector mutex,
  // so RemoveCollector() blocks until in-flight invocations finish —
  // safe to call from a subsystem destructor before freeing the stats
  // the collector reads. Collectors must only use the emitter (no
  // re-entrant registry mutation).
  using CollectorFn = std::function<void(MetricsEmitter&)>;
  int AddCollector(CollectorFn fn);
  void RemoveCollector(int id);

  MetricsSnapshot Scrape() const;

 private:
  struct InstrumentKey {
    std::string family;
    Labels labels;
    bool operator<(const InstrumentKey& o) const {
      if (family != o.family) return family < o.family;
      return labels < o.labels;
    }
  };
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    std::string help;
  };

  mutable std::mutex mu_;
  std::map<InstrumentKey, Entry<Counter>> counters_;
  std::map<InstrumentKey, Entry<Gauge>> gauges_;
  std::map<InstrumentKey, Entry<Histogram>> histograms_;

  mutable std::mutex collector_mu_;
  int next_collector_id_ = 1;
  std::map<int, CollectorFn> collectors_;
};

// The process-wide registry every subsystem wires into.
MetricsRegistry& GlobalRegistry();

// RAII latency timer: observes elapsed seconds into `hist` on scope
// exit. The clock is only read when metrics are enabled, so the
// disabled cost is one relaxed load and a branch.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist) {
    if (hist != nullptr && MetricsEnabled()) {
      hist_ = hist;
      start_ns_ = NowNs();
    }
  }
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(NowNs() - start_ns_) * 1e-9);
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace msketch

#endif  // MSKETCH_OBS_METRICS_H_
