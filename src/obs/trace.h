// Lightweight span tracing for the query lifecycle and the
// ingest/publish/WAL path.
//
// A Span is an RAII scope: on destruction it records {name, trace id,
// nesting depth, start, duration} into a bounded ring on the Tracer
// and observes the duration into a per-span-name latency histogram
// (`msk_span_seconds{span="<name>"}`) in the tracer's registry. Trace
// ids are per-thread: the outermost live span on a thread allocates a
// fresh id and nested spans inherit it, so one certified GROUP BY
// shows up as one trace with `query.groupby` at depth 0 and its merge
// / lane-solve / router children below it.
//
// Span names must be string literals (the ring stores the pointer).
// When metrics are disabled a span costs one relaxed load and a
// branch; no clock is read.
//
// Span taxonomy (see src/cube/README.md and src/ingest/README.md):
//   query.where | query.quantile | query.certified |
//   query.certified_groupby | query.groupby | query.threshold |
//   query.router | query.lane_solve
//   ingest.drain | ingest.publish | ingest.wal_append |
//   ingest.checkpoint | ingest.recover
//   replica.ship | replica.apply | replica.resync | replica.heartbeat
//   (src/replica/README.md: ship = one leader response round, apply =
//   one delta applied on the follower, resync = snapshot install,
//   heartbeat = liveness frame handling)

#ifndef MSKETCH_OBS_TRACE_H_
#define MSKETCH_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace msketch {
namespace obs {

struct SpanRecord {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  int depth = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

// Bounded ring of finished spans plus per-name latency histograms.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 512,
                  MetricsRegistry* registry = &GlobalRegistry());

  void Record(const SpanRecord& record);

  // Most-recent-first is not guaranteed; records come back in ring
  // order (oldest surviving first).
  std::vector<SpanRecord> Snapshot() const;
  size_t capacity() const { return capacity_; }

 private:
  Histogram* HistogramFor(const char* name);

  MetricsRegistry* registry_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;
  bool wrapped_ = false;
  // Span names are literals, but keyed by content so two literals with
  // equal text share one histogram.
  std::map<std::string, Histogram*> by_name_;
};

Tracer& GlobalTracer();

class Span {
 public:
  explicit Span(const char* name, Tracer* tracer = &GlobalTracer()) {
    if (MetricsEnabled()) Start(name, tracer);
  }
  ~Span() {
    if (tracer_ != nullptr) Finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }

 private:
  void Start(const char* name, Tracer* tracer);
  void Finish();

  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t trace_id_ = 0;
  int depth_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace msketch

#endif  // MSKETCH_OBS_TRACE_H_
