#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace msketch {
namespace obs {

namespace {

// Canonical number formatting so exporter output is byte-stable:
// integers print without a fraction, everything else through %.9g
// (bucket bounds are exact powers of two, which %.9g renders
// deterministically).
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void AppendPromEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

// Label block `{k="v",...}` with an optional extra label (used for
// `le` on histogram bucket lines). Empty label set and no extra ->
// empty string.
std::string PromLabels(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendPromEscaped(&out, v);
    out += "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += extra_key;
    out += "=\"";
    AppendPromEscaped(&out, extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

const char* TypeString(Sample::Type type) {
  switch (type) {
    case Sample::Type::kCounter: return "counter";
    case Sample::Type::kGauge: return "gauge";
    case Sample::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  AppendJsonEscaped(&out, s);
  out += "\"";
  return out;
}

const char* UnitString(HistogramUnit unit) {
  switch (unit) {
    case HistogramUnit::kSeconds: return "seconds";
    case HistogramUnit::kValue: return "value";
    case HistogramUnit::kCount: return "count";
  }
  return "unknown";
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  const std::string* prev_family = nullptr;
  for (const Sample& s : snapshot.samples) {
    if (prev_family == nullptr || *prev_family != s.family) {
      out += "# HELP ";
      out += s.family;
      out += " ";
      AppendPromEscaped(&out, s.help.empty() ? s.family : s.help);
      out += "\n# TYPE ";
      out += s.family;
      out += " ";
      out += TypeString(s.type);
      out += "\n";
      prev_family = &s.family;
    }
    switch (s.type) {
      case Sample::Type::kCounter:
        out += s.family + PromLabels(s.labels) + " " +
               FormatU64(s.counter_value) + "\n";
        break;
      case Sample::Type::kGauge:
        out += s.family + PromLabels(s.labels) + " " +
               FormatDouble(s.gauge_value) + "\n";
        break;
      case Sample::Type::kHistogram: {
        const HistogramSnapshot& h = s.hist;
        int highest = -1;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          if (h.buckets[i] != 0) highest = i;
        }
        uint64_t cum = 0;
        for (int i = 0; i <= highest && i < kHistogramBuckets - 1; ++i) {
          cum += h.buckets[i];
          out += s.family + "_bucket" +
                 PromLabels(s.labels, "le",
                            FormatDouble(h.BucketUpperBound(i))) +
                 " " + FormatU64(cum) + "\n";
        }
        out += s.family + "_bucket" + PromLabels(s.labels, "le", "+Inf") +
               " " + FormatU64(h.count) + "\n";
        out += s.family + "_sum" + PromLabels(s.labels) + " " +
               FormatDouble(h.Sum()) + "\n";
        out += s.family + "_count" + PromLabels(s.labels) + " " +
               FormatU64(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snapshot,
                       const std::vector<SpanRecord>* spans) {
  std::string out;
  out.reserve(4096);
  out += "{\"version\":1,\"metrics\":[";
  bool first = true;
  for (const Sample& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + JsonString(s.family) + ",\"labels\":{";
    bool lfirst = true;
    for (const auto& [k, v] : s.labels) {
      if (!lfirst) out += ",";
      lfirst = false;
      out += JsonString(k) + ":" + JsonString(v);
    }
    out += "},\"type\":\"";
    out += TypeString(s.type);
    out += "\"";
    switch (s.type) {
      case Sample::Type::kCounter:
        out += ",\"value\":" + FormatU64(s.counter_value);
        break;
      case Sample::Type::kGauge:
        out += ",\"value\":" + FormatDouble(s.gauge_value);
        break;
      case Sample::Type::kHistogram: {
        const HistogramSnapshot& h = s.hist;
        out += ",\"unit\":\"";
        out += UnitString(h.unit);
        out += "\",\"count\":" + FormatU64(h.count) +
               ",\"sum\":" + FormatDouble(h.Sum()) + ",\"buckets\":[";
        bool bfirst = true;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          if (!bfirst) out += ",";
          bfirst = false;
          out += "[" + FormatU64(static_cast<uint64_t>(i)) + "," +
                 FormatU64(h.buckets[i]) + "]";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "],\"spans\":[";
  if (spans != nullptr) {
    first = true;
    for (const SpanRecord& r : *spans) {
      if (r.name == nullptr) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"name\":" + JsonString(r.name) +
             ",\"trace_id\":" + FormatU64(r.trace_id) +
             ",\"depth\":" + FormatU64(static_cast<uint64_t>(r.depth)) +
             ",\"start_ns\":" + FormatU64(r.start_ns) +
             ",\"duration_ns\":" + FormatU64(r.duration_ns) + "}";
    }
  }
  out += "]}";
  return out;
}

SnapshotWriter::SnapshotWriter(std::string path,
                               std::chrono::milliseconds interval,
                               MetricsRegistry* registry, Tracer* tracer)
    : path_(std::move(path)),
      interval_(interval),
      registry_(registry),
      tracer_(tracer),
      errors_(registry->GetCounter(
          "msk_obs_snapshot_errors", {},
          "Metric snapshot writes that failed (open, write, or rename)")) {
  thread_ = std::thread([this] { Loop(); });
}

SnapshotWriter::~SnapshotWriter() { Stop(); }

void SnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool SnapshotWriter::WriteOnce() {
  const MetricsSnapshot snap = registry_->Scrape();
  const std::vector<SpanRecord> spans = tracer_->Snapshot();
  const std::string json = ExportJson(snap, &spans);
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    errors_->Add(1);
    return false;
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    errors_->Add(1);
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    errors_->Add(1);
    return false;
  }
  return true;
}

void SnapshotWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    WriteOnce();
    lock.lock();
  }
  // Final snapshot on shutdown so short-lived processes still export.
  lock.unlock();
  WriteOnce();
}

}  // namespace obs
}  // namespace msketch
