#include "obs/metrics.h"

#include <algorithm>

namespace msketch {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

bool SampleKeyLess(const Sample& a, const Sample& b) {
  if (a.family != b.family) return a.family < b.family;
  return a.labels < b.labels;
}

bool SampleKeyEq(const Sample& a, const Sample& b) {
  return a.family == b.family && a.labels == b.labels;
}

// Fold `src` into `dst` (same family+labels): counters and histograms
// add, gauges take the incoming value.
void FoldSample(Sample* dst, const Sample& src) {
  switch (dst->type) {
    case Sample::Type::kCounter:
      dst->counter_value += src.counter_value;
      break;
    case Sample::Type::kGauge:
      dst->gauge_value = src.gauge_value;
      break;
    case Sample::Type::kHistogram:
      dst->hist.MergeFrom(src.hist);
      break;
  }
  if (dst->help.empty()) dst->help = src.help;
}

}  // namespace

bool MetricsEnabled() {
#if MSKETCH_OBS
  return g_metrics_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void MetricsEmitter::EmitCounter(const std::string& family,
                                 const Labels& labels,
                                 const std::string& help, uint64_t value) {
  Sample s;
  s.family = family;
  s.labels = labels;
  s.type = Sample::Type::kCounter;
  s.help = help;
  s.counter_value = value;
  out_->push_back(std::move(s));
}

void MetricsEmitter::EmitGauge(const std::string& family,
                               const Labels& labels, const std::string& help,
                               double value) {
  Sample s;
  s.family = family;
  s.labels = labels;
  s.type = Sample::Type::kGauge;
  s.help = help;
  s.gauge_value = value;
  out_->push_back(std::move(s));
}

void MetricsEmitter::EmitHistogram(const std::string& family,
                                   const Labels& labels,
                                   const std::string& help,
                                   const HistogramSnapshot& hist) {
  Sample s;
  s.family = family;
  s.labels = labels;
  s.type = Sample::Type::kHistogram;
  s.help = help;
  s.hist = hist;
  out_->push_back(std::move(s));
}

void MetricsSnapshot::Normalize() {
  std::stable_sort(samples.begin(), samples.end(), SampleKeyLess);
  std::vector<Sample> folded;
  folded.reserve(samples.size());
  for (Sample& s : samples) {
    if (!folded.empty() && SampleKeyEq(folded.back(), s) &&
        folded.back().type == s.type) {
      FoldSample(&folded.back(), s);
    } else {
      folded.push_back(std::move(s));
    }
  }
  samples = std::move(folded);
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
  Normalize();
}

const Sample* MetricsSnapshot::Find(const std::string& family,
                                    const Labels& labels) const {
  for (const Sample& s : samples) {
    if (s.family == family && s.labels == labels) return &s;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& family,
                                     const Labels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Counter>& e = counters_[InstrumentKey{family, labels}];
  if (e.instrument == nullptr) {
    e.instrument = std::make_unique<Counter>();
    e.help = help;
  }
  return e.instrument.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& family,
                                 const Labels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Gauge>& e = gauges_[InstrumentKey{family, labels}];
  if (e.instrument == nullptr) {
    e.instrument = std::make_unique<Gauge>();
    e.help = help;
  }
  return e.instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& family,
                                         const Labels& labels,
                                         const std::string& help,
                                         HistogramUnit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Histogram>& e = histograms_[InstrumentKey{family, labels}];
  if (e.instrument == nullptr) {
    e.instrument = std::make_unique<Histogram>(unit);
    e.help = help;
  }
  return e.instrument.get();
}

int MetricsRegistry::AddCollector(CollectorFn fn) {
  std::lock_guard<std::mutex> lock(collector_mu_);
  const int id = next_collector_id_++;
  collectors_[id] = std::move(fn);
  return id;
}

void MetricsRegistry::RemoveCollector(int id) {
  std::lock_guard<std::mutex> lock(collector_mu_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, e] : counters_) {
      Sample s;
      s.family = key.family;
      s.labels = key.labels;
      s.type = Sample::Type::kCounter;
      s.help = e.help;
      s.counter_value = e.instrument->Value();
      snap.samples.push_back(std::move(s));
    }
    for (const auto& [key, e] : gauges_) {
      Sample s;
      s.family = key.family;
      s.labels = key.labels;
      s.type = Sample::Type::kGauge;
      s.help = e.help;
      s.gauge_value = e.instrument->Value();
      snap.samples.push_back(std::move(s));
    }
    for (const auto& [key, e] : histograms_) {
      Sample s;
      s.family = key.family;
      s.labels = key.labels;
      s.type = Sample::Type::kHistogram;
      s.help = e.help;
      s.hist = e.instrument->Snapshot();
      snap.samples.push_back(std::move(s));
    }
  }
  {
    std::lock_guard<std::mutex> lock(collector_mu_);
    MetricsEmitter emitter(&snap.samples);
    for (const auto& [id, fn] : collectors_) {
      (void)id;
      fn(emitter);
    }
  }
  snap.Normalize();
  return snap;
}

MetricsRegistry& GlobalRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace msketch
