#include "obs/trace.h"

namespace msketch {
namespace obs {

namespace {

// Per-thread trace context: the outermost live span allocates an id,
// children inherit it and bump the depth.
struct TraceContext {
  uint64_t trace_id = 0;
  int depth = 0;
};

thread_local TraceContext t_trace;

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(size_t capacity, MetricsRegistry* registry)
    : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

Histogram* Tracer::HistogramFor(const char* name) {
  // Called under mu_. The registry lookup allocates on the first
  // occurrence of a span name only; afterwards it's one map probe.
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  Histogram* h = registry_->GetHistogram(
      "msk_span_seconds", {{"span", name}},
      "Span durations by name (query lifecycle + ingest path)",
      HistogramUnit::kSeconds);
  by_name_.emplace(name, h);
  return h;
}

void Tracer::Record(const SpanRecord& record) {
  Histogram* h = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
    if (next_ == 0) wrapped_ = true;
    h = HistogramFor(record.name);
  }
  // Observe outside the lock — the histogram itself is lock-free.
  h->Observe(static_cast<double>(record.duration_ns) * 1e-9);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  if (wrapped_) {
    out.reserve(capacity_);
    out.insert(out.end(), ring_.begin() + next_, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    out.insert(out.end(), ring_.begin(), ring_.begin() + next_);
  }
  return out;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Span::Start(const char* name, Tracer* tracer) {
  tracer_ = tracer;
  name_ = name;
  if (t_trace.depth == 0) t_trace.trace_id = NextTraceId();
  trace_id_ = t_trace.trace_id;
  depth_ = t_trace.depth;
  ++t_trace.depth;
  start_ns_ = NowNs();
}

void Span::Finish() {
  const uint64_t end_ns = NowNs();
  --t_trace.depth;
  if (t_trace.depth == 0) t_trace.trace_id = 0;
  SpanRecord rec;
  rec.name = name_;
  rec.trace_id = trace_id_;
  rec.depth = depth_;
  rec.start_ns = start_ns_;
  rec.duration_ns = end_ns - start_ns_;
  tracer_->Record(rec);
}

}  // namespace obs
}  // namespace msketch
