#include "sketches/tdigest.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

namespace {
constexpr size_t kBufferCap = 128;

// Scale function k1(q) = (delta / 2 pi) asin(2q - 1); its inverse bounds
// centroid sizes so tails get fine resolution.
double ScaleK(double q, double delta) {
  q = std::clamp(q, 0.0, 1.0);
  return delta / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
}
}  // namespace

TDigest::TDigest(double delta) : delta_(delta) {
  MSKETCH_CHECK(delta >= 1.0);
  buffer_.reserve(kBufferCap);
}

void TDigest::Accumulate(double x) {
  if (!has_minmax_) {
    min_ = max_ = x;
    has_minmax_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  buffer_.push_back(x);
  ++count_;
  if (buffer_.size() >= kBufferCap) Compress();
}

void TDigest::Compress() const {
  if (buffer_.empty() && centroids_.size() <= 2 * delta_ + 2) return;
  std::sort(buffer_.begin(), buffer_.end());
  // Merge sorted centroids and buffered points into a combined weighted
  // stream, then re-cluster greedily under the scale-function budget.
  std::vector<Centroid> stream;
  stream.reserve(centroids_.size() + buffer_.size());
  size_t ci = 0, bi = 0;
  while (ci < centroids_.size() || bi < buffer_.size()) {
    const bool take_centroid =
        bi >= buffer_.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi]);
    if (take_centroid) {
      stream.push_back(centroids_[ci++]);
    } else {
      stream.push_back(Centroid{buffer_[bi++], 1.0});
    }
  }
  buffer_.clear();
  centroids_.clear();
  if (stream.empty()) return;

  const double total = static_cast<double>(count_);
  double w_so_far = 0.0;
  Centroid current = stream[0];
  double k_lo = ScaleK(0.0, delta_);
  for (size_t i = 1; i < stream.size(); ++i) {
    const double q_hi = (w_so_far + current.weight + stream[i].weight) / total;
    if (ScaleK(q_hi, delta_) - k_lo <= 1.0) {
      // Absorb into current centroid.
      const double w = current.weight + stream[i].weight;
      current.mean += (stream[i].mean - current.mean) *
                      stream[i].weight / w;
      current.weight = w;
    } else {
      centroids_.push_back(current);
      w_so_far += current.weight;
      k_lo = ScaleK(w_so_far / total, delta_);
      current = stream[i];
    }
  }
  centroids_.push_back(current);
}

Status TDigest::Merge(const TDigest& other) {
  if (other.count_ == 0) return Status::OK();
  if (&other == this) {
    // Self-merge: range-inserting a vector into itself invalidates the
    // source iterators mid-insert. Merge a snapshot instead.
    const TDigest copy = other;
    return Merge(copy);
  }
  other.Compress();
  if (!has_minmax_) {
    min_ = other.min_;
    max_ = other.max_;
    has_minmax_ = other.has_minmax_;
  } else if (other.has_minmax_) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  std::sort(centroids_.begin(), centroids_.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });
  Compress();
  return Status::OK();
}

Result<double> TDigest::EstimateQuantile(double phi) const {
  if (count_ == 0) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  Compress();
  if (centroids_.empty()) return min_;
  const double target = phi * static_cast<double>(count_);
  // Interpolate within the centroid sequence, pinning the extremes to the
  // tracked min/max.
  double w_before = 0.0;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double w_mid = w_before + centroids_[i].weight / 2.0;
    if (target < w_mid || i + 1 == centroids_.size()) {
      double lo_w, lo_v, hi_w, hi_v;
      if (i == 0) {
        lo_w = 0.0;
        lo_v = min_;
        hi_w = centroids_[0].weight / 2.0;
        hi_v = centroids_[0].mean;
      } else {
        lo_w = w_before - centroids_[i - 1].weight / 2.0;
        lo_v = centroids_[i - 1].mean;
        hi_w = w_mid;
        hi_v = centroids_[i].mean;
      }
      if (target >= w_mid) {  // beyond the last centroid midpoint
        lo_w = w_mid;
        lo_v = centroids_[i].mean;
        hi_w = static_cast<double>(count_);
        hi_v = max_;
      }
      if (hi_w <= lo_w) return hi_v;
      const double t = std::clamp((target - lo_w) / (hi_w - lo_w), 0.0, 1.0);
      return lo_v + t * (hi_v - lo_v);
    }
    w_before += centroids_[i].weight;
  }
  return max_;
}

size_t TDigest::num_centroids() const {
  Compress();
  return centroids_.size();
}

size_t TDigest::SizeBytes() const {
  Compress();
  return centroids_.size() * 2 * sizeof(double) + 3 * sizeof(double) +
         sizeof(uint64_t);
}

}  // namespace msketch
