// Exact quantiles by retaining all values. Ground truth for accuracy
// evaluation and the paper's "sorting the dataset" baseline.
#ifndef MSKETCH_SKETCHES_EXACT_SKETCH_H_
#define MSKETCH_SKETCHES_EXACT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace msketch {

class ExactSketch {
 public:
  ExactSketch() = default;

  void Accumulate(double x) {
    data_.push_back(x);
    sorted_ = false;
  }
  Status Merge(const ExactSketch& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return data_.size(); }
  size_t SizeBytes() const { return data_.size() * sizeof(double); }

  ExactSketch CloneEmpty() const { return ExactSketch(); }

  /// Sorted view (sorts lazily).
  const std::vector<double>& SortedData() const;

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_EXACT_SKETCH_H_
