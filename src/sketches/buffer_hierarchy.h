// Buffer-hierarchy mergeable quantile summaries: the low-discrepancy
// "Merge12" sketch of Agarwal et al. (PODS 2012) and the "Random" sketch
// benchmarked by Wang/Luo et al., which the paper uses as its strongest
// mergeable baselines (RandomW).
//
// Both maintain a base buffer plus a hierarchy of level buffers of k
// elements; a buffer at level i represents each stored element with weight
// 2^i. Two same-level buffers collapse by merge-sorting their 2k elements
// and keeping k of them:
//   - Merge12 keeps every other element starting from one random parity
//     ("randomized zip"; low discrepancy, anti-correlated),
//   - Random keeps one uniformly random element of each consecutive pair
//     (independent per pair).
#ifndef MSKETCH_SKETCHES_BUFFER_HIERARCHY_H_
#define MSKETCH_SKETCHES_BUFFER_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace msketch {

enum class CollapseRule {
  kLowDiscrepancyZip,  // Merge12
  kPerPairRandom,      // RandomW
};

class BufferHierarchySketch {
 public:
  /// `k`: elements per level buffer (the paper's Table 2 uses k=32 for
  /// Merge12); base buffer holds 2k raw elements.
  BufferHierarchySketch(int k, CollapseRule rule, uint64_t seed = 0xB0FFE2);

  void Accumulate(double x);
  Status Merge(const BufferHierarchySketch& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  int k() const { return k_; }

  BufferHierarchySketch CloneEmpty() const {
    return BufferHierarchySketch(k_, rule_, rng_seed_ + 1);
  }

 private:
  void FlushBase();
  // Pushes a sorted k-element buffer into level `level`, collapsing upward.
  void PushLevel(std::vector<double> buf, size_t level);
  std::vector<double> Collapse(const std::vector<double>& a,
                               const std::vector<double>& b);

  int k_;
  CollapseRule rule_;
  uint64_t rng_seed_;
  Rng rng_;
  uint64_t count_ = 0;
  std::vector<double> base_;                     // unsorted, size < 2k
  std::vector<std::vector<double>> levels_;      // levels_[i]: empty or k
};

/// Factory helpers matching the paper's names.
inline BufferHierarchySketch MakeMerge12(int k, uint64_t seed = 0xB0FFE2) {
  return BufferHierarchySketch(k, CollapseRule::kLowDiscrepancyZip, seed);
}
inline BufferHierarchySketch MakeRandomW(int k, uint64_t seed = 0xB0FFE2) {
  return BufferHierarchySketch(k, CollapseRule::kPerPairRandom, seed);
}

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_BUFFER_HIERARCHY_H_
