// Abstract interface shared by all mergeable quantile summaries in the
// evaluation (Section 6.1 of the paper), plus an adapter that wraps the
// concrete sketch types.
//
// Hot paths (merge loops in benchmarks) use the concrete types directly;
// the virtual interface exists for the generic accuracy/size harnesses
// where a virtual dispatch is noise.
#ifndef MSKETCH_SKETCHES_QUANTILE_SUMMARY_H_
#define MSKETCH_SKETCHES_QUANTILE_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace msketch {

class QuantileSummary {
 public:
  virtual ~QuantileSummary() = default;

  /// Adds one element.
  virtual void Accumulate(double x) = 0;

  /// Merges another summary of the same concrete type and parameters.
  virtual Status Merge(const QuantileSummary& other) = 0;

  /// Estimates the phi-quantile, phi in (0, 1).
  virtual Result<double> EstimateQuantile(double phi) const = 0;

  /// Number of accumulated elements.
  virtual uint64_t count() const = 0;

  /// Approximate serialized footprint in bytes (what the paper reports as
  /// summary size).
  virtual size_t SizeBytes() const = 0;

  /// Short identifier used in benchmark tables (e.g. "GK", "T-Digest").
  virtual std::string Name() const = 0;

  /// Fresh empty summary with identical parameters.
  virtual std::unique_ptr<QuantileSummary> CloneEmpty() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<QuantileSummary> Clone() const = 0;
};

/// Wraps a concrete sketch type (with Accumulate/Merge/EstimateQuantile/
/// count/SizeBytes members) in the QuantileSummary interface.
template <typename T>
class SummaryAdapter : public QuantileSummary {
 public:
  explicit SummaryAdapter(T sketch, std::string name)
      : sketch_(std::move(sketch)), name_(std::move(name)) {}

  void Accumulate(double x) override { sketch_.Accumulate(x); }

  Status Merge(const QuantileSummary& other) override {
    const auto* o = dynamic_cast<const SummaryAdapter<T>*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("Merge: mismatched summary types");
    }
    return sketch_.Merge(o->sketch_);
  }

  Result<double> EstimateQuantile(double phi) const override {
    return sketch_.EstimateQuantile(phi);
  }

  uint64_t count() const override { return sketch_.count(); }
  size_t SizeBytes() const override { return sketch_.SizeBytes(); }
  std::string Name() const override { return name_; }

  std::unique_ptr<QuantileSummary> CloneEmpty() const override {
    return std::make_unique<SummaryAdapter<T>>(sketch_.CloneEmpty(), name_);
  }
  std::unique_ptr<QuantileSummary> Clone() const override {
    return std::make_unique<SummaryAdapter<T>>(sketch_, name_);
  }

  const T& sketch() const { return sketch_; }
  T& sketch() { return sketch_; }

 private:
  T sketch_;
  std::string name_;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_QUANTILE_SUMMARY_H_
