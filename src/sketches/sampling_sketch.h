// Mergeable reservoir sample (Vitter 1985 reservoir; merge by weighted
// subsampling of the union, as in the Yahoo datasketches "Sampling"
// baseline used by the paper).
#ifndef MSKETCH_SKETCHES_SAMPLING_SKETCH_H_
#define MSKETCH_SKETCHES_SAMPLING_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace msketch {

class SamplingSketch {
 public:
  explicit SamplingSketch(size_t capacity, uint64_t seed = 0x5A3D1E);

  void Accumulate(double x);
  Status Merge(const SamplingSketch& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  size_t capacity() const { return capacity_; }
  const std::vector<double>& sample() const { return sample_; }

  SamplingSketch CloneEmpty() const {
    return SamplingSketch(capacity_, seed_ + 1);
  }

 private:
  size_t capacity_;
  uint64_t seed_;
  Rng rng_;
  uint64_t count_ = 0;
  std::vector<double> sample_;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_SAMPLING_SKETCH_H_
