// Creates baseline summaries by name + size parameter, wrapped in the
// QuantileSummary interface. The benchmark harness uses this to sweep
// summary types uniformly; the moments sketch has its own factory in
// core/ (it is not a comparison-based summary).
#ifndef MSKETCH_SKETCHES_SUMMARY_FACTORY_H_
#define MSKETCH_SKETCHES_SUMMARY_FACTORY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sketches/quantile_summary.h"

namespace msketch {

/// Known names: "Merge12" (param: k), "RandomW" (param: k), "GK" (param:
/// 1/epsilon), "KLL" (param: per-level capacity k), "T-Digest" (param:
/// delta), "Sampling" (param: capacity), "S-Hist" (param: bins),
/// "EW-Hist" (param: bins), "Exact" (param ignored).
Result<std::unique_ptr<QuantileSummary>> MakeSummary(const std::string& name,
                                                     double param);

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_SUMMARY_FACTORY_H_
