#include "sketches/summary_factory.h"

#include "sketches/buffer_hierarchy.h"
#include "sketches/ewhist.h"
#include "sketches/exact_sketch.h"
#include "sketches/gk_sketch.h"
#include "sketches/kll_sketch.h"
#include "sketches/sampling_sketch.h"
#include "sketches/shist.h"
#include "sketches/tdigest.h"

namespace msketch {

Result<std::unique_ptr<QuantileSummary>> MakeSummary(const std::string& name,
                                                     double param) {
  if (name == "Merge12") {
    int k = static_cast<int>(param);
    if (k % 2 != 0) ++k;
    return std::unique_ptr<QuantileSummary>(
        new SummaryAdapter<BufferHierarchySketch>(MakeMerge12(k), name));
  }
  if (name == "RandomW") {
    int k = static_cast<int>(param);
    if (k % 2 != 0) ++k;
    return std::unique_ptr<QuantileSummary>(
        new SummaryAdapter<BufferHierarchySketch>(MakeRandomW(k), name));
  }
  if (name == "GK") {
    if (param <= 1.0) {
      return Status::InvalidArgument("GK: param must be 1/epsilon > 1");
    }
    return std::unique_ptr<QuantileSummary>(
        new SummaryAdapter<GkSketch>(GkSketch(1.0 / param), name));
  }
  if (name == "T-Digest") {
    return std::unique_ptr<QuantileSummary>(
        new SummaryAdapter<TDigest>(TDigest(param), name));
  }
  if (name == "KLL") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<KllSketch>(
        KllSketch(static_cast<int>(param)), name));
  }
  if (name == "Sampling") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<SamplingSketch>(
        SamplingSketch(static_cast<size_t>(param)), name));
  }
  if (name == "S-Hist") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<SHist>(
        SHist(static_cast<size_t>(param)), name));
  }
  if (name == "EW-Hist") {
    return std::unique_ptr<QuantileSummary>(new SummaryAdapter<EwHist>(
        EwHist(static_cast<size_t>(param)), name));
  }
  if (name == "Exact") {
    return std::unique_ptr<QuantileSummary>(
        new SummaryAdapter<ExactSketch>(ExactSketch(), name));
  }
  return Status::InvalidArgument("unknown summary name: " + name);
}

}  // namespace msketch
