#include "sketches/buffer_hierarchy.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

BufferHierarchySketch::BufferHierarchySketch(int k, CollapseRule rule,
                                             uint64_t seed)
    : k_(k), rule_(rule), rng_seed_(seed), rng_(seed) {
  MSKETCH_CHECK(k >= 2);
  MSKETCH_CHECK(k % 2 == 0);
  base_.reserve(2 * static_cast<size_t>(k));
}

void BufferHierarchySketch::Accumulate(double x) {
  base_.push_back(x);
  ++count_;
  if (base_.size() >= 2 * static_cast<size_t>(k_)) FlushBase();
}

void BufferHierarchySketch::FlushBase() {
  MSKETCH_DCHECK(base_.size() == 2 * static_cast<size_t>(k_));
  std::sort(base_.begin(), base_.end());
  // Split the sorted 2k buffer into two k-buffers and collapse them into a
  // level-1 buffer (each element weight 2).
  std::vector<double> lo(base_.begin(), base_.begin() + k_);
  std::vector<double> hi(base_.begin() + k_, base_.end());
  base_.clear();
  PushLevel(Collapse(lo, hi), 1);
}

std::vector<double> BufferHierarchySketch::Collapse(
    const std::vector<double>& a, const std::vector<double>& b) {
  MSKETCH_DCHECK(a.size() == static_cast<size_t>(k_));
  MSKETCH_DCHECK(b.size() == static_cast<size_t>(k_));
  std::vector<double> merged(2 * static_cast<size_t>(k_));
  std::merge(a.begin(), a.end(), b.begin(), b.end(), merged.begin());
  std::vector<double> out;
  out.reserve(k_);
  if (rule_ == CollapseRule::kLowDiscrepancyZip) {
    const size_t offset = rng_.NextU64() & 1;
    for (size_t i = offset; i < merged.size(); i += 2) {
      out.push_back(merged[i]);
    }
  } else {
    for (size_t i = 0; i + 1 < merged.size(); i += 2) {
      out.push_back(merged[i + (rng_.NextU64() & 1)]);
    }
  }
  return out;
}

void BufferHierarchySketch::PushLevel(std::vector<double> buf, size_t level) {
  while (true) {
    if (levels_.size() <= level) levels_.resize(level + 1);
    if (levels_[level].empty()) {
      levels_[level] = std::move(buf);
      return;
    }
    std::vector<double> existing = std::move(levels_[level]);
    levels_[level].clear();
    buf = Collapse(existing, buf);
    ++level;
  }
}

Status BufferHierarchySketch::Merge(const BufferHierarchySketch& other) {
  if (other.k_ != k_ || other.rule_ != rule_) {
    return Status::InvalidArgument("BufferHierarchySketch: mismatched params");
  }
  count_ += other.count_;
  // Note count_ was already advanced; Accumulate below would double count,
  // so insert raw base elements manually.
  for (double x : other.base_) {
    base_.push_back(x);
    if (base_.size() >= 2 * static_cast<size_t>(k_)) FlushBase();
  }
  for (size_t level = 1; level < other.levels_.size(); ++level) {
    if (!other.levels_[level].empty()) {
      PushLevel(other.levels_[level], level);
    }
  }
  return Status::OK();
}

Result<double> BufferHierarchySketch::EstimateQuantile(double phi) const {
  if (count_ == 0) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  // Weighted rank scan over base buffer (weight 1) and level buffers
  // (weight 2^level).
  std::vector<std::pair<double, double>> weighted;
  weighted.reserve(base_.size() + levels_.size() * k_);
  for (double x : base_) weighted.emplace_back(x, 1.0);
  for (size_t level = 1; level < levels_.size(); ++level) {
    const double w = std::ldexp(1.0, static_cast<int>(level - 1)) * 2.0;
    for (double x : levels_[level]) weighted.emplace_back(x, w);
  }
  if (weighted.empty()) {
    return Status::Internal("BufferHierarchySketch: no stored elements");
  }
  std::sort(weighted.begin(), weighted.end());
  double total = 0.0;
  for (const auto& [x, w] : weighted) total += w;
  const double target = phi * total;
  double acc = 0.0;
  for (const auto& [x, w] : weighted) {
    acc += w;
    if (acc >= target) return x;
  }
  return weighted.back().first;
}

size_t BufferHierarchySketch::SizeBytes() const {
  // Serialized form: k, rule, count, base buffer, one bitmap of occupied
  // levels plus the level payloads. We charge capacity for the base buffer
  // (it is part of the in-memory footprint that merges touch).
  size_t doubles = 2 * static_cast<size_t>(k_);
  for (const auto& level : levels_) doubles += level.size();
  return sizeof(uint64_t) * 2 + sizeof(uint32_t) + doubles * sizeof(double);
}

}  // namespace msketch
