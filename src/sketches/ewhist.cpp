#include "sketches/ewhist.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

EwHist::EwHist(size_t bins) : bins_(bins) {
  MSKETCH_CHECK(bins >= 2);
  counts_.assign(bins, 0);
}

int64_t EwHist::BinIndexOf(double x) const {
  return static_cast<int64_t>(std::floor(x / width_));
}

void EwHist::WidenOnce() {
  // Realign start_ to an even global index by extending one bin left.
  if (start_ % 2 != 0) {
    // Shift contents right by one; drop nothing (the rightmost bin must be
    // empty for this to be exact, which CoverValue guarantees by widening
    // before the window is full at the edges; if not, we fold it into the
    // new last bin after pairing).
    counts_.insert(counts_.begin(), 0);
    --start_;
  }
  std::vector<uint64_t> next((counts_.size() + 1) / 2, 0);
  for (size_t i = 0; i < counts_.size(); ++i) next[i / 2] += counts_[i];
  next.resize(bins_, 0);
  counts_ = std::move(next);
  start_ /= 2;
  width_ *= 2.0;
}

void EwHist::CoverValue(double x) {
  if (!initialized_) {
    // Pick an initial width so typical data lands mid-range; anchored at
    // global index multiples so merges stay exact.
    double w = 1.0;
    const double mag = std::fabs(x);
    if (mag > 0.0) {
      w = std::ldexp(1.0, static_cast<int>(std::ceil(
                              std::log2(std::max(mag / bins_, 1e-300)))));
      if (w <= 0.0 || !std::isfinite(w)) w = 1.0;
    }
    width_ = w;
    start_ = static_cast<int64_t>(std::floor(x / width_)) -
             static_cast<int64_t>(bins_ / 2);
    initialized_ = true;
    min_ = max_ = x;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  // Widen until the bin index fits in [start_, start_ + bins_).
  for (int guard = 0; guard < 2048; ++guard) {
    const int64_t idx = BinIndexOf(x);
    if (idx >= start_ && idx < start_ + static_cast<int64_t>(bins_)) return;
    // Try sliding the window if the occupied span allows it; otherwise
    // widen. Sliding is only exact when the vacated bins are empty.
    size_t lo = 0, hi = counts_.size();
    while (lo < counts_.size() && counts_[lo] == 0) ++lo;
    while (hi > lo && counts_[hi - 1] == 0) --hi;
    if (lo == hi) {  // all empty: recenter outright
      start_ = idx - static_cast<int64_t>(bins_ / 2);
      return;
    }
    const int64_t occ_lo = start_ + static_cast<int64_t>(lo);
    const int64_t occ_hi = start_ + static_cast<int64_t>(hi);  // exclusive
    const int64_t span = std::max(occ_hi, idx + 1) - std::min(occ_lo, idx);
    if (span <= static_cast<int64_t>(bins_)) {
      // Slide window to cover [min(occ_lo, idx), ...).
      const int64_t new_start = std::min(occ_lo, idx);
      std::vector<uint64_t> next(bins_, 0);
      for (size_t i = lo; i < hi; ++i) {
        next[static_cast<size_t>(start_ + static_cast<int64_t>(i) -
                                 new_start)] = counts_[i];
      }
      counts_ = std::move(next);
      start_ = new_start;
      return;
    }
    WidenOnce();
  }
  MSKETCH_CHECK_MSG(false, "EwHist::CoverValue failed to converge");
}

void EwHist::Accumulate(double x) {
  CoverValue(x);
  ++count_;
  const int64_t idx = BinIndexOf(x) - start_;
  MSKETCH_DCHECK(idx >= 0 && idx < static_cast<int64_t>(bins_));
  ++counts_[static_cast<size_t>(idx)];
}

Status EwHist::Merge(const EwHist& other) {
  if (other.count_ == 0) return Status::OK();
  if (count_ == 0) {
    *this = other;
    return Status::OK();
  }
  if (other.bins_ != bins_) {
    return Status::InvalidArgument("EwHist: mismatched bin counts");
  }
  EwHist o = other;
  // Equalize widths.
  while (width_ < o.width_) WidenOnce();
  while (o.width_ < width_) o.WidenOnce();
  // Expand until both occupied ranges fit one window.
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  for (int guard = 0; guard < 2048; ++guard) {
    // Occupied global ranges.
    auto occupied = [](const EwHist& h, int64_t* lo, int64_t* hi) {
      size_t l = 0, r = h.counts_.size();
      while (l < h.counts_.size() && h.counts_[l] == 0) ++l;
      while (r > l && h.counts_[r - 1] == 0) --r;
      *lo = h.start_ + static_cast<int64_t>(l);
      *hi = h.start_ + static_cast<int64_t>(r);
    };
    int64_t alo, ahi, blo, bhi;
    occupied(*this, &alo, &ahi);
    occupied(o, &blo, &bhi);
    const int64_t lo = std::min(alo, blo);
    const int64_t hi = std::max(ahi, bhi);
    if (hi - lo <= static_cast<int64_t>(bins_)) {
      // Rebase self to [lo, lo + bins) and add counts.
      std::vector<uint64_t> next(bins_, 0);
      for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) continue;
        next[static_cast<size_t>(start_ + static_cast<int64_t>(i) - lo)] +=
            counts_[i];
      }
      for (size_t i = 0; i < o.counts_.size(); ++i) {
        if (o.counts_[i] == 0) continue;
        next[static_cast<size_t>(o.start_ + static_cast<int64_t>(i) - lo)] +=
            o.counts_[i];
      }
      counts_ = std::move(next);
      start_ = lo;
      count_ += o.count_;
      return Status::OK();
    }
    WidenOnce();
    o.WidenOnce();
  }
  return Status::Internal("EwHist::Merge failed to align ranges");
}

Result<double> EwHist::EstimateQuantile(double phi) const {
  if (count_ == 0) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  const double target = phi * static_cast<double>(count_);
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Uniform interpolation within the bin, clamped to observed range.
      const double lo = static_cast<double>(start_ + static_cast<int64_t>(i)) *
                        width_;
      const double frac =
          (target - acc) / static_cast<double>(counts_[i]);
      const double v = lo + frac * width_;
      return std::clamp(v, min_, max_);
    }
    acc = next;
  }
  return max_;
}

size_t EwHist::SizeBytes() const {
  return bins_ * sizeof(double) + 2 * sizeof(double) + sizeof(int64_t) +
         sizeof(uint64_t);
}

}  // namespace msketch
