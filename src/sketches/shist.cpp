#include "sketches/shist.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "numerics/root_finding.h"

namespace msketch {

SHist::SHist(size_t bins) : bins_(bins) {
  MSKETCH_CHECK(bins >= 2);
  data_.reserve(bins + 1);
}

void SHist::Accumulate(double x) {
  ++count_;
  if (!has_minmax_) {
    min_ = max_ = x;
    has_minmax_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  InsertBin(x, 1.0);
}

void SHist::InsertBin(double p, double m) {
  auto it = std::lower_bound(
      data_.begin(), data_.end(), p,
      [](const Bin& b, double v) { return b.p < v; });
  if (it != data_.end() && it->p == p) {
    it->m += m;
  } else {
    data_.insert(it, Bin{p, m});
  }
  if (data_.size() > bins_) Reduce();
}

void SHist::Reduce() {
  while (data_.size() > bins_) {
    // Merge the pair of adjacent bins with minimal gap.
    size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < data_.size(); ++i) {
      const double gap = data_[i + 1].p - data_[i].p;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    Bin& a = data_[best];
    const Bin& b = data_[best + 1];
    const double m = a.m + b.m;
    a.p = (a.p * a.m + b.p * b.m) / m;
    a.m = m;
    data_.erase(data_.begin() + static_cast<long>(best) + 1);
  }
}

Status SHist::Merge(const SHist& other) {
  if (other.count_ == 0) return Status::OK();
  if (!has_minmax_) {
    min_ = other.min_;
    max_ = other.max_;
    has_minmax_ = other.has_minmax_;
  } else if (other.has_minmax_) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  std::vector<Bin> merged;
  merged.reserve(data_.size() + other.data_.size());
  std::merge(data_.begin(), data_.end(), other.data_.begin(),
             other.data_.end(), std::back_inserter(merged),
             [](const Bin& a, const Bin& b) { return a.p < b.p; });
  data_ = std::move(merged);
  Reduce();
  return Status::OK();
}

double SHist::CumulativeCount(double x) const {
  // BHTT "sum" procedure: each bin contributes half its mass at its
  // centroid; between centroids the mass ramps linearly (trapezoid).
  if (data_.empty()) return 0.0;
  if (x < data_.front().p) {
    // Ramp from min_ to the first centroid.
    if (x <= min_ || data_.front().p <= min_) return 0.0;
    const double t = (x - min_) / (data_.front().p - min_);
    return 0.5 * data_.front().m * t * t;
  }
  if (x >= data_.back().p) {
    if (x >= max_ || max_ <= data_.back().p) {
      return static_cast<double>(count_);
    }
    const double t = (max_ - x) / (max_ - data_.back().p);
    return static_cast<double>(count_) - 0.5 * data_.back().m * t * t;
  }
  double acc = 0.0;
  for (size_t i = 0; i + 1 < data_.size(); ++i) {
    const Bin& a = data_[i];
    const Bin& b = data_[i + 1];
    if (x < b.p) {
      const double t = (x - a.p) / (b.p - a.p);
      const double mx = a.m + (b.m - a.m) * t;  // interpolated bin mass
      acc += a.m / 2.0;
      acc += (a.m + mx) * t / 2.0;
      return acc;
    }
    acc += a.m;
  }
  return acc;
}

Result<double> SHist::EstimateQuantile(double phi) const {
  if (count_ == 0) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  if (data_.size() == 1) return data_.front().p;
  const double target = phi * static_cast<double>(count_);
  if (target <= CumulativeCount(min_)) return min_;
  if (target >= CumulativeCount(max_)) return max_;
  auto fn = [&](double x) { return CumulativeCount(x) - target; };
  Result<double> root = BrentRoot(fn, min_, max_, 1e-9 * (max_ - min_));
  if (root.ok()) return root.value();
  return Status::Internal("SHist: CDF inversion failed");
}

size_t SHist::SizeBytes() const {
  return bins_ * 2 * sizeof(double) + 2 * sizeof(double) + sizeof(uint64_t);
}

}  // namespace msketch
