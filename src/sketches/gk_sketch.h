// Greenwald-Khanna quantile summary, "GKArray" variant (Luo, Wang, Yi,
// Cormode, VLDB J. 2016).
//
// Stores tuples (v, g, delta) with the invariant that the rank of v_i lies
// in [sum_{j<=i} g_j, sum_{j<=i} g_j + delta_i]. Inserts are buffered and
// batch-merged. GK is not strictly mergeable (Agarwal et al. 2012): merges
// concatenate tuple lists and the summary grows, which is exactly the
// pathology the paper observes in its production benchmarks.
#ifndef MSKETCH_SKETCHES_GK_SKETCH_H_
#define MSKETCH_SKETCHES_GK_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace msketch {

class GkSketch {
 public:
  /// `epsilon`: target rank-error fraction (Table 2 uses 1/40 .. 1/60).
  explicit GkSketch(double epsilon);

  void Accumulate(double x);
  Status Merge(const GkSketch& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  double epsilon() const { return epsilon_; }
  size_t num_tuples() const { return entries_.size(); }

  GkSketch CloneEmpty() const { return GkSketch(epsilon_); }

 private:
  struct Entry {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  void FlushBuffer() const;  // logically const: summary state is deferred
  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  // Mutable: estimation flushes pending inserts first.
  mutable std::vector<Entry> entries_;  // sorted by v
  mutable std::vector<double> buffer_;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_GK_SKETCH_H_
