// Mergeable equi-width histogram with power-of-two range growth
// ("EW-Hist", Rabkin et al. NSDI 2014; the paper's fastest-but-least-
// accurate baseline).
//
// Bins have width 2^j anchored at integer multiples of the width, so two
// histograms always share compatible boundaries after widening to a common
// scale — merges and range growth are exact rebinning operations.
#ifndef MSKETCH_SKETCHES_EWHIST_H_
#define MSKETCH_SKETCHES_EWHIST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace msketch {

class EwHist {
 public:
  explicit EwHist(size_t bins);

  void Accumulate(double x);
  Status Merge(const EwHist& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  size_t bins() const { return bins_; }
  double bin_width() const { return width_; }

  EwHist CloneEmpty() const { return EwHist(bins_); }

 private:
  // Doubles the bin width, combining pairs of bins (start index realigned
  // to even multiples first).
  void WidenOnce();
  // Grows range/width until x falls inside the covered window.
  void CoverValue(double x);
  int64_t BinIndexOf(double x) const;  // global index floor(x / width_)

  size_t bins_;
  uint64_t count_ = 0;
  double width_ = 1.0;
  int64_t start_ = 0;  // counts_[i] covers [ (start_+i) w, (start_+i+1) w )
  std::vector<uint64_t> counts_;
  bool initialized_ = false;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_EWHIST_H_
