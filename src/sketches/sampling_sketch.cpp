#include "sketches/sampling_sketch.h"

#include <algorithm>

#include "common/macros.h"

namespace msketch {

SamplingSketch::SamplingSketch(size_t capacity, uint64_t seed)
    : capacity_(capacity), seed_(seed), rng_(seed) {
  MSKETCH_CHECK(capacity >= 1);
  sample_.reserve(capacity);
}

void SamplingSketch::Accumulate(double x) {
  ++count_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Vitter's Algorithm R.
  const uint64_t j = rng_.NextBelow(count_);
  if (j < capacity_) sample_[j] = x;
}

Status SamplingSketch::Merge(const SamplingSketch& other) {
  if (other.count_ == 0) return Status::OK();
  if (count_ == 0) {
    sample_ = other.sample_;
    count_ = other.count_;
    return Status::OK();
  }
  // Weighted merge: each output slot draws from self with probability
  // count/(count+other.count), sampling without replacement within each
  // side (approximated by shuffling copies and consuming sequentially).
  std::vector<double> a = sample_;
  std::vector<double> b = other.sample_;
  for (size_t i = a.size(); i > 1; --i) {
    std::swap(a[i - 1], a[rng_.NextBelow(i)]);
  }
  for (size_t i = b.size(); i > 1; --i) {
    std::swap(b[i - 1], b[rng_.NextBelow(i)]);
  }
  const double pa = static_cast<double>(count_) /
                    static_cast<double>(count_ + other.count_);
  std::vector<double> merged;
  const size_t target = std::min(capacity_, a.size() + b.size());
  merged.reserve(target);
  size_t ia = 0, ib = 0;
  while (merged.size() < target) {
    const bool from_a =
        (ib >= b.size()) || (ia < a.size() && rng_.NextDouble() < pa);
    if (from_a) {
      merged.push_back(a[ia++]);
    } else {
      merged.push_back(b[ib++]);
    }
  }
  sample_ = std::move(merged);
  count_ += other.count_;
  return Status::OK();
}

Result<double> SamplingSketch::EstimateQuantile(double phi) const {
  if (sample_.empty()) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(phi * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

size_t SamplingSketch::SizeBytes() const {
  return capacity_ * sizeof(double) + sizeof(uint64_t) + sizeof(uint16_t);
}

}  // namespace msketch
