#include "sketches/exact_sketch.h"

#include <algorithm>
#include <cmath>

#include "numerics/stats.h"

namespace msketch {

Status ExactSketch::Merge(const ExactSketch& other) {
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  sorted_ = false;
  return Status::OK();
}

const std::vector<double>& ExactSketch::SortedData() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  return data_;
}

Result<double> ExactSketch::EstimateQuantile(double phi) const {
  if (data_.empty()) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  return QuantileOfSorted(SortedData(), phi);
}

}  // namespace msketch
