// Streaming histogram of Ben-Haim & Tom-Tov (JMLR 2010) — the default
// quantile summary in Druid ("S-Hist" in the paper).
//
// Maintains at most B (centroid, count) bins; inserting adds a unit bin and
// merges the two closest bins; merging summaries concatenates bins and
// re-reduces. Quantiles come from the trapezoidal interpolation of the
// cumulative "sum" procedure in the BHTT paper.
#ifndef MSKETCH_SKETCHES_SHIST_H_
#define MSKETCH_SKETCHES_SHIST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace msketch {

class SHist {
 public:
  explicit SHist(size_t bins);

  void Accumulate(double x);
  Status Merge(const SHist& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  size_t bins() const { return bins_; }

  SHist CloneEmpty() const { return SHist(bins_); }

 private:
  struct Bin {
    double p;  // centroid position
    double m;  // count
  };

  // Inserts a bin keeping the array sorted, then reduces to `bins_`.
  void InsertBin(double p, double m);
  void Reduce();
  // Interpolated count of points <= x ("sum" procedure).
  double CumulativeCount(double x) const;

  size_t bins_;
  uint64_t count_ = 0;
  std::vector<Bin> data_;  // sorted by p
  double min_ = 0.0, max_ = 0.0;
  bool has_minmax_ = false;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_SHIST_H_
