// KLL quantile sketch (Karnin, Lang, Liberty, "Optimal Quantile
// Approximation in Streams", FOCS 2016) with a deterministically tracked
// rank-error certificate.
//
// A compactor hierarchy: level h holds items of weight 2^h. When a level
// reaches capacity it is sorted and either the odd- or even-indexed half
// is promoted to level h+1 at doubled weight. One compaction of level h
// perturbs the (weighted) rank of any threshold by at most 2^h, so the
// running sum of compaction weights is a hard bound on the rank error of
// every estimate this sketch will ever return — not a probabilistic
// bound, a certificate.
//
// Unlike textbook KLL we keep a *uniform* per-level capacity k instead of
// geometrically decaying capacities: decaying levels make the worst-case
// deterministic bound degenerate to ~n/c while the uniform layout keeps
// it at ~(k/2) * log2(n/k) total weight, i.e. a certified rank epsilon of
// about log2(n/k)/(2k). The router consumes that certificate directly
// (CertifiedInterval), so the deterministic bound is the product, not the
// in-expectation one.
//
// The compaction coin is a deterministic splitmix64 counter so that equal
// ingest orders produce bit-identical sketches (snapshot/recovery
// bit-exactness relies on this).
#ifndef MSKETCH_SKETCHES_KLL_SKETCH_H_
#define MSKETCH_SKETCHES_KLL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace msketch {

/// Certified rank interval for a quantile query: the true phi-quantile of
/// the accumulated multiset is guaranteed to lie in [lower, upper].
struct KllInterval {
  double lower;
  double upper;
};

class KllSketch {
 public:
  /// `k`: per-level compactor capacity (clamped to >= 8). Retained items
  /// are bounded by ~k * log2(n/k); certified rank error is about
  /// log2(n/k) / (2k).
  explicit KllSketch(int k = 200);

  void Accumulate(double x);
  void AccumulateBatch(const double* xs, size_t n);

  /// Mergeable: the merged certificate is the sum of both inputs'
  /// certificates plus whatever compactions the merge itself triggers.
  /// Self-merge is safe and equivalent to merging a copy.
  Status Merge(const KllSketch& other);

  /// Point estimate of the phi-quantile, phi in [0, 1].
  Result<double> EstimateQuantile(double phi) const;

  /// Certified enclosure of the true phi-quantile. Never fails on a
  /// non-empty sketch; worst case it returns [min, max], which is still a
  /// sound certificate.
  Result<KllInterval> CertifiedInterval(double phi) const;

  /// Weighted count of retained items strictly below / at-or-below x.
  /// |RankBelow(x) - true_rank_below(x)| <= rank_error_bound().
  uint64_t RankBelow(double x) const;
  uint64_t RankAtOrBelow(double x) const;

  uint64_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int k() const { return k_; }
  /// Hard bound on the absolute rank error of any estimate (sum of
  /// compaction weights so far).
  uint64_t rank_error_bound() const { return rank_error_bound_; }
  /// rank_error_bound() / count(), the certified rank epsilon.
  double epsilon() const;
  size_t num_retained() const;
  size_t num_levels() const { return levels_.size(); }
  size_t SizeBytes() const;

  KllSketch CloneEmpty() const { return KllSketch(k_); }
  void Reset();

  void Serialize(BytesWriter* w) const;
  static Result<KllSketch> Deserialize(BytesReader* r);
  /// Bit-exact equality (serialized forms would match byte for byte).
  bool IdenticalTo(const KllSketch& other) const;

 private:
  // Sorted (value, weight=2^level) view of all retained items.
  struct WeightedItem {
    double value;
    uint64_t weight;
  };
  std::vector<WeightedItem> SortedItems() const;
  void CompactLevel(size_t h);
  void CompressPending();
  bool CoinFlip();

  int k_;
  uint64_t n_ = 0;
  uint64_t rank_error_bound_ = 0;
  uint64_t coin_state_;
  double min_ = 0.0, max_ = 0.0;
  // levels_[h] holds items of weight 2^h; level 0 is an unsorted insert
  // buffer, higher levels stay sorted.
  std::vector<std::vector<double>> levels_;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_KLL_SKETCH_H_
