// t-digest quantile sketch (Dunning & Ertl), merging variant.
//
// The paper benchmarks the AVL-tree t-digest; we implement the merging
// t-digest, which maintains the same centroid/scale-function accuracy model
// with batch re-clustering instead of per-point tree updates (see DESIGN.md
// substitution table). `delta` is the compression parameter: centroid count
// is bounded by ~2*delta.
#ifndef MSKETCH_SKETCHES_TDIGEST_H_
#define MSKETCH_SKETCHES_TDIGEST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace msketch {

class TDigest {
 public:
  explicit TDigest(double delta);

  void Accumulate(double x);
  Status Merge(const TDigest& other);
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return count_; }
  size_t SizeBytes() const;
  double delta() const { return delta_; }
  size_t num_centroids() const;

  TDigest CloneEmpty() const { return TDigest(delta_); }

 private:
  struct Centroid {
    double mean;
    double weight;
  };

  void Compress() const;

  double delta_;
  uint64_t count_ = 0;
  mutable std::vector<Centroid> centroids_;  // sorted by mean when flushed
  mutable std::vector<double> buffer_;
  mutable double min_ = 0.0, max_ = 0.0;
  bool has_minmax_ = false;
};

}  // namespace msketch

#endif  // MSKETCH_SKETCHES_TDIGEST_H_
