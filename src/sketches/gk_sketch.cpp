#include "sketches/gk_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

namespace {
constexpr size_t kBufferCap = 64;
}

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  MSKETCH_CHECK(epsilon > 0.0 && epsilon < 1.0);
  buffer_.reserve(kBufferCap);
}

void GkSketch::Accumulate(double x) {
  buffer_.push_back(x);
  ++count_;
  if (buffer_.size() >= kBufferCap) {
    FlushBuffer();
    Compress();
  }
}

void GkSketch::FlushBuffer() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + buffer_.size());
  const uint64_t delta_new = static_cast<uint64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  size_t ei = 0;
  for (double x : buffer_) {
    while (ei < entries_.size() && entries_[ei].v < x) {
      merged.push_back(entries_[ei++]);
    }
    // New elements at the extremes must have exact rank (delta = 0).
    const bool extreme =
        (merged.empty() && (ei == 0)) ||
        (ei == entries_.size() &&
         (merged.empty() || x >= merged.back().v));
    merged.push_back(Entry{x, 1, extreme ? 0 : delta_new});
  }
  while (ei < entries_.size()) merged.push_back(entries_[ei++]);
  entries_ = std::move(merged);
  buffer_.clear();
}

void GkSketch::Compress() {
  if (entries_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  out.push_back(entries_.front());
  // Greedily fold entry i into its successor when the combined uncertainty
  // stays under 2 eps n; always retain the first and last entries.
  uint64_t pending_g = 0;
  for (size_t i = 1; i + 1 < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& next = entries_[i + 1];
    const double combined = static_cast<double>(pending_g + e.g + next.g) +
                            static_cast<double>(next.delta);
    if (combined <= threshold) {
      pending_g += e.g;  // fold into the next entry
    } else {
      out.push_back(Entry{e.v, e.g + pending_g, e.delta});
      pending_g = 0;
    }
  }
  Entry last = entries_.back();
  last.g += pending_g;
  out.push_back(last);
  entries_ = std::move(out);
}

Status GkSketch::Merge(const GkSketch& other) {
  other.FlushBuffer();
  FlushBuffer();
  // Standard mergeable-GK combine (Greenwald-Khanna; see Agarwal et al.
  // 2012): tuple lists merge by value, and a tuple absorbs the rank
  // uncertainty of the *next* tuple from the opposite summary:
  //   delta' = delta + (g_next_other + delta_next_other - 1).
  // The merged summary has error eps1 + eps2, so repeated merging grows
  // the structure — the pathology the paper observes on production
  // workloads (Section 6.1, Appendix D.4).
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  auto next_uncertainty = [](const std::vector<Entry>& list, size_t pos) {
    if (pos >= list.size()) return static_cast<uint64_t>(0);
    const uint64_t u = list[pos].g + list[pos].delta;
    return u > 0 ? u - 1 : 0;
  };
  while (i < entries_.size() || j < other.entries_.size()) {
    bool take_self;
    if (i >= entries_.size()) {
      take_self = false;
    } else if (j >= other.entries_.size()) {
      take_self = true;
    } else {
      take_self = entries_[i].v <= other.entries_[j].v;
    }
    if (take_self) {
      Entry e = entries_[i++];
      e.delta += next_uncertainty(other.entries_, j);
      merged.push_back(e);
    } else {
      Entry e = other.entries_[j++];
      e.delta += next_uncertainty(entries_, i);
      merged.push_back(e);
    }
  }
  entries_ = std::move(merged);
  count_ += other.count_;
  Compress();
  return Status::OK();
}

Result<double> GkSketch::EstimateQuantile(double phi) const {
  FlushBuffer();
  if (entries_.empty()) {
    return Status::InvalidArgument("EstimateQuantile on empty summary");
  }
  const double target = phi * static_cast<double>(count_);
  uint64_t rmin = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    rmin += entries_[i].g;
    const double rmax = static_cast<double>(rmin + entries_[i].delta);
    if (0.5 * (static_cast<double>(rmin) + rmax) >= target) {
      return entries_[i].v;
    }
  }
  return entries_.back().v;
}

size_t GkSketch::SizeBytes() const {
  FlushBuffer();
  return entries_.size() * (sizeof(double) + 2 * sizeof(uint32_t)) +
         sizeof(uint64_t);
}

}  // namespace msketch
