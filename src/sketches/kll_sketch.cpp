#include "sketches/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/macros.h"

namespace msketch {
namespace {

// splitmix64: one multiply-xor-shift round per coin, deterministic.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

KllSketch::KllSketch(int k) : k_(std::max(k, 8)), coin_state_(0) {
  levels_.emplace_back();
  levels_[0].reserve(k_);
}

bool KllSketch::CoinFlip() { return (SplitMix64(&coin_state_) & 1u) != 0; }

void KllSketch::Accumulate(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  levels_[0].push_back(x);
  if (levels_[0].size() >= static_cast<size_t>(k_)) CompressPending();
}

void KllSketch::AccumulateBatch(const double* xs, size_t n) {
  for (size_t i = 0; i < n; ++i) Accumulate(xs[i]);
}

void KllSketch::CompactLevel(size_t h) {
  // Growing levels_ reallocates it, so take references only afterwards.
  if (h + 1 >= levels_.size()) {
    levels_.emplace_back();
    levels_.back().reserve(k_ + k_ / 2);
  }
  std::vector<double>& level = levels_[h];
  // Level 0 is an unsorted insert buffer; higher levels are kept sorted
  // (promotion below merges in order), but a merge may have concatenated
  // two sorted runs, so re-sort unconditionally — cost is dominated by
  // the promotion merge anyway.
  std::sort(level.begin(), level.end());

  const size_t pairs = level.size() / 2;
  if (pairs == 0) return;
  const size_t offset = CoinFlip() ? 1 : 0;

  std::vector<double>& up = levels_[h + 1];
  const size_t up_old = up.size();
  for (size_t i = 0; i < pairs; ++i) up.push_back(level[2 * i + offset]);
  // Keep the level above sorted: the promoted run is sorted, merge it in.
  std::inplace_merge(up.begin(), up.begin() + up_old, up.end());

  // Any leftover odd item stays at this level untouched (no rank error).
  if (level.size() % 2 == 1) {
    level[0] = level.back();
    level.resize(1);
  } else {
    level.clear();
  }

  // One compaction of weight-2^h items perturbs any rank by at most 2^h:
  // of the r compacted items below a threshold, either ceil(r/2) or
  // floor(r/2) survive at doubled weight.
  rank_error_bound_ += (1ULL << h);
}

void KllSketch::CompressPending() {
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() >= static_cast<size_t>(k_)) CompactLevel(h);
  }
}

Status KllSketch::Merge(const KllSketch& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("KllSketch::Merge: mismatched k");
  }
  if (other.n_ == 0) return Status::OK();
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  rank_error_bound_ += other.rank_error_bound_;
  // Safe under self-merge: sizes are captured before any append, so we
  // never read elements the loop itself inserted (vector growth is handled
  // by reserving up front, which keeps iterators out of the loop entirely).
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    const std::vector<double>& src = other.levels_[h];
    const size_t src_n = src.size();
    if (src_n == 0) continue;
    std::vector<double>& dst = levels_[h];
    dst.reserve(dst.size() + src_n);
    for (size_t i = 0; i < src_n; ++i) dst.push_back(src[i]);
  }
  CompressPending();
  return Status::OK();
}

std::vector<KllSketch::WeightedItem> KllSketch::SortedItems() const {
  std::vector<WeightedItem> items;
  items.reserve(num_retained());
  for (size_t h = 0; h < levels_.size(); ++h) {
    const uint64_t w = 1ULL << h;
    for (double v : levels_[h]) items.push_back({v, w});
  }
  std::sort(items.begin(), items.end(),
            [](const WeightedItem& a, const WeightedItem& b) {
              return a.value < b.value;
            });
  return items;
}

uint64_t KllSketch::RankBelow(double x) const {
  uint64_t r = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    const uint64_t w = 1ULL << h;
    for (double v : levels_[h]) {
      if (v < x) r += w;
    }
  }
  return r;
}

uint64_t KllSketch::RankAtOrBelow(double x) const {
  uint64_t r = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    const uint64_t w = 1ULL << h;
    for (double v : levels_[h]) {
      if (v <= x) r += w;
    }
  }
  return r;
}

Result<double> KllSketch::EstimateQuantile(double phi) const {
  if (n_ == 0) {
    return Status::InvalidArgument("KllSketch::EstimateQuantile: empty");
  }
  if (phi < 0.0 || phi > 1.0) {
    return Status::InvalidArgument("KllSketch::EstimateQuantile: phi");
  }
  if (phi <= 0.0) return min_;
  if (phi >= 1.0) return max_;
  const std::vector<WeightedItem> items = SortedItems();
  const double target = phi * static_cast<double>(n_);
  uint64_t cum = 0;
  for (const WeightedItem& it : items) {
    cum += it.weight;
    if (static_cast<double>(cum) >= target) return it.value;
  }
  return max_;
}

Result<KllInterval> KllSketch::CertifiedInterval(double phi) const {
  if (n_ == 0) {
    return Status::InvalidArgument("KllSketch::CertifiedInterval: empty");
  }
  if (phi < 0.0 || phi > 1.0) {
    return Status::InvalidArgument("KllSketch::CertifiedInterval: phi");
  }
  // Target rank, 1-based: the r-th smallest element.
  uint64_t r = static_cast<uint64_t>(
      std::ceil(phi * static_cast<double>(n_)));
  r = std::max<uint64_t>(1, std::min(r, n_));
  const uint64_t err = rank_error_bound_;

  // [min, max] is always sound; tighten from both ends with retained
  // values. Each probe is individually sound: if even the optimistic
  // estimate R<(v)+err of the true rank-below is short of r, fewer than r
  // elements precede v, so the r-th smallest is >= v. Symmetrically for
  // the upper end with R<=(v)-err.
  KllInterval out{min_, max_};
  const std::vector<WeightedItem> items = SortedItems();
  uint64_t below = 0;     // weighted count of items strictly below cursor
  size_t i = 0;
  while (i < items.size()) {
    const double v = items[i].value;
    uint64_t at = 0;  // total weight of ties at v
    while (i < items.size() && items[i].value == v) {
      at += items[i].weight;
      ++i;
    }
    if (below + err < r) out.lower = std::max(out.lower, v);
    if (below + at >= err + r) {
      out.upper = std::min(out.upper, v);
      break;  // further values only loosen the upper bound
    }
    below += at;
  }
  if (out.lower > out.upper) {
    // Numerically impossible given sound probes, but never let a caller
    // see a crossed certificate.
    out.lower = min_;
    out.upper = max_;
  }
  return out;
}

double KllSketch::epsilon() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(rank_error_bound_) / static_cast<double>(n_);
}

size_t KllSketch::num_retained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

size_t KllSketch::SizeBytes() const {
  return sizeof(*this) + num_retained() * sizeof(double) +
         levels_.size() * sizeof(std::vector<double>);
}

void KllSketch::Reset() {
  n_ = 0;
  rank_error_bound_ = 0;
  coin_state_ = 0;
  min_ = max_ = 0.0;
  levels_.clear();
  levels_.emplace_back();
  levels_[0].reserve(k_);
}

void KllSketch::Serialize(BytesWriter* w) const {
  w->PutU32(static_cast<uint32_t>(k_));
  w->PutU64(n_);
  w->PutU64(rank_error_bound_);
  w->PutU64(coin_state_);
  w->PutDouble(min_);
  w->PutDouble(max_);
  w->PutU32(static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) {
    w->PutDoubles(level);
  }
}

Result<KllSketch> KllSketch::Deserialize(BytesReader* r) {
  uint32_t k = 0, num_levels = 0;
  uint64_t n = 0, err = 0, coin = 0;
  double mn = 0.0, mx = 0.0;
  MSKETCH_RETURN_NOT_OK(r->GetU32(&k));
  MSKETCH_RETURN_NOT_OK(r->GetU64(&n));
  MSKETCH_RETURN_NOT_OK(r->GetU64(&err));
  MSKETCH_RETURN_NOT_OK(r->GetU64(&coin));
  MSKETCH_RETURN_NOT_OK(r->GetDouble(&mn));
  MSKETCH_RETURN_NOT_OK(r->GetDouble(&mx));
  MSKETCH_RETURN_NOT_OK(r->GetU32(&num_levels));
  if (k > (1u << 24) || num_levels > 64) {
    return Status::Serialization("KllSketch: implausible header");
  }
  KllSketch out(static_cast<int>(k));
  out.n_ = n;
  out.rank_error_bound_ = err;
  out.coin_state_ = coin;
  out.min_ = mn;
  out.max_ = mx;
  out.levels_.clear();
  out.levels_.resize(std::max<uint32_t>(num_levels, 1));
  uint64_t retained = 0;
  for (uint32_t h = 0; h < num_levels; ++h) {
    MSKETCH_RETURN_NOT_OK(r->GetDoubles(&out.levels_[h]));
    retained += out.levels_[h].size();
  }
  if (retained > n) {
    return Status::Serialization("KllSketch: more retained items than count");
  }
  return out;
}

bool KllSketch::IdenticalTo(const KllSketch& other) const {
  if (k_ != other.k_ || n_ != other.n_ ||
      rank_error_bound_ != other.rank_error_bound_ ||
      coin_state_ != other.coin_state_ ||
      levels_.size() != other.levels_.size()) {
    return false;
  }
  // Bit-exact double comparison (matches serialized bytes).
  auto bits_equal = [](double a, double b) {
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
  };
  if (!bits_equal(min_, other.min_) || !bits_equal(max_, other.max_)) {
    return false;
  }
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() != other.levels_[h].size()) return false;
    for (size_t i = 0; i < levels_[h].size(); ++i) {
      if (!bits_equal(levels_[h][i], other.levels_[h][i])) return false;
    }
  }
  return true;
}

}  // namespace msketch
