// Maximum entropy quantile estimation from a moments sketch
// (Sections 4.2, 4.3 and Appendix A of the paper).
//
// Solves for the exponential-family density
//   f(x; theta) = exp( sum_i theta_i m~_i(x) )
// whose Chebyshev-rebased moments match the sketch, by minimizing the
// convex potential L(theta) (Eq. 5) with damped Newton. All integrals are
// evaluated with Clenshaw-Curtis quadrature over a shared Chebyshev-node
// grid, the optimization that gives the paper its ~1 ms estimation times
// (Section 4.3.1, footnote 1); a DCT-based tail check adapts the grid
// size. The (k1, k2) moment subset is chosen greedily under a condition
// number budget kappa_max, preferring moments closest to their uniform-
// distribution expectations.
#ifndef MSKETCH_CORE_MAXENT_SOLVER_H_
#define MSKETCH_CORE_MAXENT_SOLVER_H_

#include <vector>

#include "common/status.h"
#include "core/chebyshev_moments.h"
#include "core/moments_sketch.h"

namespace msketch {

struct MaxEntOptions {
  /// Condition number ceiling for the Hessian during (k1, k2) selection
  /// (the paper's kappa_max = 1e4).
  double kappa_max = 1e4;
  /// Newton terminates when moments match to within this tolerance (the
  /// paper's delta = 1e-9).
  double grad_tol = 1e-9;
  /// Clenshaw-Curtis grid sizes (number of intervals; grid points N+1).
  int min_grid = 128;
  int max_grid = 512;
  int max_newton_iter = 200;
  /// Ablation switches (Figure 9): disable one family of moments.
  bool use_std_moments = true;
  bool use_log_moments = true;
  /// Optional hard caps on selected moment counts (-1 = no cap).
  int max_k1 = -1;
  int max_k2 = -1;
};

struct MaxEntDiagnostics {
  int k1 = 0;              // standard moments used
  int k2 = 0;              // log moments used
  int newton_iterations = 0;
  int grid_size = 0;       // final N
  double condition_number = 0.0;
  bool log_primary = false;  // solved in log-domain (Appendix A, Eq. 8)
};

/// The solved maximum entropy distribution; supports quantile and CDF
/// queries against the original data domain.
class MaxEntDistribution {
 public:
  /// phi-quantile of the distribution, clamped to [xmin, xmax].
  double Quantile(double phi) const;
  std::vector<double> Quantiles(const std::vector<double>& phis) const;

  /// P(X <= x) under the estimated distribution.
  double Cdf(double x) const;

  double xmin() const { return xmin_; }
  double xmax() const { return xmax_; }
  const MaxEntDiagnostics& diagnostics() const { return diag_; }

 private:
  friend class MaxEntSolver;

  bool degenerate_ = false;  // point mass (xmin == xmax)
  double xmin_ = 0.0, xmax_ = 0.0;
  bool log_primary_ = false;
  ScaleMap primary_map_;
  // Monotone piecewise-linear CDF over a uniform grid on [-1, 1] in the
  // primary domain. Built from the Chebyshev antiderivative of f with a
  // running-max pass: the truncated interpolant of a positive f can dip
  // by ~1e-5 between nodes, and quantile inversion must stay monotone.
  std::vector<double> cdf_values_;  // normalized to [0, 1]
  MaxEntDiagnostics diag_;
};

/// Solves the maximum entropy problem for the sketch. Returns NotConverged
/// when no density matches the moments (e.g. datasets with fewer than ~5
/// distinct values, Section 6.2.3) and InvalidArgument for empty sketches.
Result<MaxEntDistribution> SolveMaxEnt(const MomentsSketch& sketch,
                                       const MaxEntOptions& options = {});

/// Convenience wrapper: solve + evaluate a batch of quantiles.
Result<std::vector<double>> EstimateQuantiles(
    const MomentsSketch& sketch, const std::vector<double>& phis,
    const MaxEntOptions& options = {});

}  // namespace msketch

#endif  // MSKETCH_CORE_MAXENT_SOLVER_H_
