// Maximum entropy quantile estimation from a moments sketch
// (Sections 4.2, 4.3 and Appendix A of the paper).
//
// Solves for the exponential-family density
//   f(x; theta) = exp( sum_i theta_i m~_i(x) )
// whose Chebyshev-rebased moments match the sketch, by minimizing the
// convex potential L(theta) (Eq. 5) with damped Newton. All integrals are
// evaluated with Clenshaw-Curtis quadrature over a shared Chebyshev-node
// grid, the optimization that gives the paper its ~1 ms estimation times
// (Section 4.3.1, footnote 1); a DCT-based tail check adapts the grid
// size. The (k1, k2) moment subset is chosen greedily under a condition
// number budget kappa_max, preferring moments closest to their uniform-
// distribution expectations.
#ifndef MSKETCH_CORE_MAXENT_SOLVER_H_
#define MSKETCH_CORE_MAXENT_SOLVER_H_

#include <vector>

#include "common/status.h"
#include "core/chebyshev_moments.h"
#include "core/moments_sketch.h"

namespace msketch {

struct MaxEntOptions {
  /// Condition number ceiling for the Hessian during (k1, k2) selection
  /// (the paper's kappa_max = 1e4).
  double kappa_max = 1e4;
  /// Newton terminates when moments match to within this tolerance (the
  /// paper's delta = 1e-9).
  double grad_tol = 1e-9;
  /// Clenshaw-Curtis grid sizes (number of intervals; grid points N+1).
  int min_grid = 128;
  int max_grid = 512;
  int max_newton_iter = 200;
  /// Ablation switches (Figure 9): disable one family of moments.
  bool use_std_moments = true;
  bool use_log_moments = true;
  /// Optional hard caps on selected moment counts (-1 = no cap).
  int max_k1 = -1;
  int max_k2 = -1;
  /// Warm-start acceptance gate: a hint is applied only when every shared
  /// selected moment differs from the hint's fitted value by at most this
  /// (Chebyshev moments live in [-1, 1]). With the adaptive opening step
  /// even mediocre seeds win, so the default only screens out seeds from
  /// a genuinely different distribution shape. Affects the solve path,
  /// not the solution.
  double warm_gate = 0.5;
  /// Lets EstimateQuantiles consult the process-wide solver cache.
  /// Disable to force a real solve — solver benchmarks and tests that
  /// compare independent solves need the cold path, not a memo hit.
  bool use_solver_cache = true;
};

struct MaxEntDiagnostics {
  int k1 = 0;              // standard moments used
  int k2 = 0;              // log moments used
  int newton_iterations = 0;
  /// Objective evaluations without / with the Hessian, across every
  /// Newton run of the solve (line-search backtracks land in
  /// function_evals).
  int function_evals = 0;
  int hessian_evals = 0;
  int grid_size = 0;       // final N
  double condition_number = 0.0;
  bool log_primary = false;  // solved in log-domain (Appendix A, Eq. 8)
  bool warm_started = false;  // solution seeded from a WarmStart hint
  /// Robustness counters for the fallback chain (surfaced into
  /// BatchStats/QueryStats by the batch pipeline and the summary router).
  int cold_restarts = 0;     // warm seed failed; restarted from cold seed
  int iteration_capped = 0;  // Newton runs stopped at max_newton_iter
  int backoff_drops = 0;     // drop-moments retries after divergence
};

/// Seed state exported from a previous solve. Warm-starting a
/// distributionally similar sketch from it starts Newton near the
/// previous optimum, cutting the per-group cost for chains of neighboring
/// cube cells. The greedy (k1, k2) selection still runs and the seed is
/// applied to the multipliers of the moments both solves selected — the
/// potential is strictly convex on the selected subset, so the seed moves
/// the Newton path, not the answer. The hint is advisory: on a majority
/// subset mismatch, or if Newton diverges from the seed, the solver falls
/// back to the cold zero-theta start. (One visible difference remains:
/// a good seed can converge on moment subsets where the zero start
/// diverges and drops moments — there the warm solve matches *more*
/// moments than the cold one.)
struct WarmStart {
  /// One selected moment with its multiplier. Selection is recorded as
  /// (family, order) rather than basis-row index so it survives the two
  /// sketches having different numbers of usable moments.
  struct Entry {
    bool primary;   // true: primary-domain Chebyshev row T_order
    int order;      // 1-based within its family
    double theta;
    double moment;  // the Chebyshev moment this theta fitted (gate input)
  };

  bool log_primary = false;
  /// Clenshaw-Curtis grid the previous solve settled on (diagnostic; the
  /// solver re-escalates per density rather than inheriting it).
  int grid_n = 0;
  double theta0 = 0.0;  // constant-row multiplier
  std::vector<Entry> entries;

  bool valid() const { return grid_n > 0 && !entries.empty(); }
};

/// The solved maximum entropy distribution; supports quantile and CDF
/// queries against the original data domain.
class MaxEntDistribution {
 public:
  /// phi-quantile of the distribution, clamped to [xmin, xmax].
  double Quantile(double phi) const;
  std::vector<double> Quantiles(const std::vector<double>& phis) const;

  /// P(X <= x) under the estimated distribution.
  double Cdf(double x) const;

  double xmin() const { return xmin_; }
  double xmax() const { return xmax_; }
  const MaxEntDiagnostics& diagnostics() const { return diag_; }

  /// Seed for warm-starting the next solve (invalid for degenerate point
  /// masses, which carry no solver state).
  const WarmStart& warm_start() const { return warm_; }

 private:
  friend class MaxEntProblem;

  bool degenerate_ = false;  // point mass (xmin == xmax)
  double xmin_ = 0.0, xmax_ = 0.0;
  bool log_primary_ = false;
  ScaleMap primary_map_;
  // Monotone piecewise-linear CDF over a uniform grid on [-1, 1] in the
  // primary domain. Built from the Chebyshev antiderivative of f with a
  // running-max pass: the truncated interpolant of a positive f can dip
  // by ~1e-5 between nodes, and quantile inversion must stay monotone.
  std::vector<double> cdf_values_;  // normalized to [0, 1]
  MaxEntDiagnostics diag_;
  WarmStart warm_;
};

/// Solves the maximum entropy problem for the sketch. Returns NotConverged
/// when no density matches the moments (e.g. datasets with fewer than ~5
/// distinct values, Section 6.2.3) and InvalidArgument for empty sketches.
/// A non-null `hint` (from a previous solution's warm_start()) seeds the
/// moment selection, theta, and quadrature grid; the solver falls back to
/// the cold path when the hint does not transfer.
Result<MaxEntDistribution> SolveMaxEnt(const MomentsSketch& sketch,
                                       const MaxEntOptions& options = {},
                                       const WarmStart* hint = nullptr);

/// Convenience wrapper: solve + evaluate a batch of quantiles. Routed
/// through the process-wide solver cache (core/solver_cache.h), so
/// re-estimating a sketch with unchanged moments skips the solve; pass a
/// `hint` to additionally warm-start on a cache miss.
Result<std::vector<double>> EstimateQuantiles(
    const MomentsSketch& sketch, const std::vector<double>& phis,
    const MaxEntOptions& options = {}, const WarmStart* hint = nullptr);

}  // namespace msketch

#endif  // MSKETCH_CORE_MAXENT_SOLVER_H_
