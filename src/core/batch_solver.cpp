#include "core/batch_solver.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "core/simd_exp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "numerics/matrix.h"
#include "numerics/optim.h"

namespace msketch {

namespace {

constexpr size_t kL = kSolverLanes;

// Struct-of-lanes view of one bucket's Newton state. All arrays are
// lane-major with stride kL: basis[(p * npts + j) * kL + l] is lane l's
// value of selected slot p at grid point j. Empty lanes carry zero
// basis/targets (their density is exp(0) — finite, ignored).
struct LanePack {
  size_t d = 0;     // selected slots (incl. the constant row)
  size_t npts = 0;  // shared grid points
  const double* weights = nullptr;      // npts (shared across lanes)
  std::vector<double> basis;            // d * npts * kL
  std::vector<double> target;           // d * kL
};

// Density pass: fbuf[(j)*kL + l] = exp(min(theta_l . basis_l(x_j), 700))
// * w_j, and value[l] = integral_l - theta_l . target_l. Every loop is a
// fixed-width lane loop with no cross-lane operations, so each lane's
// result is a deterministic function of that lane's inputs alone.
void EvalValues(const LanePack& pack, const double* MSKETCH_GCC_RESTRICT theta,
                double* MSKETCH_GCC_RESTRICT fbuf,
                double* MSKETCH_GCC_RESTRICT value) {
  const size_t d = pack.d, npts = pack.npts;
  const double* MSKETCH_GCC_RESTRICT basis = pack.basis.data();
  const double* MSKETCH_GCC_RESTRICT w = pack.weights;
  double integ[kL] = {0, 0, 0, 0, 0, 0, 0, 0};
  double e[kL], ex[kL];
  for (size_t j = 0; j < npts; ++j) {
    // Slot 0 is the constant row (basis == 1 in every lane).
    for (size_t l = 0; l < kL; ++l) {
      e[l] = theta[l];
    }
    for (size_t p = 1; p < d; ++p) {
      const double* bp = basis + (p * npts + j) * kL;
      const double* tp = theta + p * kL;
      for (size_t l = 0; l < kL; ++l) e[l] += tp[l] * bp[l];
    }
    // Same exponent clamp as the scalar objective.
    for (size_t l = 0; l < kL; ++l) e[l] = e[l] > 700.0 ? 700.0 : e[l];
    simd::ExpLanes(e, ex);
    const double wj = w[j];
    for (size_t l = 0; l < kL; ++l) {
      const double f = ex[l] * wj;
      fbuf[j * kL + l] = f;
      integ[l] += f;
    }
  }
  for (size_t l = 0; l < kL; ++l) value[l] = integ[l];
  for (size_t p = 0; p < d; ++p) {
    const double* tp = theta + p * kL;
    const double* gp = pack.target.data() + p * kL;
    for (size_t l = 0; l < kL; ++l) value[l] -= tp[l] * gp[l];
  }
}

// Gradient + (optional) Hessian from a density buffer. grad is d * kL;
// hess is d * d * kL, upper triangle (p <= q) filled.
void EvalDerivatives(const LanePack& pack,
                     const double* MSKETCH_GCC_RESTRICT fbuf,
                     double* MSKETCH_GCC_RESTRICT grad,
                     double* MSKETCH_GCC_RESTRICT hess) {
  const size_t d = pack.d, npts = pack.npts;
  const double* MSKETCH_GCC_RESTRICT basis = pack.basis.data();
  for (size_t p = 0; p < d; ++p) {
    const double* bp = basis + p * npts * kL;
    double acc[kL] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; j < npts; ++j) {
      for (size_t l = 0; l < kL; ++l) {
        acc[l] += bp[j * kL + l] * fbuf[j * kL + l];
      }
    }
    const double* gp = pack.target.data() + p * kL;
    for (size_t l = 0; l < kL; ++l) grad[p * kL + l] = acc[l] - gp[l];
  }
  if (hess == nullptr) return;
  for (size_t p = 0; p < d; ++p) {
    const double* bp = basis + p * npts * kL;
    for (size_t q = p; q < d; ++q) {
      const double* bq = basis + q * npts * kL;
      double acc[kL] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t j = 0; j < npts; ++j) {
        for (size_t l = 0; l < kL; ++l) {
          acc[l] += bp[j * kL + l] * bq[j * kL + l] * fbuf[j * kL + l];
        }
      }
      double* hpq = hess + (p * d + q) * kL;
      for (size_t l = 0; l < kL; ++l) hpq[l] = acc[l];
    }
  }
}

// Per-lane Newton direction with the scalar path's escalating-ridge
// Cholesky (numerics/optim.cpp). Returns the direction in `dir`
// (steepest descent when every factorization fails).
void LaneDirection(size_t d, const double* hess, const double* grad,
                   size_t lane, double ridge0, std::vector<double>* dir) {
  std::vector<double> neg_grad(d);
  for (size_t p = 0; p < d; ++p) neg_grad[p] = -grad[p * kL + lane];
  dir->clear();
  double ridge = 0.0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    Matrix h(d, d);
    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p; q < d; ++q) {
        const double v = hess[(p * d + q) * kL + lane];
        h(p, q) = v;
        h(q, p) = v;
      }
      if (ridge > 0.0) h(p, p) += ridge;
    }
    Result<Matrix> chol = CholeskyFactor(h);
    if (chol.ok()) {
      std::vector<double> cand = CholeskySolve(chol.value(), neg_grad);
      bool finite = true;
      double slope = 0.0;
      for (size_t p = 0; p < d; ++p) {
        finite = finite && std::isfinite(cand[p]);
        slope += cand[p] * grad[p * kL + lane];
      }
      if (finite && slope < 0.0) {
        *dir = std::move(cand);
        return;
      }
    }
    ridge = (ridge == 0.0) ? ridge0 : ridge * 10.0;
    if (ridge > 1e12) break;
  }
  *dir = std::move(neg_grad);  // last resort: steepest descent
}

enum class LaneState : uint8_t { kEmpty, kActive, kConverged, kFailed };

// Lane-local iteration budget. The packed path exists for the fleet of
// well-behaved solves (warm chains converge in ~5 iterations, cold ones
// in ~8); a lane still running after 16 is a straggler, and every extra
// pack iteration costs a full-width grid pass. Capped lanes continue on
// the scalar loop *seeded from their advanced theta*, so the work is
// not redone. The cap is a constant — never derived from other lanes —
// so a lane's outcome stays independent of its packing.
constexpr int kLaneIterCap = 16;

// Consecutive Armijo rejections tolerated once the acceptance threshold
// has rounded into the value itself (value + c*step*slope == value): in
// that regime the test is comparing +-1 ulp noise, and a lane that keeps
// losing the coin flip is at its floating point floor. Healthy damping
// chains (overflow-territory seeds) have measurable thresholds and are
// unaffected.
constexpr int kNoiseRejectCap = 3;

// A lane stagnating at its floating point floor (no representable step
// descends) with the gradient within this factor of grad_tol is
// accepted as converged: the objective's attainable gradient floor
// varies by a few ulps with the arithmetic path, and re-solving through
// the scalar loop would match the moments no better than ~1e-8 against
// a 1e-9 tolerance — far below the estimator's own error scale (the
// CDF table alone interpolates at ~1e-5). Lanes stagnating further from
// tolerance still fall back to the scalar loop, so real divergence
// never short-circuits.
constexpr double kFloorAcceptFactor = 16.0;

struct LaneNewtonOutcome {
  std::array<LaneState, kL> state;
  std::array<int, kL> iterations{};
  std::array<int, kL> function_evals{};
  std::array<int, kL> hessian_evals{};
  /// Failed by the lane iteration cap with a healthy trajectory — the
  /// lane theta is mid-basin and worth seeding the scalar continuation
  /// with. Stagnation/divergence failures leave this false (their theta
  /// is at a floor the scalar line search would grind against too).
  std::array<bool, kL> capped{};
};

// Damped Newton across all lanes simultaneously, mirroring
// NewtonMinimize semantics per lane: convergence on ||g||_inf <=
// grad_tol, escalating-ridge directions, Armijo backtracking with the
// per-lane adaptive opening step for warm seeds. Lanes converge, fail,
// and backtrack independently; finished lanes are masked out of state
// updates (their slots keep computing, results ignored).
void LaneNewton(const LanePack& pack, const NewtonOptions& opts,
                const std::array<bool, kL>& warm,
                const std::array<bool, kL>& occupied,
                double* MSKETCH_GCC_RESTRICT theta,
                LaneNewtonOutcome* out) {
  const size_t d = pack.d;
  for (size_t l = 0; l < kL; ++l) {
    out->state[l] = occupied[l] ? LaneState::kActive : LaneState::kEmpty;
  }
  auto any_active = [&] {
    for (size_t l = 0; l < kL; ++l) {
      if (out->state[l] == LaneState::kActive) return true;
    }
    return false;
  };

  std::vector<double> fbuf(pack.npts * kL), grad(d * kL),
      hess(d * d * kL), trial(d * kL);
  double value[kL], tvalue[kL];

  EvalValues(pack, theta, fbuf.data(), value);
  EvalDerivatives(pack, fbuf.data(), grad.data(), hess.data());
  for (size_t l = 0; l < kL; ++l) {
    if (out->state[l] != LaneState::kActive) continue;
    ++out->hessian_evals[l];
    if (!std::isfinite(value[l])) out->state[l] = LaneState::kFailed;
  }

  double prev_step[kL];
  for (size_t l = 0; l < kL; ++l) prev_step[l] = 1.0;
  std::vector<double> dir_l;
  std::vector<double> dirs(d * kL);
  double slope[kL], step[kL];
  bool searching[kL], accepted[kL];

  const int max_iter = std::min(opts.max_iter, kLaneIterCap);
  for (int iter = 0; iter < max_iter && any_active(); ++iter) {
    // Per-lane convergence on the max-norm gradient.
    for (size_t l = 0; l < kL; ++l) {
      if (out->state[l] != LaneState::kActive) continue;
      double gn = 0.0;
      for (size_t p = 0; p < d; ++p) {
        gn = std::max(gn, std::fabs(grad[p * kL + l]));
      }
      if (gn <= opts.grad_tol) {
        out->state[l] = LaneState::kConverged;
        out->iterations[l] = iter;
      }
    }
    if (!any_active()) break;

    // Directions + line-search setup.
    int noise_rejects[kL] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t l = 0; l < kL; ++l) {
      searching[l] = out->state[l] == LaneState::kActive;
      accepted[l] = false;
      if (!searching[l]) continue;
      LaneDirection(d, hess.data(), grad.data(), l, opts.ridge0, &dir_l);
      slope[l] = 0.0;
      for (size_t p = 0; p < d; ++p) {
        dirs[p * kL + l] = dir_l[p];
        slope[l] += grad[p * kL + l] * dir_l[p];
      }
      // Adaptive opening (warm lanes), with a floor the scalar path does
      // not need: near convergence the Armijo test runs at the rounding
      // noise of the objective, and a collapsed prev_step can trap a
      // lane in bit-identical null steps (open at 4*prev, reject the
      // larger trials on +-1 ulp noise, "accept" a step too small to
      // move theta — forever). Re-opening no lower than 2^-10 keeps the
      // PR-2 damping benefit for overflow-territory seeds while letting
      // lanes escape the plateau with a real step.
      step[l] = (opts.adaptive_initial_step && warm[l])
                    ? std::min(1.0, std::max(4.0 * prev_step[l],
                                             1.0 / 1024.0))
                    : 1.0;
    }
    // Trial points: searching lanes move, finished lanes sit at their
    // current theta (recomputed deterministically, results ignored).
    for (size_t p = 0; p < d; ++p) {
      for (size_t l = 0; l < kL; ++l) {
        trial[p * kL + l] =
            theta[p * kL + l] +
            (searching[l] ? step[l] * dirs[p * kL + l] : 0.0);
      }
    }
    // Armijo backtracking, batched: one value pass covers every lane
    // still searching; lanes shrink their own step on rejection.
    int passes = 0;
    for (int bt = 0; bt < opts.max_backtracks; ++bt) {
      // Movement check before paying for an evaluation: a trial
      // bit-identical to theta cannot descend at this step or any
      // smaller one — the lane is at its floating point floor with the
      // gradient still above grad_tol. Resolve it (floor-accept or
      // scalar fallback) instead of backtracking to exhaustion.
      for (size_t l = 0; l < kL; ++l) {
        if (!searching[l]) continue;
        bool moved = false;
        for (size_t p = 0; p < d; ++p) {
          moved = moved || trial[p * kL + l] != theta[p * kL + l];
        }
        if (!moved) {
          searching[l] = false;
          double gn = 0.0;
          for (size_t p = 0; p < d; ++p) {
            gn = std::max(gn, std::fabs(grad[p * kL + l]));
          }
          if (gn <= kFloorAcceptFactor * opts.grad_tol) {
            out->state[l] = LaneState::kConverged;
            out->iterations[l] = iter;
          } else {
            out->state[l] = LaneState::kFailed;
          }
        }
      }
      bool any_searching = false;
      for (size_t l = 0; l < kL; ++l) any_searching |= searching[l];
      if (!any_searching) break;
      ++passes;
      EvalValues(pack, trial.data(), fbuf.data(), tvalue);
      for (size_t l = 0; l < kL; ++l) {
        if (!searching[l]) continue;
        ++out->function_evals[l];
        const double threshold =
            value[l] + opts.armijo_c * step[l] * slope[l];
        if (std::isfinite(tvalue[l]) && tvalue[l] <= threshold) {
          searching[l] = false;
          accepted[l] = true;
          value[l] = tvalue[l];
        } else {
          if (threshold == value[l] && ++noise_rejects[l] >= kNoiseRejectCap) {
            // Sub-ulp acceptance threshold and the trials keep landing
            // a hair above: the lane is grinding at the objective's
            // rounding floor. Floor-accept or scalar fallback.
            searching[l] = false;
            double gn = 0.0;
            for (size_t p = 0; p < d; ++p) {
              gn = std::max(gn, std::fabs(grad[p * kL + l]));
            }
            if (gn <= kFloorAcceptFactor * opts.grad_tol) {
              out->state[l] = LaneState::kConverged;
              out->iterations[l] = iter;
            } else {
              out->state[l] = LaneState::kFailed;
            }
            continue;
          }
          step[l] *= opts.backtrack;
          for (size_t p = 0; p < d; ++p) {
            trial[p * kL + l] =
                theta[p * kL + l] + step[l] * dirs[p * kL + l];
          }
        }
      }
    }
    for (size_t l = 0; l < kL; ++l) {
      if (out->state[l] != LaneState::kActive) continue;
      if (!accepted[l]) {
        out->state[l] = LaneState::kFailed;  // line search exhausted
        continue;
      }
      prev_step[l] = step[l];
      for (size_t p = 0; p < d; ++p) {
        theta[p * kL + l] = trial[p * kL + l];
      }
    }
    if (!any_active()) break;
    // Hessian evaluation at the accepted points. When the line search
    // accepted every lane on its first pass, that pass evaluated `trial`
    // — which is now exactly `theta` for accepted lanes and the frozen
    // theta for finished ones — so fbuf and tvalue already describe the
    // current point and the value pass can be skipped (the recomputation
    // is deterministic, so this changes nothing but time).
    if (passes == 1) {
      for (size_t l = 0; l < kL; ++l) value[l] = tvalue[l];
    } else {
      EvalValues(pack, theta, fbuf.data(), value);
    }
    EvalDerivatives(pack, fbuf.data(), grad.data(), hess.data());
    for (size_t l = 0; l < kL; ++l) {
      if (out->state[l] == LaneState::kActive) ++out->hessian_evals[l];
    }
  }
  // Lanes that ran out of iterations: final convergence check, exactly
  // like the scalar loop's post-iteration test.
  for (size_t l = 0; l < kL; ++l) {
    if (out->state[l] != LaneState::kActive) continue;
    double gn = 0.0;
    for (size_t p = 0; p < pack.d; ++p) {
      gn = std::max(gn, std::fabs(grad[p * kL + l]));
    }
    if (gn <= opts.grad_tol) {
      out->state[l] = LaneState::kConverged;
      out->iterations[l] = max_iter;
    } else {
      out->state[l] = LaneState::kFailed;
      out->capped[l] = true;
    }
  }
}

}  // namespace

LaneMaxEntSolver::LaneMaxEntSolver(const MaxEntOptions& options,
                                   bool use_warm_start, Sink sink)
    : opt_(options), warm_(use_warm_start), sink_(std::move(sink)) {
  MSKETCH_CHECK(sink_ != nullptr);
}

void LaneMaxEntSolver::Enqueue(size_t tag, const MomentsSketch& sketch) {
  ++stats_.enqueued;
  Lane lane;
  lane.tag = tag;
  Status st = lane.problem.Prepare(sketch, opt_, &cond_memo_);
  if (!st.ok()) {
    ++stats_.prep_failures;
    if (lane.problem.atomic_screened()) ++stats_.atomic_screen_hits;
    sink_(tag, st);
    return;
  }
  if (lane.problem.degenerate()) {
    sink_(tag, lane.problem.MakeDegenerate());
    return;
  }
  const Signature sig{lane.problem.log_primary(),
                      lane.problem.SelectedPrimaryMask(),
                      lane.problem.SelectedSecondaryMask()};
  Bucket& bucket = buckets_[sig];
  bucket.lanes.push_back(std::move(lane));
  if (bucket.lanes.size() == kSolverLanes) SolveBucket(&bucket);
}

void LaneMaxEntSolver::FlushAll() {
  for (auto& [sig, bucket] : buckets_) {
    if (!bucket.lanes.empty()) SolveBucket(&bucket);
  }
}

void LaneMaxEntSolver::SolveBucket(Bucket* bucket) {
  const size_t n = bucket->lanes.size();
  MSKETCH_CHECK(n >= 1 && n <= kSolverLanes);
  MaxEntProblem& first = bucket->lanes[0].problem;
  LanePack pack;
  pack.d = first.selected().size();
  pack.npts = first.nodes().size();
  pack.weights = first.weights().data();
  pack.basis.assign(pack.d * pack.npts * kL, 0.0);
  pack.target.assign(pack.d * kL, 0.0);

  std::vector<double> theta(pack.d * kL, 0.0);
  std::array<bool, kL> occupied{}, warm{};
  for (size_t l = 0; l < n; ++l) {
    MaxEntProblem& prob = bucket->lanes[l].problem;
    MSKETCH_CHECK(prob.selected().size() == pack.d);
    occupied[l] = true;
    for (size_t p = 0; p < pack.d; ++p) {
      const double* row = prob.BasisRow(prob.selected()[p]);
      double* out = pack.basis.data() + p * pack.npts * kL;
      for (size_t j = 0; j < pack.npts; ++j) out[j * kL + l] = row[j];
      pack.target[p * kL + l] = prob.TargetFor(p);
    }
    // Seed: the bucket's warm chain when the targets are close enough
    // (same gate as WarmStart hints — identical subset, full overlap),
    // else the scalar cold seed.
    bool lane_warm = false;
    if (warm_ && bucket->has_seed) {
      lane_warm = true;
      for (size_t p = 1; p < pack.d && lane_warm; ++p) {
        lane_warm = std::fabs(pack.target[p * kL + l] -
                              bucket->seed_targets[p]) <= opt_.warm_gate;
      }
    }
    if (lane_warm) {
      ++stats_.warm_lanes;
      for (size_t p = 0; p < pack.d; ++p) {
        theta[p * kL + l] = bucket->seed_theta[p];
      }
    } else {
      theta[0 * kL + l] = -std::log(2.0);
    }
    warm[l] = lane_warm;
  }

  NewtonOptions nopts;
  nopts.max_iter = opt_.max_newton_iter;
  nopts.grad_tol = opt_.grad_tol;
  nopts.adaptive_initial_step = true;  // applied per lane via warm[]

  LaneNewtonOutcome outcome;
  {
    obs::Span lane_span("query.lane_solve");
    LaneNewton(pack, nopts, warm, occupied, theta.data(), &outcome);
  }
  ++stats_.packed_solves;
  stats_.packed_lanes += n;
  // Iteration-count distribution (satellite of the LaneSolverStats
  // scalar sums): one observation per occupied lane, integer ticks so
  // merges stay bit-exact.
  static obs::Histogram* const iter_hist =
      obs::GlobalRegistry().GetHistogram(
          "msk_solver_newton_iterations", {},
          "Per-lane Newton iteration counts in the lane-batched solver",
          obs::HistogramUnit::kCount);
  for (size_t l = 0; l < n; ++l) {
    const int iters = outcome.iterations[l];
    iter_hist->ObserveTicks(iters > 0 ? static_cast<uint64_t>(iters) : 0);
  }

  // Per-lane epilogue: grid check + packaging, scalar continuation for
  // escalations, scalar fallback for divergence. The last converged
  // lane becomes the bucket's next seed.
  std::vector<double> lane_theta(pack.d);
  for (size_t l = 0; l < n; ++l) {
    Lane& lane = bucket->lanes[l];
    MaxEntProblem& prob = lane.problem;
    if (outcome.state[l] == LaneState::kConverged) {
      ++stats_.lane_converged;
      for (size_t p = 0; p < pack.d; ++p) lane_theta[p] = theta[p * kL + l];
      prob.AddNewtonWork(outcome.iterations[l], outcome.function_evals[l],
                         outcome.hessian_evals[l]);
      // Remember the seed before packaging (Package does not mutate
      // selection, so slot order stays aligned).
      bucket->has_seed = true;
      bucket->seed_theta = lane_theta;
      bucket->seed_targets.resize(pack.d);
      for (size_t p = 0; p < pack.d; ++p) {
        bucket->seed_targets[p] = pack.target[p * kL + l];
      }
      if (prob.GridResolved(lane_theta) ||
          prob.grid_n() >= opt_.max_grid) {
        sink_(lane.tag, prob.Package(lane_theta, warm[l]));
      } else {
        // Needs a finer quadrature grid: continue on the scalar
        // escalation path from the converged theta (Newton re-converges
        // immediately at min_grid, then escalates per density).
        ++stats_.lane_escalated;
        sink_(lane.tag, prob.SolveFrom(lane_theta, warm[l]));
      }
    } else {
      // Continue on the scalar loop. Iteration-capped lanes seed it
      // from their own advanced theta (mid-basin; the scalar Newton
      // finishes in a few iterations). Stagnated and diverged lanes
      // restart from the cold seed — any near-plateau seed would park
      // the scalar line search on the same floating point floor and
      // burn max_backtracks evaluations per iteration. A seeded start
      // that does not transfer falls back to the cold seed inside
      // SolveFrom, which is exactly the hint-free SolveMaxEnt behavior
      // (including the drop-moments backoff chain), so answers never
      // regress.
      ++stats_.lane_fallbacks;
      if (outcome.capped[l]) ++stats_.iteration_capped;
      std::vector<double> seed(pack.d);
      bool seeded = outcome.capped[l];
      for (size_t p = 0; p < pack.d && seeded; ++p) {
        seed[p] = theta[p * kL + l];
        seeded = std::isfinite(seed[p]);
      }
      if (!seeded) prob.ResetColdSeed(&seed);
      sink_(lane.tag, prob.SolveFrom(std::move(seed), seeded));
    }
  }
  bucket->lanes.clear();
}

}  // namespace msketch
