// Internal engine behind SolveMaxEnt, factored out so the lane-batched
// solver (core/batch_solver.h) can drive the same preparation, Newton,
// and packaging machinery as the scalar path.
//
// A MaxEntProblem is one group's maxent solve split into phases:
//
//   Prepare   moment availability + scale maps, the atomic-measure
//             screen, the Clenshaw-Curtis grid at min_grid, and the
//             greedy (k1, k2) moment selection under kappa_max;
//   SolveFrom the scalar damped-Newton loop with drop-moment backoff
//             and per-density grid escalation (the historical
//             SolveMaxEnt body), ending in Package;
//   Package   CDF tabulation + warm-start export from a converged
//             theta on the current grid.
//
// The lane-batched solver runs Prepare per group, executes the Newton
// iterations itself eight lanes at a time, and comes back here for
// GridResolved / Package / SolveFrom (grid escalation and divergence
// fall back to the scalar loop, so lane answers can never regress
// relative to per-group solves).
//
// This header is an internal API: everything here may change shape
// between versions. External callers use SolveMaxEnt / EstimateQuantiles
// (core/maxent_solver.h) or the batch entry points (cube/batch_query.h).
#ifndef MSKETCH_CORE_MAXENT_PROBLEM_H_
#define MSKETCH_CORE_MAXENT_PROBLEM_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/chebyshev_moments.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "numerics/optim.h"

namespace msketch {

/// Memo of uniform-Hessian condition numbers for moment subsets whose
/// non-constant rows are all primary-family. Primary basis rows are
/// T_i(u) on the shared Lobatto grid — identical for every group at a
/// given grid size — so their Gram matrices (and hence condition
/// numbers) are group-invariant and the greedy selection can skip the
/// Jacobi eigensolve on a hit. Subsets containing a secondary row go
/// through the group's own warp-dependent Hessian and are never
/// memoized. Single-threaded: one memo per batch worker.
class CondMemo {
 public:
  /// `mask` is the bitmask of selected primary orders (bit i-1 = T_i).
  bool Lookup(int grid_n, uint64_t mask, double* cond) const {
    if (mask >> 32 != 0) return false;  // keep the packed key collision-free
    auto it = map_.find(Key(grid_n, mask));
    if (it == map_.end()) return false;
    *cond = it->second;
    return true;
  }
  void Insert(int grid_n, uint64_t mask, double cond) {
    if (mask >> 32 != 0) return;
    map_.emplace(Key(grid_n, mask), cond);
  }

 private:
  // The floating point stability bound caps usable orders at ~17, so
  // masks stay far below 2^32 and pack alongside the grid size.
  static uint64_t Key(int grid_n, uint64_t mask) {
    return (static_cast<uint64_t>(grid_n) << 32) | mask;
  }
  std::unordered_map<uint64_t, double> map_;
};

class MaxEntProblem {
 public:
  MaxEntProblem() = default;

  /// Runs every phase up to (and including) moment selection at
  /// options.min_grid. Statuses mirror SolveMaxEnt: InvalidArgument for
  /// empty sketches, Unsupported when no moment is usable, NotConverged
  /// when the moments match an atomic measure or conditioning excluded
  /// every moment. Point masses return OK with degenerate() set — the
  /// caller packages those without a solve.
  Status Prepare(const MomentsSketch& sketch, const MaxEntOptions& options,
                 CondMemo* cond_memo = nullptr);

  bool degenerate() const { return degenerate_; }
  /// The point-mass distribution for a degenerate problem.
  MaxEntDistribution MakeDegenerate() const;

  /// True when Prepare refused the group because its moments match an
  /// atomic (near-discrete) measure — the router's signal to answer from
  /// the atomic fit or a rank-sketch backend instead.
  bool atomic_screened() const { return atomic_screened_; }
  /// Fallback-chain counters accumulated by SolveFrom (also exported in
  /// MaxEntDiagnostics by Package).
  int cold_restarts() const { return cold_restarts_; }
  int iteration_capped() const { return iteration_capped_; }
  int backoff_drops() const { return backoff_drops_; }

  /// Seeds theta from a previous solution (see WarmStart); returns false
  /// when the hint does not transfer. `theta` must already hold the cold
  /// seed. Prepare must have succeeded.
  bool TrySeedFromHint(const WarmStart& hint, std::vector<double>* theta) const;
  /// The zero-theta cold seed for the currently selected rows.
  void ResetColdSeed(std::vector<double>* theta) const;

  /// The scalar solve loop from a given seed: damped Newton, warm-seed
  /// restart, drop-moment backoff, grid escalation, packaging. `warm`
  /// marks the seed as externally provided (adaptive opening step +
  /// diagnostics flag). Also the lane solver's fallback for diverged
  /// lanes and its continuation for lanes that need a finer grid.
  Result<MaxEntDistribution> SolveFrom(std::vector<double> theta, bool warm);

  /// Packages a converged theta on the current grid: monotone CDF table,
  /// diagnostics, warm-start export. Reuses the Chebyshev fit cached by
  /// the last GridResolved(theta) call when it matches.
  Result<MaxEntDistribution> Package(const std::vector<double>& theta,
                                     bool warm);

  /// True when the Chebyshev tail of f(.; theta) is resolved on this
  /// grid. Caches the fit for Package.
  bool GridResolved(const std::vector<double>& theta);

  /// Rebuilds nodes/weights/basis for grid size n (selection is not
  /// re-run; escalation keeps the min_grid subset, as the scalar path
  /// always did).
  void BuildGrid(int n);

  /// Scalar Newton on the selected rows from theta0.
  Result<OptimResult> RunNewton(std::vector<double> theta0, bool warm);

  /// Folds a lane-executed Newton run into the diagnostics this problem
  /// will export from Package.
  void AddNewtonWork(int iterations, int function_evals, int hessian_evals) {
    total_newton_iters_ += iterations;
    total_function_evals_ += function_evals;
    total_hessian_evals_ += hessian_evals;
  }

  // ------------------------------------------------- lane-solver access
  bool log_primary() const { return log_primary_; }
  int a1() const { return a1_; }
  int a2() const { return a2_; }
  int grid_n() const { return grid_n_; }
  const std::vector<double>& nodes() const { return nodes_; }
  const std::vector<double>& weights() const { return weights_; }
  /// Selected basis rows, ascending, always starting with row 0.
  const std::vector<int>& selected() const { return selected_; }
  /// Basis row values on the grid (nodes().size() doubles).
  const double* BasisRow(int row) const {
    return basis_.data() + static_cast<size_t>(row) * nodes_.size();
  }
  /// Newton target for selected slot p (1.0 for slot 0, else the
  /// Chebyshev moment of the selected row).
  double TargetFor(size_t p) const;
  /// Bitmasks of the selected orders per family (bit i-1 = order i) —
  /// the lane solver's bucket signature.
  uint64_t SelectedPrimaryMask() const;
  uint64_t SelectedSecondaryMask() const;

 private:
  // Fills grid nodes/weights and the full basis-value matrix for the
  // available moment counts (a1_, a2_) at grid size n.
  void BuildGridInternal(int n);
  // Gram matrix (uniform-density Hessian) restricted to `rows`.
  Matrix UniformHessian(const std::vector<int>& rows) const;
  // Greedy (k1, k2) selection under the kappa_max budget; consults the
  // condition-number memo for primary-only subsets.
  void SelectMoments(CondMemo* cond_memo);
  std::vector<double> FValues(const std::vector<double>& theta) const;

  MaxEntOptions opt_;
  bool degenerate_ = false;
  bool atomic_screened_ = false;
  int cold_restarts_ = 0;
  int iteration_capped_ = 0;
  int backoff_drops_ = 0;
  double xmin_ = 0.0, xmax_ = 0.0;

  bool log_primary_ = false;
  ScaleMap std_map_, log_map_;
  int a1_ = 0, a2_ = 0;  // available moment counts (primary, secondary)
  std::vector<double> primary_moments_;    // E[T_i(primary)], i = 0..a1
  std::vector<double> secondary_moments_;  // E[T_j(secondary)], j = 1..a2

  int grid_n_ = 0;
  std::vector<double> nodes_;    // primary-domain u in [-1, 1]
  std::vector<double> weights_;  // CC weights
  // Basis-value matrix, row-major: row r starts at basis_[r * (N+1)]
  // (one flat allocation; rows are hot-loop operands).
  std::vector<double> basis_;    // (1 + a1 + a2) x (N+1)

  std::vector<int> selected_;  // rows in use (ascending; includes 0)
  double selected_cond_ = 1.0;
  int total_newton_iters_ = 0;
  int total_function_evals_ = 0;
  int total_hessian_evals_ = 0;

  // Fit cached by GridResolved for reuse in Package.
  bool fit_valid_ = false;
  int fit_grid_ = 0;
  std::vector<double> fit_theta_;
  std::vector<double> fit_coeffs_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_MAXENT_PROBLEM_H_
