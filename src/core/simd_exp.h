// Lane-parallel exponential kernel for the batched maxent solver.
//
// The lane-batched Newton iteration (core/batch_solver.h) evaluates
// exp(theta . basis) for eight solver lanes at every quadrature node.
// libm's exp cannot be auto-vectorized (it is an opaque call with errno
// semantics), so the batched objective would serialize on it. This
// kernel is a classic range-reduction + polynomial exp,
//
//   exp(x) = 2^n * exp(r),  n = round(x / ln 2),  r = x - n ln 2,
//
// with the reduction done against a two-part ln 2 (so r is exact to
// ~1 ulp), a degree-13 Taylor/Horner polynomial for exp(r) on
// |r| <= ln(2)/2 (relative error < 1e-16, far below the solver's 1e-9
// moment tolerance), and 2^n assembled by writing the exponent field.
//
// Determinism contract (same spirit as core/simd_reduce.h): every lane
// is an independent chain of IEEE add/mul/compare operations in a fixed
// order — there are no cross-lane reductions and no data-dependent
// branches, only per-lane selects. A lane's result therefore depends
// only on that lane's input, never on which other lanes it was packed
// with, and repeat runs are bit-identical. (Across *builds* the result
// can differ from libm exp by ~1 ulp — the batched solver's parity with
// the scalar path is a tolerance statement, not bit-identity.)
//
// Out-of-range inputs: x >= kExpMaxArg saturates (callers clamp at 700
// like the scalar solver); x below ~-744 underflows smoothly to 0
// through a two-step scale so the subnormal range stays usable.
#ifndef MSKETCH_CORE_SIMD_EXP_H_
#define MSKETCH_CORE_SIMD_EXP_H_

#include <cstdint>
#include <cstring>

#include "common/macros.h"

namespace msketch {
namespace simd {

/// Lanes processed per ExpLanes call (the batched solver's lane width).
constexpr size_t kExpLanes = 8;

/// Largest argument the kernel evaluates without overflow (the solver
/// clamps exponents at 700, comfortably inside).
constexpr double kExpMaxArg = 709.0;

namespace detail {

// One lane of the kernel; ExpLanes unrolls this across kExpLanes inputs
// so the compiler can vectorize the arithmetic. Kept in a detail
// function (not private to ExpLanes) so tests can pin the scalar and
// lane paths against each other.
inline double ExpLane(double x) {
  // Saturate the argument range first; the selects below keep every
  // lane's operation sequence identical.
  x = x > kExpMaxArg ? kExpMaxArg : x;
  x = x < -745.0 ? -745.0 : x;
  // Round-to-nearest via the 1.5 * 2^52 shifter trick: adding the magic
  // constant pushes the fraction out of the mantissa, subtracting it
  // back leaves the rounded integer. Valid for |v| < 2^51; |x / ln2| is
  // at most ~1075.
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const double t = x * kLog2e + kShift;
  const double n = t - kShift;
  // Two-part Cody-Waite reduction: r = x - n * ln2 with ln2 split so
  // the high product is exact.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  double r = x - n * kLn2Hi;
  r -= n * kLn2Lo;
  // exp(r) by Horner on the degree-13 Taylor series. |r| <= 0.34658, so
  // the truncation error |r|^14 / 14! is below 4e-18 relative.
  double p = 1.0 / 6227020800.0;   // 1/13!
  p = p * r + 1.0 / 479001600.0;   // 1/12!
  p = p * r + 1.0 / 39916800.0;    // 1/11!
  p = p * r + 1.0 / 3628800.0;     // 1/10!
  p = p * r + 1.0 / 362880.0;      // 1/9!
  p = p * r + 1.0 / 40320.0;       // 1/8!
  p = p * r + 1.0 / 5040.0;        // 1/7!
  p = p * r + 1.0 / 720.0;         // 1/6!
  p = p * r + 1.0 / 120.0;         // 1/5!
  p = p * r + 1.0 / 24.0;          // 1/4!
  p = p * r + 1.0 / 6.0;           // 1/3!
  p = p * r + 0.5;                 // 1/2!
  p = p * r + 1.0;
  p = p * r + 1.0;
  // 2^n through the exponent field. n below the normal range (< -1021)
  // is lifted by 64 and the result rescaled by 2^-64, which lands
  // gradually in the subnormal range instead of producing a garbage
  // exponent.
  const int64_t ni = static_cast<int64_t>(n);
  const bool tiny = ni < -1021;
  const int64_t lifted = tiny ? ni + 64 : ni;
  const uint64_t bits = static_cast<uint64_t>(lifted + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  const double rescale = tiny ? 0x1p-64 : 1.0;
  return p * scale * rescale;
}

}  // namespace detail

/// out[l] = exp-kernel(x[l]) for l = 0..kExpLanes-1, bit-identical to
/// detail::ExpLane per lane. Phased so the compiler vectorizes the
/// floating point reduction and polynomial across lanes (calling the
/// one-lane function in a loop defeats vectorization: the exponent
/// assembly's integer conversion and bit store read as control flow).
/// Only the final per-lane exponent insertion runs scalar — a handful
/// of integer ops against ~27 vectorizable FP ops per lane.
inline void ExpLanes(const double* MSKETCH_GCC_RESTRICT x,
                     double* MSKETCH_GCC_RESTRICT out) {
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  double n[kExpLanes], p[kExpLanes];
  for (size_t l = 0; l < kExpLanes; ++l) {
    double xl = x[l];
    xl = xl > kExpMaxArg ? kExpMaxArg : xl;
    xl = xl < -745.0 ? -745.0 : xl;
    const double t = xl * kLog2e + kShift;
    const double nl = t - kShift;
    double r = xl - nl * kLn2Hi;
    r -= nl * kLn2Lo;
    double pl = 1.0 / 6227020800.0;
    pl = pl * r + 1.0 / 479001600.0;
    pl = pl * r + 1.0 / 39916800.0;
    pl = pl * r + 1.0 / 3628800.0;
    pl = pl * r + 1.0 / 362880.0;
    pl = pl * r + 1.0 / 40320.0;
    pl = pl * r + 1.0 / 5040.0;
    pl = pl * r + 1.0 / 720.0;
    pl = pl * r + 1.0 / 120.0;
    pl = pl * r + 1.0 / 24.0;
    pl = pl * r + 1.0 / 6.0;
    pl = pl * r + 0.5;
    pl = pl * r + 1.0;
    pl = pl * r + 1.0;
    n[l] = nl;
    p[l] = pl;
  }
  for (size_t l = 0; l < kExpLanes; ++l) {
    const int64_t ni = static_cast<int64_t>(n[l]);
    const bool tiny = ni < -1021;
    const int64_t lifted = tiny ? ni + 64 : ni;
    const uint64_t bits = static_cast<uint64_t>(lifted + 1023) << 52;
    double scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    const double rescale = tiny ? 0x1p-64 : 1.0;
    out[l] = p[l] * scale * rescale;
  }
}

}  // namespace simd
}  // namespace msketch

#endif  // MSKETCH_CORE_SIMD_EXP_H_
