#include "core/maxent_solver.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/maxent_problem.h"
#include "core/solver_cache.h"

namespace msketch {

// The solve machinery (grid, basis, greedy selection, Newton objective,
// packaging) lives in core/maxent_problem.{h,cc}, shared with the
// lane-batched solver. This file keeps the public scalar entry points
// and the solved-distribution query methods.

double MaxEntDistribution::Cdf(double x) const {
  if (degenerate_) return x >= xmin_ ? 1.0 : 0.0;
  if (x <= xmin_) return 0.0;
  if (x >= xmax_) return 1.0;
  const double primary = log_primary_ ? std::log(x) : x;
  const double u = std::clamp(primary_map_.Forward(primary), -1.0, 1.0);
  // Linear interpolation in the monotone table.
  const double pos = (u + 1.0) * 0.5 * (cdf_values_.size() - 1);
  const size_t i = std::min(static_cast<size_t>(pos),
                            cdf_values_.size() - 2);
  const double frac = pos - static_cast<double>(i);
  const double v =
      cdf_values_[i] + frac * (cdf_values_[i + 1] - cdf_values_[i]);
  return std::clamp(v, 0.0, 1.0);
}

double MaxEntDistribution::Quantile(double phi) const {
  if (degenerate_) return xmin_;
  phi = std::clamp(phi, 0.0, 1.0);
  // Binary search the monotone table, then interpolate.
  const size_t m = cdf_values_.size();
  size_t lo = 0, hi = m - 1;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_values_[mid] < phi) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double span = cdf_values_[hi] - cdf_values_[lo];
  const double frac = (span > 0.0) ? (phi - cdf_values_[lo]) / span : 0.0;
  const double u = -1.0 + 2.0 *
                              (static_cast<double>(lo) +
                               std::clamp(frac, 0.0, 1.0)) /
                              static_cast<double>(m - 1);
  const double primary = primary_map_.Inverse(u);
  const double x = log_primary_ ? std::exp(primary) : primary;
  return std::clamp(x, xmin_, xmax_);
}

std::vector<double> MaxEntDistribution::Quantiles(
    const std::vector<double>& phis) const {
  std::vector<double> out;
  out.reserve(phis.size());
  for (double phi : phis) out.push_back(Quantile(phi));
  return out;
}

Result<MaxEntDistribution> SolveMaxEnt(const MomentsSketch& sketch,
                                       const MaxEntOptions& options,
                                       const WarmStart* hint) {
  MaxEntProblem problem;
  Status st = problem.Prepare(sketch, options);
  if (!st.ok()) return st;
  if (problem.degenerate()) return problem.MakeDegenerate();
  std::vector<double> theta;
  problem.ResetColdSeed(&theta);
  const bool warm =
      hint != nullptr && problem.TrySeedFromHint(*hint, &theta);
  return problem.SolveFrom(std::move(theta), warm);
}

Result<std::vector<double>> EstimateQuantiles(const MomentsSketch& sketch,
                                              const std::vector<double>& phis,
                                              const MaxEntOptions& options,
                                              const WarmStart* hint) {
  // Tiered path: cache hit -> reuse the solved distribution verbatim;
  // miss -> (optionally warm-started) solve, then publish for the next
  // identical-moment estimate. The solver is deterministic, so the cache
  // is semantically transparent.
  if (!options.use_solver_cache) {
    MSKETCH_ASSIGN_OR_RETURN(MaxEntDistribution dist,
                             SolveMaxEnt(sketch, options, hint));
    return dist.Quantiles(phis);
  }
  SolverCache& cache = GlobalSolverCache();
  std::string key;
  if (auto dist = cache.Lookup(sketch, options, &key)) {
    return dist->Quantiles(phis);
  }
  MSKETCH_ASSIGN_OR_RETURN(MaxEntDistribution dist,
                           SolveMaxEnt(sketch, options, hint));
  std::vector<double> quantiles = dist.Quantiles(phis);
  cache.InsertWithKey(
      std::move(key),
      std::make_shared<const MaxEntDistribution>(std::move(dist)));
  return quantiles;
}

}  // namespace msketch
