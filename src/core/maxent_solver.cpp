#include "core/maxent_solver.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "core/atomic_fit.h"
#include "core/solver_cache.h"
#include "numerics/chebyshev.h"
#include "numerics/eigen.h"
#include "numerics/integration.h"
#include "numerics/optim.h"
#include "numerics/root_finding.h"

namespace msketch {

namespace {

// Clenshaw-Curtis weights are O(N^2) to build; cache per grid size.
const std::vector<double>& CachedCcWeights(int n) {
  static std::mutex mu;
  static std::unordered_map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, ClenshawCurtisWeights(n)).first;
  }
  return it->second;
}

const std::vector<double>& CachedLobatto(int n) {
  static std::mutex mu;
  static std::unordered_map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, ChebyshevLobattoPoints(n)).first;
  }
  return it->second;
}

}  // namespace

// Internal solver state. Owns the grid, the basis-function matrix, and the
// Newton objective.
class MaxEntSolver {
 public:
  MaxEntSolver(const MomentsSketch& sketch, const MaxEntOptions& options,
               const WarmStart* hint = nullptr)
      : sketch_(sketch), opt_(options), hint_(hint) {}

  Result<MaxEntDistribution> Solve();

 private:
  // Fills grid nodes/weights and the full basis-value matrix for the
  // currently available moment counts (a1_, a2_) at grid size n.
  void BuildGrid(int n);
  // Basis row r evaluated on the grid (r = 0 is the constant; rows
  // 1..a1 are primary-basis T_i; rows a1+1..a1+a2 are secondary).
  // With log_primary_, "primary" means the log-domain basis.
  const std::vector<double>& BasisRow(int r) const { return basis_[r]; }

  // Gram matrix (uniform-density Hessian) restricted to the selected rows;
  // used for condition-number screening.
  Matrix UniformHessian(const std::vector<int>& rows) const;

  // Greedy (k1, k2) selection under the kappa_max budget.
  void SelectMoments();

  // Newton solve for the selected rows; returns optimizer output. Warm
  // (seeded) runs use the adaptive opening step — their damping needs
  // repeat across iterations.
  Result<OptimResult> RunNewton(std::vector<double> theta0, bool warm);

  // True when the Chebyshev tail of f(.; theta) is resolved on this grid.
  bool GridResolved(const std::vector<double>& theta) const;

  std::vector<double> FValues(const std::vector<double>& theta) const;

  // Maps the hint's (family, order) entries onto this solve's basis rows
  // and accepts them when they pass the conditioning screen. Returns true
  // with selected_/theta seeded on success.
  bool TrySeedFromHint(std::vector<double>* theta);
  // The zero-theta cold seed for the currently selected rows.
  void ResetColdSeed(std::vector<double>* theta);
  // Cold-start selection: greedy screen from zero theta. Fails when
  // conditioning excludes every moment.
  bool ColdStart(std::vector<double>* theta);

  const MomentsSketch& sketch_;
  MaxEntOptions opt_;
  const WarmStart* hint_ = nullptr;

  bool log_primary_ = false;
  ScaleMap std_map_, log_map_;
  int a1_ = 0, a2_ = 0;  // available moment counts (primary, secondary)
  std::vector<double> primary_moments_;    // E[T_i(primary)], i = 0..a1
  std::vector<double> secondary_moments_;  // E[T_j(secondary)], j = 1..a2

  int grid_n_ = 0;
  std::vector<double> nodes_;    // primary-domain u in [-1, 1]
  std::vector<double> weights_;  // CC weights
  std::vector<std::vector<double>> basis_;  // (1 + a1 + a2) x (N+1)

  std::vector<int> selected_;  // rows in use (always includes 0)
  double selected_cond_ = 1.0;
  int total_newton_iters_ = 0;
  int total_function_evals_ = 0;
  int total_hessian_evals_ = 0;
};

void MaxEntSolver::BuildGrid(int n) {
  grid_n_ = n;
  nodes_ = CachedLobatto(n);
  weights_ = CachedCcWeights(n);
  const size_t npts = nodes_.size();
  basis_.assign(1 + a1_ + a2_, std::vector<double>(npts));
  std::vector<double> tbuf(static_cast<size_t>(std::max(a1_, a2_)) + 1);

  for (size_t j = 0; j < npts; ++j) {
    const double u = nodes_[j];
    basis_[0][j] = 1.0;
    // Primary basis: plain Chebyshev polynomials in u.
    if (a1_ > 0) {
      ChebyshevTAll(a1_, u, tbuf.data());
      for (int i = 1; i <= a1_; ++i) basis_[i][j] = tbuf[i];
    }
    // Secondary basis: Chebyshev polynomials in the other domain's scaled
    // coordinate, evaluated through the domain transform.
    if (a2_ > 0) {
      double w;
      if (!log_primary_) {
        // x-primary: secondary functions are T_j(s2(log x)).
        const double x = std::max(std_map_.Inverse(u), 1e-300);
        w = log_map_.Forward(std::log(x));
      } else {
        // log-primary: secondary functions are T_i(s1(exp(y))).
        const double y = log_map_.Inverse(u);
        w = std_map_.Forward(std::exp(y));
      }
      w = std::clamp(w, -1.0, 1.0);
      ChebyshevTAll(a2_, w, tbuf.data());
      for (int i = 1; i <= a2_; ++i) basis_[a1_ + i][j] = tbuf[i];
    }
  }
}

Matrix MaxEntSolver::UniformHessian(const std::vector<int>& rows) const {
  const size_t d = rows.size();
  Matrix h(d, d);
  for (size_t p = 0; p < d; ++p) {
    for (size_t q = p; q < d; ++q) {
      double acc = 0.0;
      const std::vector<double>& bp = basis_[rows[p]];
      const std::vector<double>& bq = basis_[rows[q]];
      for (size_t j = 0; j < weights_.size(); ++j) {
        acc += weights_[j] * bp[j] * bq[j];
      }
      h(p, q) = 0.5 * acc;
      h(q, p) = h(p, q);
    }
  }
  return h;
}

void MaxEntSolver::SelectMoments() {
  selected_ = {0};
  selected_cond_ = 1.0;
  int k1 = 0, k2 = 0;
  int limit1 = a1_, limit2 = a2_;  // greedy caps; basis row offsets stay put
  // Uniform expectations of the secondary basis rows (numeric; the primary
  // rows have the closed form UniformChebyshevMoment).
  auto uniform_expect = [&](int row) {
    double acc = 0.0;
    for (size_t j = 0; j < weights_.size(); ++j) {
      acc += weights_[j] * basis_[row][j];
    }
    return 0.5 * acc;
  };

  while (k1 < limit1 || k2 < limit2) {
    struct Candidate {
      int row;
      double distance;  // |moment - uniform expectation|
      bool is_primary;
    };
    std::vector<Candidate> cands;
    if (k1 < limit1) {
      const int row = k1 + 1;
      cands.push_back({row,
                       std::fabs(primary_moments_[row] -
                                 UniformChebyshevMoment(row)),
                       true});
    }
    if (k2 < limit2) {
      const int row = a1_ + k2 + 1;
      cands.push_back({row,
                       std::fabs(secondary_moments_[k2 + 1] -
                                 uniform_expect(row)),
                       false});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.distance < b.distance;
              });
    bool advanced = false;
    for (const Candidate& c : cands) {
      std::vector<int> trial = selected_;
      trial.push_back(c.row);
      const double cond = SymmetricConditionNumber(UniformHessian(trial));
      if (cond <= opt_.kappa_max) {
        selected_ = std::move(trial);
        selected_cond_ = cond;
        if (c.is_primary) {
          ++k1;
        } else {
          ++k2;
        }
        advanced = true;
        break;
      }
      // Candidate rejected for conditioning; stop growing this family.
      if (c.is_primary) {
        limit1 = k1;
      } else {
        limit2 = k2;
      }
    }
    if (!advanced) break;
  }
}

std::vector<double> MaxEntSolver::FValues(
    const std::vector<double>& theta) const {
  const size_t npts = nodes_.size();
  std::vector<double> f(npts);
  for (size_t j = 0; j < npts; ++j) {
    double e = 0.0;
    for (size_t p = 0; p < selected_.size(); ++p) {
      e += theta[p] * basis_[selected_[p]][j];
    }
    f[j] = std::exp(std::min(e, 700.0));
  }
  return f;
}

Result<OptimResult> MaxEntSolver::RunNewton(std::vector<double> theta0,
                                            bool warm) {
  const size_t d = selected_.size();
  // Target vector: [1, selected moments...].
  std::vector<double> target(d);
  target[0] = 1.0;
  for (size_t p = 1; p < d; ++p) {
    const int row = selected_[p];
    target[p] = (row <= a1_) ? primary_moments_[row]
                             : secondary_moments_[row - a1_];
  }

  // Buffers hoisted out of the objective: it runs ~100 times per solve
  // and per-call allocation plus the point-outer accumulation loop were
  // measurable in profiles. Row-outer loops are unit-stride over the
  // grid, which the compiler vectorizes.
  const size_t npts = nodes_.size();
  std::vector<double> ebuf(npts), fbuf(npts);
  ObjectiveFn objective = [&, d](const std::vector<double>& theta,
                                 bool need_hessian, ObjectiveEval* out) {
    double* MSKETCH_GCC_RESTRICT e = ebuf.data();
    double* MSKETCH_GCC_RESTRICT f = fbuf.data();
    const double t0v = theta[0];
    for (size_t j = 0; j < npts; ++j) e[j] = t0v;  // basis row 0 == 1
    for (size_t p = 1; p < d; ++p) {
      const double tp = theta[p];
      const double* bp = basis_[selected_[p]].data();
      for (size_t j = 0; j < npts; ++j) e[j] += tp * bp[j];
    }
    double integral = 0.0;
    const double* w = weights_.data();
    for (size_t j = 0; j < npts; ++j) {
      const double fj = std::exp(std::min(e[j], 700.0)) * w[j];
      f[j] = fj;  // pre-weighted density values
      integral += fj;
    }
    out->value = integral;
    for (size_t p = 0; p < d; ++p) out->value -= theta[p] * target[p];
    out->gradient.assign(d, 0.0);
    for (size_t p = 0; p < d; ++p) {
      double acc = 0.0;
      const double* bp = basis_[selected_[p]].data();
      for (size_t j = 0; j < npts; ++j) acc += bp[j] * f[j];
      out->gradient[p] = acc - target[p];
    }
    if (need_hessian) {
      out->hessian = Matrix(d, d);
      for (size_t p = 0; p < d; ++p) {
        const double* bp = basis_[selected_[p]].data();
        for (size_t q = p; q < d; ++q) {
          const double* bq = basis_[selected_[q]].data();
          double acc = 0.0;
          for (size_t j = 0; j < npts; ++j) acc += bp[j] * bq[j] * f[j];
          out->hessian(p, q) = acc;
          out->hessian(q, p) = acc;
        }
      }
    }
  };

  NewtonOptions nopts;
  nopts.max_iter = opt_.max_newton_iter;
  nopts.grad_tol = opt_.grad_tol;
  nopts.adaptive_initial_step = warm;
  return NewtonMinimize(objective, std::move(theta0), nopts);
}

bool MaxEntSolver::GridResolved(const std::vector<double>& theta) const {
  std::vector<double> f = FValues(theta);
  std::vector<double> coeffs = ChebyshevFit(f);
  double cmax = 0.0;
  for (double c : coeffs) cmax = std::max(cmax, std::fabs(c));
  if (cmax == 0.0) return true;
  // Tail: last eighth of the coefficients must be negligible. 1e-5
  // relative keeps the quadrature bias well below quantile-error
  // resolution (eps_avg ~ 1e-3) while avoiding needless regrids; on
  // milan a 4x finer grid moves q99 by < 0.3%.
  const size_t tail_start = coeffs.size() - coeffs.size() / 8;
  double tail = 0.0;
  for (size_t i = tail_start; i < coeffs.size(); ++i) {
    tail = std::max(tail, std::fabs(coeffs[i]));
  }
  return tail <= 1e-5 * cmax;
}

bool MaxEntSolver::TrySeedFromHint(std::vector<double>* theta) {
  if (hint_ == nullptr || !hint_->valid() ||
      hint_->log_primary != log_primary_) {
    return false;
  }
  // The greedy selection has already run (cold start), so the fitted
  // moment subset is greedy's regardless of the hint — the potential is
  // strictly convex on that subset, and any seed converges to the same
  // unique optimum. Seed the multipliers of the rows the hint also
  // selected and leave the rest at zero; require a majority overlap so
  // the seed is actually near the optimum rather than a stale fragment.
  std::vector<double> seeded(selected_.size(), 0.0);
  seeded[0] = hint_->theta0;
  size_t matched = 0;
  for (size_t p = 1; p < selected_.size(); ++p) {
    const int row = selected_[p];
    const bool primary = row <= a1_;
    const int order = primary ? row : row - a1_;
    for (const WarmStart::Entry& e : hint_->entries) {
      if (e.primary == primary && e.order == order) {
        // Distance gate: a seed fitted to distant moments starts Newton
        // in heavily-damped territory and costs more than a zero start.
        const double target = primary ? primary_moments_[row]
                                      : secondary_moments_[row - a1_];
        if (std::fabs(target - e.moment) > opt_.warm_gate) return false;
        seeded[p] = e.theta;
        ++matched;
        break;
      }
    }
  }
  if (2 * matched < selected_.size() - 1) return false;
  *theta = std::move(seeded);
  // Deliberately NOT seeding the quadrature grid: grid escalation is
  // per-density, and inheriting a neighbor's escalated grid makes every
  // downstream solve in a warm chain pay the fine-grid cost ("sticky"
  // escalation). Starting at min_grid re-escalates only when this
  // density needs it, reusing the converged theta between grids.
  return true;
}

void MaxEntSolver::ResetColdSeed(std::vector<double>* theta) {
  theta->assign(selected_.size(), 0.0);
  (*theta)[0] = -std::log(2.0);
}

bool MaxEntSolver::ColdStart(std::vector<double>* theta) {
  if (grid_n_ != opt_.min_grid) BuildGrid(opt_.min_grid);
  SelectMoments();
  if (selected_.size() <= 1) return false;
  ResetColdSeed(theta);
  return true;
}

Result<MaxEntDistribution> MaxEntSolver::Solve() {
  if (sketch_.count() == 0) {
    return Status::InvalidArgument("SolveMaxEnt: empty sketch");
  }
  MaxEntDistribution dist;
  dist.xmin_ = sketch_.min();
  dist.xmax_ = sketch_.max();
  if (sketch_.min() >= sketch_.max()) {  // point mass
    dist.degenerate_ = true;
    return dist;
  }

  // Moment availability under floating point stability (Section 4.3.2).
  std_map_ = MakeScaleMap(sketch_.min(), sketch_.max());
  const double c_std = std_map_.center / std_map_.radius;
  int avail_std = opt_.use_std_moments
                      ? std::min(sketch_.k(), StableKBound(c_std))
                      : 0;
  if (opt_.max_k1 >= 0) avail_std = std::min(avail_std, opt_.max_k1);

  int avail_log = 0;
  const bool log_ok = opt_.use_log_moments && sketch_.LogMomentsUsable();
  if (log_ok) {
    log_map_ = MakeScaleMap(std::log(sketch_.min()),
                            std::log(sketch_.max()));
    const double c_log = log_map_.center / log_map_.radius;
    avail_log = std::min(sketch_.k(), StableKBound(c_log));
    if (opt_.max_k2 >= 0) avail_log = std::min(avail_log, opt_.max_k2);
  }
  if (avail_std + avail_log == 0) {
    return Status::Unsupported("SolveMaxEnt: no usable moments");
  }

  // Refuse to fit a density when the moments are exactly consistent with
  // a handful of atoms: no density matches them, and the drop-moments
  // retry below would otherwise converge to a confidently wrong answer
  // (the paper: the solver fails on < 5 distinct values, Section 6.2.3).
  // Every usable domain must look atomic — heavy-tailed data squeezed
  // into a sliver of the standard domain (e.g. retail) can spuriously
  // admit an atomic fit there while its log moments are plainly
  // continuous.
  {
    auto std_scaled = ShiftPowerMoments(sketch_.StandardMoments(), std_map_);
    std_scaled.resize(std::max(2 * (avail_std / 2), 2) + 1);
    bool atomic = FitAtomicScaled(std_scaled, 1e-9).ok();
    if (atomic && avail_log > 0) {
      auto log_scaled = ShiftPowerMoments(sketch_.LogMoments(), log_map_);
      log_scaled.resize(std::max(2 * (avail_log / 2), 2) + 1);
      atomic = FitAtomicScaled(log_scaled, 1e-9).ok();
    }
    if (atomic) {
      return Status::NotConverged(
          "SolveMaxEnt: moments match an atomic (near-discrete) measure");
    }
  }

  // Primary domain (Appendix A, Eq. 8): integrate in log space when log
  // moments dominate — they do for long-tailed data.
  log_primary_ = log_ok && avail_log >= avail_std;
  const std::vector<double> cheb_std = PowerMomentsToChebyshev(
      sketch_.StandardMoments(), std_map_);
  std::vector<double> cheb_log;
  if (log_ok) {
    cheb_log = PowerMomentsToChebyshev(sketch_.LogMoments(), log_map_);
  }
  if (log_primary_) {
    a1_ = avail_log;
    a2_ = avail_std;
    primary_moments_.assign(cheb_log.begin(), cheb_log.begin() + a1_ + 1);
    secondary_moments_.assign(cheb_std.begin(), cheb_std.begin() + a2_ + 1);
  } else {
    a1_ = avail_std;
    a2_ = avail_log;
    primary_moments_.assign(cheb_std.begin(), cheb_std.begin() + a1_ + 1);
    secondary_moments_.assign(
        cheb_log.begin(),
        cheb_log.begin() + (cheb_log.empty() ? 0 : a2_ + 1));
  }

  // Cold start always runs the greedy selection, so a warm solve fits the
  // same moment subset a cold solve would — the hint only relocates the
  // Newton start and the quadrature grid.
  std::vector<double> theta;
  if (!ColdStart(&theta)) {
    return Status::NotConverged(
        "SolveMaxEnt: conditioning excluded all moments");
  }
  bool warm = TrySeedFromHint(&theta);
  for (;;) {
    Result<OptimResult> res = RunNewton(theta, warm);
    if (!res.ok()) {
      if (warm) {
        // The seed did not transfer (the sketches were less similar than
        // the caller hoped); restart from the zero-theta cold seed, which
        // must succeed or fail exactly as a hint-free solve would.
        warm = false;
        if (grid_n_ != opt_.min_grid) BuildGrid(opt_.min_grid);
        ResetColdSeed(&theta);
        continue;
      }
      // Divergence usually means the moment set admits no density (heavy
      // atoms / near-discrete data, Section 6.2.3). Mirror the paper's
      // query-time remedy: back off to fewer moments and re-solve.
      if (selected_.size() > 2) {
        selected_.pop_back();
        ResetColdSeed(&theta);
        continue;
      }
      return res.status();
    }
    total_newton_iters_ += res->iterations;
    total_function_evals_ += res->function_evals;
    total_hessian_evals_ += res->hessian_evals;
    theta = res->x;
    if (GridResolved(theta) || grid_n_ >= opt_.max_grid) break;
    BuildGrid(grid_n_ * 2);
  }

  // Package the result: a monotone tabulated CDF of the solved density.
  std::vector<double> f = FValues(theta);
  std::vector<double> coeffs = ChebyshevFit(f);
  std::vector<double> antider = ChebyshevAntiderivative(coeffs);
  const int kCdfPoints = 513;
  dist.cdf_values_.resize(kCdfPoints);
  {
    // Batched evaluation (point-blocked Clenshaw), then the monotone
    // running-max pass.
    std::vector<double> us(kCdfPoints);
    for (int i = 0; i < kCdfPoints; ++i) {
      us[i] = -1.0 + 2.0 * static_cast<double>(i) / (kCdfPoints - 1);
    }
    ChebyshevEvalMany(antider, us.data(), us.size(),
                      dist.cdf_values_.data());
    double running = 0.0;
    for (double& v : dist.cdf_values_) {
      running = std::max(running, v);
      v = running;
    }
  }
  const double total = dist.cdf_values_.back();
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::NotConverged("SolveMaxEnt: degenerate total mass");
  }
  for (double& v : dist.cdf_values_) v /= total;
  dist.log_primary_ = log_primary_;
  dist.primary_map_ = log_primary_ ? log_map_ : std_map_;
  // Count only the *selected* rows per family.
  int sel_primary = 0, sel_secondary = 0;
  for (int row : selected_) {
    if (row == 0) continue;
    if (row <= a1_) {
      ++sel_primary;
    } else {
      ++sel_secondary;
    }
  }
  dist.diag_.k1 = log_primary_ ? sel_secondary : sel_primary;
  dist.diag_.k2 = log_primary_ ? sel_primary : sel_secondary;
  dist.diag_.newton_iterations = total_newton_iters_;
  dist.diag_.function_evals = total_function_evals_;
  dist.diag_.hessian_evals = total_hessian_evals_;
  dist.diag_.grid_size = grid_n_;
  dist.diag_.condition_number = selected_cond_;
  dist.diag_.log_primary = log_primary_;
  dist.diag_.warm_started = warm;
  // Export the solution as a seed for the next (similar) sketch.
  dist.warm_.log_primary = log_primary_;
  dist.warm_.grid_n = grid_n_;
  dist.warm_.theta0 = theta[0];
  dist.warm_.entries.clear();
  dist.warm_.entries.reserve(selected_.size() - 1);
  for (size_t p = 1; p < selected_.size(); ++p) {
    const int row = selected_[p];
    WarmStart::Entry e;
    e.primary = row <= a1_;
    e.order = e.primary ? row : row - a1_;
    e.theta = theta[p];
    e.moment = e.primary ? primary_moments_[row]
                         : secondary_moments_[row - a1_];
    dist.warm_.entries.push_back(e);
  }
  return dist;
}

double MaxEntDistribution::Cdf(double x) const {
  if (degenerate_) return x >= xmin_ ? 1.0 : 0.0;
  if (x <= xmin_) return 0.0;
  if (x >= xmax_) return 1.0;
  const double primary = log_primary_ ? std::log(x) : x;
  const double u = std::clamp(primary_map_.Forward(primary), -1.0, 1.0);
  // Linear interpolation in the monotone table.
  const double pos = (u + 1.0) * 0.5 * (cdf_values_.size() - 1);
  const size_t i = std::min(static_cast<size_t>(pos),
                            cdf_values_.size() - 2);
  const double frac = pos - static_cast<double>(i);
  const double v =
      cdf_values_[i] + frac * (cdf_values_[i + 1] - cdf_values_[i]);
  return std::clamp(v, 0.0, 1.0);
}

double MaxEntDistribution::Quantile(double phi) const {
  if (degenerate_) return xmin_;
  phi = std::clamp(phi, 0.0, 1.0);
  // Binary search the monotone table, then interpolate.
  const size_t m = cdf_values_.size();
  size_t lo = 0, hi = m - 1;
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_values_[mid] < phi) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double span = cdf_values_[hi] - cdf_values_[lo];
  const double frac = (span > 0.0) ? (phi - cdf_values_[lo]) / span : 0.0;
  const double u = -1.0 + 2.0 *
                              (static_cast<double>(lo) +
                               std::clamp(frac, 0.0, 1.0)) /
                              static_cast<double>(m - 1);
  const double primary = primary_map_.Inverse(u);
  const double x = log_primary_ ? std::exp(primary) : primary;
  return std::clamp(x, xmin_, xmax_);
}

std::vector<double> MaxEntDistribution::Quantiles(
    const std::vector<double>& phis) const {
  std::vector<double> out;
  out.reserve(phis.size());
  for (double phi : phis) out.push_back(Quantile(phi));
  return out;
}

Result<MaxEntDistribution> SolveMaxEnt(const MomentsSketch& sketch,
                                       const MaxEntOptions& options,
                                       const WarmStart* hint) {
  MaxEntSolver solver(sketch, options, hint);
  return solver.Solve();
}

Result<std::vector<double>> EstimateQuantiles(const MomentsSketch& sketch,
                                              const std::vector<double>& phis,
                                              const MaxEntOptions& options,
                                              const WarmStart* hint) {
  // Tiered path: cache hit -> reuse the solved distribution verbatim;
  // miss -> (optionally warm-started) solve, then publish for the next
  // identical-moment estimate. The solver is deterministic, so the cache
  // is semantically transparent.
  if (!options.use_solver_cache) {
    MSKETCH_ASSIGN_OR_RETURN(MaxEntDistribution dist,
                             SolveMaxEnt(sketch, options, hint));
    return dist.Quantiles(phis);
  }
  SolverCache& cache = GlobalSolverCache();
  std::string key;
  if (auto dist = cache.Lookup(sketch, options, &key)) {
    return dist->Quantiles(phis);
  }
  MSKETCH_ASSIGN_OR_RETURN(MaxEntDistribution dist,
                           SolveMaxEnt(sketch, options, hint));
  std::vector<double> quantiles = dist.Quantiles(phis);
  cache.InsertWithKey(
      std::move(key),
      std::make_shared<const MaxEntDistribution>(std::move(dist)));
  return quantiles;
}

}  // namespace msketch
