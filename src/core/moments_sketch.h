// The moments sketch (Section 4 of the paper): a fixed-size mergeable
// quantile summary storing min, max, count, the power sums sum(x^i), and
// the log power sums sum(log^i x) for i = 1..k.
//
// Merging is pointwise addition plus two comparisons (Algorithm 1) — the
// property the whole paper is built on. The sketch is also *subtractable*
// (power sums are linear), which Section 7.2.2 exploits for turnstile
// sliding windows; subtraction cannot recover min/max, so the caller
// re-establishes the range via SetRange.
#ifndef MSKETCH_CORE_MOMENTS_SKETCH_H_
#define MSKETCH_CORE_MOMENTS_SKETCH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace msketch {

/// Struct-of-arrays view over the moment state of many sketches at once
/// (the columnar cube layout in cube/cube_store.h). Column `power_sums[i]`
/// holds sum(x^(i+1)) for every cell contiguously, so a merge over a cell
/// set is k independent unit-stride (or gather) reductions instead of a
/// pointer chase per cell. The view does not own the columns; it is valid
/// only as long as the backing storage is unchanged.
struct FlatMomentColumns {
  int k = 0;
  size_t num_cells = 0;
  const double* const* power_sums = nullptr;  // k column pointers
  const double* const* log_sums = nullptr;    // k column pointers
  const uint64_t* counts = nullptr;
  const uint64_t* log_counts = nullptr;
  const double* mins = nullptr;
  const double* maxs = nullptr;
};

/// Mutable counterpart of FlatMomentColumns: the drain-time view the
/// streaming ingest engine applies shard deltas through (see
/// MomentsSketch::DrainIntoCell). Same layout and lifetime rules.
struct MutableFlatMomentColumns {
  int k = 0;
  size_t num_cells = 0;
  double* const* power_sums = nullptr;  // k column pointers
  double* const* log_sums = nullptr;    // k column pointers
  uint64_t* counts = nullptr;
  uint64_t* log_counts = nullptr;
  double* mins = nullptr;
  double* maxs = nullptr;
};

class MomentsSketch {
 public:
  /// `k`: highest moment power tracked (the sketch order). The paper's
  /// default configuration is k = 10, tracking both standard and log
  /// moments (2k + 3 doubles ~ 184 bytes).
  explicit MomentsSketch(int k = 10);

  /// Adds one element (Algorithm 1, accumulate).
  void Accumulate(double x);

  /// Adds `n` elements. Semantically — and bit-for-bit — equal to calling
  /// Accumulate on each element in order, but processes four elements per
  /// step with independent power/log-power multiply chains, breaking the
  /// serial p *= x dependence that bounds the scalar path. Each column's
  /// additions still happen in element order, which is what keeps the
  /// result bit-identical.
  void AccumulateBatch(const double* xs, size_t n);

  /// Merges another sketch of the same order (Algorithm 1, merge).
  Status Merge(const MomentsSketch& other);

  /// Removes a previously merged sketch's contributions (turnstile
  /// semantics). min/max are left untouched and are stale afterwards;
  /// callers must follow up with SetRange (see window/). Subtracting to
  /// an empty sketch resets the moment state to exact zeros, and
  /// even-power sums are clamped at zero (cancellation guard).
  Status Subtract(const MomentsSketch& other);

  /// Batched merge against columnar storage: folds in the cells named by
  /// `cell_ids` (indices into the columns). The kernel is a tight loop
  /// with k independent accumulator chains, performing each column's
  /// additions in id order — bit-identical to merging the same cells'
  /// MomentsSketch objects one by one in the same order.
  Status MergeFlat(const FlatMomentColumns& cols, const uint32_t* cell_ids,
                   size_t n);

  /// Contiguous-range variant of MergeFlat: folds in cells
  /// [begin, end). The inner loops are unit-stride and vectorizable.
  Status MergeFlatRange(const FlatMomentColumns& cols, size_t begin,
                        size_t end);

  /// SIMD merge over the contiguous cell range [begin, end): column-major
  /// (one full pass per column) with the 8-lane accumulation of
  /// core/simd_reduce.h, so each column is one vectorized unit-stride
  /// stream instead of a strided store-reload per cell. Results are
  /// bit-identical across the AVX2/SSE2/scalar fallback chain, but the
  /// lane re-association means they differ from MergeFlatRange in the
  /// last ulps (exactly equal when the column sums are exactly
  /// representable, e.g. dyadic data). Integer counts and min/max are
  /// always exact.
  Status MergeFlatRangeFast(const FlatMomentColumns& cols, size_t begin,
                            size_t end);

  /// SIMD gather-merge over an id list: same column-major 8-lane
  /// structure as MergeFlatRangeFast applied to cols[*][cell_ids[j]].
  /// Deterministic across builds; within-tolerance of MergeFlat.
  Status MergeFlatFast(const FlatMomentColumns& cols, const uint32_t* cell_ids,
                       size_t n);

  /// Batched turnstile subtraction against columnar storage. Like
  /// Subtract, leaves min/max stale; follow up with SetRange. When the
  /// subtraction empties the sketch, the moment state is reset to exact
  /// zeros, and even-power sums are clamped at zero otherwise (they are
  /// sums of non-negative terms, so a negative value is pure cancellation
  /// noise) — see ApplyCancellationGuards.
  Status SubtractFlat(const FlatMomentColumns& cols, const uint32_t* cell_ids,
                      size_t n);

  /// SIMD gather variant of SubtractFlat (column-major 8-lane sums of the
  /// subtrahend, one subtract per column). Same cancellation guards.
  Status SubtractFlatFast(const FlatMomentColumns& cols,
                          const uint32_t* cell_ids, size_t n);

  /// Flat-delta drain kernel: adds this sketch's whole state into cell
  /// `cell` of mutable columnar storage — the reverse direction of
  /// MergeFlat, used by the streaming ingest engine to fold a shard's
  /// per-cell delta into the published cube's columns. Each column slot
  /// gets one add (column[cell] += sum), counts add exactly, and the
  /// cell's min/max widen to cover the delta's range. Draining an empty
  /// sketch is a no-op (its sentinel range must not poison the cell).
  Status DrainIntoCell(const MutableFlatMomentColumns& cols,
                       uint32_t cell) const;

  /// Overrides the tracked range. Used after Subtract, and by tests.
  void SetRange(double min, double max);

  int k() const { return k_; }
  uint64_t count() const { return count_; }
  /// Count of accumulated elements that were > 0 (log moments cover
  /// exactly these; estimation uses log moments only when all data is
  /// positive, i.e. log_count == count and min > 0).
  uint64_t log_count() const { return log_count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Unscaled power sums: power_sums()[i] = sum over data of x^(i+1).
  const std::vector<double>& power_sums() const { return power_sums_; }
  /// Unscaled log power sums over positive elements: log_sums()[i] =
  /// sum of log(x)^(i+1).
  const std::vector<double>& log_sums() const { return log_sums_; }

  /// Standardized moments mu_i = (1/n) sum x^i for i = 0..k (mu_0 = 1).
  std::vector<double> StandardMoments() const;
  /// nu_i = (1/log_count) sum log(x)^i for i = 0..k.
  std::vector<double> LogMoments() const;

  /// True when every accumulated element was strictly positive, so the
  /// log moments describe the full dataset.
  bool LogMomentsUsable() const {
    return count_ > 0 && log_count_ == count_ && min_ > 0.0;
  }

  /// Serialized footprint: (2k + 3) doubles + count + header.
  size_t SizeBytes() const;

  MomentsSketch CloneEmpty() const { return MomentsSketch(k_); }

  void Serialize(BytesWriter* out) const;
  static Result<MomentsSketch> Deserialize(BytesReader* in);

  /// Equality to within exact floating point (used by turnstile and
  /// serialization tests).
  bool IdenticalTo(const MomentsSketch& other) const;

 private:
  /// Post-subtraction numeric hygiene: resets to exact zeros when the
  /// sketch emptied (count == 0 admits only the all-zero moment state),
  /// and clamps even-power sums — sums of x^(2i) and log^(2i), both
  /// non-negative by construction — at 0.0, so catastrophic cancellation
  /// from subtracting nearly everything cannot leave an infeasible
  /// moment vector for the solver.
  void ApplyCancellationGuards();

  int k_;
  uint64_t count_ = 0;
  uint64_t log_count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<double> power_sums_;  // [sum x, sum x^2, ..., sum x^k]
  std::vector<double> log_sums_;    // [sum log x, ..., sum log^k x]
};

}  // namespace msketch

#endif  // MSKETCH_CORE_MOMENTS_SKETCH_H_
