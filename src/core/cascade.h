// Threshold-query cascade (Section 5.2, Algorithm 2): a sequence of
// progressively tighter, progressively costlier checks — range filter,
// Markov bounds, RTT bounds, full maximum entropy estimate — that resolves
// "is the phi-quantile above t?" without solving the maxent problem for
// most groups.
//
// Note on Algorithm 2's CheckBound: with rank(t) = #\{x < t\} (Section 5.1),
// rank lower bound > n*phi implies q_phi < t (predicate false) and rank
// upper bound < n*phi implies q_phi >= t (predicate true); we implement
// these semantics, which match the algorithm's final `return q_phi > t`.
#ifndef MSKETCH_CORE_CASCADE_H_
#define MSKETCH_CORE_CASCADE_H_

#include <cstdint>

#include "common/status.h"
#include "core/bounds.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Which cascade stages are active. Disabling stages reproduces the
/// incremental rows of Figures 12/13 ("Baseline", "+Simple", "+Markov",
/// "+RTT").
struct CascadeOptions {
  bool use_simple_check = true;  // [xmin, xmax] range filter
  bool use_markov = true;
  bool use_rtt = true;
  MaxEntOptions maxent;
};

/// Per-stage resolution counters (Figure 13c: fraction of queries each
/// stage resolves).
struct CascadeStats {
  uint64_t total = 0;
  uint64_t resolved_simple = 0;
  uint64_t resolved_markov = 0;
  uint64_t resolved_rtt = 0;
  uint64_t resolved_maxent = 0;

  void Reset() { *this = CascadeStats{}; }
};

class ThresholdCascade {
 public:
  explicit ThresholdCascade(CascadeOptions options = {})
      : opt_(options) {}

  /// Algorithm 2: returns whether the phi-quantile of the sketch's dataset
  /// exceeds the threshold t. When the maximum entropy stage is reached
  /// but fails to converge, decides by the midpoint of the RTT rank
  /// bounds (the bounds remain valid for any matching dataset).
  bool Threshold(const MomentsSketch& sketch, double phi, double t);

  const CascadeStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  CascadeOptions opt_;
  CascadeStats stats_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_CASCADE_H_
