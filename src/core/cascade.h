// Threshold-query cascade (Section 5.2, Algorithm 2): a sequence of
// progressively tighter, progressively costlier checks — range filter,
// Markov bounds, RTT bounds, full maximum entropy estimate — that resolves
// "is the phi-quantile above t?" without solving the maxent problem for
// most groups.
//
// Note on Algorithm 2's CheckBound: with rank(t) = #\{x < t\} (Section 5.1),
// rank lower bound > n*phi implies q_phi < t (predicate false) and rank
// upper bound < n*phi implies q_phi >= t (predicate true); we implement
// these semantics, which match the algorithm's final `return q_phi > t`.
#ifndef MSKETCH_CORE_CASCADE_H_
#define MSKETCH_CORE_CASCADE_H_

#include <cstdint>

#include "common/status.h"
#include "core/atomic_fit.h"
#include "core/bounds.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Which cascade stages are active. Disabling stages reproduces the
/// incremental rows of Figures 12/13 ("Baseline", "+Simple", "+Markov",
/// "+RTT").
struct CascadeOptions {
  bool use_simple_check = true;  // [xmin, xmax] range filter
  bool use_markov = true;
  bool use_rtt = true;
  /// Reuse the solved maxent distribution while consecutive queries hit
  /// the same sketch — multi-(phi, t) alert sweeps solve once.
  bool memoize_solution = true;
  MaxEntOptions maxent;
};

/// Per-stage resolution counters (Figure 13c: fraction of queries each
/// stage resolves).
struct CascadeStats {
  uint64_t total = 0;
  uint64_t resolved_simple = 0;
  uint64_t resolved_markov = 0;
  uint64_t resolved_rtt = 0;
  uint64_t resolved_maxent = 0;
  /// Of the resolved_maxent queries, how many reused the memoized
  /// solution instead of re-solving.
  uint64_t maxent_memo_hits = 0;

  void Reset() { *this = CascadeStats{}; }
  void MergeFrom(const CascadeStats& other) {
    total += other.total;
    resolved_simple += other.resolved_simple;
    resolved_markov += other.resolved_markov;
    resolved_rtt += other.resolved_rtt;
    resolved_maxent += other.resolved_maxent;
    maxent_memo_hits += other.maxent_memo_hits;
  }
};

class ThresholdCascade {
 public:
  explicit ThresholdCascade(CascadeOptions options = {})
      : opt_(options) {}

  /// Algorithm 2: returns whether the phi-quantile of the sketch's dataset
  /// exceeds the threshold t. When the maximum entropy stage is reached
  /// but fails to converge, decides by the midpoint of the RTT rank
  /// bounds (the bounds remain valid for any matching dataset).
  bool Threshold(const MomentsSketch& sketch, double phi, double t);

  /// Outcome of the bounds-only prefix of Algorithm 2.
  enum class Decision { kTrue, kFalse, kUnresolved };

  /// Runs the range / Markov / RTT stages without the maxent fallback and
  /// updates the per-stage counters (including `total`). The tightest
  /// rank bounds seen are written to `*bounds_out`, so an unresolved
  /// caller can finish the decision with its own estimator — the batch
  /// layer does this to route the final solve through its warm-start
  /// chain and solver cache.
  Decision CheckBounds(const MomentsSketch& sketch, double phi, double t,
                       RankBounds* bounds_out);

  /// How an unresolved query was ultimately decided.
  enum class MaxEntResolution {
    kDistribution,  // solved maxent distribution
    kAtomic,        // atomic-fit fallback (near-discrete data)
    kBounds,        // midpoint of the rank bounds (everything failed)
  };

  /// Decides an unresolved query from a solved distribution (or, when the
  /// solver failed, the cascade's fallback chain: atomic fit, then the
  /// midpoint of `bounds`). Counts the query as maxent-resolved and
  /// reports which estimator decided via `resolution_out` when non-null.
  bool DecideWithDistribution(const MaxEntDistribution* dist,
                              const MomentsSketch& sketch, double phi,
                              double t, const RankBounds& bounds,
                              MaxEntResolution* resolution_out = nullptr);

  const CascadeStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  // Memoized solver outcome for the last sketch that reached the maxent
  // stage, keyed on the sketch's full state (count + power sums + range).
  struct SolveMemo {
    bool valid = false;
    MomentsSketch sketch{1};
    bool solve_ok = false;
    MaxEntDistribution dist;       // meaningful when solve_ok
    bool atomic_ok = false;
    DiscreteDistribution atomic;   // fallback when !solve_ok
  };

  const SolveMemo& SolveMemoized(const MomentsSketch& sketch);

  // The shared dist -> atomic -> bounds-midpoint decision chain; both
  // Threshold paths and DecideWithDistribution route through it so the
  // fallback order cannot drift between them.
  bool DecideFrom(const MaxEntDistribution* dist,
                  const DiscreteDistribution* atomic,
                  const MomentsSketch& sketch, double phi, double t,
                  const RankBounds& bounds, MaxEntResolution* resolution_out);

  CascadeOptions opt_;
  CascadeStats stats_;
  SolveMemo memo_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_CASCADE_H_
