// Prony-based recovery of atomic (finitely-supported) measures from a
// moment sequence.
//
// Two uses: (1) SolveMaxEnt refuses to fit a density when the moments are
// exactly consistent with a handful of atoms (the paper: the solver
// "fails to converge on datasets with fewer than five distinct values",
// Section 6.2.3) — an unconstrained drop-moments retry would otherwise
// return a confidently wrong density; (2) the threshold cascade uses the
// recovered atoms as its final fallback estimator.
//
// This is an estimator, not a certified bound: a continuous distribution
// squeezed into a sliver of the scaled domain can match an atomic fit's
// moments without matching its ranks, so RttBound never consults it.
#ifndef MSKETCH_CORE_ATOMIC_FIT_H_
#define MSKETCH_CORE_ATOMIC_FIT_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/moments_sketch.h"

namespace msketch {

/// A measure on finitely many atoms.
struct DiscreteDistribution {
  std::vector<double> atoms;    // ascending
  std::vector<double> weights;  // sum to 1
  double Quantile(double phi) const;
};

/// Atoms/weights in the scaled [-1, 1] domain from scaled power moments
/// E[u^j]; requires the (rho+1)-Hankel to be numerically singular and the
/// fit to reproduce every moment within `tol`.
Result<std::vector<std::pair<double, double>>> FitAtomicScaled(
    const std::vector<double>& moments, double tol);

/// Fit against the sketch's standard moments, mapped back to the data
/// domain. NotConverged when no small atomic support explains the
/// moments.
Result<DiscreteDistribution> FitAtomicDistribution(
    const MomentsSketch& sketch, double tol = 1e-9);

}  // namespace msketch

#endif  // MSKETCH_CORE_ATOMIC_FIT_H_
