#include "core/maxent_problem.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "core/atomic_fit.h"
#include "numerics/chebyshev.h"
#include "numerics/eigen.h"
#include "numerics/integration.h"

namespace msketch {

namespace {

// Clenshaw-Curtis weights are O(N^2) to build; cache per grid size.
const std::vector<double>& CachedCcWeights(int n) {
  static std::mutex mu;
  static std::unordered_map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, ClenshawCurtisWeights(n)).first;
  }
  return it->second;
}

const std::vector<double>& CachedLobatto(int n) {
  static std::mutex mu;
  static std::unordered_map<int, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, ChebyshevLobattoPoints(n)).first;
  }
  return it->second;
}

}  // namespace

void MaxEntProblem::BuildGridInternal(int n) {
  grid_n_ = n;
  fit_valid_ = false;
  nodes_ = CachedLobatto(n);
  weights_ = CachedCcWeights(n);
  const size_t npts = nodes_.size();
  basis_.assign(static_cast<size_t>(1 + a1_ + a2_) * npts, 0.0);
  // Primary basis (rows 0..a1): plain Chebyshev polynomials in u,
  // tabulated in one batched recurrence pass directly into the flat
  // row-major matrix (same three-term recurrence as ChebyshevTAll, so
  // values are bit-identical to a per-point build). Row 0 is the
  // constant.
  ChebyshevTAllMany(a1_, nodes_.data(), npts, basis_.data());
  // Secondary basis: Chebyshev polynomials in the other domain's scaled
  // coordinate, evaluated through the domain transform.
  if (a2_ > 0) {
    std::vector<double> ws(npts);
    for (size_t j = 0; j < npts; ++j) {
      const double u = nodes_[j];
      double w;
      if (!log_primary_) {
        // x-primary: secondary functions are T_j(s2(log x)).
        const double x = std::max(std_map_.Inverse(u), 1e-300);
        w = log_map_.Forward(std::log(x));
      } else {
        // log-primary: secondary functions are T_i(s1(exp(y))).
        const double y = log_map_.Inverse(u);
        w = std_map_.Forward(std::exp(y));
      }
      ws[j] = std::clamp(w, -1.0, 1.0);
    }
    std::vector<double> flat(static_cast<size_t>(a2_ + 1) * npts);
    ChebyshevTAllMany(a2_, ws.data(), npts, flat.data());
    std::copy(flat.begin() + npts, flat.end(),
              basis_.begin() + static_cast<size_t>(a1_ + 1) * npts);
  }
}

void MaxEntProblem::BuildGrid(int n) { BuildGridInternal(n); }

Matrix MaxEntProblem::UniformHessian(const std::vector<int>& rows) const {
  const size_t d = rows.size();
  Matrix h(d, d);
  for (size_t p = 0; p < d; ++p) {
    for (size_t q = p; q < d; ++q) {
      double acc = 0.0;
      const double* bp = BasisRow(rows[p]);
      const double* bq = BasisRow(rows[q]);
      for (size_t j = 0; j < weights_.size(); ++j) {
        acc += weights_[j] * bp[j] * bq[j];
      }
      h(p, q) = 0.5 * acc;
      h(q, p) = h(p, q);
    }
  }
  return h;
}

void MaxEntProblem::SelectMoments(CondMemo* cond_memo) {
  selected_ = {0};
  selected_cond_ = 1.0;
  int k1 = 0, k2 = 0;
  int limit1 = a1_, limit2 = a2_;  // greedy caps; basis row offsets stay put
  // Uniform expectations of the secondary basis rows (numeric; the primary
  // rows have the closed form UniformChebyshevMoment).
  auto uniform_expect = [&](int row) {
    double acc = 0.0;
    for (size_t j = 0; j < weights_.size(); ++j) {
      acc += weights_[j] * BasisRow(row)[j];
    }
    return 0.5 * acc;
  };
  // Primary-orders bitmask of the current selection; valid (and the memo
  // applicable) only while no secondary row has been accepted.
  uint64_t primary_mask = 0;
  // Condition number of `trial`, through the memo when every non-zero
  // row is primary. The memoized value is the same matrix's condition
  // number computed on an earlier group — identical basis rows, so this
  // is a cache, not an approximation.
  auto trial_cond = [&](const std::vector<int>& trial, bool all_primary,
                        uint64_t trial_mask) {
    double cond;
    if (all_primary && cond_memo != nullptr &&
        cond_memo->Lookup(grid_n_, trial_mask, &cond)) {
      return cond;
    }
    cond = SymmetricConditionNumber(UniformHessian(trial));
    if (all_primary && cond_memo != nullptr) {
      cond_memo->Insert(grid_n_, trial_mask, cond);
    }
    return cond;
  };

  while (k1 < limit1 || k2 < limit2) {
    struct Candidate {
      int row;
      double distance;  // |moment - uniform expectation|
      bool is_primary;
    };
    std::vector<Candidate> cands;
    if (k1 < limit1) {
      const int row = k1 + 1;
      cands.push_back({row,
                       std::fabs(primary_moments_[row] -
                                 UniformChebyshevMoment(row)),
                       true});
    }
    if (k2 < limit2) {
      const int row = a1_ + k2 + 1;
      cands.push_back({row,
                       std::fabs(secondary_moments_[k2 + 1] -
                                 uniform_expect(row)),
                       false});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.distance < b.distance;
              });
    bool advanced = false;
    for (const Candidate& c : cands) {
      std::vector<int> trial = selected_;
      trial.push_back(c.row);
      const bool all_primary = k2 == 0 && c.is_primary;
      const uint64_t trial_mask =
          all_primary ? (primary_mask | (1ull << (c.row - 1))) : 0;
      const double cond = trial_cond(trial, all_primary, trial_mask);
      if (cond <= opt_.kappa_max) {
        selected_ = std::move(trial);
        selected_cond_ = cond;
        if (c.is_primary) {
          ++k1;
          primary_mask |= 1ull << (c.row - 1);
        } else {
          ++k2;
        }
        advanced = true;
        break;
      }
      // Candidate rejected for conditioning; stop growing this family.
      if (c.is_primary) {
        limit1 = k1;
      } else {
        limit2 = k2;
      }
    }
    if (!advanced) break;
  }
  // Canonical slot order: ascending basis row (row 0 stays first). The
  // greedy trials above keep their historical insertion order — the
  // condition screen sees the same matrices as always — but downstream
  // consumers (Newton, packaging, the lane solver's bucket packing) see
  // one deterministic layout per selected subset.
  std::sort(selected_.begin(), selected_.end());
}

std::vector<double> MaxEntProblem::FValues(
    const std::vector<double>& theta) const {
  const size_t npts = nodes_.size();
  std::vector<double> f(npts);
  for (size_t j = 0; j < npts; ++j) {
    double e = 0.0;
    for (size_t p = 0; p < selected_.size(); ++p) {
      e += theta[p] * BasisRow(selected_[p])[j];
    }
    f[j] = std::exp(std::min(e, 700.0));
  }
  return f;
}

double MaxEntProblem::TargetFor(size_t p) const {
  const int row = selected_[p];
  if (row == 0) return 1.0;
  return (row <= a1_) ? primary_moments_[row]
                      : secondary_moments_[row - a1_];
}

uint64_t MaxEntProblem::SelectedPrimaryMask() const {
  uint64_t mask = 0;
  for (int row : selected_) {
    if (row >= 1 && row <= a1_) mask |= 1ull << (row - 1);
  }
  return mask;
}

uint64_t MaxEntProblem::SelectedSecondaryMask() const {
  uint64_t mask = 0;
  for (int row : selected_) {
    if (row > a1_) mask |= 1ull << (row - a1_ - 1);
  }
  return mask;
}

Result<OptimResult> MaxEntProblem::RunNewton(std::vector<double> theta0,
                                             bool warm) {
  const size_t d = selected_.size();
  // Target vector: [1, selected moments...].
  std::vector<double> target(d);
  for (size_t p = 0; p < d; ++p) target[p] = TargetFor(p);

  // Buffers hoisted out of the objective: it runs ~100 times per solve
  // and per-call allocation plus the point-outer accumulation loop were
  // measurable in profiles. Row-outer loops are unit-stride over the
  // grid, which the compiler vectorizes.
  const size_t npts = nodes_.size();
  std::vector<double> ebuf(npts), fbuf(npts);
  ObjectiveFn objective = [&, d](const std::vector<double>& theta,
                                 bool need_hessian, ObjectiveEval* out) {
    double* MSKETCH_GCC_RESTRICT e = ebuf.data();
    double* MSKETCH_GCC_RESTRICT f = fbuf.data();
    const double t0v = theta[0];
    for (size_t j = 0; j < npts; ++j) e[j] = t0v;  // basis row 0 == 1
    for (size_t p = 1; p < d; ++p) {
      const double tp = theta[p];
      const double* bp = BasisRow(selected_[p]);
      for (size_t j = 0; j < npts; ++j) e[j] += tp * bp[j];
    }
    double integral = 0.0;
    const double* w = weights_.data();
    for (size_t j = 0; j < npts; ++j) {
      const double fj = std::exp(std::min(e[j], 700.0)) * w[j];
      f[j] = fj;  // pre-weighted density values
      integral += fj;
    }
    out->value = integral;
    for (size_t p = 0; p < d; ++p) out->value -= theta[p] * target[p];
    out->gradient.assign(d, 0.0);
    for (size_t p = 0; p < d; ++p) {
      double acc = 0.0;
      const double* bp = BasisRow(selected_[p]);
      for (size_t j = 0; j < npts; ++j) acc += bp[j] * f[j];
      out->gradient[p] = acc - target[p];
    }
    if (need_hessian) {
      out->hessian = Matrix(d, d);
      for (size_t p = 0; p < d; ++p) {
        const double* bp = BasisRow(selected_[p]);
        for (size_t q = p; q < d; ++q) {
          const double* bq = BasisRow(selected_[q]);
          double acc = 0.0;
          for (size_t j = 0; j < npts; ++j) acc += bp[j] * bq[j] * f[j];
          out->hessian(p, q) = acc;
          out->hessian(q, p) = acc;
        }
      }
    }
  };

  NewtonOptions nopts;
  nopts.max_iter = opt_.max_newton_iter;
  nopts.grad_tol = opt_.grad_tol;
  nopts.adaptive_initial_step = warm;
  return NewtonMinimize(objective, std::move(theta0), nopts);
}

bool MaxEntProblem::GridResolved(const std::vector<double>& theta) {
  std::vector<double> f = FValues(theta);
  std::vector<double> coeffs = ChebyshevFit(f);
  // Cache the fit: Package reuses it when called with the same theta on
  // the same grid, saving the second FValues + fit pass.
  fit_valid_ = true;
  fit_grid_ = grid_n_;
  fit_theta_ = theta;
  fit_coeffs_ = coeffs;
  double cmax = 0.0;
  for (double c : coeffs) cmax = std::max(cmax, std::fabs(c));
  if (cmax == 0.0) return true;
  // Tail: last eighth of the coefficients must be negligible. 1e-5
  // relative keeps the quadrature bias well below quantile-error
  // resolution (eps_avg ~ 1e-3) while avoiding needless regrids; on
  // milan a 4x finer grid moves q99 by < 0.3%.
  const size_t tail_start = coeffs.size() - coeffs.size() / 8;
  double tail = 0.0;
  for (size_t i = tail_start; i < coeffs.size(); ++i) {
    tail = std::max(tail, std::fabs(coeffs[i]));
  }
  return tail <= 1e-5 * cmax;
}

bool MaxEntProblem::TrySeedFromHint(const WarmStart& hint,
                                    std::vector<double>* theta) const {
  if (!hint.valid() || hint.log_primary != log_primary_) {
    return false;
  }
  // The greedy selection has already run (cold start), so the fitted
  // moment subset is greedy's regardless of the hint — the potential is
  // strictly convex on that subset, and any seed converges to the same
  // unique optimum. Seed the multipliers of the rows the hint also
  // selected and leave the rest at zero; require a majority overlap so
  // the seed is actually near the optimum rather than a stale fragment.
  std::vector<double> seeded(selected_.size(), 0.0);
  seeded[0] = hint.theta0;
  size_t matched = 0;
  for (size_t p = 1; p < selected_.size(); ++p) {
    const int row = selected_[p];
    const bool primary = row <= a1_;
    const int order = primary ? row : row - a1_;
    for (const WarmStart::Entry& e : hint.entries) {
      if (e.primary == primary && e.order == order) {
        // Distance gate: a seed fitted to distant moments starts Newton
        // in heavily-damped territory and costs more than a zero start.
        const double target = primary ? primary_moments_[row]
                                      : secondary_moments_[row - a1_];
        if (std::fabs(target - e.moment) > opt_.warm_gate) return false;
        seeded[p] = e.theta;
        ++matched;
        break;
      }
    }
  }
  if (2 * matched < selected_.size() - 1) return false;
  *theta = std::move(seeded);
  // Deliberately NOT seeding the quadrature grid: grid escalation is
  // per-density, and inheriting a neighbor's escalated grid makes every
  // downstream solve in a warm chain pay the fine-grid cost ("sticky"
  // escalation). Starting at min_grid re-escalates only when this
  // density needs it, reusing the converged theta between grids.
  return true;
}

void MaxEntProblem::ResetColdSeed(std::vector<double>* theta) const {
  theta->assign(selected_.size(), 0.0);
  (*theta)[0] = -std::log(2.0);
}

Status MaxEntProblem::Prepare(const MomentsSketch& sketch,
                              const MaxEntOptions& options,
                              CondMemo* cond_memo) {
  opt_ = options;
  atomic_screened_ = false;
  cold_restarts_ = 0;
  iteration_capped_ = 0;
  backoff_drops_ = 0;
  if (sketch.count() == 0) {
    return Status::InvalidArgument("SolveMaxEnt: empty sketch");
  }
  xmin_ = sketch.min();
  xmax_ = sketch.max();
  if (sketch.min() >= sketch.max()) {  // point mass
    degenerate_ = true;
    return Status::OK();
  }

  // Moment availability under floating point stability (Section 4.3.2).
  std_map_ = MakeScaleMap(sketch.min(), sketch.max());
  const double c_std = std_map_.center / std_map_.radius;
  int avail_std = opt_.use_std_moments
                      ? std::min(sketch.k(), StableKBound(c_std))
                      : 0;
  if (opt_.max_k1 >= 0) avail_std = std::min(avail_std, opt_.max_k1);

  int avail_log = 0;
  const bool log_ok = opt_.use_log_moments && sketch.LogMomentsUsable();
  if (log_ok) {
    log_map_ = MakeScaleMap(std::log(sketch.min()),
                            std::log(sketch.max()));
    const double c_log = log_map_.center / log_map_.radius;
    avail_log = std::min(sketch.k(), StableKBound(c_log));
    if (opt_.max_k2 >= 0) avail_log = std::min(avail_log, opt_.max_k2);
  }
  if (avail_std + avail_log == 0) {
    return Status::Unsupported("SolveMaxEnt: no usable moments");
  }

  // Refuse to fit a density when the moments are exactly consistent with
  // a handful of atoms: no density matches them, and the drop-moments
  // retry below would otherwise converge to a confidently wrong answer
  // (the paper: the solver fails on < 5 distinct values, Section 6.2.3).
  // Every usable domain must look atomic — heavy-tailed data squeezed
  // into a sliver of the standard domain (e.g. retail) can spuriously
  // admit an atomic fit there while its log moments are plainly
  // continuous.
  {
    auto std_scaled = ShiftPowerMoments(sketch.StandardMoments(), std_map_);
    std_scaled.resize(std::max(2 * (avail_std / 2), 2) + 1);
    bool atomic = FitAtomicScaled(std_scaled, 1e-9).ok();
    if (atomic && avail_log > 0) {
      auto log_scaled = ShiftPowerMoments(sketch.LogMoments(), log_map_);
      log_scaled.resize(std::max(2 * (avail_log / 2), 2) + 1);
      atomic = FitAtomicScaled(log_scaled, 1e-9).ok();
    }
    if (atomic) {
      atomic_screened_ = true;
      return Status::NotConverged(
          "SolveMaxEnt: moments match an atomic (near-discrete) measure");
    }
  }

  // Primary domain (Appendix A, Eq. 8): integrate in log space when log
  // moments dominate — they do for long-tailed data.
  log_primary_ = log_ok && avail_log >= avail_std;
  const std::vector<double> cheb_std = PowerMomentsToChebyshev(
      sketch.StandardMoments(), std_map_);
  std::vector<double> cheb_log;
  if (log_ok) {
    cheb_log = PowerMomentsToChebyshev(sketch.LogMoments(), log_map_);
  }
  if (log_primary_) {
    a1_ = avail_log;
    a2_ = avail_std;
    primary_moments_.assign(cheb_log.begin(), cheb_log.begin() + a1_ + 1);
    secondary_moments_.assign(cheb_std.begin(), cheb_std.begin() + a2_ + 1);
  } else {
    a1_ = avail_std;
    a2_ = avail_log;
    primary_moments_.assign(cheb_std.begin(), cheb_std.begin() + a1_ + 1);
    secondary_moments_.assign(
        cheb_log.begin(),
        cheb_log.begin() + (cheb_log.empty() ? 0 : a2_ + 1));
  }

  BuildGridInternal(opt_.min_grid);
  SelectMoments(cond_memo);
  if (selected_.size() <= 1) {
    return Status::NotConverged(
        "SolveMaxEnt: conditioning excluded all moments");
  }
  return Status::OK();
}

MaxEntDistribution MaxEntProblem::MakeDegenerate() const {
  MaxEntDistribution dist;
  dist.degenerate_ = true;
  dist.xmin_ = xmin_;
  dist.xmax_ = xmax_;
  return dist;
}

Result<MaxEntDistribution> MaxEntProblem::SolveFrom(std::vector<double> theta,
                                                    bool warm) {
  for (;;) {
    Result<OptimResult> res = RunNewton(theta, warm);
    if (!res.ok()) {
      if (res.status().message().find("max iterations") !=
          std::string::npos) {
        ++iteration_capped_;
      }
      if (warm) {
        // The seed did not transfer (the sketches were less similar than
        // the caller hoped); restart from the zero-theta cold seed, which
        // must succeed or fail exactly as a hint-free solve would.
        ++cold_restarts_;
        warm = false;
        if (grid_n_ != opt_.min_grid) BuildGridInternal(opt_.min_grid);
        ResetColdSeed(&theta);
        continue;
      }
      // Divergence usually means the moment set admits no density (heavy
      // atoms / near-discrete data, Section 6.2.3). Mirror the paper's
      // query-time remedy: back off to fewer moments and re-solve.
      if (selected_.size() > 2) {
        ++backoff_drops_;
        selected_.pop_back();
        ResetColdSeed(&theta);
        continue;
      }
      return res.status();
    }
    total_newton_iters_ += res->iterations;
    total_function_evals_ += res->function_evals;
    total_hessian_evals_ += res->hessian_evals;
    theta = res->x;
    if (GridResolved(theta) || grid_n_ >= opt_.max_grid) break;
    BuildGridInternal(grid_n_ * 2);
  }
  return Package(theta, warm);
}

Result<MaxEntDistribution> MaxEntProblem::Package(
    const std::vector<double>& theta, bool warm) {
  MaxEntDistribution dist;
  dist.xmin_ = xmin_;
  dist.xmax_ = xmax_;

  // Package the result: a monotone tabulated CDF of the solved density.
  // The Chebyshev fit of f is normally cached by the GridResolved call
  // that ended the solve loop; recompute defensively otherwise.
  std::vector<double> coeffs;
  if (fit_valid_ && fit_grid_ == grid_n_ && fit_theta_ == theta) {
    coeffs = fit_coeffs_;
  } else {
    coeffs = ChebyshevFit(FValues(theta));
  }
  std::vector<double> antider = ChebyshevAntiderivative(coeffs);
  // Evaluate only the significant prefix: the antiderivative of a
  // resolved density decays geometrically, and the 513-point tabulation
  // below was the single largest non-Newton cost of a solve. Dropping
  // coefficients below 1e-10 of the peak perturbs the (normalized,
  // interpolated) CDF at ~1e-9 — three orders below the table's own
  // interpolation error.
  antider.resize(
      std::max<size_t>(ChebyshevSignificantPrefix(antider, 1e-10), 2));
  const int kCdfPoints = 513;
  dist.cdf_values_.resize(kCdfPoints);
  {
    // Batched evaluation (point-blocked Clenshaw), then the monotone
    // running-max pass.
    std::vector<double> us(kCdfPoints);
    for (int i = 0; i < kCdfPoints; ++i) {
      us[i] = -1.0 + 2.0 * static_cast<double>(i) / (kCdfPoints - 1);
    }
    ChebyshevEvalMany(antider, us.data(), us.size(),
                      dist.cdf_values_.data());
    double running = 0.0;
    for (double& v : dist.cdf_values_) {
      running = std::max(running, v);
      v = running;
    }
  }
  const double total = dist.cdf_values_.back();
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::NotConverged("SolveMaxEnt: degenerate total mass");
  }
  for (double& v : dist.cdf_values_) v /= total;
  dist.log_primary_ = log_primary_;
  dist.primary_map_ = log_primary_ ? log_map_ : std_map_;
  // Count only the *selected* rows per family.
  int sel_primary = 0, sel_secondary = 0;
  for (int row : selected_) {
    if (row == 0) continue;
    if (row <= a1_) {
      ++sel_primary;
    } else {
      ++sel_secondary;
    }
  }
  dist.diag_.k1 = log_primary_ ? sel_secondary : sel_primary;
  dist.diag_.k2 = log_primary_ ? sel_primary : sel_secondary;
  dist.diag_.newton_iterations = total_newton_iters_;
  dist.diag_.function_evals = total_function_evals_;
  dist.diag_.hessian_evals = total_hessian_evals_;
  dist.diag_.grid_size = grid_n_;
  dist.diag_.condition_number = selected_cond_;
  dist.diag_.log_primary = log_primary_;
  dist.diag_.warm_started = warm;
  dist.diag_.cold_restarts = cold_restarts_;
  dist.diag_.iteration_capped = iteration_capped_;
  dist.diag_.backoff_drops = backoff_drops_;
  // Export the solution as a seed for the next (similar) sketch.
  dist.warm_.log_primary = log_primary_;
  dist.warm_.grid_n = grid_n_;
  dist.warm_.theta0 = theta[0];
  dist.warm_.entries.clear();
  dist.warm_.entries.reserve(selected_.size() - 1);
  for (size_t p = 1; p < selected_.size(); ++p) {
    const int row = selected_[p];
    WarmStart::Entry e;
    e.primary = row <= a1_;
    e.order = e.primary ? row : row - a1_;
    e.theta = theta[p];
    e.moment = e.primary ? primary_moments_[row]
                         : secondary_moments_[row - a1_];
    dist.warm_.entries.push_back(e);
  }
  return dist;
}

}  // namespace msketch
