// Conversion of raw moments sketch power sums into Chebyshev moments on a
// scaled domain, plus the floating-point stability bound of Appendix B.
//
// The estimator works with E[T_i(s(x))] where s maps the data support onto
// [-1, 1]. These are computed from the stored power sums by a binomial
// shift followed by the Chebyshev-to-monomial change of basis; the shift
// is the primary source of precision loss the paper analyzes (error grows
// like 2^k (|c|+1)^k eps, Eq. 18-21).
#ifndef MSKETCH_CORE_CHEBYSHEV_MOMENTS_H_
#define MSKETCH_CORE_CHEBYSHEV_MOMENTS_H_

#include <vector>

#include "common/status.h"

namespace msketch {

/// Affine map s(x) = (x - center) / radius carrying [center - radius,
/// center + radius] onto [-1, 1].
struct ScaleMap {
  double center = 0.0;
  double radius = 1.0;

  double Forward(double x) const { return (x - center) / radius; }
  double Inverse(double u) const { return center + radius * u; }
};

/// ScaleMap for a data range [lo, hi]; degenerate ranges get radius 1.
ScaleMap MakeScaleMap(double lo, double hi);

/// Given raw moments mu[i] = E[x^i] (i = 0..k, mu[0] = 1) of data in
/// [center - radius, center + radius], returns cheb[i] = E[T_i(s(x))] for
/// i = 0..k.
std::vector<double> PowerMomentsToChebyshev(const std::vector<double>& mu,
                                            const ScaleMap& map);

/// Shifted/scaled power moments E[u^j], u = s(x), via binomial expansion.
/// Exposed separately for the precision-loss experiments (Fig 16).
std::vector<double> ShiftPowerMoments(const std::vector<double>& mu,
                                      const ScaleMap& map);

/// Appendix B, Eq. 21: the highest moment order with numerically useful
/// precision for data whose scaled support is [c - 1, c + 1]:
///   k_max = 13.35 / (0.78 + log10(|c| + 1)).
/// c is the scaled center, i.e. center / radius of the raw support.
int StableKBound(double c);

/// Chebyshev moments of the uniform distribution on [-1, 1]:
/// E[T_i] = 0 for odd i, 1/(1 - i^2) for even i. Used by the greedy
/// (k1, k2) selection heuristic ("closest to uniform", Section 4.3.1).
double UniformChebyshevMoment(int i);

}  // namespace msketch

#endif  // MSKETCH_CORE_CHEBYSHEV_MOMENTS_H_
