// Low-precision moments sketch storage (Appendix C): randomized-rounding
// quantization of the sketch's doubles to b bits per value, packed into a
// byte blob. Decoding reconstitutes a standard MomentsSketch.
//
// The encoding keeps 1 sign bit + 11 exponent bits and quantizes the
// mantissa to (bits - 12) bits with randomized rounding, so merged
// estimates stay unbiased as precision drops (Figure 17).
#ifndef MSKETCH_CORE_COMPRESSED_SKETCH_H_
#define MSKETCH_CORE_COMPRESSED_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Quantizes one double to `bits` total (>= 13), randomized rounding on
/// the dropped mantissa bits. Exposed for tests.
double QuantizeValue(double value, int bits, Rng* rng);

/// Returns a sketch whose stored doubles have been passed through
/// QuantizeValue — what a reader would see after low-precision storage.
MomentsSketch QuantizeSketch(const MomentsSketch& sketch, int bits,
                             uint64_t seed);

/// Packed encoding: header + count at full precision + all doubles at
/// `bits` bits each.
std::vector<uint8_t> EncodeLowPrecision(const MomentsSketch& sketch,
                                        int bits, uint64_t seed);
Result<MomentsSketch> DecodeLowPrecision(const std::vector<uint8_t>& blob);

/// Size in bytes of the packed encoding.
size_t LowPrecisionSizeBytes(int k, int bits);

// ------------------------------------------------------- column codec
//
// Lossless struct-of-arrays codec over many sketches at once: the disk
// format of checkpoint files (persist/checkpoint.cpp) and the intended
// wire format for snapshot shipping. Layout mirrors FlatMomentColumns —
// counts / log_counts / min / max columns followed by the k power and k
// log columns — with a CRC32C trailer over the whole section, so a
// flipped byte or truncated buffer decodes to kCorruption instead of a
// silently wrong cube.

/// Decoded columns (owning). Same layout contract as FlatMomentColumns.
struct DecodedSketchColumns {
  int k = 0;
  size_t num_cells = 0;
  std::vector<std::vector<double>> power_cols;  // k columns
  std::vector<std::vector<double>> log_cols;    // k columns
  std::vector<uint64_t> counts;
  std::vector<uint64_t> log_counts;
  std::vector<double> mins;
  std::vector<double> maxs;
};

/// Appends the CRC-framed section encoding `cols` bit-exactly.
void EncodeSketchColumns(const FlatMomentColumns& cols, BytesWriter* out);

/// Decodes one section. Truncation, length-prefix lies, and checksum
/// mismatches all surface as Status (kCorruption / kSerialization) —
/// never an out-of-bounds read.
Result<DecodedSketchColumns> DecodeSketchColumns(BytesReader* in);

}  // namespace msketch

#endif  // MSKETCH_CORE_COMPRESSED_SKETCH_H_
