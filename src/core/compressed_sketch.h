// Low-precision moments sketch storage (Appendix C): randomized-rounding
// quantization of the sketch's doubles to b bits per value, packed into a
// byte blob. Decoding reconstitutes a standard MomentsSketch.
//
// The encoding keeps 1 sign bit + 11 exponent bits and quantizes the
// mantissa to (bits - 12) bits with randomized rounding, so merged
// estimates stay unbiased as precision drops (Figure 17).
#ifndef MSKETCH_CORE_COMPRESSED_SKETCH_H_
#define MSKETCH_CORE_COMPRESSED_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Quantizes one double to `bits` total (>= 13), randomized rounding on
/// the dropped mantissa bits. Exposed for tests.
double QuantizeValue(double value, int bits, Rng* rng);

/// Returns a sketch whose stored doubles have been passed through
/// QuantizeValue — what a reader would see after low-precision storage.
MomentsSketch QuantizeSketch(const MomentsSketch& sketch, int bits,
                             uint64_t seed);

/// Packed encoding: header + count at full precision + all doubles at
/// `bits` bits each.
std::vector<uint8_t> EncodeLowPrecision(const MomentsSketch& sketch,
                                        int bits, uint64_t seed);
Result<MomentsSketch> DecodeLowPrecision(const std::vector<uint8_t>& blob);

/// Size in bytes of the packed encoding.
size_t LowPrecisionSizeBytes(int k, int bits);

}  // namespace msketch

#endif  // MSKETCH_CORE_COMPRESSED_SKETCH_H_
