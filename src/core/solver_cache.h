// Memoization of solved maximum entropy distributions.
//
// A high-cardinality group-by pays a ~1 ms Newton solve per group; real
// workloads repeat groups across queries (dashboards re-polling) and
// contain many cells whose merged moments are identical (uniform shards
// of the same stream). The cache keys on the *scaled Chebyshev moments*
// quantized to a small absolute grid — the quantities the solver actually
// fits — plus the exact min/max bits and a fingerprint of the solver
// options, so a hit returns a distribution that a fresh solve would have
// reproduced to within the quantization (bit-identical for identical
// sketches, since the solver is deterministic).
//
// Thread-safe and lock-striped: entries are spread over `segments`
// independent LRU shards by the hash of the quantized-moment key, so
// multi-threaded batch workers stop serializing on one mutex. Each
// lookup/insert locks exactly one segment; CacheStats counts how often
// a segment lock was contended. Entries are shared_ptrs, so a returned
// distribution stays valid after eviction.
#ifndef MSKETCH_CORE_SOLVER_CACHE_H_
#define MSKETCH_CORE_SOLVER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

struct SolverCacheOptions {
  /// Maximum resident distributions (each ~4 KB of CDF table), summed
  /// across segments.
  size_t capacity = 1024;
  /// Absolute quantization grid on the scaled Chebyshev moments (which
  /// live in [-1, 1]). Two sketches whose scaled moments agree to within
  /// the quantum share an entry; at 1e-9 (the solver's moment-matching
  /// tolerance) a hit is indistinguishable from a fresh solve.
  double quantum = 1e-9;
  /// Lock stripes. Each segment owns capacity/segments entries and its
  /// own LRU list; eviction is per-segment. 1 restores the single
  /// global-LRU cache (tests that assert exact LRU order use it).
  /// Clamped to capacity so tiny caches keep meaningful eviction.
  size_t segments = 8;
};

/// Aggregate counters across every segment. `lock_contention` counts
/// acquisitions that found the segment lock already held (try_lock
/// failed and the caller blocked) — the signal the striping exists to
/// drive toward zero.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t lock_contention = 0;

  void MergeFrom(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    lock_contention += other.lock_contention;
  }
};

class SolverCache {
 public:
  using Stats = CacheStats;

  explicit SolverCache(SolverCacheOptions options = {});

  /// The cached solution for an equivalent (sketch, options) pair, or
  /// nullptr. Promotes the entry to most-recently-used in its segment.
  /// When `key_out` is non-null it receives the computed key, which a
  /// miss-path caller can hand back to InsertWithKey instead of
  /// re-deriving it.
  std::shared_ptr<const MaxEntDistribution> Lookup(
      const MomentsSketch& sketch, const MaxEntOptions& options,
      std::string* key_out = nullptr);

  /// Publishes a solved distribution, evicting the least-recently-used
  /// entry of its segment at capacity.
  void Insert(const MomentsSketch& sketch, const MaxEntOptions& options,
              std::shared_ptr<const MaxEntDistribution> dist);
  /// Insert under a key previously obtained from Lookup(..., key_out) —
  /// skips rebuilding the key (a Chebyshev conversion of all moments).
  void InsertWithKey(std::string key,
                     std::shared_ptr<const MaxEntDistribution> dist);
  void Insert(const MomentsSketch& sketch, const MaxEntOptions& options,
              MaxEntDistribution dist) {
    Insert(sketch, options,
           std::make_shared<const MaxEntDistribution>(std::move(dist)));
  }

  CacheStats stats() const;
  size_t size() const;
  size_t num_segments() const { return segments_.size(); }
  void Clear();

 private:
  // Key: raw bytes of (k, log-usable flag, min/max bit patterns, quantized
  // scaled std + log Chebyshev moments, options fingerprint).
  std::string MakeKey(const MomentsSketch& sketch,
                      const MaxEntOptions& options) const;

  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const MaxEntDistribution>>>;

  struct Segment {
    mutable std::mutex mu;
    LruList lru;  // front = most recent
    std::unordered_map<std::string, LruList::iterator> map;
    CacheStats stats;
  };

  Segment& SegmentFor(const std::string& key) {
    return segments_[std::hash<std::string>{}(key) % segments_.size()];
  }
  // Locks `seg` and charges a contention tick when the lock was held.
  static std::unique_lock<std::mutex> LockSegment(Segment& seg);

  SolverCacheOptions opt_;
  size_t per_segment_capacity_ = 1;
  std::vector<Segment> segments_;
};

/// Process-wide cache used by the EstimateQuantiles convenience wrapper.
SolverCache& GlobalSolverCache();

}  // namespace msketch

#endif  // MSKETCH_CORE_SOLVER_CACHE_H_
