// Memoization of solved maximum entropy distributions.
//
// A high-cardinality group-by pays a ~1 ms Newton solve per group; real
// workloads repeat groups across queries (dashboards re-polling) and
// contain many cells whose merged moments are identical (uniform shards
// of the same stream). The cache keys on the *scaled Chebyshev moments*
// quantized to a small absolute grid — the quantities the solver actually
// fits — plus the exact min/max bits and a fingerprint of the solver
// options, so a hit returns a distribution that a fresh solve would have
// reproduced to within the quantization (bit-identical for identical
// sketches, since the solver is deterministic).
//
// Thread-safe: the batch layer shares one cache across its worker
// threads. Entries are shared_ptrs, so a returned distribution stays
// valid after eviction.
#ifndef MSKETCH_CORE_SOLVER_CACHE_H_
#define MSKETCH_CORE_SOLVER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

struct SolverCacheOptions {
  /// Maximum resident distributions (each ~4 KB of CDF table).
  size_t capacity = 1024;
  /// Absolute quantization grid on the scaled Chebyshev moments (which
  /// live in [-1, 1]). Two sketches whose scaled moments agree to within
  /// the quantum share an entry; at 1e-9 (the solver's moment-matching
  /// tolerance) a hit is indistinguishable from a fresh solve.
  double quantum = 1e-9;
};

class SolverCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit SolverCache(SolverCacheOptions options = {});

  /// The cached solution for an equivalent (sketch, options) pair, or
  /// nullptr. Promotes the entry to most-recently-used. When `key_out`
  /// is non-null it receives the computed key, which a miss-path caller
  /// can hand back to InsertWithKey instead of re-deriving it.
  std::shared_ptr<const MaxEntDistribution> Lookup(
      const MomentsSketch& sketch, const MaxEntOptions& options,
      std::string* key_out = nullptr);

  /// Publishes a solved distribution, evicting the least-recently-used
  /// entry at capacity.
  void Insert(const MomentsSketch& sketch, const MaxEntOptions& options,
              std::shared_ptr<const MaxEntDistribution> dist);
  /// Insert under a key previously obtained from Lookup(..., key_out) —
  /// skips rebuilding the key (a Chebyshev conversion of all moments).
  void InsertWithKey(std::string key,
                     std::shared_ptr<const MaxEntDistribution> dist);
  void Insert(const MomentsSketch& sketch, const MaxEntOptions& options,
              MaxEntDistribution dist) {
    Insert(sketch, options,
           std::make_shared<const MaxEntDistribution>(std::move(dist)));
  }

  Stats stats() const;
  size_t size() const;
  void Clear();

 private:
  // Key: raw bytes of (k, log-usable flag, min/max bit patterns, quantized
  // scaled std + log Chebyshev moments, options fingerprint).
  std::string MakeKey(const MomentsSketch& sketch,
                      const MaxEntOptions& options) const;

  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const MaxEntDistribution>>>;

  SolverCacheOptions opt_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> map_;
  Stats stats_;
};

/// Process-wide cache used by the EstimateQuantiles convenience wrapper.
SolverCache& GlobalSolverCache();

}  // namespace msketch

#endif  // MSKETCH_CORE_SOLVER_CACHE_H_
