#include "core/moments_summary.h"

namespace msketch {

Result<double> MomentsSummary::EstimateQuantile(double phi) const {
  if (!cached_.has_value()) {
    MSKETCH_ASSIGN_OR_RETURN(MaxEntDistribution dist,
                             SolveMaxEnt(sketch_, options_));
    cached_ = std::move(dist);
  }
  return cached_->Quantile(phi);
}

}  // namespace msketch
