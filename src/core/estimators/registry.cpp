#include "core/estimators/estimators.h"

namespace msketch {

// Defined in the sibling translation units.
std::unique_ptr<MomentQuantileEstimator> MakeGaussianEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeMnatEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeSvdEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeCvxMinEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeCvxMaxEntEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeNewtonRombergEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeBfgsEstimator(
    const LesionOptions&);
std::unique_ptr<MomentQuantileEstimator> MakeOptEstimator(
    const LesionOptions&);

std::vector<std::string> LesionEstimatorNames() {
  return {"gaussian", "mnat",   "svd",  "cvx-min",
          "cvx-maxent", "newton", "bfgs", "opt"};
}

Result<std::unique_ptr<MomentQuantileEstimator>> MakeLesionEstimator(
    const std::string& name, const LesionOptions& options) {
  if (name == "gaussian") return MakeGaussianEstimator(options);
  if (name == "mnat") return MakeMnatEstimator(options);
  if (name == "svd") return MakeSvdEstimator(options);
  if (name == "cvx-min") return MakeCvxMinEstimator(options);
  if (name == "cvx-maxent") return MakeCvxMaxEntEstimator(options);
  if (name == "newton") return MakeNewtonRombergEstimator(options);
  if (name == "bfgs") return MakeBfgsEstimator(options);
  if (name == "opt") return MakeOptEstimator(options);
  return Status::InvalidArgument("unknown lesion estimator: " + name);
}

}  // namespace msketch
