#include "core/estimators/moment_problem.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

double MomentProblem::MapBack(double u) const {
  const double v = map.Inverse(std::clamp(u, -1.0, 1.0));
  const double x = log_domain ? std::exp(v) : v;
  return std::clamp(x, xmin, xmax);
}

Result<MomentProblem> BuildMomentProblem(const MomentsSketch& sketch,
                                         bool use_log_domain) {
  if (sketch.count() == 0) {
    return Status::InvalidArgument("BuildMomentProblem: empty sketch");
  }
  MomentProblem p;
  p.log_domain = use_log_domain;
  p.xmin = sketch.min();
  p.xmax = sketch.max();
  std::vector<double> raw;
  if (use_log_domain) {
    if (!sketch.LogMomentsUsable()) {
      return Status::Unsupported(
          "BuildMomentProblem: log moments unavailable");
    }
    p.map = MakeScaleMap(std::log(sketch.min()), std::log(sketch.max()));
    raw = sketch.LogMoments();
  } else {
    p.map = MakeScaleMap(sketch.min(), sketch.max());
    raw = sketch.StandardMoments();
  }
  const double c = p.map.center / p.map.radius;
  p.k = std::min(sketch.k(), StableKBound(c));
  raw.resize(p.k + 1);
  p.shifted = ShiftPowerMoments(raw, p.map);
  p.cheb = PowerMomentsToChebyshev(raw, p.map);
  return p;
}

std::vector<double> QuantilesFromCellMasses(const std::vector<double>& mass,
                                            const MomentProblem& problem,
                                            const std::vector<double>& phis) {
  const size_t m = mass.size();
  MSKETCH_CHECK(m >= 1);
  double total = 0.0;
  for (double f : mass) total += std::max(f, 0.0);
  std::vector<double> out;
  out.reserve(phis.size());
  const double width = 2.0 / static_cast<double>(m);
  for (double phi : phis) {
    const double target = std::clamp(phi, 0.0, 1.0) * total;
    double acc = 0.0;
    double u = 1.0;
    for (size_t j = 0; j < m; ++j) {
      const double f = std::max(mass[j], 0.0);
      if (acc + f >= target) {
        const double frac = (f > 0.0) ? (target - acc) / f : 0.0;
        u = -1.0 + (static_cast<double>(j) + frac) * width;
        break;
      }
      acc += f;
    }
    out.push_back(problem.MapBack(u));
  }
  return out;
}

}  // namespace msketch
