// Shared preprocessing for the lesion estimators: a single-domain moment
// problem on the scaled support [-1, 1].
#ifndef MSKETCH_CORE_ESTIMATORS_MOMENT_PROBLEM_H_
#define MSKETCH_CORE_ESTIMATORS_MOMENT_PROBLEM_H_

#include <vector>

#include "common/status.h"
#include "core/chebyshev_moments.h"
#include "core/moments_sketch.h"

namespace msketch {

struct MomentProblem {
  int k = 0;                    // usable moment order
  std::vector<double> cheb;     // E[T_i(u)], i = 0..k
  std::vector<double> shifted;  // E[u^i], i = 0..k
  ScaleMap map;                 // scaled domain <-> working domain
  bool log_domain = false;
  double xmin = 0.0, xmax = 0.0;

  /// Maps a scaled coordinate u in [-1, 1] back to the data domain.
  double MapBack(double u) const;
};

/// Builds the problem in the requested domain; Unsupported when log-domain
/// is requested but the sketch saw non-positive values. The usable order
/// is clamped by the Appendix B stability bound.
Result<MomentProblem> BuildMomentProblem(const MomentsSketch& sketch,
                                         bool use_log_domain);

/// Converts per-cell probability masses on a uniform grid over [-1, 1]
/// into quantile estimates (linear interpolation within cells).
std::vector<double> QuantilesFromCellMasses(const std::vector<double>& mass,
                                            const MomentProblem& problem,
                                            const std::vector<double>& phis);

}  // namespace msketch

#endif  // MSKETCH_CORE_ESTIMATORS_MOMENT_PROBLEM_H_
