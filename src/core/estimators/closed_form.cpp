// Closed-form lesion estimators: gaussian and mnat.
#include <algorithm>
#include <cmath>

#include "core/estimators/estimators.h"
#include "core/estimators/moment_problem.h"
#include "numerics/stats.h"

namespace msketch {

namespace {

// Fits a normal distribution to the first two moments of the working
// domain and reads quantiles off the normal quantile function.
class GaussianEstimator : public MomentQuantileEstimator {
 public:
  explicit GaussianEstimator(const LesionOptions& options)
      : options_(options) {}

  std::string Name() const override { return "gaussian"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    // Moments of the *working domain* variable (x or log x), unscaled.
    const std::vector<double> raw = options_.use_log_domain
                                        ? sketch.LogMoments()
                                        : sketch.StandardMoments();
    const double mean = raw[1];
    const double var = std::max(raw[2] - raw[1] * raw[1], 0.0);
    const double std_dev = std::sqrt(var);
    std::vector<double> out;
    out.reserve(phis.size());
    for (double phi : phis) {
      const double clamped = std::clamp(phi, 1e-9, 1.0 - 1e-9);
      double v = mean + std_dev * NormalQuantile(clamped);
      double x = options_.use_log_domain ? std::exp(v) : v;
      out.push_back(std::clamp(x, sketch.min(), sketch.max()));
    }
    return out;
  }

 private:
  LesionOptions options_;
};

// Mnatsakanov (2008): closed-form reconstruction of the CDF from moments
// of data scaled to [0, 1]:
//   F_alpha(u) = sum_{j <= floor(alpha u)} P_j,
//   P_j = sum_{m=j}^{alpha} C(alpha, m) C(m, j) (-1)^(m-j) mu_m.
// Resolution is limited to alpha+1 steps, which is why its error is high
// at k = 10 (Figure 10).
class MnatEstimator : public MomentQuantileEstimator {
 public:
  explicit MnatEstimator(const LesionOptions& options) : options_(options) {}

  std::string Name() const override { return "mnat"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int alpha = p.k;
    // Moments of y = (u + 1) / 2 in [0, 1] from the shifted moments E[u^i]
    // via the binomial expansion of ((u + 1)/2)^m.
    std::vector<double> mu01(alpha + 1, 0.0);
    for (int m = 0; m <= alpha; ++m) {
      double acc = 0.0;
      for (int i = 0; i <= m; ++i) {
        acc += BinomialCoefficient(m, i) * p.shifted[i];
      }
      mu01[m] = acc / std::pow(2.0, static_cast<double>(m));
    }
    // Step masses P_j; clip negatives (fp noise) and renormalize.
    std::vector<double> mass(alpha + 1, 0.0);
    double total = 0.0;
    for (int j = 0; j <= alpha; ++j) {
      double acc = 0.0;
      for (int m = j; m <= alpha; ++m) {
        const double sign = ((m - j) % 2 == 0) ? 1.0 : -1.0;
        acc += BinomialCoefficient(alpha, m) * BinomialCoefficient(m, j) *
               sign * mu01[m];
      }
      mass[j] = std::max(acc, 0.0);
      total += mass[j];
    }
    if (total <= 0.0) {
      return Status::NotConverged("mnat: degenerate mass vector");
    }
    std::vector<double> out;
    out.reserve(phis.size());
    for (double phi : phis) {
      const double target = std::clamp(phi, 0.0, 1.0) * total;
      double acc = 0.0;
      double y = 1.0;
      for (int j = 0; j <= alpha; ++j) {
        if (acc + mass[j] >= target) {
          const double frac =
              (mass[j] > 0.0) ? (target - acc) / mass[j] : 0.0;
          y = (static_cast<double>(j) + frac) /
              static_cast<double>(alpha + 1);
          break;
        }
        acc += mass[j];
      }
      out.push_back(p.MapBack(2.0 * y - 1.0));
    }
    return out;
  }

 private:
  LesionOptions options_;
};

}  // namespace

// Factory hooks (defined across the estimator translation units).
std::unique_ptr<MomentQuantileEstimator> MakeGaussianEstimator(
    const LesionOptions& options) {
  return std::make_unique<GaussianEstimator>(options);
}
std::unique_ptr<MomentQuantileEstimator> MakeMnatEstimator(
    const LesionOptions& options) {
  return std::make_unique<MnatEstimator>(options);
}

}  // namespace msketch
