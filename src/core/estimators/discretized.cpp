// Discretized lesion estimators: svd, cvx-min (LP), cvx-maxent (generic
// first-order solver). These stand in for the paper's ECOS-based solvers;
// like them, they pay a large constant for solving a dense discretized
// problem instead of the structured one (Section 6.3).
#include <algorithm>
#include <cmath>

#include "core/estimators/estimators.h"
#include "core/estimators/moment_problem.h"
#include "numerics/chebyshev.h"
#include "numerics/eigen.h"
#include "numerics/matrix.h"
#include "numerics/simplex.h"

namespace msketch {

namespace {

// Constraint matrix A(i, j) = T_i(u_j) over uniform cell midpoints.
Matrix MomentConstraintMatrix(const MomentProblem& p, int m) {
  Matrix a(p.k + 1, m);
  std::vector<double> tbuf(p.k + 1);
  for (int j = 0; j < m; ++j) {
    const double u = -1.0 + (2.0 * j + 1.0) / m;
    ChebyshevTAll(p.k, u, tbuf.data());
    for (int i = 0; i <= p.k; ++i) a(i, j) = tbuf[i];
  }
  return a;
}

class SvdEstimator : public MomentQuantileEstimator {
 public:
  explicit SvdEstimator(const LesionOptions& options) : options_(options) {}
  std::string Name() const override { return "svd"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int m = options_.grid_points;
    Matrix a = MomentConstraintMatrix(p, m);
    MSKETCH_ASSIGN_OR_RETURN(std::vector<double> f,
                             SvdLeastSquares(a, p.cheb));
    for (double& v : f) v = std::max(v, 0.0);
    return QuantilesFromCellMasses(f, p, phis);
  }

 private:
  LesionOptions options_;
};

// minimize t  s.t.  A f = b,  f_j <= t,  f >= 0   (minimal max density).
class CvxMinEstimator : public MomentQuantileEstimator {
 public:
  explicit CvxMinEstimator(const LesionOptions& options)
      : options_(options) {}
  std::string Name() const override { return "cvx-min"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int m = options_.lp_grid_points;
    Matrix constraints = MomentConstraintMatrix(p, m);
    // Standard form: vars [f_0..f_{m-1}, t, s_0..s_{m-1}].
    const size_t ncols = 2 * static_cast<size_t>(m) + 1;
    const size_t nrows = static_cast<size_t>(p.k + 1 + m);
    Matrix a(nrows, ncols);
    std::vector<double> b(nrows, 0.0);
    for (int i = 0; i <= p.k; ++i) {
      for (int j = 0; j < m; ++j) a(i, j) = constraints(i, j);
      b[i] = p.cheb[i];
    }
    for (int j = 0; j < m; ++j) {
      const size_t row = static_cast<size_t>(p.k + 1 + j);
      a(row, j) = 1.0;                                  // f_j
      a(row, m) = -1.0;                                 // -t
      a(row, static_cast<size_t>(m) + 1 + j) = 1.0;     // +s_j
    }
    std::vector<double> c(ncols, 0.0);
    c[m] = 1.0;
    MSKETCH_ASSIGN_OR_RETURN(LpSolution sol, SolveStandardFormLp(a, b, c));
    std::vector<double> f(sol.x.begin(), sol.x.begin() + m);
    return QuantilesFromCellMasses(f, p, phis);
  }

 private:
  LesionOptions options_;
};

// Discretized maximum entropy via plain gradient descent on the dual
//   g(theta) = log sum_j exp(theta . A_:j) - theta . b,
// a deliberately generic first-order method (the paper's cvx-maxent used a
// generic conic solver and is the slowest estimator in Figure 10).
class CvxMaxEntEstimator : public MomentQuantileEstimator {
 public:
  explicit CvxMaxEntEstimator(const LesionOptions& options)
      : options_(options) {}
  std::string Name() const override { return "cvx-maxent"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int m = options_.grid_points;
    const int d = p.k + 1;
    Matrix a = MomentConstraintMatrix(p, m);

    std::vector<double> theta(d, 0.0);
    std::vector<double> f(m), grad(d);
    double step = 0.25;
    const int max_iter = 20000;
    for (int iter = 0; iter < max_iter; ++iter) {
      // Softmax weights.
      double zmax = -1e300;
      for (int j = 0; j < m; ++j) {
        double e = 0.0;
        for (int i = 0; i < d; ++i) e += theta[i] * a(i, j);
        f[j] = e;
        zmax = std::max(zmax, e);
      }
      double z = 0.0;
      for (int j = 0; j < m; ++j) {
        f[j] = std::exp(f[j] - zmax);
        z += f[j];
      }
      for (int j = 0; j < m; ++j) f[j] /= z;
      double gnorm = 0.0;
      for (int i = 0; i < d; ++i) {
        double acc = 0.0;
        for (int j = 0; j < m; ++j) acc += a(i, j) * f[j];
        grad[i] = acc - p.cheb[i];
        gnorm = std::max(gnorm, std::fabs(grad[i]));
      }
      if (gnorm < 1e-7) break;
      for (int i = 0; i < d; ++i) theta[i] -= step * grad[i];
    }
    return QuantilesFromCellMasses(f, p, phis);
  }

 private:
  LesionOptions options_;
};

}  // namespace

std::unique_ptr<MomentQuantileEstimator> MakeSvdEstimator(
    const LesionOptions& options) {
  return std::make_unique<SvdEstimator>(options);
}
std::unique_ptr<MomentQuantileEstimator> MakeCvxMinEstimator(
    const LesionOptions& options) {
  return std::make_unique<CvxMinEstimator>(options);
}
std::unique_ptr<MomentQuantileEstimator> MakeCvxMaxEntEstimator(
    const LesionOptions& options) {
  return std::make_unique<CvxMaxEntEstimator>(options);
}

}  // namespace msketch
