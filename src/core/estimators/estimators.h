// Alternative moment-based quantile estimators for the lesion study
// (Section 6.3, Figure 10). All consume the same moments sketch; they
// differ in how they invert the moment problem:
//
//   gaussian    - fit N(mean, std) to the first two moments
//   mnat        - Mnatsakanov (2008) closed-form CDF reconstruction
//   svd         - discretize + minimum-norm least squares (SVD)
//   cvx-min     - discretize + LP minimizing the maximum density
//   cvx-maxent  - discretize + generic first-order maxent solve
//   newton      - maxent Newton with per-entry adaptive Romberg integrals
//                 (the paper's solver *without* the Section 4.3 tricks)
//   bfgs        - maxent via limited-memory BFGS (first-order)
//   opt         - our full solver (SolveMaxEnt)
#ifndef MSKETCH_CORE_ESTIMATORS_ESTIMATORS_H_
#define MSKETCH_CORE_ESTIMATORS_ESTIMATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/moments_sketch.h"

namespace msketch {

struct LesionOptions {
  /// Work in the log domain (Figure 10 uses log moments only on milan and
  /// standard moments only on hepmass).
  bool use_log_domain = false;
  /// Discretization resolution for svd / cvx-maxent (the paper used 1000).
  int grid_points = 1000;
  /// Discretization for the LP-based cvx-min (coarser: simplex is dense).
  int lp_grid_points = 256;
};

class MomentQuantileEstimator {
 public:
  virtual ~MomentQuantileEstimator() = default;
  virtual std::string Name() const = 0;
  virtual Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const = 0;
};

/// Names in the paper's Figure 10 order.
std::vector<std::string> LesionEstimatorNames();

Result<std::unique_ptr<MomentQuantileEstimator>> MakeLesionEstimator(
    const std::string& name, const LesionOptions& options = {});

}  // namespace msketch

#endif  // MSKETCH_CORE_ESTIMATORS_ESTIMATORS_H_
