// Iterative maxent lesion estimators: newton (adaptive Romberg
// integration, i.e. the solver *without* the Section 4.3 Chebyshev
// quadrature), bfgs (first-order), and opt (the full solver).
#include <algorithm>
#include <cmath>

#include "core/estimators/estimators.h"
#include "core/estimators/moment_problem.h"
#include "core/maxent_solver.h"
#include "numerics/chebyshev.h"
#include "numerics/integration.h"
#include "numerics/optim.h"
#include "numerics/root_finding.h"

namespace msketch {

namespace {

// Shared: maxent in a single scaled domain with basis T_0..T_k. Builds
// quantiles from the converged theta via a fine Chebyshev CDF.
Result<std::vector<double>> QuantilesFromTheta(
    const std::vector<double>& theta, const MomentProblem& p,
    const std::vector<double>& phis) {
  const int n = 512;
  auto pts = ChebyshevLobattoPoints(n);
  std::vector<double> f(pts.size());
  for (size_t j = 0; j < pts.size(); ++j) {
    f[j] = std::exp(std::min(ChebyshevEval(theta, pts[j]), 700.0));
  }
  auto coeffs = ChebyshevFit(f);
  auto cdf = ChebyshevAntiderivative(coeffs);
  const double total = ChebyshevEval(cdf, 1.0);
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::NotConverged("maxent: degenerate mass");
  }
  std::vector<double> out;
  out.reserve(phis.size());
  for (double phi : phis) {
    const double target = std::clamp(phi, 0.0, 1.0) * total;
    auto fn = [&](double u) { return ChebyshevEval(cdf, u) - target; };
    double u = 0.0;
    if (fn(-1.0) >= 0.0) {
      u = -1.0;
    } else if (fn(1.0) <= 0.0) {
      u = 1.0;
    } else {
      auto root = BrentRoot(fn, -1.0, 1.0, 1e-12);
      u = root.ok() ? root.value() : 0.0;
    }
    out.push_back(p.MapBack(u));
  }
  return out;
}

// Newton with each gradient/Hessian entry evaluated by adaptive Romberg
// integration — O(k^2) independent numeric integrals per iteration.
class NewtonRombergEstimator : public MomentQuantileEstimator {
 public:
  explicit NewtonRombergEstimator(const LesionOptions& options)
      : options_(options) {}
  std::string Name() const override { return "newton"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int d = p.k + 1;
    auto density = [](const std::vector<double>& theta, double u) {
      return std::exp(std::min(ChebyshevEval(theta, u), 700.0));
    };
    ObjectiveFn objective = [&](const std::vector<double>& theta,
                                bool need_hessian, ObjectiveEval* out) {
      auto integrate = [&](auto&& integrand) {
        auto r = RombergIntegrate(integrand, -1.0, 1.0, 1e-10, 1e-13, 18);
        return r.ok() ? r.value()
                      : std::numeric_limits<double>::quiet_NaN();
      };
      out->value = integrate(
          [&](double u) { return density(theta, u); });
      for (int i = 0; i < d; ++i) out->value -= theta[i] * p.cheb[i];
      out->gradient.assign(d, 0.0);
      for (int i = 0; i < d; ++i) {
        out->gradient[i] =
            integrate([&](double u) {
              return ChebyshevT(i, u) * density(theta, u);
            }) -
            p.cheb[i];
      }
      if (need_hessian) {
        out->hessian = Matrix(d, d);
        for (int i = 0; i < d; ++i) {
          for (int j = i; j < d; ++j) {
            const double v = integrate([&](double u) {
              return ChebyshevT(i, u) * ChebyshevT(j, u) *
                     density(theta, u);
            });
            out->hessian(i, j) = v;
            out->hessian(j, i) = v;
          }
        }
      }
    };
    std::vector<double> theta0(d, 0.0);
    theta0[0] = -std::log(2.0);
    NewtonOptions nopts;
    nopts.grad_tol = 1e-9;
    MSKETCH_ASSIGN_OR_RETURN(OptimResult res,
                             NewtonMinimize(objective, theta0, nopts));
    return QuantilesFromTheta(res.x, p, phis);
  }

 private:
  LesionOptions options_;
};

// First-order maxent: gradient via a fixed Clenshaw-Curtis grid, L-BFGS
// for the optimization. Isolates "second order vs first order".
class BfgsEstimator : public MomentQuantileEstimator {
 public:
  explicit BfgsEstimator(const LesionOptions& options) : options_(options) {}
  std::string Name() const override { return "bfgs"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MSKETCH_ASSIGN_OR_RETURN(
        MomentProblem p,
        BuildMomentProblem(sketch, options_.use_log_domain));
    const int d = p.k + 1;
    const int n = 512;
    auto pts = ChebyshevLobattoPoints(n);
    auto w = ClenshawCurtisWeights(n);
    // Basis values on the grid.
    std::vector<std::vector<double>> basis(d, std::vector<double>(n + 1));
    std::vector<double> tbuf(d);
    for (int j = 0; j <= n; ++j) {
      ChebyshevTAll(p.k, pts[j], tbuf.data());
      for (int i = 0; i < d; ++i) basis[i][j] = tbuf[i];
    }
    ObjectiveFn objective = [&](const std::vector<double>& theta, bool,
                                ObjectiveEval* out) {
      std::vector<double> fw(n + 1);
      double integral = 0.0;
      for (int j = 0; j <= n; ++j) {
        double e = 0.0;
        for (int i = 0; i < d; ++i) e += theta[i] * basis[i][j];
        fw[j] = std::exp(std::min(e, 700.0)) * w[j];
        integral += fw[j];
      }
      out->value = integral;
      for (int i = 0; i < d; ++i) out->value -= theta[i] * p.cheb[i];
      out->gradient.assign(d, 0.0);
      for (int i = 0; i < d; ++i) {
        double acc = 0.0;
        for (int j = 0; j <= n; ++j) acc += basis[i][j] * fw[j];
        out->gradient[i] = acc - p.cheb[i];
      }
    };
    std::vector<double> theta0(d, 0.0);
    theta0[0] = -std::log(2.0);
    // First-order methods with backtracking stall near 1e-7; 1e-6 moment
    // match is far below quantile-error resolution anyway.
    LbfgsOptions lopts;
    lopts.grad_tol = 1e-6;
    lopts.max_iter = 5000;
    MSKETCH_ASSIGN_OR_RETURN(OptimResult res,
                             LbfgsMinimize(objective, theta0, lopts));
    return QuantilesFromTheta(res.x, p, phis);
  }

 private:
  LesionOptions options_;
};

// The paper's full solver, restricted to the lesion's single domain.
class OptEstimator : public MomentQuantileEstimator {
 public:
  explicit OptEstimator(const LesionOptions& options) : options_(options) {}
  std::string Name() const override { return "opt"; }

  Result<std::vector<double>> EstimateQuantiles(
      const MomentsSketch& sketch,
      const std::vector<double>& phis) const override {
    MaxEntOptions opts;
    opts.use_log_moments = options_.use_log_domain;
    opts.use_std_moments = !options_.use_log_domain;
    // The lesion study times solver strategies; a cache hit would
    // measure the memo, not the solve.
    opts.use_solver_cache = false;
    return msketch::EstimateQuantiles(sketch, phis, opts);
  }

 private:
  LesionOptions options_;
};

}  // namespace

std::unique_ptr<MomentQuantileEstimator> MakeNewtonRombergEstimator(
    const LesionOptions& options) {
  return std::make_unique<NewtonRombergEstimator>(options);
}
std::unique_ptr<MomentQuantileEstimator> MakeBfgsEstimator(
    const LesionOptions& options) {
  return std::make_unique<BfgsEstimator>(options);
}
std::unique_ptr<MomentQuantileEstimator> MakeOptEstimator(
    const LesionOptions& options) {
  return std::make_unique<OptEstimator>(options);
}

}  // namespace msketch
