#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "core/chebyshev_moments.h"
#include "numerics/eigen.h"
#include "numerics/matrix.h"
#include "numerics/root_finding.h"
#include "numerics/stats.h"

namespace msketch {

namespace {

// E[(x - shift)^j] for j = 0..k from raw moments mu[i] = E[x^i].
std::vector<double> ShiftedMoments(const std::vector<double>& mu,
                                   double shift) {
  const int k = static_cast<int>(mu.size()) - 1;
  std::vector<double> out(k + 1, 0.0);
  out[0] = 1.0;
  for (int j = 1; j <= k; ++j) {
    double acc = 0.0;
    for (int m = 0; m <= j; ++m) {
      acc += BinomialCoefficient(j, m) *
             std::pow(-shift, static_cast<double>(j - m)) * mu[m];
    }
    out[j] = acc;
  }
  return out;
}

// E[(shift - x)^j]: reflect then shift.
std::vector<double> ReflectedMoments(const std::vector<double>& mu,
                                     double shift) {
  const int k = static_cast<int>(mu.size()) - 1;
  std::vector<double> out(k + 1, 0.0);
  out[0] = 1.0;
  for (int j = 1; j <= k; ++j) {
    double acc = 0.0;
    for (int m = 0; m <= j; ++m) {
      // (shift - x)^j = sum C(j,m) shift^(j-m) (-x)^m
      acc += BinomialCoefficient(j, m) *
             std::pow(shift, static_cast<double>(j - m)) *
             ((m % 2 == 0) ? mu[m] : -mu[m]);
    }
    out[j] = acc;
  }
  return out;
}

// Markov: P(Z >= z) <= E[Z^j] / z^j for nonnegative Z, minimized over j.
double BestMarkovTailProb(const std::vector<double>& nonneg_moments,
                          double z) {
  if (z <= 0.0) return 1.0;
  double best = 1.0;
  double zj = 1.0;
  for (size_t j = 1; j < nonneg_moments.size(); ++j) {
    zj *= z;
    const double m = nonneg_moments[j];
    if (m >= 0.0 && zj > 0.0) {
      best = std::min(best, m / zj);
    }
  }
  return std::max(best, 0.0);
}

// Markov bounds in one domain given raw moments of data within [lo, hi].
RankBounds MarkovBoundInDomain(const std::vector<double>& mu, double lo,
                               double hi, double t, double n) {
  RankBounds b{0.0, n};
  // Upper bound on 1 - F(t): P(x - lo >= t - lo).
  const double p_tail =
      BestMarkovTailProb(ShiftedMoments(mu, lo), t - lo);
  b.lower = std::max(b.lower, n * (1.0 - p_tail));
  // Upper bound on F(t): P(hi - x >= hi - t) >= P(x <= t) ... note
  // rank counts strict inferiors; F(t-) <= P(hi - x >= hi - t).
  const double p_head =
      BestMarkovTailProb(ReflectedMoments(mu, hi), hi - t);
  b.upper = std::min(b.upper, n * p_head);
  return b;
}

// ---------------------------------------------------------------------
// RTT bounds machinery: orthonormal polynomials from the Hankel moment
// matrix, kernel polynomial roots, canonical-representation weights.

struct OrthoBasis {
  Matrix chol;  // lower Cholesky factor of the (r+1)x(r+1) Hankel matrix
  int r = 0;    // polynomial degree (number of non-anchor nodes)

  // Orthonormal polynomial values p_0..p_r at x: solve L p~ = v(x).
  std::vector<double> Evaluate(double x) const {
    std::vector<double> v(r + 1);
    double p = 1.0;
    for (int i = 0; i <= r; ++i) {
      v[i] = p;
      p *= x;
    }
    return ForwardSubstitute(chol, v);
  }
};

// Largest r with positive definite Hankel matrix of shifted moments.
Result<OrthoBasis> BuildOrthoBasis(const std::vector<double>& moments,
                                   int max_r) {
  for (int r = max_r; r >= 1; --r) {
    Matrix hankel(r + 1, r + 1);
    for (int i = 0; i <= r; ++i) {
      for (int j = 0; j <= r; ++j) hankel(i, j) = moments[i + j];
    }
    Result<Matrix> chol = CholeskyFactor(hankel, 1e-14);
    if (chol.ok()) {
      OrthoBasis basis;
      basis.chol = std::move(chol).value();
      basis.r = r;
      return basis;
    }
  }
  return Status::Singular("RTT: Hankel matrix not positive definite");
}


// Sharp rank bounds in one (scaled) domain. `moments` are E[u^j] for the
// scaled variable u in [-1, 1]; tq is the scaled threshold.
//
// The canonical representation anchored at tq is computed as a
// Gauss-Radau rule (Golub 1973): the Jacobi matrix of the moment
// sequence, with its last diagonal entry modified so tq is an exact
// eigenvalue. Nodes are the eigenvalues, weights come from the squared
// first eigenvector components — no polynomial root finding, which is
// what makes this numerically dependable when nodes cluster.
Result<RankBounds> RttBoundScaled(const std::vector<double>& moments,
                                  double tq, double n) {
  const int k = static_cast<int>(moments.size()) - 1;
  const int max_r = k / 2;
  if (max_r < 1) return Status::InvalidArgument("RTT: need >= 2 moments");
  MSKETCH_ASSIGN_OR_RETURN(OrthoBasis basis, BuildOrthoBasis(moments, max_r));
  const int r = basis.r;

  // Three-term recurrence coefficients of the orthonormal polynomials
  // from the Cholesky factor of the Hankel matrix:
  //   b_i = L[i+1][i+1] / L[i][i],
  //   a_i = L[i+1][i] / L[i][i] - L[i][i-1] / L[i-1][i-1].
  const Matrix& l = basis.chol;
  std::vector<double> diag(r + 1, 0.0), off(r, 0.0);
  for (int i = 0; i < r; ++i) {
    off[i] = l(i + 1, i + 1) / l(i, i);
    diag[i] = l(i + 1, i) / l(i, i) -
              (i > 0 ? l(i, i - 1) / l(i - 1, i - 1) : 0.0);
  }
  // Anchor the rule at tq: last diagonal a*_r = tq - b_{r-1} *
  // p_{r-1}(tq) / p_r(tq).
  const std::vector<double> pt = basis.Evaluate(tq);
  if (std::fabs(pt[r]) < 1e-280) {
    // tq is (numerically) a Gauss node already; nudge it by a hair.
    return RttBoundScaled(moments, tq + 3e-12, n);
  }
  diag[r] = tq - off[r - 1] * pt[r - 1] / pt[r];

  std::vector<double> first;
  MSKETCH_ASSIGN_OR_RETURN(std::vector<double> nodes,
                           TridiagonalEigen(diag, off, &first));
  double below = 0.0, at = 0.0;
  for (size_t j = 0; j < nodes.size(); ++j) {
    const double w = first[j] * first[j];  // times m0 = 1
    if (nodes[j] < tq - 1e-9) {
      below += w;
    } else if (nodes[j] <= tq + 1e-9) {
      at += w;
    }
  }
  RankBounds b;
  b.lower = std::clamp(n * below, 0.0, n);
  b.upper = std::clamp(n * (below + at), b.lower, n);
  return b;
}

}  // namespace

RankBounds MarkovBound(const MomentsSketch& sketch, double t) {
  const double n = static_cast<double>(sketch.count());
  RankBounds b{0.0, n};
  if (sketch.count() == 0) return b;
  if (t <= sketch.min()) return RankBounds{0.0, 0.0};
  if (t > sketch.max()) return RankBounds{n, n};

  b.Intersect(MarkovBoundInDomain(sketch.StandardMoments(), sketch.min(),
                                  sketch.max(), t, n));
  if (sketch.LogMomentsUsable() && t > 0.0) {
    b.Intersect(MarkovBoundInDomain(sketch.LogMoments(),
                                    std::log(sketch.min()),
                                    std::log(sketch.max()), std::log(t), n));
  }
  return b;
}

RankBounds RttBound(const MomentsSketch& sketch, double t) {
  const double n = static_cast<double>(sketch.count());
  RankBounds b{0.0, n};
  if (sketch.count() == 0) return b;
  if (t <= sketch.min()) return RankBounds{0.0, 0.0};
  if (t > sketch.max()) return RankBounds{n, n};

  // Standard-moment bounds on the scaled domain (conditioning).
  {
    ScaleMap map = MakeScaleMap(sketch.min(), sketch.max());
    auto scaled = ShiftPowerMoments(sketch.StandardMoments(), map);
    auto rb = RttBoundScaled(scaled, map.Forward(t), n);
    if (rb.ok()) b.Intersect(rb.value());
  }
  // Log-moment bounds (paper: run both, take the tighter).
  if (sketch.LogMomentsUsable() && t > 0.0) {
    ScaleMap map =
        MakeScaleMap(std::log(sketch.min()), std::log(sketch.max()));
    auto scaled = ShiftPowerMoments(sketch.LogMoments(), map);
    auto rb = RttBoundScaled(scaled, map.Forward(std::log(t)), n);
    if (rb.ok()) b.Intersect(rb.value());
  }
  // Guarantee validity even if both solves degenerated.
  RankBounds markov = MarkovBound(sketch, t);
  b.Intersect(markov);
  // Crossing bounds mean one domain's solve went numerically bad; fall
  // back to the always-sound Markov bounds.
  if (b.lower > b.upper) return markov;
  return b;
}

double QuantileErrorBound(const MomentsSketch& sketch, double phi,
                          double estimate) {
  if (sketch.count() == 0) return 0.0;
  const double n = static_cast<double>(sketch.count());
  RankBounds b = RttBound(sketch, estimate);
  const double lo = b.lower / n;
  const double hi = b.upper / n;
  return std::max({phi - lo, hi - phi, 0.0});
}

QuantileInterval CertifiedQuantileInterval(const MomentsSketch& sketch,
                                           double phi, int steps) {
  if (sketch.count() == 0) return QuantileInterval{0.0, 0.0};
  QuantileInterval out{sketch.min(), sketch.max()};
  if (sketch.min() >= sketch.max() || steps <= 0) return out;

  const double n = static_cast<double>(sketch.count());
  // Target rank r (1-based): the r-th smallest element. rank(t) counts
  // strict inferiors, so rank(t) < r certifies Q >= t and rank(t) >= r
  // certifies Q <= t (the r-th smallest is preceded by >= r elements).
  double r = std::ceil(phi * n);
  r = std::max(1.0, std::min(r, n));

  // Lower endpoint: largest probe t whose certified rank upper bound
  // stays below r. Each accepted probe is individually sound, so the
  // running max is a certificate regardless of bound monotonicity.
  {
    double lo = sketch.min(), hi = sketch.max();
    for (int i = 0; i < steps; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (!(mid > lo && mid < hi)) break;  // interval exhausted in fp
      if (RttBound(sketch, mid).upper < r) {
        out.lower = std::max(out.lower, mid);
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  // Upper endpoint: smallest probe t whose certified rank lower bound
  // already reaches r.
  {
    double lo = sketch.min(), hi = sketch.max();
    for (int i = 0; i < steps; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (!(mid > lo && mid < hi)) break;
      if (RttBound(sketch, mid).lower >= r) {
        out.upper = std::min(out.upper, mid);
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  // Both endpoints are individually certified, so crossing can only come
  // from floating-point damage inside the bound solves; never hand a
  // crossed certificate to a caller.
  if (out.lower > out.upper) return QuantileInterval{sketch.min(), sketch.max()};
  return out;
}

double HankelConditionNumber(const MomentsSketch& sketch) {
  if (sketch.count() == 0 || !(sketch.min() < sketch.max())) {
    return std::numeric_limits<double>::infinity();
  }
  ScaleMap map = MakeScaleMap(sketch.min(), sketch.max());
  const std::vector<double> mu =
      ShiftPowerMoments(sketch.StandardMoments(), map);
  const int r = (static_cast<int>(mu.size()) - 1) / 2;
  if (r < 1) return std::numeric_limits<double>::infinity();
  Matrix hankel(r + 1, r + 1);
  for (int i = 0; i <= r; ++i) {
    for (int j = 0; j <= r; ++j) hankel(i, j) = mu[i + j];
  }
  return SymmetricConditionNumber(hankel);
}

}  // namespace msketch
