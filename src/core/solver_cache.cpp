#include "core/solver_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/chebyshev_moments.h"
#include "obs/metrics.h"

namespace msketch {

namespace {

void AppendBytes(std::string* key, const void* data, size_t n) {
  key->append(static_cast<const char*>(data), n);
}

void AppendDoubleBits(std::string* key, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendBytes(key, &bits, sizeof(bits));
}

void AppendQuantized(std::string* key, const std::vector<double>& values,
                     double quantum) {
  for (double v : values) {
    const int64_t q = std::llround(v / quantum);
    AppendBytes(key, &q, sizeof(q));
  }
}

SolverCacheOptions Normalize(SolverCacheOptions options) {
  if (options.capacity == 0) options.capacity = 1;
  if (!(options.quantum > 0.0)) options.quantum = 1e-9;
  if (options.segments == 0) options.segments = 1;
  // More segments than entries would make per-segment capacity zero.
  options.segments = std::min(options.segments, options.capacity);
  return options;
}

}  // namespace

SolverCache::SolverCache(SolverCacheOptions options)
    : opt_(Normalize(options)),
      per_segment_capacity_(
          (opt_.capacity + opt_.segments - 1) / opt_.segments),
      segments_(opt_.segments) {}

std::unique_lock<std::mutex> SolverCache::LockSegment(Segment& seg) {
  std::unique_lock<std::mutex> lock(seg.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock.lock();
    // Counted under the lock we just won; contention on the counter
    // itself is impossible.
    ++seg.stats.lock_contention;
  }
  return lock;
}

std::string SolverCache::MakeKey(const MomentsSketch& sketch,
                                 const MaxEntOptions& options) const {
  std::string key;
  key.reserve(16 + 16 * (sketch.k() + 1) * 2 + 64);
  const int32_t k = sketch.k();
  AppendBytes(&key, &k, sizeof(k));
  // Domain: the distribution maps scaled quantiles back through min/max,
  // so those must match exactly for a hit to be reusable.
  AppendDoubleBits(&key, sketch.min());
  AppendDoubleBits(&key, sketch.max());
  // The solver consumes scaled Chebyshev moments, not raw power sums; two
  // sketches with equal scaled moments solve to the same distribution
  // regardless of count.
  const ScaleMap std_map = MakeScaleMap(sketch.min(), sketch.max());
  AppendQuantized(&key, PowerMomentsToChebyshev(sketch.StandardMoments(),
                                                std_map),
                  opt_.quantum);
  const uint8_t log_usable = sketch.LogMomentsUsable() ? 1 : 0;
  AppendBytes(&key, &log_usable, sizeof(log_usable));
  if (log_usable) {
    const ScaleMap log_map =
        MakeScaleMap(std::log(sketch.min()), std::log(sketch.max()));
    AppendQuantized(&key,
                    PowerMomentsToChebyshev(sketch.LogMoments(), log_map),
                    opt_.quantum);
  }
  // Options fingerprint: every knob that changes the solution.
  AppendDoubleBits(&key, options.kappa_max);
  AppendDoubleBits(&key, options.grad_tol);
  AppendDoubleBits(&key, options.warm_gate);
  const int32_t ints[] = {options.min_grid, options.max_grid,
                          options.max_newton_iter, options.max_k1,
                          options.max_k2};
  AppendBytes(&key, ints, sizeof(ints));
  const uint8_t flags = (options.use_std_moments ? 1 : 0) |
                        (options.use_log_moments ? 2 : 0);
  AppendBytes(&key, &flags, sizeof(flags));
  return key;
}

std::shared_ptr<const MaxEntDistribution> SolverCache::Lookup(
    const MomentsSketch& sketch, const MaxEntOptions& options,
    std::string* key_out) {
  if (sketch.count() == 0) return nullptr;
  std::string key = MakeKey(sketch, options);
  Segment& seg = SegmentFor(key);
  auto lock = LockSegment(seg);
  auto it = seg.map.find(key);
  if (key_out != nullptr) *key_out = std::move(key);
  if (it == seg.map.end()) {
    ++seg.stats.misses;
    return nullptr;
  }
  ++seg.stats.hits;
  seg.lru.splice(seg.lru.begin(), seg.lru, it->second);
  return it->second->second;
}

void SolverCache::Insert(const MomentsSketch& sketch,
                         const MaxEntOptions& options,
                         std::shared_ptr<const MaxEntDistribution> dist) {
  if (sketch.count() == 0 || dist == nullptr) return;
  InsertWithKey(MakeKey(sketch, options), std::move(dist));
}

void SolverCache::InsertWithKey(
    std::string key, std::shared_ptr<const MaxEntDistribution> dist) {
  if (key.empty() || dist == nullptr) return;
  Segment& seg = SegmentFor(key);
  auto lock = LockSegment(seg);
  auto it = seg.map.find(key);
  if (it != seg.map.end()) {
    // Keep the first solution: concurrent solvers of quantized-equal
    // sketches may race here, and stability beats last-writer-wins.
    seg.lru.splice(seg.lru.begin(), seg.lru, it->second);
    return;
  }
  seg.lru.emplace_front(key, std::move(dist));
  seg.map.emplace(std::move(key), seg.lru.begin());
  ++seg.stats.insertions;
  while (seg.map.size() > per_segment_capacity_) {
    seg.map.erase(seg.lru.back().first);
    seg.lru.pop_back();
    ++seg.stats.evictions;
  }
}

CacheStats SolverCache::stats() const {
  CacheStats total;
  for (const Segment& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg.mu);
    total.MergeFrom(seg.stats);
  }
  return total;
}

size_t SolverCache::size() const {
  size_t total = 0;
  for (const Segment& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg.mu);
    total += seg.map.size();
  }
  return total;
}

void SolverCache::Clear() {
  for (Segment& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg.mu);
    seg.lru.clear();
    seg.map.clear();
    seg.stats = CacheStats{};
  }
}

SolverCache& GlobalSolverCache() {
  // Sized for dashboard-style workloads: a few hundred distinct cells
  // re-estimated across queries (~1 MB of CDF tables), not a whole cube.
  static SolverCache* cache =
      new SolverCache(SolverCacheOptions{256, 1e-9, 8});
  return *cache;
}

namespace {

// Scrape-time collector for the process-wide cache; registered at load
// time (not lazily inside GlobalSolverCache) so a scrape shows the
// cache families — at zero — even before the first cached estimate,
// and never removed (the cache is immortal). Segment stats are read
// under their own locks inside stats(). Both singletons involved are
// function-local statics, so the init-order here is safe.
const int g_cache_collector_id = obs::GlobalRegistry().AddCollector(
    [](obs::MetricsEmitter& em) {
      const CacheStats s = GlobalSolverCache().stats();
      em.EmitCounter("msk_solver_cache_hits_total", {},
                     "Global solver-cache hits", s.hits);
      em.EmitCounter("msk_solver_cache_misses_total", {},
                     "Global solver-cache misses", s.misses);
      em.EmitCounter("msk_solver_cache_insertions_total", {},
                     "Global solver-cache insertions", s.insertions);
      em.EmitCounter("msk_solver_cache_evictions_total", {},
                     "Global solver-cache LRU evictions", s.evictions);
      em.EmitCounter("msk_solver_cache_lock_contention_total", {},
                     "Contended segment-lock acquisitions",
                     s.lock_contention);
      em.EmitGauge("msk_solver_cache_size", {},
                   "Entries resident in the global solver cache",
                   static_cast<double>(GlobalSolverCache().size()));
    });

}  // namespace

}  // namespace msketch
