// The 4-lane moment accumulation kernel, shared between
// MomentsSketch::AccumulateBatch (unit-stride member arrays) and the
// ingest DeltaChunk slot lanes (column-major, stride = slot count).
//
// Both callers need the SAME addition sequence per column so a chunk
// slot folded from a pending buffer is bit-identical to a MomentsSketch
// fed the same values — that identity is what lets the lock-free ingest
// path keep the single-writer bit-exactness guarantees. Centralizing
// the loop makes it true by construction: the per-lane multiply chains
// are independent (vectorizable), and each column's four adds issue in
// lane order, matching the scalar accumulate loop element for element.
//
// The column index is abstracted as an inlined callable (`idx(i)` ->
// flat offset of order i), so the unit-stride instantiation compiles to
// exactly the pre-refactor code and the strided one pays only the
// offset arithmetic.
#ifndef MSKETCH_CORE_ACCUMULATE_KERNEL_H_
#define MSKETCH_CORE_ACCUMULATE_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace msketch {
namespace internal {

/// Adds one element to the target state (Algorithm 1, accumulate).
/// `power[pow_idx(i)]` holds sum x^(i+1), `logs[log_idx(i)]` holds
/// sum log^(i+1) x over positive elements.
template <typename PowIdx, typename LogIdx>
inline void AccumulateOneInto(int k, uint64_t* count, uint64_t* log_count,
                              double* min, double* max, double* power,
                              PowIdx pow_idx, double* logs, LogIdx log_idx,
                              double x) {
  MSKETCH_DCHECK(std::isfinite(x));
  *min = std::min(*min, x);
  *max = std::max(*max, x);
  ++*count;
  double p = 1.0;
  for (int i = 0; i < k; ++i) {
    p *= x;
    power[pow_idx(i)] += p;
  }
  if (x > 0.0) {
    ++*log_count;
    const double lx = std::log(x);
    double lp = 1.0;
    for (int i = 0; i < k; ++i) {
      lp *= lx;
      logs[log_idx(i)] += lp;
    }
  }
}

/// Adds `n` elements, bit-for-bit equal to n in-order AccumulateOneInto
/// calls: four elements per step with independent power/log multiply
/// chains, each column's additions issued in element order.
template <typename PowIdx, typename LogIdx>
inline void AccumulateBatchInto(int k, uint64_t* count, uint64_t* log_count,
                                double* min, double* max, double* power,
                                PowIdx pow_idx, double* logs, LogIdx log_idx,
                                const double* xs, size_t n) {
  size_t j = 0;
  double mn = *min, mx = *max;
  for (; j + 4 <= n; j += 4) {
    const double x0 = xs[j], x1 = xs[j + 1], x2 = xs[j + 2], x3 = xs[j + 3];
    MSKETCH_DCHECK(std::isfinite(x0) && std::isfinite(x1) &&
                   std::isfinite(x2) && std::isfinite(x3));
    mn = std::min(std::min(std::min(std::min(mn, x0), x1), x2), x3);
    mx = std::max(std::max(std::max(std::max(mx, x0), x1), x2), x3);
    *count += 4;
    double p0 = 1.0, p1 = 1.0, p2 = 1.0, p3 = 1.0;
    for (int i = 0; i < k; ++i) {
      p0 *= x0;
      p1 *= x1;
      p2 *= x2;
      p3 *= x3;
      double* slot = power + pow_idx(i);
      *slot += p0;
      *slot += p1;
      *slot += p2;
      *slot += p3;
    }
    if (x0 > 0.0 && x1 > 0.0 && x2 > 0.0 && x3 > 0.0) {
      *log_count += 4;
      const double l0 = std::log(x0), l1 = std::log(x1);
      const double l2 = std::log(x2), l3 = std::log(x3);
      double q0 = 1.0, q1 = 1.0, q2 = 1.0, q3 = 1.0;
      for (int i = 0; i < k; ++i) {
        q0 *= l0;
        q1 *= l1;
        q2 *= l2;
        q3 *= l3;
        double* slot = logs + log_idx(i);
        *slot += q0;
        *slot += q1;
        *slot += q2;
        *slot += q3;
      }
    } else {
      // Mixed-sign block: fall back to per-element log accumulation so
      // the positive elements' contributions land in element order.
      for (size_t l = 0; l < 4; ++l) {
        const double x = xs[j + l];
        if (x <= 0.0) continue;
        ++*log_count;
        const double lx = std::log(x);
        double lp = 1.0;
        for (int i = 0; i < k; ++i) {
          lp *= lx;
          logs[log_idx(i)] += lp;
        }
      }
    }
  }
  *min = mn;
  *max = mx;
  for (; j < n; ++j) {
    AccumulateOneInto(k, count, log_count, min, max, power, pow_idx, logs,
                      log_idx, xs[j]);
  }
}

}  // namespace internal
}  // namespace msketch

#endif  // MSKETCH_CORE_ACCUMULATE_KERNEL_H_
