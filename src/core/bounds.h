// Moment-based rank bounds (Section 5.1): Markov inequalities on shifted /
// reflected / log-transformed data, and the sharper RTT bounds (Racz, Tari,
// Telek 2006) derived from canonical representations of the truncated
// moment problem (Chebyshev-Markov-Stieltjes inequalities).
//
// These are worst-case bounds over *every* distribution matching the
// sketch's moments, so cascade decisions based on them can never disagree
// with the maximum entropy estimate (no false negatives, Section 5.2).
#ifndef MSKETCH_CORE_BOUNDS_H_
#define MSKETCH_CORE_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Bounds on rank(t) = #{x in D : x < t}, inclusive.
struct RankBounds {
  double lower = 0.0;
  double upper = 0.0;

  /// Intersects with another valid pair of bounds.
  void Intersect(const RankBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper < other.upper ? upper : other.upper;
  }
};

/// Markov-inequality bounds using the transforms T+(D) = x - xmin,
/// T-(D) = xmax - x, and (when usable) their log-domain counterparts.
RankBounds MarkovBound(const MomentsSketch& sketch, double t);

/// RTT bounds: sharp CDF bounds at t from the canonical representation of
/// the moment sequence anchored at t. Runs on standard moments and (when
/// usable) log moments, intersecting the results. Falls back to Markov
/// bounds if the Hankel factorization degenerates entirely.
RankBounds RttBound(const MomentsSketch& sketch, double t);

/// Worst-case quantile error (Section 3.1, Eq. 1) of `estimate` as a
/// phi-quantile of the sketch's dataset, certified by RttBound:
///   eps = max(phi - rank_lo/n, rank_hi/n - phi, 0).
double QuantileErrorBound(const MomentsSketch& sketch, double phi,
                          double estimate);

/// Certified value-domain enclosure of a quantile: the true phi-quantile
/// of every dataset matching the sketch's moments lies in [lower, upper].
struct QuantileInterval {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
};

/// Certified enclosure of the true phi-quantile from moment bounds alone
/// (no solved density needed): bisection over the value domain where each
/// probe t is certified individually by RttBound — if even the upper rank
/// bound at t is short of the target rank, the quantile is >= t, and
/// symmetrically for the lower bound. Individually-sound probes keep the
/// result a certificate even when the rank bounds are not numerically
/// monotone in t. Worst case (degenerate bounds) returns [min, max],
/// which is still sound. `steps` bisection probes per endpoint, each one
/// RttBound evaluation. Returns {0, 0} on an empty sketch.
QuantileInterval CertifiedQuantileInterval(const MomentsSketch& sketch,
                                           double phi, int steps = 24);

/// Condition number of the Hankel moment matrix on the scaled standard
/// domain — the router's conditioning signal. Large values mean the
/// moment vector is near the boundary of the moment cone (near-atomic or
/// near-singular data) and the maxent solve is unreliable. Returns +inf
/// for empty or point-mass sketches.
double HankelConditionNumber(const MomentsSketch& sketch);

}  // namespace msketch

#endif  // MSKETCH_CORE_BOUNDS_H_
