#include "core/moments_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/accumulate_kernel.h"
#include "core/simd_reduce.h"

namespace msketch {
namespace {

// Unit-stride column indexing: the sketch's member vectors are dense
// order-major arrays, so the kernel's idx(i) is the identity.
struct UnitIdx {
  size_t operator()(int i) const { return static_cast<size_t>(i); }
};

}  // namespace

MomentsSketch::MomentsSketch(int k) : k_(k) {
  MSKETCH_CHECK(k >= 1 && k <= 64);
  power_sums_.assign(k, 0.0);
  log_sums_.assign(k, 0.0);
}

void MomentsSketch::Accumulate(double x) {
  internal::AccumulateOneInto(k_, &count_, &log_count_, &min_, &max_,
                              power_sums_.data(), UnitIdx{}, log_sums_.data(),
                              UnitIdx{}, x);
}

void MomentsSketch::AccumulateBatch(const double* xs, size_t n) {
  // The shared 4-lane kernel (core/accumulate_kernel.h), instantiated at
  // unit stride: identical code to the pre-extraction loop, and the same
  // per-column addend sequence as scalar Accumulate — hence bit-identical
  // to an in-order element loop.
  internal::AccumulateBatchInto(k_, &count_, &log_count_, &min_, &max_,
                                power_sums_.data(), UnitIdx{},
                                log_sums_.data(), UnitIdx{}, xs, n);
}

Status MomentsSketch::Merge(const MomentsSketch& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("MomentsSketch: mismatched order k");
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  log_count_ += other.log_count_;
  for (int i = 0; i < k_; ++i) {
    power_sums_[i] += other.power_sums_[i];
    log_sums_[i] += other.log_sums_[i];
  }
  return Status::OK();
}

Status MomentsSketch::Subtract(const MomentsSketch& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("MomentsSketch: mismatched order k");
  }
  if (other.count_ > count_ || other.log_count_ > log_count_) {
    return Status::InvalidArgument(
        "MomentsSketch: subtracting more elements than present");
  }
  count_ -= other.count_;
  log_count_ -= other.log_count_;
  for (int i = 0; i < k_; ++i) {
    power_sums_[i] -= other.power_sums_[i];
    log_sums_[i] -= other.log_sums_[i];
  }
  // Same guards as SubtractFlat, so the object and columnar turnstile
  // paths stay bit-identical step for step.
  ApplyCancellationGuards();
  return Status::OK();
}

Status MomentsSketch::MergeFlat(const FlatMomentColumns& cols,
                                const uint32_t* cell_ids, size_t n) {
  if (cols.k != k_) {
    return Status::InvalidArgument("MergeFlat: mismatched order k");
  }
  if (n == 0) return Status::OK();
  for (size_t j = 0; j < n; ++j) {
    if (cell_ids[j] >= cols.num_cells) {
      return Status::OutOfRange("MergeFlat: cell id out of range");
    }
  }
  // Cell-outer, order-inner: the k accumulators form independent FP
  // dependency chains (same instruction-level parallelism as per-object
  // Merge), while each column's additions still happen in id order — so
  // the result is bit-identical to per-object merges in the same order.
  double* power = power_sums_.data();
  double* logs = log_sums_.data();
  uint64_t count = 0, log_count = 0;
  double mn = min_, mx = max_;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t id = cell_ids[j];
    for (int i = 0; i < k_; ++i) power[i] += cols.power_sums[i][id];
    for (int i = 0; i < k_; ++i) logs[i] += cols.log_sums[i][id];
    count += cols.counts[id];
    log_count += cols.log_counts[id];
    mn = std::min(mn, cols.mins[id]);
    mx = std::max(mx, cols.maxs[id]);
  }
  count_ += count;
  log_count_ += log_count;
  min_ = mn;
  max_ = mx;
  return Status::OK();
}

Status MomentsSketch::DrainIntoCell(const MutableFlatMomentColumns& cols,
                                    uint32_t cell) const {
  if (cols.k != k_) {
    return Status::InvalidArgument("DrainIntoCell: mismatched order k");
  }
  if (cell >= cols.num_cells) {
    return Status::OutOfRange("DrainIntoCell: cell id out of range");
  }
  if (count_ == 0) return Status::OK();
  const double* power = power_sums_.data();
  const double* logs = log_sums_.data();
  for (int i = 0; i < k_; ++i) cols.power_sums[i][cell] += power[i];
  for (int i = 0; i < k_; ++i) cols.log_sums[i][cell] += logs[i];
  cols.counts[cell] += count_;
  cols.log_counts[cell] += log_count_;
  cols.mins[cell] = std::min(cols.mins[cell], min_);
  cols.maxs[cell] = std::max(cols.maxs[cell], max_);
  return Status::OK();
}

Status MomentsSketch::MergeFlatRange(const FlatMomentColumns& cols,
                                     size_t begin, size_t end) {
  if (cols.k != k_) {
    return Status::InvalidArgument("MergeFlatRange: mismatched order k");
  }
  if (begin > end || end > cols.num_cells) {
    return Status::OutOfRange("MergeFlatRange: bad cell range");
  }
  // Unit-stride streams over every column, cell-outer for ILP (see
  // MergeFlat); per-column addition order is ascending cell id.
  double* power = power_sums_.data();
  double* logs = log_sums_.data();
  uint64_t count = 0, log_count = 0;
  double mn = min_, mx = max_;
  for (size_t j = begin; j < end; ++j) {
    for (int i = 0; i < k_; ++i) power[i] += cols.power_sums[i][j];
    for (int i = 0; i < k_; ++i) logs[i] += cols.log_sums[i][j];
    count += cols.counts[j];
    log_count += cols.log_counts[j];
    mn = std::min(mn, cols.mins[j]);
    mx = std::max(mx, cols.maxs[j]);
  }
  count_ += count;
  log_count_ += log_count;
  min_ = mn;
  max_ = mx;
  return Status::OK();
}

Status MomentsSketch::SubtractFlat(const FlatMomentColumns& cols,
                                   const uint32_t* cell_ids, size_t n) {
  if (cols.k != k_) {
    return Status::InvalidArgument("SubtractFlat: mismatched order k");
  }
  uint64_t count = 0, log_count = 0;
  for (size_t j = 0; j < n; ++j) {
    if (cell_ids[j] >= cols.num_cells) {
      return Status::OutOfRange("SubtractFlat: cell id out of range");
    }
    count += cols.counts[cell_ids[j]];
    log_count += cols.log_counts[cell_ids[j]];
  }
  if (count > count_ || log_count > log_count_) {
    return Status::InvalidArgument(
        "SubtractFlat: subtracting more elements than present");
  }
  double* power = power_sums_.data();
  double* logs = log_sums_.data();
  for (size_t j = 0; j < n; ++j) {
    const uint32_t id = cell_ids[j];
    for (int i = 0; i < k_; ++i) power[i] -= cols.power_sums[i][id];
    for (int i = 0; i < k_; ++i) logs[i] -= cols.log_sums[i][id];
  }
  count_ -= count;
  log_count_ -= log_count;
  ApplyCancellationGuards();
  return Status::OK();
}

Status MomentsSketch::MergeFlatRangeFast(const FlatMomentColumns& cols,
                                         size_t begin, size_t end) {
  if (cols.k != k_) {
    return Status::InvalidArgument("MergeFlatRangeFast: mismatched order k");
  }
  if (begin > end || end > cols.num_cells) {
    return Status::OutOfRange("MergeFlatRangeFast: bad cell range");
  }
  const size_t n = end - begin;
  if (n == 0) return Status::OK();
  // Column-major: each column is one vectorized unit-stride reduction
  // into a register sum, folded into the sketch with a single add — no
  // per-cell store/reload of the accumulators, and one prefetch-friendly
  // stream at a time.
  for (int i = 0; i < k_; ++i) {
    power_sums_[i] += simd::ReduceAddRange(cols.power_sums[i] + begin, n);
  }
  for (int i = 0; i < k_; ++i) {
    log_sums_[i] += simd::ReduceAddRange(cols.log_sums[i] + begin, n);
  }
  uint64_t count = 0, log_count = 0;
  for (size_t j = begin; j < end; ++j) count += cols.counts[j];
  for (size_t j = begin; j < end; ++j) log_count += cols.log_counts[j];
  count_ += count;
  log_count_ += log_count;
  double mn, mx;
  simd::ReduceMinMaxRange(cols.mins + begin, n, &mn, &mx);
  min_ = std::min(min_, mn);
  simd::ReduceMinMaxRange(cols.maxs + begin, n, &mn, &mx);
  max_ = std::max(max_, mx);
  return Status::OK();
}

Status MomentsSketch::MergeFlatFast(const FlatMomentColumns& cols,
                                    const uint32_t* cell_ids, size_t n) {
  if (cols.k != k_) {
    return Status::InvalidArgument("MergeFlatFast: mismatched order k");
  }
  if (n == 0) return Status::OK();
  for (size_t j = 0; j < n; ++j) {
    if (cell_ids[j] >= cols.num_cells) {
      return Status::OutOfRange("MergeFlatFast: cell id out of range");
    }
  }
  for (int i = 0; i < k_; ++i) {
    power_sums_[i] += simd::ReduceAddGather(cols.power_sums[i], cell_ids, n);
  }
  for (int i = 0; i < k_; ++i) {
    log_sums_[i] += simd::ReduceAddGather(cols.log_sums[i], cell_ids, n);
  }
  uint64_t count = 0, log_count = 0;
  double mn = min_, mx = max_;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t id = cell_ids[j];
    count += cols.counts[id];
    log_count += cols.log_counts[id];
    mn = std::min(mn, cols.mins[id]);
    mx = std::max(mx, cols.maxs[id]);
  }
  count_ += count;
  log_count_ += log_count;
  min_ = mn;
  max_ = mx;
  return Status::OK();
}

Status MomentsSketch::SubtractFlatFast(const FlatMomentColumns& cols,
                                       const uint32_t* cell_ids, size_t n) {
  if (cols.k != k_) {
    return Status::InvalidArgument("SubtractFlatFast: mismatched order k");
  }
  uint64_t count = 0, log_count = 0;
  for (size_t j = 0; j < n; ++j) {
    if (cell_ids[j] >= cols.num_cells) {
      return Status::OutOfRange("SubtractFlatFast: cell id out of range");
    }
    count += cols.counts[cell_ids[j]];
    log_count += cols.log_counts[cell_ids[j]];
  }
  if (count > count_ || log_count > log_count_) {
    return Status::InvalidArgument(
        "SubtractFlatFast: subtracting more elements than present");
  }
  // One lane-structured sum of the subtrahend per column, then a single
  // subtract — the complement-plan analogue of MergeFlatFast.
  for (int i = 0; i < k_; ++i) {
    power_sums_[i] -= simd::ReduceAddGather(cols.power_sums[i], cell_ids, n);
  }
  for (int i = 0; i < k_; ++i) {
    log_sums_[i] -= simd::ReduceAddGather(cols.log_sums[i], cell_ids, n);
  }
  count_ -= count;
  log_count_ -= log_count;
  ApplyCancellationGuards();
  return Status::OK();
}

void MomentsSketch::ApplyCancellationGuards() {
  if (count_ == 0) {
    std::fill(power_sums_.begin(), power_sums_.end(), 0.0);
    std::fill(log_sums_.begin(), log_sums_.end(), 0.0);
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    return;
  }
  if (log_count_ == 0) {
    std::fill(log_sums_.begin(), log_sums_.end(), 0.0);
  }
  // power_sums_[i] holds the exponent-(i+1) sum, so odd i is an even
  // power: a sum of non-negative terms that only cancellation noise can
  // drive negative.
  for (int i = 1; i < k_; i += 2) {
    if (power_sums_[i] < 0.0) power_sums_[i] = 0.0;
    if (log_sums_[i] < 0.0) log_sums_[i] = 0.0;
  }
}

void MomentsSketch::SetRange(double min, double max) {
  MSKETCH_CHECK(min <= max);
  min_ = min;
  max_ = max;
}

std::vector<double> MomentsSketch::StandardMoments() const {
  std::vector<double> mu(k_ + 1, 0.0);
  mu[0] = 1.0;
  if (count_ == 0) return mu;
  const double inv = 1.0 / static_cast<double>(count_);
  for (int i = 0; i < k_; ++i) mu[i + 1] = power_sums_[i] * inv;
  return mu;
}

std::vector<double> MomentsSketch::LogMoments() const {
  std::vector<double> nu(k_ + 1, 0.0);
  nu[0] = 1.0;
  if (log_count_ == 0) return nu;
  const double inv = 1.0 / static_cast<double>(log_count_);
  for (int i = 0; i < k_; ++i) nu[i + 1] = log_sums_[i] * inv;
  return nu;
}

size_t MomentsSketch::SizeBytes() const {
  // min, max, 2k sums (doubles) + count, log_count (u64) + k (u16).
  return (2 + 2 * static_cast<size_t>(k_)) * sizeof(double) +
         2 * sizeof(uint64_t) + sizeof(uint16_t);
}

void MomentsSketch::Serialize(BytesWriter* out) const {
  out->PutU32(static_cast<uint32_t>(k_));
  out->PutU64(count_);
  out->PutU64(log_count_);
  out->PutDouble(min_);
  out->PutDouble(max_);
  for (double v : power_sums_) out->PutDouble(v);
  for (double v : log_sums_) out->PutDouble(v);
}

Result<MomentsSketch> MomentsSketch::Deserialize(BytesReader* in) {
  uint32_t k = 0;
  MSKETCH_RETURN_NOT_OK(in->GetU32(&k));
  if (k < 1 || k > 64) {
    return Status::Serialization("MomentsSketch: bad order k");
  }
  MomentsSketch s(static_cast<int>(k));
  MSKETCH_RETURN_NOT_OK(in->GetU64(&s.count_));
  MSKETCH_RETURN_NOT_OK(in->GetU64(&s.log_count_));
  MSKETCH_RETURN_NOT_OK(in->GetDouble(&s.min_));
  MSKETCH_RETURN_NOT_OK(in->GetDouble(&s.max_));
  for (int i = 0; i < s.k_; ++i) {
    MSKETCH_RETURN_NOT_OK(in->GetDouble(&s.power_sums_[i]));
  }
  for (int i = 0; i < s.k_; ++i) {
    MSKETCH_RETURN_NOT_OK(in->GetDouble(&s.log_sums_[i]));
  }
  if (s.log_count_ > s.count_) {
    return Status::Serialization("MomentsSketch: log_count > count");
  }
  return s;
}

bool MomentsSketch::IdenticalTo(const MomentsSketch& other) const {
  if (k_ != other.k_ || count_ != other.count_ ||
      log_count_ != other.log_count_) {
    return false;
  }
  if (count_ > 0 && (min_ != other.min_ || max_ != other.max_)) return false;
  for (int i = 0; i < k_; ++i) {
    if (power_sums_[i] != other.power_sums_[i]) return false;
    if (log_sums_[i] != other.log_sums_[i]) return false;
  }
  return true;
}

}  // namespace msketch
