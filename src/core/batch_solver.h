// Lane-batched maximum entropy solver: SIMD Newton across groups.
//
// A high-cardinality GROUP BY solves one maxent problem per group, and
// after the merge engine (PR 3) and the warm-start/cache tiers (PR 2)
// those solves dominate end-to-end latency. Each Newton iteration
// evaluates exp(theta . basis) and quadrature dot products over a shared
// 129-point Chebyshev grid — per group, one at a time. This solver packs
// groups whose greedy selection picked the same moment subset into
// kSolverLanes = 8 struct-of-lanes problems and runs damped Newton on
// all lanes simultaneously: one pass over the shared grid evaluates a
// vectorizable exp kernel (core/simd_exp.h) and accumulates every lane's
// integral, gradient, and Hessian entries together.
//
// Groups are admitted through a streaming queue: Enqueue prepares the
// group (scalar: moment conversion, atomic screen, greedy selection —
// core/maxent_problem.h), buckets it by selection signature, and fires a
// packed solve whenever a bucket fills; FlushAll drains partial buckets.
// Results are delivered through a caller sink, so the batch pipeline
// (cube/batch_query.cpp) and the threshold cascade's survivor stream
// both lane-fill naturally.
//
// Semantics:
//   * lanes are mathematically independent — no cross-lane arithmetic,
//     masked convergence, per-lane line search — so a group's result
//     does not depend on which groups it was packed with, and repeat
//     runs are bit-identical;
//   * a lane whose Newton diverges falls back to the scalar SolveFrom
//     loop (cold seed), reproducing per-group SolveMaxEnt behavior
//     including the drop-moments backoff, so answers never regress;
//   * a lane that converges but needs a finer quadrature grid continues
//     on the scalar escalation path from its converged theta (rare:
//     ~0.3% of groups on the drifting-cohort workload);
//   * per-lane results differ from scalar solves only through the exp
//     kernel (~1 ulp per evaluation) — parity is within Newton's own
//     grad_tol-implied tolerance, not bit-identity. Callers needing
//     bit-exact scalar parity use BatchOptions::use_lane_solver=false.
//
// Warm chaining: each bucket remembers its last converged theta; new
// lanes whose targets pass the warm gate start there (with the adaptive
// opening step), mirroring the scalar chain's WarmStart handoff within
// a fixed moment subset.
#ifndef MSKETCH_CORE_BATCH_SOLVER_H_
#define MSKETCH_CORE_BATCH_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "core/maxent_problem.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

/// Solver lanes per packed Newton run (struct-of-lanes width; matches
/// the reduce-kernel lane count so AVX2 uses two registers per slot).
constexpr size_t kSolverLanes = 8;

struct LaneSolverStats {
  uint64_t enqueued = 0;
  /// Lane-batched Newton executions and the lanes they carried; the
  /// occupancy ratio is the headline packing metric.
  uint64_t packed_solves = 0;
  uint64_t packed_lanes = 0;
  uint64_t lane_converged = 0;  // solved entirely in the packed path
  uint64_t lane_escalated = 0;  // finished on a finer grid (scalar)
  uint64_t lane_fallbacks = 0;  // diverged; re-solved by the scalar loop
  uint64_t warm_lanes = 0;      // seeded from the bucket chain
  uint64_t prep_failures = 0;   // empty/atomic/unusable groups
  /// Degradation counters (previously dropped inside the lane solver):
  uint64_t atomic_screen_hits = 0;  // prep refusals from the atomic screen
  uint64_t iteration_capped = 0;    // lanes stopped at max_newton_iter

  /// Mean fraction of lanes occupied per packed solve (0 when none ran).
  double LaneOccupancy() const {
    return packed_solves == 0
               ? 0.0
               : static_cast<double>(packed_lanes) /
                     (static_cast<double>(packed_solves) * kSolverLanes);
  }
  void MergeFrom(const LaneSolverStats& other) {
    enqueued += other.enqueued;
    packed_solves += other.packed_solves;
    packed_lanes += other.packed_lanes;
    lane_converged += other.lane_converged;
    lane_escalated += other.lane_escalated;
    lane_fallbacks += other.lane_fallbacks;
    warm_lanes += other.warm_lanes;
    prep_failures += other.prep_failures;
    atomic_screen_hits += other.atomic_screen_hits;
    iteration_capped += other.iteration_capped;
  }
};

/// Streaming lane-batched solver. Single-threaded: the batch pipeline
/// instantiates one per worker shard. Results can arrive out of enqueue
/// order (bucket fills interleave); the sink's `tag` identifies the
/// request.
class LaneMaxEntSolver {
 public:
  using Sink = std::function<void(size_t tag, Result<MaxEntDistribution>)>;

  /// `use_warm_start` enables the per-bucket seed chain. The sink is
  /// invoked synchronously from Enqueue/FlushAll, exactly once per tag.
  LaneMaxEntSolver(const MaxEntOptions& options, bool use_warm_start,
                   Sink sink);

  /// Queues one group. Degenerate and prep-refused groups are delivered
  /// immediately; the rest solve when their bucket fills or FlushAll
  /// runs. The sketch is not referenced after Enqueue returns.
  void Enqueue(size_t tag, const MomentsSketch& sketch);

  /// Solves every partially-filled bucket. Idempotent.
  void FlushAll();

  const LaneSolverStats& stats() const { return stats_; }

 private:
  struct Lane {
    size_t tag = 0;
    MaxEntProblem problem;
  };
  struct Bucket {
    std::vector<Lane> lanes;
    // Warm chain: last converged theta (canonical slot order) and the
    // targets it fitted, for the per-lane warm gate.
    bool has_seed = false;
    std::vector<double> seed_theta;
    std::vector<double> seed_targets;
  };
  // Selection signature: (log_primary, primary-order mask, secondary-
  // order mask). Selection emits canonical ascending slot order, so
  // equal signatures imply slot-compatible problems.
  using Signature = std::tuple<bool, uint64_t, uint64_t>;

  void SolveBucket(Bucket* bucket);

  MaxEntOptions opt_;
  bool warm_;
  Sink sink_;
  CondMemo cond_memo_;
  std::map<Signature, Bucket> buckets_;
  LaneSolverStats stats_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_BATCH_SOLVER_H_
