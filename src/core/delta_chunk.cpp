#include "core/delta_chunk.h"

#include <algorithm>
#include <limits>

#include "core/accumulate_kernel.h"

namespace msketch {
namespace {

// Column-major lane indexing: order i lives at offset i * num_slots
// from the slot's base pointer.
struct StrideIdx {
  size_t stride;
  size_t operator()(int i) const { return static_cast<size_t>(i) * stride; }
};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

DeltaChunk::DeltaChunk(int k, size_t capacity, size_t batch_size, int kll_k)
    : k_(k), capacity_(capacity), batch_size_(batch_size), kll_k_(kll_k) {
  MSKETCH_CHECK(k >= 1 && k <= 64);
  MSKETCH_CHECK(capacity >= 1);
  MSKETCH_CHECK(batch_size >= 1);
  if (kll_k_ > 0) {
    klls_.reserve(capacity);
    for (size_t s = 0; s < capacity; ++s) klls_.emplace_back(kll_k_);
  }
  lanes_.assign(2 * static_cast<size_t>(k) * capacity, 0.0);
  pow_cols_.resize(k);
  log_cols_.resize(k);
  for (int i = 0; i < k; ++i) {
    pow_cols_[i] = lanes_.data() + static_cast<size_t>(i) * capacity;
    log_cols_[i] = lanes_.data() + static_cast<size_t>(k + i) * capacity;
  }
  counts_.assign(capacity, 0);
  log_counts_.assign(capacity, 0);
  mins_.assign(capacity, kInf);
  maxs_.assign(capacity, -kInf);
  coords_.resize(capacity);
  pending_.assign(capacity * batch_size, 0.0);
  pending_len_.assign(capacity, 0);
}

void DeltaChunk::FoldPending(size_t slot) {
  uint32_t& len = pending_len_[slot];
  if (len == 0) return;
  internal::AccumulateBatchInto(
      k_, &counts_[slot], &log_counts_[slot], &mins_[slot], &maxs_[slot],
      lanes_.data() + slot, StrideIdx{capacity_},
      lanes_.data() + static_cast<size_t>(k_) * capacity_ + slot,
      StrideIdx{capacity_}, pending_.data() + slot * batch_size_, len);
  len = 0;
}

void DeltaChunk::PushRun(size_t slot, const double* values, size_t n) {
  MSKETCH_DCHECK(slot < used_);
  if (n == 0) return;
  rows_ += n;
  if (kll_k_ > 0) klls_[slot].AccumulateBatch(values, n);
  uint32_t& len = pending_len_[slot];
  double* tail = pending_.data() + slot * batch_size_;
  size_t i = 0;
  if (len > 0) {
    while (i < n && len < batch_size_) tail[len++] = values[i++];
    if (len == batch_size_) FoldPending(slot);
  }
  if (i < n) {
    const size_t whole = ((n - i) / batch_size_) * batch_size_;
    if (whole > 0) {
      internal::AccumulateBatchInto(
          k_, &counts_[slot], &log_counts_[slot], &mins_[slot], &maxs_[slot],
          lanes_.data() + slot, StrideIdx{capacity_},
          lanes_.data() + static_cast<size_t>(k_) * capacity_ + slot,
          StrideIdx{capacity_}, values + i, whole);
      i += whole;
    }
    for (; i < n; ++i) tail[len++] = values[i];
  }
}

void DeltaChunk::FoldAll() {
  for (size_t slot = 0; slot < used_; ++slot) FoldPending(slot);
}

FlatMomentColumns DeltaChunk::View() const {
  FlatMomentColumns cols;
  cols.k = k_;
  cols.num_cells = used_;
  cols.power_sums = pow_cols_.data();
  cols.log_sums = log_cols_.data();
  cols.counts = counts_.data();
  cols.log_counts = log_counts_.data();
  cols.mins = mins_.data();
  cols.maxs = maxs_.data();
  return cols;
}

void DeltaChunk::Reset() {
  for (int i = 0; i < 2 * k_; ++i) {
    std::fill_n(lanes_.data() + static_cast<size_t>(i) * capacity_, used_,
                0.0);
  }
  std::fill_n(counts_.data(), used_, uint64_t{0});
  std::fill_n(log_counts_.data(), used_, uint64_t{0});
  std::fill_n(mins_.data(), used_, kInf);
  std::fill_n(maxs_.data(), used_, -kInf);
  std::fill_n(pending_len_.data(), used_, uint32_t{0});
  // Fresh sketches, not Reset(): the drain moves slots' KLLs out, and a
  // moved-from sketch must come back with its full invariants (including
  // a zeroed coin) so every chunk reuse is deterministic.
  for (size_t s = 0; s < used_ && kll_k_ > 0; ++s) {
    klls_[s] = KllSketch(kll_k_);
  }
  used_ = 0;
  rows_ = 0;
  session_ = 0;
}

}  // namespace msketch
