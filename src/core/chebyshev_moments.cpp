#include "core/chebyshev_moments.h"

#include <cmath>

#include "common/macros.h"
#include "numerics/chebyshev.h"
#include "numerics/stats.h"

namespace msketch {

ScaleMap MakeScaleMap(double lo, double hi) {
  ScaleMap map;
  map.center = 0.5 * (lo + hi);
  map.radius = 0.5 * (hi - lo);
  if (!(map.radius > 0.0)) map.radius = 1.0;
  return map;
}

std::vector<double> ShiftPowerMoments(const std::vector<double>& mu,
                                      const ScaleMap& map) {
  const int k = static_cast<int>(mu.size()) - 1;
  MSKETCH_CHECK(k >= 0);
  // u = (x - c) / r  =>  E[u^j] = r^-j sum_m C(j,m) (-c)^(j-m) E[x^m].
  std::vector<double> shifted(k + 1, 0.0);
  shifted[0] = 1.0;
  for (int j = 1; j <= k; ++j) {
    double acc = 0.0;
    for (int m = 0; m <= j; ++m) {
      acc += BinomialCoefficient(j, m) *
             std::pow(-map.center, static_cast<double>(j - m)) * mu[m];
    }
    shifted[j] = acc / std::pow(map.radius, static_cast<double>(j));
  }
  return shifted;
}

std::vector<double> PowerMomentsToChebyshev(const std::vector<double>& mu,
                                            const ScaleMap& map) {
  const int k = static_cast<int>(mu.size()) - 1;
  std::vector<double> shifted = ShiftPowerMoments(mu, map);
  const auto t = ChebyshevToMonomialMatrix(k);
  std::vector<double> cheb(k + 1, 0.0);
  for (int i = 0; i <= k; ++i) {
    double acc = 0.0;
    for (int j = 0; j <= i; ++j) acc += t[i][j] * shifted[j];
    cheb[i] = acc;
  }
  return cheb;
}

int StableKBound(double c) {
  const double bound = 13.35 / (0.78 + std::log10(std::fabs(c) + 1.0));
  // The paper observes instability from k = 16 onward even for centered
  // data; keep the empirical cap.
  const int k = static_cast<int>(std::floor(bound));
  return std::max(2, std::min(k, 15));
}

double UniformChebyshevMoment(int i) {
  MSKETCH_CHECK(i >= 0);
  if (i % 2 == 1) return 0.0;
  return 1.0 / (1.0 - static_cast<double>(i) * static_cast<double>(i));
}

}  // namespace msketch
