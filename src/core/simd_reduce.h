// Lane-structured floating point reductions for the columnar merge
// kernels (core/moments_sketch.h MergeFlat*Fast).
//
// Plain left-to-right summation serializes on one FP-add dependency
// chain (3-4 cycle latency against 2 add ports), so the fast kernels
// accumulate into kReduceLanes = 8 independent logical lanes: lane L
// takes elements whose position is congruent to L modulo 8, and lanes
// combine in one fixed tree,
//
//   u_l = S_l + S_{l+4}                       (l = 0..3)
//   sum = (u_0 + u_1) + (u_2 + u_3)
//
// followed by the tail (n mod 8 elements) added sequentially. Because
// the lane assignment and combine tree are fixed, the AVX2 (two 4-wide
// accumulators), SSE2 (four 2-wide), and scalar (eight doubles) bodies
// all produce bit-identical results — the compile-time fallback chain
// changes speed, never answers. The lane-structured sum does re-order
// additions relative to a sequential loop, which is why the exact
// id-order kernels (MergeFlat / MergeFlatRange) stay separate.
//
// ISA selection is purely compile-time: __AVX2__ when the TU is built
// with -mavx2 (e.g. -march=native / MSKETCH_NATIVE), else __SSE2__
// (always set on x86-64), else portable scalar.
#ifndef MSKETCH_CORE_SIMD_REDUCE_H_
#define MSKETCH_CORE_SIMD_REDUCE_H_

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#endif

namespace msketch {
namespace simd {

/// Logical accumulation lanes of the fast reductions (fixed by the
/// combine-tree contract above; not an ISA property).
constexpr size_t kReduceLanes = 8;

namespace detail {

// Combines the eight lane sums S_0..S_7 with the fixed tree.
inline double CombineLanes(const double* s) {
  const double u0 = s[0] + s[4];
  const double u1 = s[1] + s[5];
  const double u2 = s[2] + s[6];
  const double u3 = s[3] + s[7];
  return (u0 + u1) + (u2 + u3);
}

}  // namespace detail

/// Sum of x[0..n) in the lane-structured order.
inline double ReduceAddRange(const double* x, size_t n) {
  const size_t main = n - (n % kReduceLanes);
  double sum;
#if defined(__AVX2__)
  {
    // v0 holds lanes 0-3, v1 lanes 4-7; v0+v1 realizes u_l = S_l+S_{l+4}.
    __m256d v0 = _mm256_setzero_pd();
    __m256d v1 = _mm256_setzero_pd();
    for (size_t j = 0; j < main; j += 8) {
      v0 = _mm256_add_pd(v0, _mm256_loadu_pd(x + j));
      v1 = _mm256_add_pd(v1, _mm256_loadu_pd(x + j + 4));
    }
    const __m256d u = _mm256_add_pd(v0, v1);
    alignas(32) double ul[4];
    _mm256_store_pd(ul, u);
    sum = (ul[0] + ul[1]) + (ul[2] + ul[3]);
  }
#elif defined(__SSE2__)
  {
    // x0..x3 hold lane pairs (0,1) (2,3) (4,5) (6,7); x0+x2 and x1+x3
    // realize the same u_l terms as the AVX2 body.
    __m128d x0 = _mm_setzero_pd();
    __m128d x1 = _mm_setzero_pd();
    __m128d x2 = _mm_setzero_pd();
    __m128d x3 = _mm_setzero_pd();
    for (size_t j = 0; j < main; j += 8) {
      x0 = _mm_add_pd(x0, _mm_loadu_pd(x + j));
      x1 = _mm_add_pd(x1, _mm_loadu_pd(x + j + 2));
      x2 = _mm_add_pd(x2, _mm_loadu_pd(x + j + 4));
      x3 = _mm_add_pd(x3, _mm_loadu_pd(x + j + 6));
    }
    const __m128d y0 = _mm_add_pd(x0, x2);  // (u0, u1)
    const __m128d y1 = _mm_add_pd(x1, x3);  // (u2, u3)
    alignas(16) double a[2], b[2];
    _mm_store_pd(a, y0);
    _mm_store_pd(b, y1);
    sum = (a[0] + a[1]) + (b[0] + b[1]);
  }
#else
  {
    double s[kReduceLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; j < main; j += 8) {
      for (size_t l = 0; l < kReduceLanes; ++l) s[l] += x[j + l];
    }
    sum = detail::CombineLanes(s);
  }
#endif
  for (size_t j = main; j < n; ++j) sum += x[j];
  return sum;
}

/// Sum of col[ids[0..n)] in the lane-structured order (gather variant —
/// same lane assignment and combine tree as ReduceAddRange, so both are
/// deterministic across the ISA fallback chain).
inline double ReduceAddGather(const double* col, const uint32_t* ids,
                              size_t n) {
  const size_t main = n - (n % kReduceLanes);
  double sum;
  {
    // Scattered loads don't benefit from vector gathers on most x86
    // cores; eight independent scalar chains already saturate the load
    // ports and keep the result identical to the SIMD range kernel's
    // lane structure.
    double s[kReduceLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; j < main; j += 8) {
      s[0] += col[ids[j]];
      s[1] += col[ids[j + 1]];
      s[2] += col[ids[j + 2]];
      s[3] += col[ids[j + 3]];
      s[4] += col[ids[j + 4]];
      s[5] += col[ids[j + 5]];
      s[6] += col[ids[j + 6]];
      s[7] += col[ids[j + 7]];
    }
    sum = detail::CombineLanes(s);
  }
  for (size_t j = main; j < n; ++j) sum += col[ids[j]];
  return sum;
}

/// Min/max of x[0..n) (order-free, so no lane contract needed). `n`
/// must be >= 1.
inline void ReduceMinMaxRange(const double* x, size_t n, double* mn_out,
                              double* mx_out) {
  double mn = x[0], mx = x[0];
#if defined(__AVX2__)
  if (n >= 4) {
    __m256d vmn = _mm256_loadu_pd(x);
    __m256d vmx = vmn;
    size_t j = 4;
    for (; j + 4 <= n; j += 4) {
      const __m256d v = _mm256_loadu_pd(x + j);
      vmn = _mm256_min_pd(vmn, v);
      vmx = _mm256_max_pd(vmx, v);
    }
    alignas(32) double a[4], b[4];
    _mm256_store_pd(a, vmn);
    _mm256_store_pd(b, vmx);
    mn = a[0];
    mx = b[0];
    for (int l = 1; l < 4; ++l) {
      mn = a[l] < mn ? a[l] : mn;
      mx = b[l] > mx ? b[l] : mx;
    }
    for (; j < n; ++j) {
      mn = x[j] < mn ? x[j] : mn;
      mx = x[j] > mx ? x[j] : mx;
    }
    *mn_out = mn;
    *mx_out = mx;
    return;
  }
#endif
  for (size_t j = 1; j < n; ++j) {
    mn = x[j] < mn ? x[j] : mn;
    mx = x[j] > mx ? x[j] : mx;
  }
  *mn_out = mn;
  *mx_out = mx;
}

}  // namespace simd
}  // namespace msketch

#endif  // MSKETCH_CORE_SIMD_REDUCE_H_
