// DeltaChunk: the fixed-capacity unit of hand-off between an ingest
// writer and the epoch publisher (src/ingest/ingest_shard.h).
//
// A chunk is a small columnar cube fragment: up to `capacity` cells
// (slots), each holding the same flat moment state as one column slot
// of cube/cube_store.h — counts, min/max, and the 2k power/log-sum
// lanes laid out column-major (lane i of every slot is contiguous), so
// View() exposes the standard FlatMomentColumns shape and the publisher
// converts a slot into a delta sketch with one MergeFlat call.
//
// Each slot also owns a `batch_size`-deep pending-value tail. Push()
// buffers values there and folds a full tail into the slot's lanes
// through the shared 4-lane kernel (core/accumulate_kernel.h) — the
// exact addition sequence of MomentsSketch::AccumulateBatch, which is
// itself bit-identical to an in-order Accumulate loop. A slot that
// receives a cell's whole value stream therefore holds state
// bit-identical to a single-writer sketch fed the same values.
//
// Threading: a chunk is single-owner at any instant; ownership moves
// between writer and publisher through the shard's parked-token and
// ring protocol (release/acquire edges live there, not here). No member
// is atomic by design.
#ifndef MSKETCH_CORE_DELTA_CHUNK_H_
#define MSKETCH_CORE_DELTA_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "cube/cube_types.h"
#include "core/moments_sketch.h"
#include "sketches/kll_sketch.h"

namespace msketch {

class DeltaChunk {
 public:
  /// `k`: sketch order; `capacity`: max distinct cells before the owner
  /// must seal; `batch_size`: pending-tail depth per slot (the
  /// AccumulateBatch flush granularity, as in the old mutex shard).
  /// `kll_k` > 0 dual-writes every row into a per-slot KLL rank sketch
  /// (the multi-backend router's fallback summary); 0 disables the side
  /// column entirely — no allocation, no hot-path branch cost beyond
  /// one predictable compare.
  DeltaChunk(int k, size_t capacity, size_t batch_size, int kll_k = 0);

  DeltaChunk(const DeltaChunk&) = delete;
  DeltaChunk& operator=(const DeltaChunk&) = delete;

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  bool full() const { return used_ == capacity_; }
  /// Rows pushed since the last Reset (pending + folded).
  uint64_t rows() const { return rows_; }

  /// Shard-local service-entry sequence number: stamped by the writer
  /// when the chunk leaves the freelist, so the publisher can order a
  /// drain's chunks by the age of the rows they carry (ring FIFO order
  /// alone is not enough once the parked chunk is stolen mid-stream).
  uint64_t session() const { return session_; }
  void set_session(uint64_t s) { session_ = s; }

  /// Claims the next slot for `coords`. Caller checks full() first.
  size_t AddSlot(const CubeCoords& coords) {
    MSKETCH_DCHECK(used_ < capacity_);
    coords_[used_] = coords;  // copy-assign reuses the vector's storage
    return used_++;
  }

  const CubeCoords& SlotCoords(size_t slot) const {
    MSKETCH_DCHECK(slot < used_);
    return coords_[slot];
  }

  /// Buffers one value into the slot's pending tail, folding the tail
  /// through the batch kernel when it fills. The writer hot path: one
  /// store plus a counter bump per row.
  void Push(size_t slot, double value) {
    MSKETCH_DCHECK(slot < used_);
    uint32_t& len = pending_len_[slot];
    pending_[slot * batch_size_ + len] = value;
    ++rows_;
    if (kll_k_ > 0) klls_[slot].Accumulate(value);
    if (++len == batch_size_) FoldPending(slot);
  }

  /// Buffers a pre-grouped run of values for one slot, preserving the
  /// same per-cell fold boundaries as n Push calls: top up the pending
  /// tail, stream whole batches straight through the kernel, buffer the
  /// remainder. Bit-identical to the Push loop.
  void PushRun(size_t slot, const double* values, size_t n);

  /// Folds every slot's pending tail (pre-seal / pre-drain fixup).
  void FoldAll();

  /// Columnar view over slots [0, used()). Call FoldAll() first; the
  /// view reflects only folded state.
  FlatMomentColumns View() const;

  /// Clears all slot state for reuse (the freelist recycle path). Only
  /// the previously used slots are touched.
  void Reset();

  bool kll_enabled() const { return kll_k_ > 0; }
  /// The slot's rank sketch (KLL must be enabled). Mutable so the drain
  /// can move it out; Reset() restores the slot to a fresh sketch.
  KllSketch& SlotKll(size_t slot) {
    MSKETCH_DCHECK(kll_k_ > 0 && slot < used_);
    return klls_[slot];
  }

 private:
  void FoldPending(size_t slot);

  const int k_;
  const size_t capacity_;
  const size_t batch_size_;
  const int kll_k_;
  size_t used_ = 0;
  uint64_t rows_ = 0;
  uint64_t session_ = 0;

  // Column-major lane storage: lanes_[i * capacity + slot] holds slot's
  // sum x^(i+1) for i < k, and sum log^(i-k+1) x for i >= k.
  std::vector<double> lanes_;
  std::vector<const double*> pow_cols_;  // k pointers into lanes_
  std::vector<const double*> log_cols_;  // k pointers into lanes_
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> log_counts_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
  std::vector<CubeCoords> coords_;

  // Per-slot pending tails: pending_[slot * batch_size .. +len).
  std::vector<double> pending_;
  std::vector<uint32_t> pending_len_;

  // Per-slot rank sketches (empty vector when kll_k_ == 0).
  std::vector<KllSketch> klls_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_DELTA_CHUNK_H_
