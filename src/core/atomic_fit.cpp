#include "core/atomic_fit.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/chebyshev_moments.h"
#include "numerics/eigen.h"
#include "numerics/matrix.h"
#include "numerics/root_finding.h"

namespace msketch {

// See header. Recovers a measure supported on a handful of atoms from its (scaled)
// moment sequence: Prony annihilator -> atoms, Vandermonde -> weights,
// validated against every stored moment within `tol`. This is a best-
// effort *estimator* for near-discrete data (where maxent cannot
// converge, Section 6.2.3) — not a worst-case bound: a continuous
// distribution squeezed into a sliver of the domain can match an atomic
// fit's moments without matching its ranks, which is why RttBound never
// uses it.
Result<std::vector<std::pair<double, double>>> FitAtomicScaled(
    const std::vector<double>& moments, double tol) {
  const int k = static_cast<int>(moments.size()) - 1;
  for (int rho = 1; 2 * rho <= k; ++rho) {
    // Only a *numerically singular* next Hankel indicates a determinate
    // (atomic) measure; distributions squeezed into a narrow sliver of
    // the scaled domain can otherwise be spuriously "fit" by a few atoms
    // whose moments agree without their ranks agreeing.
    {
      Matrix next(rho + 1, rho + 1);
      for (int i = 0; i <= rho; ++i) {
        for (int j = 0; j <= rho; ++j) next(i, j) = moments[i + j];
      }
      auto eig = SymmetricEigen(next);
      if (!eig.ok()) continue;
      const double lo = std::fabs(eig->values.front());
      double hi = 0.0;
      for (double v : eig->values) hi = std::max(hi, std::fabs(v));
      if (!(hi > 0.0) || lo > 1e-10 * hi) continue;  // not singular
    }
    // Monic annihilator: sum_{i<rho} c_i m_{i+j} = -m_{rho+j}, j < rho.
    Matrix h(rho, rho);
    std::vector<double> rhs(rho);
    for (int j = 0; j < rho; ++j) {
      for (int i = 0; i < rho; ++i) h(j, i) = moments[i + j];
      rhs[j] = -moments[rho + j];
    }
    auto coef = LuSolve(h, rhs);
    if (!coef.ok()) continue;
    auto poly = [&](double x) {
      double acc = 1.0;  // monic leading term
      for (int i = rho - 1; i >= 0; --i) acc = acc * x + coef.value()[i];
      return acc;
    };
    std::vector<double> roots =
        FindRealRoots(poly, -1.0 - 1e-6, 1.0 + 1e-6, 128 * rho, 1e-14);
    if (static_cast<int>(roots.size()) != rho) continue;
    // Weights from the first rho moments.
    Matrix vand(rho, rho);
    std::vector<double> vrhs(rho);
    for (int i = 0; i < rho; ++i) {
      for (int j = 0; j < rho; ++j) {
        vand(i, j) = std::pow(roots[j], static_cast<double>(i));
      }
      vrhs[i] = moments[i];
    }
    auto w = LuSolve(vand, vrhs);
    if (!w.ok()) continue;
    bool valid = true;
    for (double wi : w.value()) valid = valid && wi > -1e-9;
    if (!valid) continue;
    // The representation must reproduce *all* stored moments.
    for (int j = 0; j <= k && valid; ++j) {
      double acc = 0.0;
      for (int i = 0; i < rho; ++i) {
        acc += w.value()[i] * std::pow(roots[i], static_cast<double>(j));
      }
      valid = std::fabs(acc - moments[j]) <= tol;
    }
    if (!valid) continue;
    std::vector<std::pair<double, double>> atoms;
    for (int i = 0; i < rho; ++i) {
      atoms.emplace_back(roots[i], std::max(w.value()[i], 0.0));
    }
    return atoms;
  }
  return Status::NotConverged("not an atomic measure");
}

Result<DiscreteDistribution> FitAtomicDistribution(
    const MomentsSketch& sketch, double tol) {
  if (sketch.count() == 0) {
    return Status::InvalidArgument("FitAtomicDistribution: empty sketch");
  }
  ScaleMap map = MakeScaleMap(sketch.min(), sketch.max());
  auto scaled = ShiftPowerMoments(sketch.StandardMoments(), map);
  MSKETCH_ASSIGN_OR_RETURN(auto atoms, FitAtomicScaled(scaled, tol));
  DiscreteDistribution out;
  double total = 0.0;
  for (const auto& [u, w] : atoms) total += w;
  if (!(total > 0.0)) {
    return Status::NotConverged("FitAtomicDistribution: zero mass");
  }
  std::sort(atoms.begin(), atoms.end());
  for (const auto& [u, w] : atoms) {
    out.atoms.push_back(map.Inverse(u));
    out.weights.push_back(w / total);
  }
  return out;
}

double DiscreteDistribution::Quantile(double phi) const {
  double acc = 0.0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    acc += weights[i];
    if (acc >= phi) return atoms[i];
  }
  return atoms.empty() ? 0.0 : atoms.back();
}


}  // namespace msketch
