#include "core/compressed_sketch.h"

#include <cmath>
#include <cstring>

#include "common/crc32c.h"
#include "common/macros.h"

namespace msketch {

namespace {

// Bit-packing cursor over a byte vector.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}
  void Put(uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      const int bit = static_cast<int>((value >> i) & 1);
      if (pos_ == 0) out_->push_back(0);
      out_->back() |= static_cast<uint8_t>(bit << (7 - pos_));
      pos_ = (pos_ + 1) % 8;
    }
  }

 private:
  std::vector<uint8_t>* out_;
  int pos_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Status Get(int bits, uint64_t* out) {
    uint64_t v = 0;
    for (int i = 0; i < bits; ++i) {
      const size_t byte = cursor_ / 8;
      if (byte >= size_) return Status::Serialization("bit underflow");
      const int bit = (data_[byte] >> (7 - cursor_ % 8)) & 1;
      v = (v << 1) | static_cast<uint64_t>(bit);
      ++cursor_;
    }
    *out = v;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t cursor_ = 0;
};

constexpr int kHeaderBits = 12;  // 1 sign + 11 exponent

uint64_t PackQuantized(double value, int bits, Rng* rng) {
  const int mant_bits = bits - kHeaderBits;
  MSKETCH_CHECK(mant_bits >= 1 && mant_bits <= 52);
  uint64_t raw;
  std::memcpy(&raw, &value, sizeof(raw));
  const uint64_t sign = raw >> 63;
  uint64_t expo = (raw >> 52) & 0x7FF;
  uint64_t mant = raw & ((1ULL << 52) - 1);
  const int drop = 52 - mant_bits;
  uint64_t kept = mant >> drop;
  // Randomized rounding of the dropped tail.
  const uint64_t tail = mant & ((1ULL << drop) - 1);
  const double frac =
      static_cast<double>(tail) / static_cast<double>(1ULL << drop);
  if (rng->NextDouble() < frac) {
    ++kept;
    if (kept >> mant_bits) {  // mantissa overflow: bump exponent
      kept = 0;
      ++expo;
    }
  }
  return (sign << (bits - 1)) |
         (expo << mant_bits) |
         (kept & ((1ULL << mant_bits) - 1));
}

double UnpackQuantized(uint64_t packed, int bits) {
  const int mant_bits = bits - kHeaderBits;
  const uint64_t sign = (packed >> (bits - 1)) & 1;
  const uint64_t expo = (packed >> mant_bits) & 0x7FF;
  const uint64_t mant = packed & ((1ULL << mant_bits) - 1);
  const uint64_t raw =
      (sign << 63) | (expo << 52) | (mant << (52 - mant_bits));
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

}  // namespace

double QuantizeValue(double value, int bits, Rng* rng) {
  if (value == 0.0 || !std::isfinite(value)) return value;
  return UnpackQuantized(PackQuantized(value, bits, rng), bits);
}

MomentsSketch QuantizeSketch(const MomentsSketch& sketch, int bits,
                             uint64_t seed) {
  Rng rng(seed);
  // Re-serialize via the quantizer: round-trip each stored double.
  BytesWriter w2;
  w2.PutU32(static_cast<uint32_t>(sketch.k()));
  w2.PutU64(sketch.count());
  w2.PutU64(sketch.log_count());
  w2.PutDouble(QuantizeValue(sketch.min(), bits, &rng));
  w2.PutDouble(QuantizeValue(sketch.max(), bits, &rng));
  for (double v : sketch.power_sums()) {
    w2.PutDouble(QuantizeValue(v, bits, &rng));
  }
  for (double v : sketch.log_sums()) {
    w2.PutDouble(QuantizeValue(v, bits, &rng));
  }
  BytesReader r2(w2.bytes());
  return MomentsSketch::Deserialize(&r2).value();
}

std::vector<uint8_t> EncodeLowPrecision(const MomentsSketch& sketch,
                                        int bits, uint64_t seed) {
  MSKETCH_CHECK(bits >= 13 && bits <= 64);
  Rng rng(seed);
  std::vector<uint8_t> blob;
  blob.push_back(static_cast<uint8_t>(sketch.k()));
  blob.push_back(static_cast<uint8_t>(bits));
  for (int i = 0; i < 8; ++i) {
    blob.push_back(static_cast<uint8_t>(sketch.count() >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    blob.push_back(static_cast<uint8_t>(sketch.log_count() >> (8 * i)));
  }
  BitWriter bw(&blob);
  auto put = [&](double v) {
    if (v == 0.0 || !std::isfinite(v)) {
      // Zero encodes as all-zero bits (expo 0 mantissa 0).
      bw.Put(0, bits);
    } else {
      bw.Put(PackQuantized(v, bits, &rng), bits);
    }
  };
  put(sketch.min());
  put(sketch.max());
  for (double v : sketch.power_sums()) put(v);
  for (double v : sketch.log_sums()) put(v);
  return blob;
}

Result<MomentsSketch> DecodeLowPrecision(const std::vector<uint8_t>& blob) {
  if (blob.size() < 18) return Status::Serialization("blob too small");
  const int k = blob[0];
  const int bits = blob[1];
  if (k < 1 || k > 64 || bits < 13 || bits > 64) {
    return Status::Serialization("bad low-precision header");
  }
  uint64_t count = 0, log_count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<uint64_t>(blob[2 + i]) << (8 * i);
    log_count |= static_cast<uint64_t>(blob[10 + i]) << (8 * i);
  }
  BitReader br(blob.data() + 18, blob.size() - 18);
  auto get = [&](double* out) -> Status {
    uint64_t packed = 0;
    MSKETCH_RETURN_NOT_OK(br.Get(bits, &packed));
    *out = (packed == 0) ? 0.0 : UnpackQuantized(packed, bits);
    return Status::OK();
  };
  double mn = 0, mx = 0;
  MSKETCH_RETURN_NOT_OK(get(&mn));
  MSKETCH_RETURN_NOT_OK(get(&mx));
  BytesWriter w;
  w.PutU32(static_cast<uint32_t>(k));
  w.PutU64(count);
  w.PutU64(log_count);
  w.PutDouble(mn);
  w.PutDouble(mx);
  for (int i = 0; i < 2 * k; ++i) {
    double v = 0;
    MSKETCH_RETURN_NOT_OK(get(&v));
    w.PutDouble(v);
  }
  BytesReader r(w.bytes());
  return MomentsSketch::Deserialize(&r);
}

size_t LowPrecisionSizeBytes(int k, int bits) {
  const size_t payload_bits = static_cast<size_t>(2 + 2 * k) * bits;
  return 18 + (payload_bits + 7) / 8;
}

namespace {

constexpr uint32_t kColumnsMagic = 0x4d534b43u;  // "MSKC"
constexpr uint8_t kColumnsVersion = 1;

}  // namespace

void EncodeSketchColumns(const FlatMomentColumns& cols, BytesWriter* out) {
  const size_t start = out->size();
  out->PutU32(kColumnsMagic);
  out->PutU8(kColumnsVersion);
  out->PutU32(static_cast<uint32_t>(cols.k));
  out->PutU64(cols.num_cells);
  for (size_t c = 0; c < cols.num_cells; ++c) out->PutU64(cols.counts[c]);
  for (size_t c = 0; c < cols.num_cells; ++c) out->PutU64(cols.log_counts[c]);
  for (size_t c = 0; c < cols.num_cells; ++c) out->PutDouble(cols.mins[c]);
  for (size_t c = 0; c < cols.num_cells; ++c) out->PutDouble(cols.maxs[c]);
  for (int i = 0; i < cols.k; ++i) {
    for (size_t c = 0; c < cols.num_cells; ++c) {
      out->PutDouble(cols.power_sums[i][c]);
    }
  }
  for (int i = 0; i < cols.k; ++i) {
    for (size_t c = 0; c < cols.num_cells; ++c) {
      out->PutDouble(cols.log_sums[i][c]);
    }
  }
  const uint32_t crc =
      crc32c::Value(out->bytes().data() + start, out->size() - start);
  out->PutU32(crc32c::Mask(crc));
}

Result<DecodedSketchColumns> DecodeSketchColumns(BytesReader* in) {
  const size_t start = in->pos();
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t k = 0;
  uint64_t num_cells = 0;
  MSKETCH_RETURN_NOT_OK(in->GetU32(&magic));
  if (magic != kColumnsMagic) {
    return Status::Corruption("sketch columns: bad magic");
  }
  MSKETCH_RETURN_NOT_OK(in->GetU8(&version));
  if (version != kColumnsVersion) {
    return Status::Corruption("sketch columns: unknown version");
  }
  MSKETCH_RETURN_NOT_OK(in->GetU32(&k));
  MSKETCH_RETURN_NOT_OK(in->GetU64(&num_cells));
  if (k < 1 || k > 64) {
    return Status::Corruption("sketch columns: bad order k");
  }
  // Reject absurd cell counts before any allocation: the section needs
  // (2k + 4) eight-byte entries per cell plus the CRC trailer.
  const uint64_t per_cell = (2 * static_cast<uint64_t>(k) + 4) * 8;
  if (num_cells > in->remaining() / per_cell + 1) {
    return Status::Corruption("sketch columns: cell count exceeds buffer");
  }
  DecodedSketchColumns out;
  out.k = static_cast<int>(k);
  out.num_cells = static_cast<size_t>(num_cells);
  out.counts.resize(out.num_cells);
  out.log_counts.resize(out.num_cells);
  out.mins.resize(out.num_cells);
  out.maxs.resize(out.num_cells);
  for (auto* col : {&out.counts, &out.log_counts}) {
    for (size_t c = 0; c < out.num_cells; ++c) {
      MSKETCH_RETURN_NOT_OK(in->GetU64(&(*col)[c]));
    }
  }
  for (auto* col : {&out.mins, &out.maxs}) {
    for (size_t c = 0; c < out.num_cells; ++c) {
      MSKETCH_RETURN_NOT_OK(in->GetDouble(&(*col)[c]));
    }
  }
  out.power_cols.assign(out.k, std::vector<double>(out.num_cells));
  out.log_cols.assign(out.k, std::vector<double>(out.num_cells));
  for (auto* cols2 : {&out.power_cols, &out.log_cols}) {
    for (int i = 0; i < out.k; ++i) {
      for (size_t c = 0; c < out.num_cells; ++c) {
        MSKETCH_RETURN_NOT_OK(in->GetDouble(&(*cols2)[i][c]));
      }
    }
  }
  const uint32_t actual = crc32c::Value(in->data() + start, in->pos() - start);
  uint32_t stored_masked = 0;
  MSKETCH_RETURN_NOT_OK(in->GetU32(&stored_masked));
  if (crc32c::Unmask(stored_masked) != actual) {
    return Status::Corruption("sketch columns: checksum mismatch");
  }
  return out;
}

}  // namespace msketch
