// MomentsSummary: the moments sketch bundled with its maximum entropy
// estimator behind the same concrete interface the baseline summaries
// expose (Accumulate / Merge / EstimateQuantile / count / SizeBytes /
// CloneEmpty). This is what plugs into the cube engine, the generic
// benchmark harnesses, and the QuantileSummary adapter.
#ifndef MSKETCH_CORE_MOMENTS_SUMMARY_H_
#define MSKETCH_CORE_MOMENTS_SUMMARY_H_

#include <optional>

#include "common/status.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"

namespace msketch {

class MomentsSummary {
 public:
  explicit MomentsSummary(int k = 10, MaxEntOptions options = {})
      : sketch_(k), options_(options) {}
  explicit MomentsSummary(MomentsSketch sketch, MaxEntOptions options = {})
      : sketch_(std::move(sketch)), options_(options) {}

  void Accumulate(double x) {
    sketch_.Accumulate(x);
    cached_.reset();
  }

  /// Bulk ingestion through the unrolled kernel; bit-identical to an
  /// Accumulate loop (see MomentsSketch::AccumulateBatch).
  void AccumulateBatch(const double* xs, size_t n) {
    sketch_.AccumulateBatch(xs, n);
    cached_.reset();
  }

  Status Merge(const MomentsSummary& other) {
    cached_.reset();
    return sketch_.Merge(other.sketch_);
  }

  /// Solves the maxent problem (cached until the sketch changes) and
  /// inverts the CDF.
  Result<double> EstimateQuantile(double phi) const;

  uint64_t count() const { return sketch_.count(); }
  size_t SizeBytes() const { return sketch_.SizeBytes(); }
  int k() const { return sketch_.k(); }

  MomentsSummary CloneEmpty() const {
    return MomentsSummary(sketch_.k(), options_);
  }

  const MaxEntOptions& options() const { return options_; }

  const MomentsSketch& sketch() const { return sketch_; }
  MomentsSketch& sketch() {
    cached_.reset();
    return sketch_;
  }

 private:
  MomentsSketch sketch_;
  MaxEntOptions options_;
  mutable std::optional<MaxEntDistribution> cached_;
};

}  // namespace msketch

#endif  // MSKETCH_CORE_MOMENTS_SUMMARY_H_
