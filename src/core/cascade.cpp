#include "core/cascade.h"

#include <cmath>

namespace msketch {

ThresholdCascade::Decision ThresholdCascade::CheckBounds(
    const MomentsSketch& sketch, double phi, double t,
    RankBounds* bounds_out) {
  ++stats_.total;
  *bounds_out = RankBounds{0.0, static_cast<double>(sketch.count())};
  if (sketch.count() == 0) return Decision::kFalse;
  const double rt = phi * static_cast<double>(sketch.count());

  if (opt_.use_simple_check) {
    if (t > sketch.max()) {
      ++stats_.resolved_simple;
      return Decision::kFalse;  // every element <= xmax < t
    }
    if (t < sketch.min()) {
      ++stats_.resolved_simple;
      return Decision::kTrue;  // every element >= xmin > t
    }
  }

  // rank(t) upper bound < n phi  =>  q_phi >= t       => predicate true
  // rank(t) lower bound > n phi  =>  q_phi < t        => predicate false
  if (opt_.use_markov) {
    *bounds_out = MarkovBound(sketch, t);
    if (bounds_out->upper < rt) {
      ++stats_.resolved_markov;
      return Decision::kTrue;
    }
    if (bounds_out->lower > rt) {
      ++stats_.resolved_markov;
      return Decision::kFalse;
    }
  }
  if (opt_.use_rtt) {
    RankBounds rtt = RttBound(sketch, t);
    rtt.Intersect(*bounds_out);
    *bounds_out = rtt;
    if (bounds_out->upper < rt) {
      ++stats_.resolved_rtt;
      return Decision::kTrue;
    }
    if (bounds_out->lower > rt) {
      ++stats_.resolved_rtt;
      return Decision::kFalse;
    }
  }
  return Decision::kUnresolved;
}

const ThresholdCascade::SolveMemo& ThresholdCascade::SolveMemoized(
    const MomentsSketch& sketch) {
  if (memo_.valid && memo_.sketch.IdenticalTo(sketch)) {
    ++stats_.maxent_memo_hits;
    return memo_;
  }
  memo_.valid = true;
  memo_.sketch = sketch;
  memo_.atomic_ok = false;
  Result<MaxEntDistribution> dist = SolveMaxEnt(sketch, opt_.maxent);
  memo_.solve_ok = dist.ok();
  if (dist.ok()) {
    memo_.dist = std::move(dist.value());
  } else {
    // Non-convergent maxent usually means near-discrete data (Section
    // 6.2.3): try recovering the atoms directly.
    Result<DiscreteDistribution> atomic = FitAtomicDistribution(sketch);
    memo_.atomic_ok = atomic.ok();
    if (atomic.ok()) memo_.atomic = std::move(atomic.value());
  }
  return memo_;
}

bool ThresholdCascade::DecideFrom(const MaxEntDistribution* dist,
                                  const DiscreteDistribution* atomic,
                                  const MomentsSketch& sketch, double phi,
                                  double t, const RankBounds& bounds,
                                  MaxEntResolution* resolution_out) {
  if (dist != nullptr) {
    if (resolution_out != nullptr) {
      *resolution_out = MaxEntResolution::kDistribution;
    }
    return dist->Quantile(phi) > t;
  }
  if (atomic != nullptr) {
    if (resolution_out != nullptr) {
      *resolution_out = MaxEntResolution::kAtomic;
    }
    return atomic->Quantile(phi) > t;
  }
  // Decide by the midpoint of the tightest valid rank bounds.
  if (resolution_out != nullptr) *resolution_out = MaxEntResolution::kBounds;
  const double rt = phi * static_cast<double>(sketch.count());
  return 0.5 * (bounds.lower + bounds.upper) < rt;
}

bool ThresholdCascade::DecideWithDistribution(
    const MaxEntDistribution* dist, const MomentsSketch& sketch, double phi,
    double t, const RankBounds& bounds, MaxEntResolution* resolution_out) {
  ++stats_.resolved_maxent;
  if (dist == nullptr) {
    if (auto atomic = FitAtomicDistribution(sketch); atomic.ok()) {
      return DecideFrom(nullptr, &atomic.value(), sketch, phi, t, bounds,
                        resolution_out);
    }
  }
  return DecideFrom(dist, nullptr, sketch, phi, t, bounds, resolution_out);
}

bool ThresholdCascade::Threshold(const MomentsSketch& sketch, double phi,
                                 double t) {
  RankBounds bounds;
  switch (CheckBounds(sketch, phi, t, &bounds)) {
    case Decision::kTrue:
      return true;
    case Decision::kFalse:
      return false;
    case Decision::kUnresolved:
      break;
  }

  if (!opt_.memoize_solution) {
    // No memo bookkeeping (sketch copy + stored distribution) when the
    // caller opted out; DecideWithDistribution counts the resolution.
    Result<MaxEntDistribution> dist = SolveMaxEnt(sketch, opt_.maxent);
    return DecideWithDistribution(dist.ok() ? &dist.value() : nullptr,
                                  sketch, phi, t, bounds);
  }

  ++stats_.resolved_maxent;
  const SolveMemo& memo = SolveMemoized(sketch);
  return DecideFrom(memo.solve_ok ? &memo.dist : nullptr,
                    memo.atomic_ok ? &memo.atomic : nullptr, sketch, phi, t,
                    bounds, nullptr);
}

}  // namespace msketch
