#include "core/cascade.h"

#include "core/atomic_fit.h"

#include <cmath>

namespace msketch {

bool ThresholdCascade::Threshold(const MomentsSketch& sketch, double phi,
                                 double t) {
  ++stats_.total;
  if (sketch.count() == 0) return false;
  const double rt = phi * static_cast<double>(sketch.count());

  if (opt_.use_simple_check) {
    if (t > sketch.max()) {
      ++stats_.resolved_simple;
      return false;  // every element <= xmax < t
    }
    if (t < sketch.min()) {
      ++stats_.resolved_simple;
      return true;  // every element >= xmin > t
    }
  }

  // rank(t) upper bound < n phi  =>  q_phi >= t       => predicate true
  // rank(t) lower bound > n phi  =>  q_phi < t        => predicate false
  RankBounds last_bounds{0.0, static_cast<double>(sketch.count())};
  if (opt_.use_markov) {
    last_bounds = MarkovBound(sketch, t);
    if (last_bounds.upper < rt) {
      ++stats_.resolved_markov;
      return true;
    }
    if (last_bounds.lower > rt) {
      ++stats_.resolved_markov;
      return false;
    }
  }
  if (opt_.use_rtt) {
    RankBounds rtt = RttBound(sketch, t);
    rtt.Intersect(last_bounds);
    last_bounds = rtt;
    if (last_bounds.upper < rt) {
      ++stats_.resolved_rtt;
      return true;
    }
    if (last_bounds.lower > rt) {
      ++stats_.resolved_rtt;
      return false;
    }
  }

  ++stats_.resolved_maxent;
  Result<MaxEntDistribution> dist = SolveMaxEnt(sketch, opt_.maxent);
  if (dist.ok()) {
    return dist->Quantile(phi) > t;
  }
  // Non-convergent maxent usually means near-discrete data (Section
  // 6.2.3): try recovering the atoms directly, else decide by the
  // midpoint of the tightest valid rank bounds.
  if (auto atomic = FitAtomicDistribution(sketch); atomic.ok()) {
    return atomic->Quantile(phi) > t;
  }
  return 0.5 * (last_bounds.lower + last_bounds.upper) < rt;
}

}  // namespace msketch
