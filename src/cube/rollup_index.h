// Rollup acceleration for the columnar cube engine: pre-merged partial
// sketches over aligned power-of-two spans of each dimension value's
// postings list.
//
// A filtered merge over a value with L matching cells normally folds L
// rows of (2k + 4) doubles. The rollup stores, for every (dimension,
// value), one pre-merged node per full aligned span of 2^s consecutive
// postings positions, so the same query decomposes into
//
//   floor(L / 2^s) span nodes   (one flat add each)
//   L mod 2^s residual cells    (folded straight from the main columns)
//
// — a ~2^s-fold reduction in merge work for single-dimension filters,
// the LMQ-Sketch shared-aggregate idea specialized to moments columns.
// The index also keeps the grand-total sketch, which both answers
// unfiltered queries in O(k) and anchors the complement plan
// (total − SubtractFlat(non-matching)) in CubeStore::QueryWhere.
//
// Maintenance. Cell ids only append to postings, so ingesting into a
// *new* cell never dirties an existing full span — it can only complete
// new spans at the tail. Ingesting into an existing cell dirties exactly
// one span per dimension (the one covering that cell's postings
// position). Refresh() therefore rebuilds only dirty nodes, appends any
// newly completed spans, and re-reduces the total; CubeStore tracks the
// dirty cells and the column version that gates staleness.
#ifndef MSKETCH_CUBE_ROLLUP_INDEX_H_
#define MSKETCH_CUBE_ROLLUP_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/moments_sketch.h"
#include "cube/cube_types.h"
#include "cube/dim_index.h"

namespace msketch {

struct RollupOptions {
  /// log2 of the span width: nodes pre-merge runs of 2^span_log2
  /// consecutive postings positions. Wider spans cost less memory and
  /// fewer per-query adds but leave longer residual tails and coarser
  /// incremental rebuilds.
  int span_log2 = 6;
};

/// Columnar append-only storage of pre-merged sketch nodes — the same
/// struct-of-arrays layout as CubeStore's cell columns, one slot per
/// node, consumable by the MergeFlat* kernels via Columns().
class MomentSlab {
 public:
  explicit MomentSlab(int k);

  /// Appends one node; returns its id.
  uint32_t Append(const MomentsSketch& s);

  /// Replaces an existing node's state (incremental span rebuild).
  void Overwrite(uint32_t node, const MomentsSketch& s);

  /// View over the nodes. Column base pointers are re-derived on every
  /// call (k pointer stores), so there is no cached-pointer state to
  /// invalidate on growth or copy.
  FlatMomentColumns Columns() const;

  size_t size() const { return counts_.size(); }
  int k() const { return k_; }
  size_t SizeBytes() const;

 private:
  int k_;
  std::vector<std::vector<double>> power_cols_;  // k columns
  std::vector<std::vector<double>> log_cols_;    // k columns
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> log_counts_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
  // Scratch for Columns(); rebuilt on every call, mutable so the view
  // stays a const read.
  mutable std::vector<const double*> power_ptrs_;
  mutable std::vector<const double*> log_ptrs_;
};

class RollupIndex {
 public:
  RollupIndex(int k, const RollupOptions& options);

  /// Full (re)build over the store's current columns and postings.
  /// `version` is the store's column version at build time; the index is
  /// fresh exactly while the store still reports that version.
  void Build(const FlatMomentColumns& cols, const std::vector<DimIndex>& dims,
             uint64_t version);

  /// Incremental rebuild: recomputes the span nodes covering any cell in
  /// `dirty_cells` (one node per dimension per dirty cell — this, the
  /// dominant term of a full Build, is proportional to the dirt),
  /// appends nodes for spans completed by newly created cells, and
  /// re-reduces the grand total. The total re-reduce is one SIMD range
  /// merge over all cells and the span-extension pass sweeps every
  /// dimension's value map, so a refresh still costs Omega(N + values)
  /// with small constants — ~(2 * num_dims)x cheaper than Build, not
  /// free; batch ingests between refreshes accordingly.
  void Refresh(const FlatMomentColumns& cols,
               const std::vector<DimIndex>& dims,
               const std::vector<CubeCoords>& coords,
               const std::vector<uint32_t>& dirty_cells, uint64_t version);

  bool FreshAt(uint64_t version) const {
    return built_ && version == built_version_;
  }
  uint64_t built_version() const { return built_version_; }

  /// Pre-merged sketch over every cell (valid while fresh).
  const MomentsSketch& total() const { return total_; }

  int span_log2() const { return span_log2_; }
  size_t span_width() const { return size_t{1} << span_log2_; }

  /// Span nodes covering the leading full spans of (dim, value)'s
  /// postings. `nodes` is null when the value has no full span (short or
  /// unseen postings); `covered` counts the postings positions the nodes
  /// pre-merge (always a multiple of the span width).
  struct ValueSpans {
    const std::vector<uint32_t>* nodes = nullptr;
    size_t covered = 0;
  };
  ValueSpans SpansFor(size_t dim, uint32_t value) const;

  /// Node storage, for the merge kernels.
  const MomentSlab& slab() const { return slab_; }
  size_t num_nodes() const { return slab_.size(); }
  size_t SizeBytes() const { return slab_.SizeBytes(); }

 private:
  // Builds the node sketch for postings[begin, begin + width) and
  // either appends it or overwrites `node`.
  MomentsSketch BuildNode(const FlatMomentColumns& cols,
                          const std::vector<uint32_t>& postings,
                          size_t begin) const;
  // Appends all full spans of `postings` not yet covered by `entry`.
  void ExtendValue(const FlatMomentColumns& cols,
                   const std::vector<uint32_t>& postings,
                   std::vector<uint32_t>* nodes);

  int k_;
  int span_log2_;
  bool built_ = false;
  uint64_t built_version_ = 0;
  MomentSlab slab_;
  MomentsSketch total_;
  // per_dim_[d][value] -> node ids of that value's full spans, in span
  // order (node j covers postings positions [j*2^s, (j+1)*2^s)).
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> per_dim_;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_ROLLUP_INDEX_H_
