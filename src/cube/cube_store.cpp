#include "cube/cube_store.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace msketch {

namespace {

// QueryWhere plan-selection thresholds (see src/cube/README.md).
//
// Complement starts from the pre-merged total and subtracts the N - m
// non-matching cells instead of gathering m matching ones; it needs a
// fresh rollup (computing the total on the fly costs a full range merge,
// which measures at break-even against the direct gather) and wins once
// m is about two thirds of the cube.
constexpr uint64_t kComplementNum = 2, kComplementDen = 3;
// Scan beats intersecting when the postings volume the cursors would
// walk exceeds the coordinate pass by more than the per-element cost
// gap: a postings element is one packed uint32 step, a coordinate check
// dereferences the cell's heap-allocated coords vector (~an order of
// magnitude more), so the scan only wins against many near-full lists.
constexpr uint64_t kScanCostFactor = 12;
// Complement cancellation guard: subtracting the non-matching cells'
// k-th power sums amplifies rounding noise by up to
// (amax_nonmatching / amax_matching)^k relative to the matching-scale
// result. Decline the plan once that amplification could exceed 2^12
// (~4096 ulps, leaving answers well inside solver tolerance); same-
// distribution populations sit far below the bound, magnitude-skewed
// adversarial ones far above.
constexpr double kMaxCancellationBits = 12.0;

}  // namespace

const char* QueryPlanName(QueryPlan plan) {
  switch (plan) {
    case QueryPlan::kScan:
      return "scan";
    case QueryPlan::kIntersect:
      return "intersect";
    case QueryPlan::kRollup:
      return "rollup";
    case QueryPlan::kComplement:
      return "complement";
  }
  return "unknown";
}

CubeStore::CubeStore(size_t num_dims, int k) : num_dims_(num_dims), k_(k) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(k >= 1 && k <= 64);
  power_cols_.resize(k);
  log_cols_.resize(k);
  power_ptrs_.resize(k, nullptr);
  log_ptrs_.resize(k, nullptr);
  dim_indexes_.resize(num_dims);
}

CubeStore::CubeStore(const CubeStore& other)
    : num_dims_(other.num_dims_),
      k_(other.k_),
      num_rows_(other.num_rows_),
      version_(other.version_),
      cell_ids_(other.cell_ids_),
      coords_(other.coords_),
      power_cols_(other.power_cols_),
      log_cols_(other.log_cols_),
      counts_(other.counts_),
      log_counts_(other.log_counts_),
      mins_(other.mins_),
      maxs_(other.maxs_),
      sums_(other.sums_),
      power_ptrs_(other.power_ptrs_),
      log_ptrs_(other.log_ptrs_),
      dim_indexes_(other.dim_indexes_),
      kll_enabled_(other.kll_enabled_),
      kll_k_(other.kll_k_),
      kll_cells_(other.kll_cells_),
      rollup_(other.rollup_ ? std::make_unique<RollupIndex>(*other.rollup_)
                            : nullptr),
      dirty_cells_(other.dirty_cells_),
      cell_dirty_(other.cell_dirty_),
      plan_counters_(other.plan_counters_) {
  RefreshColumnPtrs();
}

CubeStore& CubeStore::operator=(const CubeStore& other) {
  if (this != &other) {
    *this = CubeStore(other);  // copy-construct (refreshes ptrs), then move
  }
  return *this;
}

void CubeStore::RefreshColumnPtrs() {
  // resize (not resize-in-ctor only): the copy constructor reaches here
  // before its own mutable-ptr vectors are sized.
  power_mut_ptrs_.resize(k_);
  log_mut_ptrs_.resize(k_);
  for (int i = 0; i < k_; ++i) {
    power_ptrs_[i] = power_cols_[i].data();
    log_ptrs_[i] = log_cols_[i].data();
    power_mut_ptrs_[i] = power_cols_[i].data();
    log_mut_ptrs_[i] = log_cols_[i].data();
  }
}

void CubeStore::OnColumnsChanged() {
  ++version_;
  RefreshColumnPtrs();
}

void CubeStore::OnCellMutated(uint32_t cell_id) {
  ++version_;
  if (rollup_ != nullptr && !cell_dirty_[cell_id]) {
    cell_dirty_[cell_id] = 1;
    dirty_cells_.push_back(cell_id);
  }
}

uint32_t CubeStore::CreateCell(const CubeCoords& coords) {
  const uint32_t id = static_cast<uint32_t>(coords_.size());
  cell_ids_.emplace(coords, id);
  coords_.push_back(coords);
  for (auto& col : power_cols_) col.push_back(0.0);
  for (auto& col : log_cols_) col.push_back(0.0);
  counts_.push_back(0);
  log_counts_.push_back(0);
  mins_.push_back(std::numeric_limits<double>::infinity());
  maxs_.push_back(-std::numeric_limits<double>::infinity());
  sums_.push_back(0.0);
  cell_dirty_.push_back(0);
  if (kll_enabled_) kll_cells_.emplace_back(kll_k_);
  for (size_t d = 0; d < num_dims_; ++d) {
    dim_indexes_[d].Add(coords[d], id);
  }
  // The push_backs may have reallocated; this is the one place the
  // cached column bases are re-pointed (and the version bumped), so
  // Columns() stays a pure read and no caller can observe stale
  // pointers after column growth.
  OnColumnsChanged();
  return id;
}

uint32_t CubeStore::Ingest(const CubeCoords& coords, double value) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  MSKETCH_DCHECK(std::isfinite(value));
  uint32_t id;
  auto it = cell_ids_.find(coords);
  if (it != cell_ids_.end()) {
    id = it->second;
    OnCellMutated(id);
  } else {
    id = CreateCell(coords);
  }
  // Same accumulation recurrence as MomentsSketch::Accumulate, applied to
  // the cell's column entries.
  mins_[id] = std::min(mins_[id], value);
  maxs_[id] = std::max(maxs_[id], value);
  ++counts_[id];
  sums_[id] += value;
  double p = 1.0;
  for (int i = 0; i < k_; ++i) {
    p *= value;
    power_cols_[i][id] += p;
  }
  if (value > 0.0) {
    ++log_counts_[id];
    const double lx = std::log(value);
    double lp = 1.0;
    for (int i = 0; i < k_; ++i) {
      lp *= lx;
      log_cols_[i][id] += lp;
    }
  }
  if (kll_enabled_) kll_cells_[id].Accumulate(value);
  ++num_rows_;
  return id;
}

void CubeStore::EnableKll(int kll_k) {
  MSKETCH_CHECK(num_rows_ == 0);  // certificates must cover every row
  kll_enabled_ = true;
  kll_k_ = kll_k;
  kll_cells_.clear();
  kll_cells_.reserve(coords_.size());
  for (size_t i = 0; i < coords_.size(); ++i) kll_cells_.emplace_back(kll_k_);
}

Status CubeStore::ApplyKllDelta(const CubeCoords& coords,
                                const KllSketch& delta) {
  if (!kll_enabled_) {
    return Status::Unsupported("ApplyKllDelta: KLL column disabled");
  }
  if (coords.size() != num_dims_) {
    return Status::InvalidArgument("ApplyKllDelta: wrong coordinate arity");
  }
  if (delta.count() == 0) return Status::OK();
  uint32_t id;
  auto it = cell_ids_.find(coords);
  if (it != cell_ids_.end()) {
    id = it->second;
    OnCellMutated(id);
  } else {
    id = CreateCell(coords);
  }
  if (kll_cells_[id].count() == 0) {
    // Wholesale adoption keeps checkpoint restore bit-exact (a merge
    // into an empty sketch would reset the compaction coin state).
    kll_cells_[id] = delta;
    return Status::OK();
  }
  return kll_cells_[id].Merge(delta);
}

Result<KllSketch> CubeStore::MergeKllCells(const uint32_t* cell_ids,
                                           size_t n) const {
  if (!kll_enabled_) {
    return Status::Unsupported("MergeKllCells: KLL column disabled");
  }
  KllSketch out(kll_k_);
  for (size_t i = 0; i < n; ++i) {
    MSKETCH_DCHECK(cell_ids[i] < kll_cells_.size());
    MSKETCH_RETURN_NOT_OK(out.Merge(kll_cells_[cell_ids[i]]));
  }
  return out;
}

Result<KllSketch> CubeStore::MergeKllWhere(const CubeFilter& filter,
                                           QueryStats* stats) const {
  if (!kll_enabled_) {
    return Status::Unsupported("MergeKllWhere: KLL column disabled");
  }
  const std::vector<uint32_t> ids = MatchingCells(filter);
  if (stats != nullptr) stats->kll_merges += ids.size();
  return MergeKllCells(ids.data(), ids.size());
}

Status CubeStore::ApplyDelta(const CubeCoords& coords,
                             const MomentsSketch& delta) {
  if (coords.size() != num_dims_) {
    return Status::InvalidArgument("ApplyDelta: wrong coordinate arity");
  }
  if (delta.k() != k_) {
    return Status::InvalidArgument("ApplyDelta: mismatched order k");
  }
  if (delta.count() == 0) return Status::OK();
  uint32_t id;
  auto it = cell_ids_.find(coords);
  if (it != cell_ids_.end()) {
    id = it->second;
    OnCellMutated(id);
  } else {
    id = CreateCell(coords);
  }
  MutableFlatMomentColumns mut;
  mut.k = k_;
  mut.num_cells = coords_.size();
  mut.power_sums = power_mut_ptrs_.data();
  mut.log_sums = log_mut_ptrs_.data();
  mut.counts = counts_.data();
  mut.log_counts = log_counts_.data();
  mut.mins = mins_.data();
  mut.maxs = maxs_.data();
  Status s = delta.DrainIntoCell(mut, id);
  if (!s.ok()) return s;
  // power_sums()[0] is the same addition sequence the sums_ column saw
  // per row, so the native-sum baseline stays consistent with the
  // sketch columns bit-for-bit.
  sums_[id] += delta.power_sums()[0];
  num_rows_ += delta.count();
  return Status::OK();
}

FlatMomentColumns CubeStore::Columns() const {
  FlatMomentColumns cols;
  cols.k = k_;
  cols.num_cells = coords_.size();
  cols.power_sums = power_ptrs_.data();
  cols.log_sums = log_ptrs_.data();
  cols.counts = counts_.data();
  cols.log_counts = log_counts_.data();
  cols.mins = mins_.data();
  cols.maxs = maxs_.data();
  return cols;
}

void CubeStore::BuildRollup(const RollupOptions& options) {
  rollup_ = std::make_unique<RollupIndex>(k_, options);
  rollup_->Build(Columns(), dim_indexes_, version_);
  std::fill(cell_dirty_.begin(), cell_dirty_.end(), 0);
  dirty_cells_.clear();
}

void CubeStore::RefreshRollup() {
  if (rollup_ == nullptr || rollup_->FreshAt(version_)) return;
  rollup_->Refresh(Columns(), dim_indexes_, coords_, dirty_cells_, version_);
  for (uint32_t c : dirty_cells_) cell_dirty_[c] = 0;
  dirty_cells_.clear();
}

std::vector<uint32_t> CubeStore::MatchingCells(const CubeFilter& filter) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  std::vector<const std::vector<uint32_t>*> constrained;
  for (size_t d = 0; d < num_dims_; ++d) {
    if (filter[d] == kAnyValue) continue;
    if (!FilterValueInRange(filter[d])) return {};  // impossible value
    constrained.push_back(
        &dim_indexes_[d].Postings(static_cast<uint32_t>(filter[d])));
  }
  if (constrained.empty()) {
    std::vector<uint32_t> all(coords_.size());
    for (uint32_t id = 0; id < all.size(); ++id) all[id] = id;
    return all;
  }
  return IntersectPostings(constrained);
}

MomentsSketch CubeStore::QueryWhere(const CubeFilter& filter,
                                    QueryStats* stats) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  QueryStats local;
  QueryStats& st = stats != nullptr ? *stats : local;
  st = QueryStats();
  const FlatMomentColumns cols = Columns();
  const size_t n_cells = coords_.size();
  const bool rollup_fresh = HasFreshRollup();
  MomentsSketch out(k_);

  // Constrained dimensions and their postings ( = the selectivity
  // counters the planner reads).
  std::vector<size_t> cdims;
  std::vector<const std::vector<uint32_t>*> postings;
  for (size_t d = 0; d < num_dims_; ++d) {
    if (filter[d] == kAnyValue) continue;
    if (!FilterValueInRange(filter[d])) {
      st.plan = QueryPlan::kIntersect;  // impossible value: empty result
      plan_counters_.intersect.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    cdims.push_back(d);
    postings.push_back(
        &dim_indexes_[d].Postings(static_cast<uint32_t>(filter[d])));
  }

  // Unconstrained: the fresh rollup answers in O(k); otherwise one SIMD
  // range merge over the packed columns.
  if (cdims.empty()) {
    st.merges = n_cells;
    if (rollup_fresh) {
      st.plan = QueryPlan::kRollup;
      plan_counters_.rollup.fetch_add(1, std::memory_order_relaxed);
      return rollup_->total();
    }
    st.plan = QueryPlan::kScan;
    st.visited = n_cells;
    plan_counters_.scan.fetch_add(1, std::memory_order_relaxed);
    MSKETCH_CHECK(out.MergeFlatRangeFast(cols, 0, n_cells).ok());
    return out;
  }

  // Single constrained dimension with a fresh rollup: fold the value's
  // pre-merged span nodes, then the residual postings tail.
  if (cdims.size() == 1) {
    const std::vector<uint32_t>& list = *postings[0];
    if (rollup_fresh) {
      const RollupIndex::ValueSpans spans = rollup_->SpansFor(
          cdims[0], static_cast<uint32_t>(filter[cdims[0]]));
      if (spans.nodes != nullptr) {
        st.plan = QueryPlan::kRollup;
        plan_counters_.rollup.fetch_add(1, std::memory_order_relaxed);
        MSKETCH_CHECK(out.MergeFlatFast(rollup_->slab().Columns(),
                                        spans.nodes->data(),
                                        spans.nodes->size())
                          .ok());
        const size_t residual = list.size() - spans.covered;
        if (residual > 0) {
          MSKETCH_CHECK(
              out.MergeFlatFast(cols, list.data() + spans.covered, residual)
                  .ok());
        }
        st.merges = list.size();
        st.span_merges = spans.nodes->size();
        st.residual_merges = residual;
        st.visited = st.span_merges + st.residual_merges;
        return out;
      }
    }
    return ExecuteIds(cols, list.data(), list.size(), QueryPlan::kIntersect,
                      rollup_fresh, &st);
  }

  // Multiple constrained dimensions: intersect the postings, unless the
  // total postings volume the cursors would walk dwarfs one coordinate
  // pass — then scanning is cheaper than walking many near-full lists.
  size_t sum_postings = 0;
  for (const auto* p : postings) sum_postings += p->size();
  std::vector<uint32_t> ids;
  QueryPlan source_plan;
  if (sum_postings > kScanCostFactor * n_cells) {
    source_plan = QueryPlan::kScan;
    ids.reserve(n_cells);
    for (uint32_t id = 0; id < n_cells; ++id) {
      if (FilterMatches(coords_[id], filter)) ids.push_back(id);
    }
    st.visited = n_cells;
  } else {
    source_plan = QueryPlan::kIntersect;
    ids = IntersectPostings(postings);
  }
  return ExecuteIds(cols, ids.data(), ids.size(), source_plan, rollup_fresh,
                    &st);
}

MomentsSketch CubeStore::ExecuteIds(const FlatMomentColumns& cols,
                                    const uint32_t* ids, size_t m,
                                    QueryPlan source_plan, bool rollup_fresh,
                                    QueryStats* st) const {
  const size_t n_cells = coords_.size();
  MomentsSketch out(k_);
  st->merges = m;
  st->plan = source_plan;

  // Complement: when nearly everything matches and the pre-merged total
  // is fresh, start from the total and subtract the few non-matching
  // cells; min/max are re-derived exactly from the matching cells'
  // packed extrema. Guarded against catastrophic cancellation: the
  // subtracted moment sums grow like amax^k, so if any non-matching cell
  // has larger magnitude than every matching cell, the subtraction could
  // bury the true sums below the operands' ulp — fall through to the
  // direct gather merge instead, which sums the matching cells at full
  // precision.
  if (rollup_fresh && m * kComplementDen >= n_cells * kComplementNum &&
      m < n_cells) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      mn = std::min(mn, cols.mins[ids[i]]);
      mx = std::max(mx, cols.maxs[ids[i]]);
    }
    const double amax_matching =
        std::max(std::fabs(mn), std::fabs(mx));
    std::vector<uint32_t> non_matching;
    non_matching.reserve(n_cells - m);
    double amax_non_matching = 0.0;
    size_t j = 0;
    for (uint32_t id = 0; id < n_cells; ++id) {
      if (j < m && ids[j] == id) {
        ++j;
        continue;
      }
      non_matching.push_back(id);
      if (cols.counts[id] > 0) {
        amax_non_matching =
            std::max(amax_non_matching,
                     std::max(std::fabs(cols.mins[id]),
                              std::fabs(cols.maxs[id])));
      }
    }
    const bool cancellation_safe =
        amax_non_matching <= amax_matching ||
        (amax_matching > 0.0 &&
         k_ * std::log2(amax_non_matching / amax_matching) <
             kMaxCancellationBits);
    if (cancellation_safe) {
      st->plan = QueryPlan::kComplement;
      plan_counters_.complement.fetch_add(1, std::memory_order_relaxed);
      out = rollup_->total();
      MSKETCH_CHECK(
          out.SubtractFlatFast(cols, non_matching.data(),
                               non_matching.size())
              .ok());
      if (out.count() > 0) out.SetRange(mn, mx);
      st->subtract_merges = non_matching.size();
      st->visited += non_matching.size();
      return out;
    }
  }

  if (m == n_cells) {
    // Everything matches: unit-stride merge (or the pre-merged total).
    if (rollup_fresh) {
      st->plan = QueryPlan::kRollup;
      plan_counters_.rollup.fetch_add(1, std::memory_order_relaxed);
      return rollup_->total();
    }
    st->visited += n_cells;
    MSKETCH_CHECK(out.MergeFlatRangeFast(cols, 0, n_cells).ok());
  } else {
    st->visited += m;
    MSKETCH_CHECK(out.MergeFlatFast(cols, ids, m).ok());
  }
  if (st->plan == QueryPlan::kScan) {
    plan_counters_.scan.fetch_add(1, std::memory_order_relaxed);
  } else {
    plan_counters_.intersect.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

MomentsSketch CubeStore::MergeWhere(const CubeFilter& filter,
                                    QueryStats* stats) const {
  MomentsSketch out(k_);
  bool unconstrained = true;
  for (int64_t f : filter) unconstrained &= (f == kAnyValue);
  if (unconstrained) {
    MSKETCH_CHECK(filter.size() == num_dims_);
    MSKETCH_CHECK(out.MergeFlatRange(Columns(), 0, coords_.size()).ok());
    if (stats != nullptr) {
      stats->merges = coords_.size();
      stats->visited = coords_.size();
    }
    return out;
  }
  // Every constrained dimension participated in the intersection, so the
  // candidates are exactly the matching cells — no re-check needed.
  std::vector<uint32_t> ids = MatchingCells(filter);
  MSKETCH_CHECK(out.MergeFlat(Columns(), ids.data(), ids.size()).ok());
  if (stats != nullptr) {
    stats->merges = ids.size();
    stats->visited = ids.size();
  }
  return out;
}

MomentsSketch CubeStore::MergeWhereScan(const CubeFilter& filter,
                                        QueryStats* stats) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < coords_.size(); ++id) {
    if (FilterMatches(coords_[id], filter)) ids.push_back(id);
  }
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlat(Columns(), ids.data(), ids.size()).ok());
  if (stats != nullptr) {
    stats->merges = ids.size();
    stats->visited = coords_.size();
  }
  return out;
}

MomentsSketch CubeStore::MergeAll() const {
  return MergeRange(0, coords_.size());
}

MomentsSketch CubeStore::MergeCells(const uint32_t* cell_ids,
                                    size_t n) const {
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlat(Columns(), cell_ids, n).ok());
  return out;
}

MomentsSketch CubeStore::MergeRange(size_t begin, size_t end) const {
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlatRange(Columns(), begin, end).ok());
  return out;
}

double CubeStore::SumWhere(const CubeFilter& filter) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  double acc = 0.0;
  bool unconstrained = true;
  for (int64_t f : filter) unconstrained &= (f == kAnyValue);
  if (unconstrained) {
    // Stream the packed sums column directly; no id list needed.
    for (double s : sums_) acc += s;
    return acc;
  }
  for (uint32_t id : MatchingCells(filter)) acc += sums_[id];
  return acc;
}

void CubeStore::ForEachGroup(
    const std::vector<size_t>& group_dims,
    const std::function<void(const CubeCoords&, const MomentsSketch&)>& fn)
    const {
  const FlatMomentColumns cols = Columns();
  std::unordered_map<CubeCoords, MomentsSketch, CubeCoordsHash> groups;
  groups.reserve(coords_.size());
  CubeCoords key;
  key.reserve(group_dims.size());
  for (uint32_t id = 0; id < coords_.size(); ++id) {
    key.clear();
    for (size_t d : group_dims) key.push_back(coords_[id][d]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, MomentsSketch(k_)).first;
    }
    MSKETCH_CHECK(it->second.MergeFlat(cols, &id, 1).ok());
  }
  for (const auto& [group_key, sketch] : groups) fn(group_key, sketch);
}

MomentsSketch CubeStore::CellSketch(uint32_t cell_id) const {
  MSKETCH_CHECK(cell_id < coords_.size());
  return MergeCells(&cell_id, 1);
}

size_t CubeStore::SummaryBytes() const {
  // Per cell: 2k sum doubles + min/max + count/log_count — the same
  // state a standalone sketch serializes, minus per-object overhead.
  return coords_.size() * ((2 * static_cast<size_t>(k_) + 2) *
                               sizeof(double) +
                           2 * sizeof(uint64_t));
}

}  // namespace msketch
