#include "cube/cube_store.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace msketch {

CubeStore::CubeStore(size_t num_dims, int k) : num_dims_(num_dims), k_(k) {
  MSKETCH_CHECK(num_dims >= 1);
  MSKETCH_CHECK(k >= 1 && k <= 64);
  power_cols_.resize(k);
  log_cols_.resize(k);
  power_ptrs_.resize(k, nullptr);
  log_ptrs_.resize(k, nullptr);
  dim_indexes_.resize(num_dims);
}

CubeStore::CubeStore(const CubeStore& other)
    : num_dims_(other.num_dims_),
      k_(other.k_),
      num_rows_(other.num_rows_),
      cell_ids_(other.cell_ids_),
      coords_(other.coords_),
      power_cols_(other.power_cols_),
      log_cols_(other.log_cols_),
      counts_(other.counts_),
      log_counts_(other.log_counts_),
      mins_(other.mins_),
      maxs_(other.maxs_),
      sums_(other.sums_),
      power_ptrs_(other.power_ptrs_),
      log_ptrs_(other.log_ptrs_),
      dim_indexes_(other.dim_indexes_) {
  RefreshColumnPtrs();
}

CubeStore& CubeStore::operator=(const CubeStore& other) {
  if (this != &other) {
    *this = CubeStore(other);  // copy-construct (refreshes ptrs), then move
  }
  return *this;
}

void CubeStore::RefreshColumnPtrs() {
  for (int i = 0; i < k_; ++i) {
    power_ptrs_[i] = power_cols_[i].data();
    log_ptrs_[i] = log_cols_[i].data();
  }
}

uint32_t CubeStore::Ingest(const CubeCoords& coords, double value) {
  MSKETCH_DCHECK(coords.size() == num_dims_);
  MSKETCH_DCHECK(std::isfinite(value));
  uint32_t id;
  auto it = cell_ids_.find(coords);
  if (it != cell_ids_.end()) {
    id = it->second;
  } else {
    id = static_cast<uint32_t>(coords_.size());
    cell_ids_.emplace(coords, id);
    coords_.push_back(coords);
    for (auto& col : power_cols_) col.push_back(0.0);
    for (auto& col : log_cols_) col.push_back(0.0);
    counts_.push_back(0);
    log_counts_.push_back(0);
    mins_.push_back(std::numeric_limits<double>::infinity());
    maxs_.push_back(-std::numeric_limits<double>::infinity());
    sums_.push_back(0.0);
    for (size_t d = 0; d < num_dims_; ++d) {
      dim_indexes_[d].Add(coords[d], id);
    }
    // The push_backs may have reallocated; refresh the cached column
    // bases here so Columns() stays a pure read.
    RefreshColumnPtrs();
  }
  // Same accumulation recurrence as MomentsSketch::Accumulate, applied to
  // the cell's column entries.
  mins_[id] = std::min(mins_[id], value);
  maxs_[id] = std::max(maxs_[id], value);
  ++counts_[id];
  sums_[id] += value;
  double p = 1.0;
  for (int i = 0; i < k_; ++i) {
    p *= value;
    power_cols_[i][id] += p;
  }
  if (value > 0.0) {
    ++log_counts_[id];
    const double lx = std::log(value);
    double lp = 1.0;
    for (int i = 0; i < k_; ++i) {
      lp *= lx;
      log_cols_[i][id] += lp;
    }
  }
  ++num_rows_;
  return id;
}

FlatMomentColumns CubeStore::Columns() const {
  FlatMomentColumns cols;
  cols.k = k_;
  cols.num_cells = coords_.size();
  cols.power_sums = power_ptrs_.data();
  cols.log_sums = log_ptrs_.data();
  cols.counts = counts_.data();
  cols.log_counts = log_counts_.data();
  cols.mins = mins_.data();
  cols.maxs = maxs_.data();
  return cols;
}

std::vector<uint32_t> CubeStore::MatchingCells(const CubeFilter& filter) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  std::vector<const std::vector<uint32_t>*> constrained;
  for (size_t d = 0; d < num_dims_; ++d) {
    if (filter[d] == kAnyValue) continue;
    if (!FilterValueInRange(filter[d])) return {};  // impossible value
    constrained.push_back(
        &dim_indexes_[d].Postings(static_cast<uint32_t>(filter[d])));
  }
  if (constrained.empty()) {
    std::vector<uint32_t> all(coords_.size());
    for (uint32_t id = 0; id < all.size(); ++id) all[id] = id;
    return all;
  }
  return IntersectPostings(constrained);
}

MomentsSketch CubeStore::MergeWhere(const CubeFilter& filter,
                                    QueryStats* stats) const {
  MomentsSketch out(k_);
  bool unconstrained = true;
  for (int64_t f : filter) unconstrained &= (f == kAnyValue);
  if (unconstrained) {
    MSKETCH_CHECK(filter.size() == num_dims_);
    MSKETCH_CHECK(out.MergeFlatRange(Columns(), 0, coords_.size()).ok());
    if (stats != nullptr) {
      stats->merges = coords_.size();
      stats->visited = coords_.size();
    }
    return out;
  }
  // Every constrained dimension participated in the intersection, so the
  // candidates are exactly the matching cells — no re-check needed.
  std::vector<uint32_t> ids = MatchingCells(filter);
  MSKETCH_CHECK(out.MergeFlat(Columns(), ids.data(), ids.size()).ok());
  if (stats != nullptr) {
    stats->merges = ids.size();
    stats->visited = ids.size();
  }
  return out;
}

MomentsSketch CubeStore::MergeWhereScan(const CubeFilter& filter,
                                        QueryStats* stats) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < coords_.size(); ++id) {
    if (FilterMatches(coords_[id], filter)) ids.push_back(id);
  }
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlat(Columns(), ids.data(), ids.size()).ok());
  if (stats != nullptr) {
    stats->merges = ids.size();
    stats->visited = coords_.size();
  }
  return out;
}

MomentsSketch CubeStore::MergeAll() const {
  return MergeRange(0, coords_.size());
}

MomentsSketch CubeStore::MergeCells(const uint32_t* cell_ids,
                                    size_t n) const {
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlat(Columns(), cell_ids, n).ok());
  return out;
}

MomentsSketch CubeStore::MergeRange(size_t begin, size_t end) const {
  MomentsSketch out(k_);
  MSKETCH_CHECK(out.MergeFlatRange(Columns(), begin, end).ok());
  return out;
}

double CubeStore::SumWhere(const CubeFilter& filter) const {
  MSKETCH_CHECK(filter.size() == num_dims_);
  double acc = 0.0;
  bool unconstrained = true;
  for (int64_t f : filter) unconstrained &= (f == kAnyValue);
  if (unconstrained) {
    // Stream the packed sums column directly; no id list needed.
    for (double s : sums_) acc += s;
    return acc;
  }
  for (uint32_t id : MatchingCells(filter)) acc += sums_[id];
  return acc;
}

void CubeStore::ForEachGroup(
    const std::vector<size_t>& group_dims,
    const std::function<void(const CubeCoords&, const MomentsSketch&)>& fn)
    const {
  const FlatMomentColumns cols = Columns();
  std::unordered_map<CubeCoords, MomentsSketch, CubeCoordsHash> groups;
  groups.reserve(coords_.size());
  CubeCoords key;
  key.reserve(group_dims.size());
  for (uint32_t id = 0; id < coords_.size(); ++id) {
    key.clear();
    for (size_t d : group_dims) key.push_back(coords_[id][d]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, MomentsSketch(k_)).first;
    }
    MSKETCH_CHECK(it->second.MergeFlat(cols, &id, 1).ok());
  }
  for (const auto& [group_key, sketch] : groups) fn(group_key, sketch);
}

MomentsSketch CubeStore::CellSketch(uint32_t cell_id) const {
  MSKETCH_CHECK(cell_id < coords_.size());
  return MergeCells(&cell_id, 1);
}

size_t CubeStore::SummaryBytes() const {
  // Per cell: 2k sum doubles + min/max + count/log_count — the same
  // state a standalone sketch serializes, minus per-object overhead.
  return coords_.size() * ((2 * static_cast<size_t>(k_) + 2) *
                               sizeof(double) +
                           2 * sizeof(uint64_t));
}

}  // namespace msketch
