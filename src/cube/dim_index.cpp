#include "cube/dim_index.h"

#include <algorithm>

#include "common/macros.h"

namespace msketch {

namespace {
const std::vector<uint32_t> kEmptyPostings;
}  // namespace

void DimIndex::Add(uint32_t value, uint32_t cell_id) {
  std::vector<uint32_t>& list = postings_[value];
  MSKETCH_DCHECK(list.empty() || list.back() < cell_id);
  list.push_back(cell_id);
  ++total_;
}

const std::vector<uint32_t>& DimIndex::Postings(uint32_t value) const {
  auto it = postings_.find(value);
  if (it == postings_.end()) return kEmptyPostings;
  return it->second;
}

std::vector<uint32_t> IntersectPostings(
    const std::vector<const std::vector<uint32_t>*>& lists) {
  MSKETCH_CHECK(!lists.empty());
  // Probe from the smallest list: every survivor must appear everywhere.
  size_t smallest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i]->size() < lists[smallest]->size()) smallest = i;
  }
  std::vector<uint32_t> out;
  if (lists[smallest]->empty()) return out;
  out.reserve(lists[smallest]->size());
  for (uint32_t id : *lists[smallest]) {
    bool in_all = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == smallest) continue;
      if (!std::binary_search(lists[i]->begin(), lists[i]->end(), id)) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(id);
  }
  return out;
}

}  // namespace msketch
