#include "cube/dim_index.h"

#include <algorithm>

#include "common/macros.h"

namespace msketch {

namespace {
const std::vector<uint32_t> kEmptyPostings;
}  // namespace

void DimIndex::Add(uint32_t value, uint32_t cell_id) {
  std::vector<uint32_t>& list = postings_[value];
  MSKETCH_DCHECK(list.empty() || list.back() < cell_id);
  list.push_back(cell_id);
  ++total_;
}

const std::vector<uint32_t>& DimIndex::Postings(uint32_t value) const {
  auto it = postings_.find(value);
  if (it == postings_.end()) return kEmptyPostings;
  return it->second;
}

size_t GallopLowerBound(const std::vector<uint32_t>& list, size_t from,
                        uint32_t target) {
  const size_t n = list.size();
  if (from >= n || list[from] >= target) return from;
  // Invariant: list[lo] < target. Double the step until the probe
  // overshoots (or runs off the end), then binary-search (lo, hi].
  size_t lo = from;
  size_t step = 1;
  while (lo + step < n && list[lo + step] < target) {
    lo += step;
    step <<= 1;
  }
  const size_t hi = std::min(n, lo + step + 1);
  return static_cast<size_t>(
      std::lower_bound(list.begin() + lo + 1, list.begin() + hi, target) -
      list.begin());
}

std::vector<uint32_t> IntersectPostings(
    const std::vector<const std::vector<uint32_t>*>& lists) {
  MSKETCH_CHECK(!lists.empty());
  // Probe from the smallest list: every survivor must appear everywhere.
  size_t smallest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i]->size() < lists[smallest]->size()) smallest = i;
  }
  const std::vector<uint32_t>& probe = *lists[smallest];
  std::vector<uint32_t> out;
  if (probe.empty()) return out;
  out.reserve(probe.size());
  // Monotone cursor per non-probe list, plus the per-list advance
  // strategy: gallop when the list dwarfs the probe (each probe id lands
  // far ahead, so log(gap) beats a walk), linear otherwise (comparable
  // lists interleave densely; stepping beats re-bracketing).
  struct Cursor {
    const std::vector<uint32_t>* list;
    size_t pos = 0;
    bool gallop = false;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(lists.size() - 1);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (i == smallest) continue;
    cursors.push_back(
        Cursor{lists[i], 0, lists[i]->size() > 8 * probe.size()});
  }
  for (uint32_t id : probe) {
    bool in_all = true;
    for (Cursor& c : cursors) {
      const std::vector<uint32_t>& list = *c.list;
      if (c.gallop) {
        c.pos = GallopLowerBound(list, c.pos, id);
      } else {
        while (c.pos < list.size() && list[c.pos] < id) ++c.pos;
      }
      if (c.pos == list.size()) return out;  // this list is exhausted
      if (list[c.pos] != id) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(id);
  }
  return out;
}

}  // namespace msketch
