// Columnar cube engine: struct-of-arrays storage for per-cell moments
// sketches plus per-dimension inverted indexes and a rollup index of
// pre-merged span partials.
//
// Layout. Instead of one heap-allocated MomentsSketch object per cell,
// the store keeps one contiguous double column per moment order:
//
//   power_cols_[i][c] = sum over cell c of x^(i+1)      (k columns)
//   log_cols_[i][c]   = sum over cell c of log(x)^(i+1) (k columns)
//   counts_[c], log_counts_[c], mins_[c], maxs_[c], sums_[c]
//
// A merge over a cell set is then k independent reductions over packed
// doubles (MomentsSketch::MergeFlat) — the memory system streams
// columns instead of chasing a pointer per cell, which is what makes
// the paper's merge-dominated query path run at hardware speed.
//
// Query planning. QueryWhere picks one of four plans from the postings
// sizes (the selectivity counters the indexes already maintain):
//
//   kRollup     single constrained dimension with a fresh RollupIndex —
//               fold the value's pre-merged span nodes plus the residual
//               tail cells (~2^span_log2 x fewer adds); the unfiltered
//               query returns the pre-merged grand total outright
//   kComplement matching set nearly the whole cube and the rollup fresh
//               — take the pre-merged total and subtract the few
//               non-matching cells
//   kScan       many constrained dimensions whose combined postings
//               volume dwarfs one coordinate pass — scanning beats
//               walking a stack of near-full postings lists
//   kIntersect  everything else — intersect the constrained postings
//               (galloping cursors) and gather-merge the matching cells
//
// All plans agree with the exact MergeWhere to within floating point
// re-association (counts and min/max are always exact); MergeWhere
// remains the bit-exact reference path. See src/cube/README.md for the
// cost model and the plan-selection thresholds.
//
// The store is moments-sketch-specific by design: the SoA layout relies
// on the sketch being a fixed set of linear accumulators. Other summary
// types keep using the object-per-cell DataCube<Summary>.
#ifndef MSKETCH_CUBE_CUBE_STORE_H_
#define MSKETCH_CUBE_CUBE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/moments_sketch.h"
#include "cube/cube_types.h"
#include "cube/dim_index.h"
#include "cube/rollup_index.h"
#include "sketches/kll_sketch.h"

namespace msketch {

/// Which strategy QueryWhere executed for a query.
enum class QueryPlan : uint8_t {
  kScan = 0,
  kIntersect = 1,
  kRollup = 2,
  kComplement = 3,
};
const char* QueryPlanName(QueryPlan plan);

/// Cumulative per-plan query counts (relaxed atomics: const queries may
/// run concurrently; the counters are diagnostics, not synchronization).
struct PlanCounters {
  std::atomic<uint64_t> scan{0};
  std::atomic<uint64_t> intersect{0};
  std::atomic<uint64_t> rollup{0};
  std::atomic<uint64_t> complement{0};

  PlanCounters() = default;
  PlanCounters(const PlanCounters& other) { *this = other; }
  PlanCounters& operator=(const PlanCounters& other) {
    scan.store(other.scan.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    intersect.store(other.intersect.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    rollup.store(other.rollup.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    complement.store(other.complement.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  uint64_t total() const {
    return scan.load(std::memory_order_relaxed) +
           intersect.load(std::memory_order_relaxed) +
           rollup.load(std::memory_order_relaxed) +
           complement.load(std::memory_order_relaxed);
  }
};

class CubeStore {
 public:
  CubeStore(size_t num_dims, int k);

  // Copies must re-point the cached column bases at their own buffers
  // (the defaults would leave them aimed at the source's columns).
  // Moves keep the heap buffers, so the cached pointers stay valid.
  CubeStore(const CubeStore& other);
  CubeStore& operator=(const CubeStore& other);
  CubeStore(CubeStore&&) = default;
  CubeStore& operator=(CubeStore&&) = default;

  /// Adds one row, creating the cell (and its index postings) on first
  /// touch. Returns the cell id. Every ingest bumps the column version,
  /// so a built rollup reads as stale until RefreshRollup().
  uint32_t Ingest(const CubeCoords& coords, double value);

  /// Folds a pre-aggregated delta sketch into the cell at `coords`,
  /// creating the cell (and its postings) on first touch — the epoch
  /// drain path of the streaming ingest engine. Column sums get one add
  /// each (MomentsSketch::DrainIntoCell), counts add exactly, min/max
  /// widen to cover the delta, and the native-sum column grows by the
  /// delta's first power sum (the same addition sequence Ingest applies
  /// per row). Version and rollup-dirtiness bookkeeping matches Ingest:
  /// the cell is marked dirty so the next RefreshRollup rebuilds only
  /// its spans. Empty deltas are a no-op.
  Status ApplyDelta(const CubeCoords& coords, const MomentsSketch& delta);

  size_t num_cells() const { return coords_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return num_dims_; }
  int k() const { return k_; }

  const CubeCoords& CoordsOf(uint32_t cell_id) const {
    return coords_[cell_id];
  }
  double CellSum(uint32_t cell_id) const { return sums_[cell_id]; }
  uint64_t CellCount(uint32_t cell_id) const { return counts_[cell_id]; }

  /// SoA view over all cells, consumable by MomentsSketch::MergeFlat and
  /// the parallel/window layers. Invalidated by the next Ingest. Pure
  /// read: const query methods are safe to call concurrently as long as
  /// no thread is ingesting.
  FlatMomentColumns Columns() const;

  /// Per-query work counters. `merges` counts the matching cells folded
  /// into the result (logically — the rollup and complement plans fold
  /// them without touching each one); `visited` counts the units of
  /// merge work the plan actually performed (cells scanned or gathered,
  /// rollup nodes, subtracted cells), so visited << merges is the rollup
  /// win and visited > merges marks a scan.
  struct QueryStats {
    uint64_t merges = 0;
    uint64_t visited = 0;
    QueryPlan plan = QueryPlan::kIntersect;
    uint64_t span_merges = 0;      // rollup nodes folded
    uint64_t residual_merges = 0;  // cells merged beyond full spans
    uint64_t subtract_merges = 0;  // complement-plan subtracted cells
    uint64_t kll_merges = 0;       // KLL cell sketches folded (router path)
  };

  /// Planned filtered merge: picks scan / intersect / rollup /
  /// complement from the postings sizes (see file comment). Counts and
  /// min/max are exact under every plan; moment sums agree with
  /// MergeWhere to within re-association (bit-equal when the sums are
  /// exactly representable).
  MomentsSketch QueryWhere(const CubeFilter& filter,
                           QueryStats* stats = nullptr) const;

  /// Filtered merge through the inverted indexes: intersects the
  /// constrained dimensions' postings and merges only matching cells.
  /// Bit-exact reference path (visits cells in ascending id order).
  MomentsSketch MergeWhere(const CubeFilter& filter,
                           QueryStats* stats = nullptr) const;

  /// Filtered merge by scanning every cell's coordinates (the
  /// pre-refactor plan; kept for benchmarking and validation — results
  /// are bit-identical to MergeWhere because both visit matching cells
  /// in ascending cell-id order).
  MomentsSketch MergeWhereScan(const CubeFilter& filter,
                               QueryStats* stats = nullptr) const;

  MomentsSketch MergeAll() const;

  /// Merges the given cells (ids must be valid) in order.
  MomentsSketch MergeCells(const uint32_t* cell_ids, size_t n) const;

  /// Merges the contiguous cell-id range [begin, end) — the unit-stride
  /// kernel that ParallelMergeRange shards across threads.
  MomentsSketch MergeRange(size_t begin, size_t end) const;

  /// Sorted cell ids matching `filter`, via the inverted indexes
  /// (all cells when every dimension is unconstrained).
  std::vector<uint32_t> MatchingCells(const CubeFilter& filter) const;

  /// Native sum over matching cells (Figure 11 baseline), indexed.
  double SumWhere(const CubeFilter& filter) const;

  /// Groups cells by the given dimensions and hands each group's merged
  /// sketch to `fn`. Group map is pre-reserved; merging is columnar.
  void ForEachGroup(
      const std::vector<size_t>& group_dims,
      const std::function<void(const CubeCoords&, const MomentsSketch&)>& fn)
      const;

  /// Reconstructs one cell's sketch from the columns.
  MomentsSketch CellSketch(uint32_t cell_id) const;

  /// Bytes of sketch state across all cells (columns, not per-object).
  size_t SummaryBytes() const;

  // ------------------------------------------------------------- rollup

  /// Builds (or rebuilds) the rollup index over the current contents.
  void BuildRollup(const RollupOptions& options = {});

  /// Incrementally re-validates a built rollup: rebuilds only the span
  /// nodes covering cells ingested into since the last build/refresh,
  /// appends newly completed spans, re-reduces the total (one SIMD range
  /// merge over all cells — see RollupIndex::Refresh for the cost
  /// breakdown). No-op when no rollup exists or it is already fresh.
  void RefreshRollup();

  /// The rollup index, or null when none was built.
  const RollupIndex* rollup() const { return rollup_.get(); }

  /// True when a rollup exists and no ingest happened since it was
  /// built/refreshed (the only state QueryWhere will use it in).
  bool HasFreshRollup() const {
    return rollup_ != nullptr && rollup_->FreshAt(version_);
  }

  // ------------------------------------------------ KLL side column
  //
  // The multi-backend router's fallback storage: one KllSketch per cell,
  // object-per-cell (rank sketches are not linear accumulators, so they
  // cannot join the SoA columns). Off by default — zero overhead until
  // enabled. Must be enabled before the first row lands so the rank
  // certificates cover the cell's full history.

  /// Enables KLL dual-writes with per-level capacity `kll_k`. Must be
  /// called on an empty store (certificates are only sound when the rank
  /// sketch saw every row).
  void EnableKll(int kll_k = 64);
  bool kll_enabled() const { return kll_enabled_; }
  int kll_k() const { return kll_k_; }

  /// The cell's rank sketch, or nullptr when KLL is disabled.
  const KllSketch* CellKll(uint32_t cell_id) const {
    if (!kll_enabled_ || cell_id >= kll_cells_.size()) return nullptr;
    return &kll_cells_[cell_id];
  }

  /// Folds a streamed KLL delta into the cell at `coords`, creating the
  /// cell on first touch. An empty destination adopts the delta wholesale
  /// (bit-exact for checkpoint restore); otherwise the delta merges in.
  Status ApplyKllDelta(const CubeCoords& coords, const KllSketch& delta);

  /// Merged rank sketch over the cells matching `filter` (same matching
  /// semantics as QueryWhere). Unsupported when KLL is disabled.
  Result<KllSketch> MergeKllWhere(const CubeFilter& filter,
                                  QueryStats* stats = nullptr) const;

  /// Merged rank sketch over an explicit cell set.
  Result<KllSketch> MergeKllCells(const uint32_t* cell_ids, size_t n) const;

  /// Monotone column version: bumped by every Ingest. Snapshot it next
  /// to a FlatMomentColumns view to detect staleness.
  uint64_t column_version() const { return version_; }

  /// Cumulative QueryWhere plan counts (benchmark/diagnostic surface).
  const PlanCounters& plan_counters() const { return plan_counters_; }

  /// The inverted index of one dimension (batch_query's rollup-backed
  /// GROUP BY enumerates a dimension's values through this).
  const DimIndex& dim_index(size_t d) const { return dim_indexes_[d]; }

 private:
  /// Re-points the cached column bases at the current buffers (used by
  /// the copy constructor, which must not bump the version).
  void RefreshColumnPtrs();
  /// The single place cached column base pointers are rebuilt and the
  /// version is bumped after column growth; Ingest must route every
  /// reallocation-capable mutation through here so no stale-pointer
  /// window can exist.
  void OnColumnsChanged();
  /// Executes the tail of QueryWhere once the sorted matching ids are
  /// known: complement when nearly everything matches, total/range merge
  /// when everything does, gather merge otherwise.
  MomentsSketch ExecuteIds(const FlatMomentColumns& cols, const uint32_t* ids,
                           size_t m, QueryPlan source_plan, bool rollup_fresh,
                           QueryStats* st) const;
  /// Bookkeeping for an in-place update of an existing cell: bumps the
  /// version and records the cell for incremental rollup refresh.
  void OnCellMutated(uint32_t cell_id);
  /// Allocates the cell for `coords`: appends one zeroed slot to every
  /// column, registers the postings, and routes through
  /// OnColumnsChanged (push_backs may reallocate). Shared by Ingest and
  /// ApplyDelta so the parallel columns can never diverge.
  uint32_t CreateCell(const CubeCoords& coords);

  size_t num_dims_;
  int k_;
  uint64_t num_rows_ = 0;
  uint64_t version_ = 0;

  // Cell directory.
  std::unordered_map<CubeCoords, uint32_t, CubeCoordsHash> cell_ids_;
  std::vector<CubeCoords> coords_;  // cell id -> coordinates

  // Struct-of-arrays sketch state, one entry per cell per column.
  std::vector<std::vector<double>> power_cols_;  // k columns
  std::vector<std::vector<double>> log_cols_;    // k columns
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> log_counts_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
  std::vector<double> sums_;

  // Column base pointers, kept current by OnColumnsChanged so Columns()
  // and the const query methods never write shared state. The mutable
  // twins back ApplyDelta's drain view (same lifetime discipline).
  std::vector<const double*> power_ptrs_;
  std::vector<const double*> log_ptrs_;
  std::vector<double*> power_mut_ptrs_;
  std::vector<double*> log_mut_ptrs_;

  // One inverted index per dimension.
  std::vector<DimIndex> dim_indexes_;

  // KLL side column (object-per-cell; parallel to coords_ when enabled).
  bool kll_enabled_ = false;
  int kll_k_ = 64;
  std::vector<KllSketch> kll_cells_;

  // Rollup index + the cells mutated since its last build/refresh.
  std::unique_ptr<RollupIndex> rollup_;
  std::vector<uint32_t> dirty_cells_;
  std::vector<uint8_t> cell_dirty_;  // parallel to coords_

  mutable PlanCounters plan_counters_;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_CUBE_STORE_H_
