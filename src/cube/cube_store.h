// Columnar cube engine: struct-of-arrays storage for per-cell moments
// sketches plus per-dimension inverted indexes.
//
// Layout. Instead of one heap-allocated MomentsSketch object per cell,
// the store keeps one contiguous double column per moment order:
//
//   power_cols_[i][c] = sum over cell c of x^(i+1)      (k columns)
//   log_cols_[i][c]   = sum over cell c of log(x)^(i+1) (k columns)
//   counts_[c], log_counts_[c], mins_[c], maxs_[c], sums_[c]
//
// A merge over a cell set is then k independent reductions over packed
// doubles (MomentsSketch::MergeFlat) — the memory system streams
// columns instead of chasing a pointer per cell, which is what makes
// the paper's merge-dominated query path run at hardware speed.
//
// Cost model. Merging m cells costs (2k + 4) * m double loads and adds
// with no per-cell allocation or indirection; a full-cube query over N
// cells is (2k + 4) * N sequential column traversals (unit stride). A
// filtered query first intersects the constrained dimensions' postings
// (cost ~ size of the smallest postings list, times log for the binary
// probes) and then pays the merge only for the m matching cells — so
// selective filters cost O(m), not O(N). See src/cube/README.md.
//
// The store is moments-sketch-specific by design: the SoA layout relies
// on the sketch being a fixed set of linear accumulators. Other summary
// types keep using the object-per-cell DataCube<Summary>.
#ifndef MSKETCH_CUBE_CUBE_STORE_H_
#define MSKETCH_CUBE_CUBE_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/moments_sketch.h"
#include "cube/cube_types.h"
#include "cube/dim_index.h"

namespace msketch {

class CubeStore {
 public:
  CubeStore(size_t num_dims, int k);

  // Copies must re-point the cached column bases at their own buffers
  // (the defaults would leave them aimed at the source's columns).
  // Moves keep the heap buffers, so the cached pointers stay valid.
  CubeStore(const CubeStore& other);
  CubeStore& operator=(const CubeStore& other);
  CubeStore(CubeStore&&) = default;
  CubeStore& operator=(CubeStore&&) = default;

  /// Adds one row, creating the cell (and its index postings) on first
  /// touch. Returns the cell id.
  uint32_t Ingest(const CubeCoords& coords, double value);

  size_t num_cells() const { return coords_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return num_dims_; }
  int k() const { return k_; }

  const CubeCoords& CoordsOf(uint32_t cell_id) const {
    return coords_[cell_id];
  }
  double CellSum(uint32_t cell_id) const { return sums_[cell_id]; }
  uint64_t CellCount(uint32_t cell_id) const { return counts_[cell_id]; }

  /// SoA view over all cells, consumable by MomentsSketch::MergeFlat and
  /// the parallel/window layers. Invalidated by the next Ingest. Pure
  /// read: const query methods are safe to call concurrently as long as
  /// no thread is ingesting.
  FlatMomentColumns Columns() const;

  /// Per-query work counters. `visited` counts cells the query examined;
  /// `merges` counts cells actually folded into the result. The indexed
  /// path visits exactly the matching cells; the scan path visits all.
  struct QueryStats {
    uint64_t merges = 0;
    uint64_t visited = 0;
  };

  /// Filtered merge through the inverted indexes: intersects the
  /// constrained dimensions' postings and merges only matching cells.
  MomentsSketch MergeWhere(const CubeFilter& filter,
                           QueryStats* stats = nullptr) const;

  /// Filtered merge by scanning every cell's coordinates (the
  /// pre-refactor plan; kept for benchmarking and validation — results
  /// are bit-identical to MergeWhere because both visit matching cells
  /// in ascending cell-id order).
  MomentsSketch MergeWhereScan(const CubeFilter& filter,
                               QueryStats* stats = nullptr) const;

  MomentsSketch MergeAll() const;

  /// Merges the given cells (ids must be valid) in order.
  MomentsSketch MergeCells(const uint32_t* cell_ids, size_t n) const;

  /// Merges the contiguous cell-id range [begin, end) — the unit-stride
  /// kernel that ParallelMergeRange shards across threads.
  MomentsSketch MergeRange(size_t begin, size_t end) const;

  /// Sorted cell ids matching `filter`, via the inverted indexes
  /// (all cells when every dimension is unconstrained).
  std::vector<uint32_t> MatchingCells(const CubeFilter& filter) const;

  /// Native sum over matching cells (Figure 11 baseline), indexed.
  double SumWhere(const CubeFilter& filter) const;

  /// Groups cells by the given dimensions and hands each group's merged
  /// sketch to `fn`. Group map is pre-reserved; merging is columnar.
  void ForEachGroup(
      const std::vector<size_t>& group_dims,
      const std::function<void(const CubeCoords&, const MomentsSketch&)>& fn)
      const;

  /// Reconstructs one cell's sketch from the columns.
  MomentsSketch CellSketch(uint32_t cell_id) const;

  /// Bytes of sketch state across all cells (columns, not per-object).
  size_t SummaryBytes() const;

 private:
  void RefreshColumnPtrs();

  size_t num_dims_;
  int k_;
  uint64_t num_rows_ = 0;

  // Cell directory.
  std::unordered_map<CubeCoords, uint32_t, CubeCoordsHash> cell_ids_;
  std::vector<CubeCoords> coords_;  // cell id -> coordinates

  // Struct-of-arrays sketch state, one entry per cell per column.
  std::vector<std::vector<double>> power_cols_;  // k columns
  std::vector<std::vector<double>> log_cols_;    // k columns
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> log_counts_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
  std::vector<double> sums_;

  // Column base pointers, kept current by Ingest so Columns() and the
  // const query methods never write shared state.
  std::vector<const double*> power_ptrs_;
  std::vector<const double*> log_ptrs_;

  // One inverted index per dimension.
  std::vector<DimIndex> dim_indexes_;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_CUBE_STORE_H_
