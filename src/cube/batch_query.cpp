#include "cube/batch_query.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "core/atomic_fit.h"
#include "core/chebyshev_moments.h"
#include "cube/data_cube.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"

namespace msketch {

namespace {

// Rolls a finished batch pipeline's counters into the global registry —
// once per GROUP BY, via cached instrument pointers, so the per-group
// hot loop stays untouched.
void PublishBatchStats(const BatchStats& s) {
  if (s.groups == 0) return;
  obs::MetricsRegistry& reg = obs::GlobalRegistry();
  static obs::Counter* const groups = reg.GetCounter(
      "msk_batch_groups_total", {}, "Groups estimated by GROUP BY queries");
  static obs::Counter* const cold = reg.GetCounter(
      "msk_batch_cold_solves_total", {}, "Cold maxent solves in batches");
  static obs::Counter* const warm = reg.GetCounter(
      "msk_batch_warm_solves_total", {},
      "Warm-started maxent solves in batches");
  static obs::Counter* const cache_hits = reg.GetCounter(
      "msk_batch_cache_hits_total", {}, "Solver-cache hits in batches");
  static obs::Counter* const failed = reg.GetCounter(
      "msk_batch_failed_solves_total", {},
      "Groups whose solve failed past every fallback");
  static obs::Counter* const atomic_fb = reg.GetCounter(
      "msk_batch_atomic_fallbacks_total", {},
      "Groups answered by the atomic-fit fallback");
  static obs::Counter* const lane_enqueued = reg.GetCounter(
      "msk_lane_solver_enqueued_total", {},
      "Groups enqueued into the lane-batched solver");
  static obs::Counter* const lane_packed_solves = reg.GetCounter(
      "msk_lane_solver_packed_solves_total", {},
      "Packed SIMD Newton solves");
  static obs::Counter* const lane_packed_lanes = reg.GetCounter(
      "msk_lane_solver_packed_lanes_total", {},
      "Occupied lanes across packed solves");
  static obs::Counter* const lane_converged = reg.GetCounter(
      "msk_lane_solver_lane_converged_total", {},
      "Lanes converged inside the packed solve");
  static obs::Counter* const lane_escalated = reg.GetCounter(
      "msk_lane_solver_lane_escalated_total", {},
      "Converged lanes escalated to a finer scalar grid");
  static obs::Counter* const lane_fallbacks = reg.GetCounter(
      "msk_lane_solver_lane_fallbacks_total", {},
      "Lanes finished on the scalar fallback path");
  static obs::Counter* const lane_warm = reg.GetCounter(
      "msk_lane_solver_warm_lanes_total", {},
      "Lanes seeded from the bucket's warm chain");
  static obs::Counter* const lane_prep_failures = reg.GetCounter(
      "msk_lane_solver_prep_failures_total", {},
      "Groups rejected at lane prep (routed to the scalar chain)");
  groups->Add(s.groups);
  cold->Add(s.cold_solves);
  warm->Add(s.warm_solves);
  cache_hits->Add(s.cache_hits);
  failed->Add(s.failed_solves);
  atomic_fb->Add(s.atomic_fallbacks);
  lane_enqueued->Add(s.lane.enqueued);
  lane_packed_solves->Add(s.lane.packed_solves);
  lane_packed_lanes->Add(s.lane.packed_lanes);
  lane_converged->Add(s.lane.lane_converged);
  lane_escalated->Add(s.lane.lane_escalated);
  lane_fallbacks->Add(s.lane.lane_fallbacks);
  lane_warm->Add(s.lane.warm_lanes);
  lane_prep_failures->Add(s.lane.prep_failures);
}

// A materialized group with its similarity-ordering features.
struct Group {
  CubeCoords key;
  MomentsSketch sketch;
  bool log_usable = false;
  double m1 = 0.0, m2 = 0.0;  // scaled first/second moments
};

// Scaled first and second moments — the cheap 2-D proxy for "these two
// sketches will accept each other's theta". Full Chebyshev conversion is
// overkill for ordering; mean and spread in the scaled domain capture
// most of the distributional distance.
void FillSimilarityFeatures(Group* g) {
  const MomentsSketch& s = g->sketch;
  g->log_usable = s.LogMomentsUsable();
  if (s.count() == 0 || !(s.min() < s.max())) return;
  // Order in the domain the solver will integrate in: log moments when
  // they are usable (they win the primary-domain vote for long-tailed
  // data and are available whenever standard moments are).
  if (g->log_usable) {
    const ScaleMap map = MakeScaleMap(std::log(s.min()), std::log(s.max()));
    const std::vector<double> nu = s.LogMoments();
    g->m1 = map.Forward(nu[1]);
    if (s.k() >= 2) {
      g->m2 = (nu[2] - 2.0 * map.center * nu[1] + map.center * map.center) /
              (map.radius * map.radius);
    }
  } else {
    const ScaleMap map = MakeScaleMap(s.min(), s.max());
    const std::vector<double> mu = s.StandardMoments();
    g->m1 = map.Forward(mu[1]);
    if (s.k() >= 2) {
      g->m2 = (mu[2] - 2.0 * map.center * mu[1] + map.center * map.center) /
              (map.radius * map.radius);
    }
  }
}

std::vector<Group> CollectGroups(const CubeStore& store,
                                 const std::vector<size_t>& group_dims) {
  std::vector<Group> groups;
  if (group_dims.size() == 1 && store.HasFreshRollup()) {
    // A single-dimension GROUP BY partitions the cells by that
    // dimension's value — exactly the per-value postings the rollup
    // index pre-merged. One planned query per distinct value folds span
    // nodes instead of every cell, so the merge side of a
    // high-cardinality GROUP BY shrinks by ~the span width.
    const size_t d = group_dims[0];
    CubeFilter filter(store.num_dims(), kAnyValue);
    store.dim_index(d).ForEachValue(
        [&](uint32_t value, const std::vector<uint32_t>&) {
          filter[d] = static_cast<int64_t>(value);
          Group g;
          g.key = {value};
          g.sketch = store.QueryWhere(filter);
          FillSimilarityFeatures(&g);
          groups.push_back(std::move(g));
        });
  } else {
    store.ForEachGroup(group_dims, [&](const CubeCoords& key,
                                       const MomentsSketch& sketch) {
      Group g;
      g.key = key;
      g.sketch = sketch;
      FillSimilarityFeatures(&g);
      groups.push_back(std::move(g));
    });
  }
  // Similarity order: identical-moment groups land adjacent (same chain,
  // so the cache absorbs them), near-identical ones neighbor each other
  // for warm starts. A plain lexicographic (m1, m2) sort jumps in m2 at
  // every m1 step; snaking through coarse m1 buckets keeps *both*
  // coordinates slowly varying along a chain, which is what the solver's
  // warm gate rewards. Key as final tiebreak keeps the order
  // deterministic.
  auto bucket = [](double m1) {
    return static_cast<int>(std::floor((m1 + 1.0) / 0.02));
  };
  std::sort(groups.begin(), groups.end(),
            [&](const Group& a, const Group& b) {
              if (a.log_usable != b.log_usable) {
                return a.log_usable < b.log_usable;
              }
              const int ba = bucket(a.m1), bb = bucket(b.m1);
              if (ba != bb) return ba < bb;
              const bool reverse = (ba & 1) != 0;  // snake direction
              if (a.m2 != b.m2) return reverse ? a.m2 > b.m2 : a.m2 < b.m2;
              if (a.m1 != b.m1) return a.m1 < b.m1;
              return a.key < b.key;
            });
  return groups;
}

// The cache -> warm-start -> cold solve tiers, chained per worker.
class TieredSolver {
 public:
  TieredSolver(SolverCache* cache, bool use_warm,
               const MaxEntOptions& maxent, BatchStats* stats)
      : cache_(cache), use_warm_(use_warm), maxent_(maxent), stats_(stats) {}

  /// Solved distribution for the sketch, or the solver's error. Updates
  /// the chain state and stats.
  Result<std::shared_ptr<const MaxEntDistribution>> Solve(
      const MomentsSketch& sketch) {
    // Failure memo first (cheaper than a cache key build): the
    // similarity order puts identical-moment groups adjacent, and a
    // failed solve (near-discrete data) is the most expensive kind — the
    // full Newton backoff chain. Don't repeat it, and don't charge a
    // cache miss, for a byte-identical neighbor.
    if (failed_valid_ && failed_sketch_.IdenticalTo(sketch)) {
      return failed_status_;
    }
    std::string key;
    if (cache_ != nullptr) {
      if (auto hit = cache_->Lookup(sketch, maxent_, &key)) {
        ++stats_->cache_hits;
        if (hit->warm_start().valid()) last_ = hit;
        return hit;
      }
    }
    const WarmStart* hint =
        (use_warm_ && last_ != nullptr && last_->warm_start().valid())
            ? &last_->warm_start()
            : nullptr;
    Result<MaxEntDistribution> res = SolveMaxEnt(sketch, maxent_, hint);
    if (!res.ok()) {
      if (res.status().message().find("atomic") != std::string::npos) {
        ++stats_->atomic_screen_hits;
      }
      failed_valid_ = true;
      failed_sketch_ = sketch;
      failed_status_ = res.status();
      return res.status();
    }
    stats_->newton_iterations +=
        static_cast<uint64_t>(res->diagnostics().newton_iterations);
    stats_->cold_restarts +=
        static_cast<uint64_t>(res->diagnostics().cold_restarts);
    stats_->iteration_capped +=
        static_cast<uint64_t>(res->diagnostics().iteration_capped);
    if (res->diagnostics().warm_started) {
      ++stats_->warm_solves;
    } else {
      ++stats_->cold_solves;
    }
    auto dist =
        std::make_shared<const MaxEntDistribution>(std::move(res.value()));
    if (cache_ != nullptr) cache_->InsertWithKey(std::move(key), dist);
    if (dist->warm_start().valid()) last_ = dist;
    return dist;
  }

 private:
  SolverCache* cache_;
  bool use_warm_;
  const MaxEntOptions& maxent_;
  BatchStats* stats_;
  std::shared_ptr<const MaxEntDistribution> last_;
  bool failed_valid_ = false;
  MomentsSketch failed_sketch_{1};
  Status failed_status_;
};

// Per-shard solve facade over the two engines: the lane-batched solver
// (default; results delivered through a consumer, possibly after later
// Solve calls fill the lane bucket) or the scalar TieredSolver (consumer
// invoked synchronously; bit-exact with per-group SolveMaxEnt when warm
// starts are off). Callers must invoke Finish() to drain pending lanes
// before reading results.
class ChainSolver {
 public:
  using DistResult = Result<std::shared_ptr<const MaxEntDistribution>>;
  using Consumer = std::function<void(const DistResult&)>;

  ChainSolver(SolverCache* cache, const BatchOptions& options,
              BatchStats* stats)
      : cache_(cache),
        options_(options),
        stats_(stats),
        tiered_(cache, options.use_warm_start, options.maxent, stats) {
    if (options_.use_lane_solver) {
      lane_.reset(new LaneMaxEntSolver(
          options_.maxent, options_.use_warm_start,
          [this](size_t req, Result<MaxEntDistribution> res) {
            OnLaneResult(req, std::move(res));
          }));
    }
  }

  /// Requests a solve; `consumer` runs exactly once, either now (cache
  /// hit / scalar engine / degenerate group) or when the group's lane
  /// bucket solves. References captured by the consumer must outlive
  /// Finish().
  void Solve(const MomentsSketch& sketch, Consumer consumer) {
    if (lane_ == nullptr) {
      consumer(tiered_.Solve(sketch));
      return;
    }
    std::string key;
    if (cache_ != nullptr) {
      if (auto hit = cache_->Lookup(sketch, options_.maxent, &key)) {
        ++stats_->cache_hits;
        consumer(DistResult(std::move(hit)));
        return;
      }
      // In-flight coalescing: an identical-key group already waiting in
      // a lane bucket answers this request too — the similarity order
      // packs duplicates back-to-back, and solving them in separate
      // lanes would waste the cache's whole economy.
      auto pending = pending_by_key_.find(key);
      if (pending != pending_by_key_.end()) {
        ++stats_->cache_hits;
        requests_[pending->second].consumers.push_back(std::move(consumer));
        return;
      }
    }
    const size_t req = requests_.size();
    requests_.push_back(Request{std::move(key), {}});
    requests_[req].consumers.push_back(std::move(consumer));
    if (cache_ != nullptr) pending_by_key_[requests_[req].key] = req;
    lane_->Enqueue(req, sketch);
  }

  /// Drains every pending lane bucket (delivering their consumers).
  void Finish() {
    if (lane_ != nullptr) {
      lane_->FlushAll();
      stats_->lane.MergeFrom(lane_->stats());
    }
  }

 private:
  struct Request {
    std::string key;  // cache key ("" when the cache is off)
    std::vector<Consumer> consumers;
  };

  void OnLaneResult(size_t req, Result<MaxEntDistribution> res) {
    Request& r = requests_[req];
    if (cache_ != nullptr) pending_by_key_.erase(r.key);
    DistResult out = [&]() -> DistResult {
      if (!res.ok()) {
        if (res.status().message().find("atomic") != std::string::npos) {
          ++stats_->atomic_screen_hits;
        }
        return res.status();
      }
      stats_->newton_iterations +=
          static_cast<uint64_t>(res->diagnostics().newton_iterations);
      stats_->cold_restarts +=
          static_cast<uint64_t>(res->diagnostics().cold_restarts);
      stats_->iteration_capped +=
          static_cast<uint64_t>(res->diagnostics().iteration_capped);
      if (res->diagnostics().warm_started) {
        ++stats_->warm_solves;
      } else {
        ++stats_->cold_solves;
      }
      auto dist =
          std::make_shared<const MaxEntDistribution>(std::move(res.value()));
      if (cache_ != nullptr && !r.key.empty()) {
        cache_->InsertWithKey(std::move(r.key), dist);
      }
      return dist;
    }();
    for (const Consumer& c : r.consumers) c(out);
    r.consumers.clear();
  }

  SolverCache* cache_;
  const BatchOptions& options_;
  BatchStats* stats_;
  TieredSolver tiered_;
  std::unique_ptr<LaneMaxEntSolver> lane_;
  std::deque<Request> requests_;
  std::unordered_map<std::string, size_t> pending_by_key_;
};

// Shards the similarity-ordered groups and runs `process(index, solver,
// shard_stats, shard)` for each group index; merges per-shard stats into
// *stats. Pending lane solves drain before a shard finishes, so every
// consumer has run by the time this returns.
template <typename ProcessFn>
void RunChains(size_t num_groups, const BatchOptions& options,
               BatchStats* stats, const ProcessFn& process) {
  const int threads = std::max(1, options.threads);
  SolverCache local_cache(
      SolverCacheOptions{options.cache_capacity, 1e-9,
                         static_cast<size_t>(std::max(1, threads))});
  SolverCache* cache = nullptr;
  if (options.use_cache) {
    cache = options.cache != nullptr ? options.cache : &local_cache;
  }
  std::vector<BatchStats> shard_stats(static_cast<size_t>(threads));
  ParallelShards(num_groups, threads,
                 [&](size_t begin, size_t end, int shard) {
                   BatchStats& st = shard_stats[shard];
                   ChainSolver solver(cache, options, &st);
                   for (size_t i = begin; i < end; ++i) {
                     process(i, &solver, &st, shard);
                   }
                   solver.Finish();
                 });
  stats->groups = num_groups;
  for (const BatchStats& st : shard_stats) stats->MergeFrom(st);
}

}  // namespace

std::vector<GroupQuantiles> GroupByQuantiles(
    const CubeStore& store, const std::vector<size_t>& group_dims,
    const std::vector<double>& phis, const BatchOptions& options,
    BatchStats* stats) {
  std::vector<Group> groups = CollectGroups(store, group_dims);
  // Shards write disjoint slots of `out`; no locking needed.
  std::vector<GroupQuantiles> out(groups.size());
  BatchStats local_stats;
  RunChains(groups.size(), options, &local_stats,
            [&](size_t i, ChainSolver* solver, BatchStats* st, int) {
              const Group& g = groups[i];
              GroupQuantiles& r = out[i];
              r.key = g.key;
              r.count = g.sketch.count();
              // `st` is this per-group lambda's parameter: the consumer
              // may run after this frame is gone (lane bucket fill /
              // Finish), so it must be captured by value — it points at
              // the long-lived shard_stats slot.
              solver->Solve(
                  g.sketch, [&, i, st](const ChainSolver::DistResult& dist) {
                    const Group& g = groups[i];
                    GroupQuantiles& r = out[i];
                    if (dist.ok()) {
                      r.quantiles = dist.value()->Quantiles(phis);
                      r.k1 = dist.value()->diagnostics().k1;
                      r.k2 = dist.value()->diagnostics().k2;
                      return;
                    }
                    // Near-discrete group: mirror the cascade's fallback.
                    if (auto atomic = FitAtomicDistribution(g.sketch);
                        atomic.ok()) {
                      ++st->atomic_fallbacks;
                      r.used_atomic = true;
                      r.quantiles.reserve(phis.size());
                      for (double phi : phis) {
                        r.quantiles.push_back(atomic->Quantile(phi));
                      }
                      return;
                    }
                    ++st->failed_solves;
                    r.status = dist.status();
                  });
            });
  std::sort(out.begin(), out.end(),
            [](const GroupQuantiles& a, const GroupQuantiles& b) {
              return a.key < b.key;
            });
  PublishBatchStats(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return out;
}

std::vector<GroupThreshold> GroupByThreshold(
    const CubeStore& store, const std::vector<size_t>& group_dims,
    double phi, double t, const BatchOptions& options, BatchStats* stats) {
  std::vector<Group> groups = CollectGroups(store, group_dims);
  std::vector<GroupThreshold> out(groups.size());
  BatchStats local_stats;
  // One bounds cascade per shard; stats merge afterwards. The cascade's
  // own maxent stage is bypassed — unresolved groups route through the
  // shard's tiered solver so they join the warm-start chain.
  std::vector<ThresholdCascade> cascades(
      static_cast<size_t>(std::max(1, options.threads)),
      ThresholdCascade(options.cascade));
  RunChains(groups.size(), options, &local_stats,
            [&](size_t i, ChainSolver* solver, BatchStats* st, int shard) {
              const Group& g = groups[i];
              GroupThreshold& r = out[i];
              r.key = g.key;
              r.count = g.sketch.count();
              ThresholdCascade& cascade = cascades[shard];
              RankBounds bounds;
              switch (cascade.CheckBounds(g.sketch, phi, t, &bounds)) {
                case ThresholdCascade::Decision::kTrue:
                  r.exceeds = true;
                  return;
                case ThresholdCascade::Decision::kFalse:
                  r.exceeds = false;
                  return;
                case ThresholdCascade::Decision::kUnresolved:
                  break;
              }
              // Cascade survivor: the final maxent stage streams through
              // the shard's chain solver, lane-filling with the other
              // survivors; the decision lands when the lane solves. `st`
              // (this lambda's parameter) is captured by value — the
              // consumer can outlive this frame.
              solver->Solve(
                  g.sketch, [&, i, shard, bounds,
                             st](const ChainSolver::DistResult& dist) {
                    const Group& g = groups[i];
                    const MaxEntDistribution* dp =
                        dist.ok() ? dist.value().get() : nullptr;
                    ThresholdCascade::MaxEntResolution resolution;
                    out[i].exceeds = cascades[shard].DecideWithDistribution(
                        dp, g.sketch, phi, t, bounds, &resolution);
                    if (resolution ==
                        ThresholdCascade::MaxEntResolution::kAtomic) {
                      ++st->atomic_fallbacks;
                    } else if (resolution ==
                               ThresholdCascade::MaxEntResolution::kBounds) {
                      ++st->failed_solves;
                    }
                  });
            });
  for (const ThresholdCascade& c : cascades) {
    local_stats.cascade.MergeFrom(c.stats());
  }
  std::sort(out.begin(), out.end(),
            [](const GroupThreshold& a, const GroupThreshold& b) {
              return a.key < b.key;
            });
  PublishBatchStats(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return out;
}

std::vector<GroupQuantiles> DataCube<MomentsSummary>::GroupByQuantiles(
    const std::vector<size_t>& group_dims, const std::vector<double>& phis,
    const BatchOptions& options, BatchStats* stats) const {
  return msketch::GroupByQuantiles(store_, group_dims, phis, options, stats);
}

std::vector<GroupThreshold> DataCube<MomentsSummary>::GroupByThreshold(
    const std::vector<size_t>& group_dims, double phi, double t,
    const BatchOptions& options, BatchStats* stats) const {
  return msketch::GroupByThreshold(store_, group_dims, phi, t, options,
                                   stats);
}

}  // namespace msketch
