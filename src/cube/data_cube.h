// Mini-Druid data cube: pre-aggregated summaries keyed by dimension-value
// tuples (Figure 1 and Section 7.1 of the paper).
//
// One cell per distinct coordinate tuple; each cell holds a mergeable
// summary of the metric plus a running sum (the paper's native-sum
// baseline in Figure 11). Queries with dimension filters merge the
// matching cells' summaries — the merge-dominated code path the moments
// sketch accelerates.
//
// Templated on the summary type so benchmarks can swap in M-Sketch,
// S-Hist, Merge12, etc. without virtual dispatch on the merge path.
#ifndef MSKETCH_CUBE_DATA_CUBE_H_
#define MSKETCH_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace msketch {

/// Cell coordinates: one dictionary-encoded value id per dimension.
using CubeCoords = std::vector<uint32_t>;

struct CubeCoordsHash {
  size_t operator()(const CubeCoords& c) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t v : c) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};

/// Filter: one entry per dimension; kAnyValue matches every value.
constexpr int64_t kAnyValue = -1;
using CubeFilter = std::vector<int64_t>;

template <typename Summary>
class DataCube {
 public:
  DataCube(size_t num_dims, Summary prototype)
      : num_dims_(num_dims), prototype_(std::move(prototype)) {
    MSKETCH_CHECK(num_dims >= 1);
  }

  /// Adds one row. Creates the cell on first touch.
  void Ingest(const CubeCoords& coords, double value) {
    MSKETCH_DCHECK(coords.size() == num_dims_);
    auto it = cells_.find(coords);
    if (it == cells_.end()) {
      it = cells_.emplace(coords, Cell{prototype_.CloneEmpty(), 0.0}).first;
    }
    it->second.summary.Accumulate(value);
    it->second.sum += value;
    ++num_rows_;
  }

  size_t num_cells() const { return cells_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return num_dims_; }

  /// Merges every cell matching the filter into a fresh summary. The
  /// count of merges performed is reported through `merges_out` when
  /// non-null (benchmarks report merge counts).
  Summary MergeWhere(const CubeFilter& filter,
                     uint64_t* merges_out = nullptr) const {
    MSKETCH_CHECK(filter.size() == num_dims_);
    Summary out = prototype_.CloneEmpty();
    uint64_t merges = 0;
    for (const auto& [coords, cell] : cells_) {
      if (!Matches(coords, filter)) continue;
      MSKETCH_CHECK(out.Merge(cell.summary).ok());
      ++merges;
    }
    if (merges_out != nullptr) *merges_out = merges;
    return out;
  }

  Summary MergeAll() const {
    return MergeWhere(CubeFilter(num_dims_, kAnyValue));
  }

  /// Native sum aggregation over matching cells (Figure 11 baseline).
  double SumWhere(const CubeFilter& filter) const {
    MSKETCH_CHECK(filter.size() == num_dims_);
    double acc = 0.0;
    for (const auto& [coords, cell] : cells_) {
      if (Matches(coords, filter)) acc += cell.sum;
    }
    return acc;
  }

  /// phi-quantile of the filtered sub-population.
  Result<double> QueryQuantile(const CubeFilter& filter, double phi) const {
    Summary merged = MergeWhere(filter);
    if (merged.count() == 0) {
      return Status::InvalidArgument("QueryQuantile: empty selection");
    }
    return merged.EstimateQuantile(phi);
  }

  /// Groups cells by the given dimensions and hands each group's merged
  /// summary to `fn(group_coords, summary)`. This is the GROUP BY ...
  /// HAVING plan from Section 3.3.
  void ForEachGroup(
      const std::vector<size_t>& group_dims,
      const std::function<void(const CubeCoords&, const Summary&)>& fn)
      const {
    std::unordered_map<CubeCoords, Summary, CubeCoordsHash> groups;
    for (const auto& [coords, cell] : cells_) {
      CubeCoords key;
      key.reserve(group_dims.size());
      for (size_t d : group_dims) key.push_back(coords[d]);
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, prototype_.CloneEmpty()).first;
      }
      MSKETCH_CHECK(it->second.Merge(cell.summary).ok());
    }
    for (const auto& [key, summary] : groups) fn(key, summary);
  }

  /// Visits every cell (used by benchmarks that need raw access).
  void ForEachCell(
      const std::function<void(const CubeCoords&, const Summary&)>& fn)
      const {
    for (const auto& [coords, cell] : cells_) fn(coords, cell.summary);
  }

  /// Total bytes across all cell summaries.
  size_t SummaryBytes() const {
    size_t total = 0;
    for (const auto& [coords, cell] : cells_) {
      total += cell.summary.SizeBytes();
    }
    return total;
  }

 private:
  struct Cell {
    Summary summary;
    double sum;
  };

  static bool Matches(const CubeCoords& coords, const CubeFilter& filter) {
    for (size_t d = 0; d < coords.size(); ++d) {
      if (filter[d] != kAnyValue &&
          coords[d] != static_cast<uint32_t>(filter[d])) {
        return false;
      }
    }
    return true;
  }

  size_t num_dims_;
  Summary prototype_;
  std::unordered_map<CubeCoords, Cell, CubeCoordsHash> cells_;
  uint64_t num_rows_ = 0;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_DATA_CUBE_H_
