// Mini-Druid data cube: pre-aggregated summaries keyed by dimension-value
// tuples (Figure 1 and Section 7.1 of the paper).
//
// One cell per distinct coordinate tuple; each cell holds a mergeable
// summary of the metric plus a running sum (the paper's native-sum
// baseline in Figure 11). Queries with dimension filters merge the
// matching cells' summaries — the merge-dominated code path the moments
// sketch accelerates.
//
// Templated on the summary type so benchmarks can swap in M-Sketch,
// S-Hist, Merge12, etc. without virtual dispatch on the merge path.
// The MomentsSummary instantiation is specialized below to run on the
// columnar CubeStore engine (struct-of-arrays sketch storage with
// per-dimension inverted indexes) instead of object-per-cell storage.
#ifndef MSKETCH_CUBE_DATA_CUBE_H_
#define MSKETCH_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/moments_summary.h"
#include "cube/batch_query.h"
#include "cube/cube_store.h"
#include "cube/cube_types.h"

namespace msketch {

template <typename Summary>
class DataCube {
 public:
  DataCube(size_t num_dims, Summary prototype)
      : num_dims_(num_dims), prototype_(std::move(prototype)) {
    MSKETCH_CHECK(num_dims >= 1);
  }

  /// Adds one row. Creates the cell on first touch.
  void Ingest(const CubeCoords& coords, double value) {
    MSKETCH_DCHECK(coords.size() == num_dims_);
    auto it = cells_.find(coords);
    if (it == cells_.end()) {
      it = cells_.emplace(coords, Cell{prototype_.CloneEmpty(), 0.0}).first;
    }
    it->second.summary.Accumulate(value);
    it->second.sum += value;
    ++num_rows_;
  }

  size_t num_cells() const { return cells_.size(); }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return num_dims_; }

  /// Merges every cell matching the filter into a fresh summary. The
  /// count of merges performed is reported through `merges_out` when
  /// non-null (benchmarks report merge counts).
  Summary MergeWhere(const CubeFilter& filter,
                     uint64_t* merges_out = nullptr) const {
    Summary out = prototype_.CloneEmpty();
    uint64_t merges = 0;
    ForEachMatching(filter, [&](const CubeCoords&, const Cell& cell) {
      MSKETCH_CHECK(out.Merge(cell.summary).ok());
      ++merges;
    });
    if (merges_out != nullptr) *merges_out = merges;
    return out;
  }

  Summary MergeAll() const {
    return MergeWhere(CubeFilter(num_dims_, kAnyValue));
  }

  /// Native sum aggregation over matching cells (Figure 11 baseline).
  double SumWhere(const CubeFilter& filter) const {
    double acc = 0.0;
    ForEachMatching(filter, [&](const CubeCoords&, const Cell& cell) {
      acc += cell.sum;
    });
    return acc;
  }

  /// phi-quantile of the filtered sub-population.
  Result<double> QueryQuantile(const CubeFilter& filter, double phi) const {
    Summary merged = MergeWhere(filter);
    if (merged.count() == 0) {
      return Status::InvalidArgument("QueryQuantile: empty selection");
    }
    return merged.EstimateQuantile(phi);
  }

  /// Groups cells by the given dimensions and hands each group's merged
  /// summary to `fn(group_coords, summary)`. This is the GROUP BY ...
  /// HAVING plan from Section 3.3.
  void ForEachGroup(
      const std::vector<size_t>& group_dims,
      const std::function<void(const CubeCoords&, const Summary&)>& fn)
      const {
    std::unordered_map<CubeCoords, Summary, CubeCoordsHash> groups;
    groups.reserve(cells_.size());
    CubeCoords key;
    key.reserve(group_dims.size());
    for (const auto& [coords, cell] : cells_) {
      key.clear();
      for (size_t d : group_dims) key.push_back(coords[d]);
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, prototype_.CloneEmpty()).first;
      }
      MSKETCH_CHECK(it->second.Merge(cell.summary).ok());
    }
    for (const auto& [group_key, summary] : groups) fn(group_key, summary);
  }

  /// Visits every cell (used by benchmarks that need raw access).
  void ForEachCell(
      const std::function<void(const CubeCoords&, const Summary&)>& fn)
      const {
    for (const auto& [coords, cell] : cells_) fn(coords, cell.summary);
  }

  /// Total bytes across all cell summaries.
  size_t SummaryBytes() const {
    size_t total = 0;
    for (const auto& [coords, cell] : cells_) {
      total += cell.summary.SizeBytes();
    }
    return total;
  }

 private:
  struct Cell {
    Summary summary;
    double sum;
  };

  /// Single filter pass shared by MergeWhere / SumWhere: one coordinate
  /// match per cell, callers consume the matching cells.
  template <typename Fn>
  void ForEachMatching(const CubeFilter& filter, Fn&& fn) const {
    MSKETCH_CHECK(filter.size() == num_dims_);
    for (const auto& [coords, cell] : cells_) {
      if (FilterMatches(coords, filter)) fn(coords, cell);
    }
  }

  size_t num_dims_;
  Summary prototype_;
  std::unordered_map<CubeCoords, Cell, CubeCoordsHash> cells_;
  uint64_t num_rows_ = 0;
};

/// Columnar specialization: a moments-sketch cube runs on CubeStore —
/// struct-of-arrays columns plus per-dimension inverted indexes — while
/// presenting the exact API of the generic cube. MergeWhere goes through
/// the index intersection, so selective filters merge only matching
/// cells; MergeAll streams the packed columns.
template <>
class DataCube<MomentsSummary> {
 public:
  DataCube(size_t num_dims, MomentsSummary prototype)
      : store_(num_dims, prototype.k()),
        options_(prototype.options()) {}

  void Ingest(const CubeCoords& coords, double value) {
    store_.Ingest(coords, value);
  }

  size_t num_cells() const { return store_.num_cells(); }
  uint64_t num_rows() const { return store_.num_rows(); }
  size_t num_dims() const { return store_.num_dims(); }

  /// Runs through CubeStore::QueryWhere, so the planner may answer from
  /// the rollup index or by complement; counts are exact under every
  /// plan, moment sums agree with the exact merge to within FP
  /// re-association (see cube_store.h).
  MomentsSummary MergeWhere(const CubeFilter& filter,
                            uint64_t* merges_out = nullptr) const {
    CubeStore::QueryStats stats;
    MomentsSketch merged = store_.QueryWhere(filter, &stats);
    if (merges_out != nullptr) *merges_out = stats.merges;
    return MomentsSummary(std::move(merged), options_);
  }

  MomentsSummary MergeAll() const {
    return MomentsSummary(store_.MergeAll(), options_);
  }

  /// Builds / incrementally refreshes the rollup acceleration structure
  /// (pre-merged span partials per dimension value plus the grand
  /// total). Queries use it automatically while it is fresh; any ingest
  /// marks it stale until the next RefreshRollup().
  void BuildRollup(const RollupOptions& options = {}) {
    store_.BuildRollup(options);
  }
  void RefreshRollup() { store_.RefreshRollup(); }

  double SumWhere(const CubeFilter& filter) const {
    return store_.SumWhere(filter);
  }

  Result<double> QueryQuantile(const CubeFilter& filter, double phi) const {
    MomentsSummary merged = MergeWhere(filter);
    if (merged.count() == 0) {
      return Status::InvalidArgument("QueryQuantile: empty selection");
    }
    return merged.EstimateQuantile(phi);
  }

  void ForEachGroup(
      const std::vector<size_t>& group_dims,
      const std::function<void(const CubeCoords&, const MomentsSummary&)>& fn)
      const {
    store_.ForEachGroup(group_dims, [&](const CubeCoords& key,
                                        const MomentsSketch& sketch) {
      fn(key, MomentsSummary(sketch, options_));
    });
  }

  void ForEachCell(
      const std::function<void(const CubeCoords&, const MomentsSummary&)>& fn)
      const {
    for (uint32_t id = 0; id < store_.num_cells(); ++id) {
      fn(store_.CoordsOf(id), MomentsSummary(store_.CellSketch(id), options_));
    }
  }

  size_t SummaryBytes() const { return store_.SummaryBytes(); }

  /// Batched GROUP BY quantiles: merges each group's cells columnar-side,
  /// orders groups by moment similarity into warm-start chains, shards
  /// chains across options.threads, and solves each group through the
  /// cache -> warm-start -> cold tiers (see cube/batch_query.h). Results
  /// are sorted by group key, so output is independent of thread count.
  /// Defined in batch_query.cpp.
  std::vector<GroupQuantiles> GroupByQuantiles(
      const std::vector<size_t>& group_dims, const std::vector<double>& phis,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  /// Batched GROUP BY ... HAVING q_phi > t: each group first runs the
  /// cascade's bound stages (range / Markov / RTT); only unresolved
  /// groups reach the solver, which again goes through the cache and
  /// warm-start chain. Defined in batch_query.cpp.
  std::vector<GroupThreshold> GroupByThreshold(
      const std::vector<size_t>& group_dims, double phi, double t,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  /// The columnar engine, for benchmarks and the parallel/window layers.
  const CubeStore& store() const { return store_; }

 private:
  CubeStore store_;
  MaxEntOptions options_;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_DATA_CUBE_H_
