#include "cube/rollup_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace msketch {

MomentSlab::MomentSlab(int k) : k_(k) {
  MSKETCH_CHECK(k >= 1 && k <= 64);
  power_cols_.resize(k);
  log_cols_.resize(k);
  power_ptrs_.resize(k);
  log_ptrs_.resize(k);
}

uint32_t MomentSlab::Append(const MomentsSketch& s) {
  MSKETCH_CHECK(s.k() == k_);
  const uint32_t node = static_cast<uint32_t>(counts_.size());
  for (int i = 0; i < k_; ++i) {
    power_cols_[i].push_back(s.power_sums()[i]);
    log_cols_[i].push_back(s.log_sums()[i]);
  }
  counts_.push_back(s.count());
  log_counts_.push_back(s.log_count());
  mins_.push_back(s.min());
  maxs_.push_back(s.max());
  return node;
}

void MomentSlab::Overwrite(uint32_t node, const MomentsSketch& s) {
  MSKETCH_CHECK(s.k() == k_ && node < counts_.size());
  for (int i = 0; i < k_; ++i) {
    power_cols_[i][node] = s.power_sums()[i];
    log_cols_[i][node] = s.log_sums()[i];
  }
  counts_[node] = s.count();
  log_counts_[node] = s.log_count();
  mins_[node] = s.min();
  maxs_[node] = s.max();
}

FlatMomentColumns MomentSlab::Columns() const {
  for (int i = 0; i < k_; ++i) {
    power_ptrs_[i] = power_cols_[i].data();
    log_ptrs_[i] = log_cols_[i].data();
  }
  FlatMomentColumns cols;
  cols.k = k_;
  cols.num_cells = counts_.size();
  cols.power_sums = power_ptrs_.data();
  cols.log_sums = log_ptrs_.data();
  cols.counts = counts_.data();
  cols.log_counts = log_counts_.data();
  cols.mins = mins_.data();
  cols.maxs = maxs_.data();
  return cols;
}

size_t MomentSlab::SizeBytes() const {
  return counts_.size() * ((2 * static_cast<size_t>(k_) + 2) *
                               sizeof(double) +
                           2 * sizeof(uint64_t));
}

RollupIndex::RollupIndex(int k, const RollupOptions& options)
    : k_(k), span_log2_(options.span_log2), slab_(k), total_(k) {
  MSKETCH_CHECK(span_log2_ >= 1 && span_log2_ <= 20);
}

MomentsSketch RollupIndex::BuildNode(const FlatMomentColumns& cols,
                                     const std::vector<uint32_t>& postings,
                                     size_t begin) const {
  MomentsSketch node(k_);
  MSKETCH_CHECK(
      node.MergeFlatFast(cols, postings.data() + begin, span_width()).ok());
  return node;
}

void RollupIndex::ExtendValue(const FlatMomentColumns& cols,
                              const std::vector<uint32_t>& postings,
                              std::vector<uint32_t>* nodes) {
  const size_t width = span_width();
  size_t covered = nodes->size() << span_log2_;
  while (covered + width <= postings.size()) {
    nodes->push_back(slab_.Append(BuildNode(cols, postings, covered)));
    covered += width;
  }
}

void RollupIndex::Build(const FlatMomentColumns& cols,
                        const std::vector<DimIndex>& dims, uint64_t version) {
  slab_ = MomentSlab(k_);
  per_dim_.assign(dims.size(), {});
  for (size_t d = 0; d < dims.size(); ++d) {
    auto& values = per_dim_[d];
    values.reserve(dims[d].num_values());
    dims[d].ForEachValue(
        [&](uint32_t value, const std::vector<uint32_t>& postings) {
          if (postings.size() < span_width()) return;  // residual-only
          ExtendValue(cols, postings, &values[value]);
        });
  }
  total_ = MomentsSketch(k_);
  MSKETCH_CHECK(total_.MergeFlatRangeFast(cols, 0, cols.num_cells).ok());
  built_ = true;
  built_version_ = version;
}

void RollupIndex::Refresh(const FlatMomentColumns& cols,
                          const std::vector<DimIndex>& dims,
                          const std::vector<CubeCoords>& coords,
                          const std::vector<uint32_t>& dirty_cells,
                          uint64_t version) {
  if (!built_) {
    Build(cols, dims, version);
    return;
  }
  // Rebuild the span node covering each dirty cell's postings position,
  // once per node even when several dirty cells share a span.
  std::unordered_set<uint32_t> rebuilt;
  for (uint32_t cell : dirty_cells) {
    for (size_t d = 0; d < dims.size(); ++d) {
      const uint32_t value = coords[cell][d];
      auto it = per_dim_[d].find(value);
      if (it == per_dim_[d].end()) continue;  // no full span for this value
      const std::vector<uint32_t>& postings = dims[d].Postings(value);
      const size_t pos = static_cast<size_t>(
          std::lower_bound(postings.begin(), postings.end(), cell) -
          postings.begin());
      const size_t span = pos >> span_log2_;
      if (span >= it->second.size()) continue;  // cell sits in the residual
      const uint32_t node = it->second[span];
      if (!rebuilt.insert(node).second) continue;
      slab_.Overwrite(node, BuildNode(cols, postings, span << span_log2_));
    }
  }
  // Append spans completed by newly created cells (postings only grow at
  // the tail, so existing nodes are unaffected).
  for (size_t d = 0; d < dims.size(); ++d) {
    auto& values = per_dim_[d];
    dims[d].ForEachValue(
        [&](uint32_t value, const std::vector<uint32_t>& postings) {
          if (postings.size() < span_width()) return;
          ExtendValue(cols, postings, &values[value]);
        });
  }
  total_ = MomentsSketch(k_);
  MSKETCH_CHECK(total_.MergeFlatRangeFast(cols, 0, cols.num_cells).ok());
  built_version_ = version;
}

RollupIndex::ValueSpans RollupIndex::SpansFor(size_t dim,
                                              uint32_t value) const {
  ValueSpans out;
  if (!built_ || dim >= per_dim_.size()) return out;
  auto it = per_dim_[dim].find(value);
  if (it == per_dim_[dim].end() || it->second.empty()) return out;
  out.nodes = &it->second;
  out.covered = it->second.size() << span_log2_;
  return out;
}

}  // namespace msketch
