// Shared cube vocabulary: dictionary-encoded cell coordinates and
// dimension filters. Split out of data_cube.h so both the templated
// object-per-cell cube and the columnar CubeStore engine can share them.
#ifndef MSKETCH_CUBE_CUBE_TYPES_H_
#define MSKETCH_CUBE_CUBE_TYPES_H_

#include <cstdint>
#include <vector>

namespace msketch {

/// Cell coordinates: one dictionary-encoded value id per dimension.
using CubeCoords = std::vector<uint32_t>;

struct CubeCoordsHash {
  size_t operator()(const CubeCoords& c) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t v : c) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};

/// Filter: one entry per dimension; kAnyValue matches every value.
constexpr int64_t kAnyValue = -1;
using CubeFilter = std::vector<int64_t>;

/// True when `value` can be a coordinate at all; constrained filter
/// values outside uint32 range match nothing (rather than silently
/// truncating onto a real coordinate).
inline bool FilterValueInRange(int64_t value) {
  return value >= 0 && value <= 0xFFFFFFFFll;
}

/// True when `coords` satisfies every constrained dimension of `filter`.
inline bool FilterMatches(const CubeCoords& coords, const CubeFilter& filter) {
  for (size_t d = 0; d < coords.size(); ++d) {
    const int64_t f = filter[d];
    if (f == kAnyValue) continue;
    if (!FilterValueInRange(f) || coords[d] != static_cast<uint32_t>(f)) {
      return false;
    }
  }
  return true;
}

}  // namespace msketch

#endif  // MSKETCH_CUBE_CUBE_TYPES_H_
