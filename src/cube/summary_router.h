// Error-bounded multi-backend summary router.
//
// A moments sketch answers quantile queries fast and mergeably, but fails
// detectably on pathological cells: atomic (near-discrete) measures trip
// the solver's atomic screen, heavy-tailed or near-singular moment
// vectors ill-condition the Hankel matrix and diverge Newton. The router
// turns those detectable failures into graceful degradation. Every
// answer carries a certified error interval — an enclosure the true
// quantile provably lies in — assembled from whichever backends the cell
// has:
//
//   moments   maxent estimate + RttBound-certified value interval
//             (core/bounds.h CertifiedQuantileInterval);
//   KLL       rank-sketch estimate + deterministic rank-error interval
//             (sketches/kll_sketch.h CertifiedInterval);
//   both      the intersection — two sound certificates intersect to a
//             sound (and tighter) certificate.
//
// The solve path is a bounded retry/fallback chain; no query ever
// returns an unbounded-error or failed answer on non-empty data:
//
//   1. conditioning pre-screen: Hankel condition number above
//      kappa_route with a KLL present routes straight to KLL;
//   2. warm maxent solve (hint) -> cold restart on seed failure
//      (inside SolveMaxEnt) -> drop-moments backoff;
//   3. solver refused/diverged: atomic-fit estimate (near-discrete
//      cells), still certified by the moment bounds;
//   4. atomic fit inapplicable: KLL estimate when present;
//   5. last resort: the midpoint of the certified moment interval —
//      the bounds themselves never fail on a non-empty sketch.
//
// The only error a caller can see is an empty input. Everything else is
// an estimate inside a certificate.
#ifndef MSKETCH_CUBE_SUMMARY_ROUTER_H_
#define MSKETCH_CUBE_SUMMARY_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/bounds.h"
#include "core/maxent_solver.h"
#include "core/moments_sketch.h"
#include "cube/cube_types.h"
#include "sketches/kll_sketch.h"

namespace msketch {

/// Which backend produced the point estimate of an answer.
enum class QuantileBackend : uint8_t {
  kMoments = 0,     // maxent density estimate
  kKll = 1,         // rank-sketch estimate (routed or fallback)
  kAtomic = 2,      // atomic-fit estimate (near-discrete cell)
  kBounds = 3,      // certified-interval midpoint (last resort)
  kDegenerate = 4,  // point-mass cell (exact)
};
const char* QuantileBackendName(QuantileBackend backend);

struct RouterOptions {
  MaxEntOptions maxent;
  /// Hankel condition number above which the maxent solve is skipped
  /// outright when a KLL backend exists (the solve would diverge or fit
  /// garbage; the conditioning monitor routes around it). The paper's
  /// kappa_max (1e4) gates per-moment selection; this gates the whole
  /// solve, so it is orders looser.
  double kappa_route = 1e12;
  /// Bisection probes per certified-interval endpoint (each one RttBound
  /// evaluation).
  int interval_steps = 24;
};

/// One certified quantile answer. `interval` always encloses the true
/// phi-quantile of the queried data; `estimate` always lies inside it.
struct CertifiedQuantile {
  double estimate = 0.0;
  QuantileInterval interval;
  QuantileBackend backend = QuantileBackend::kMoments;
  /// True on every answer over non-empty data (the router's contract);
  /// false only when `status` is non-OK (empty input).
  bool certified = false;
  Status status;
};

/// Cumulative router decisions + the solver degradation counters the
/// answers absorbed (satellite surface of QueryStats/BatchStats).
struct RouterStats {
  uint64_t queries = 0;
  uint64_t moments_answers = 0;
  uint64_t kll_answers = 0;
  uint64_t atomic_answers = 0;
  uint64_t bounds_fallbacks = 0;
  uint64_t degenerate_answers = 0;
  uint64_t intersected_certificates = 0;  // moments interval ∩ KLL interval
  uint64_t conditioning_rejects = 0;  // pre-screen skipped the solve
  uint64_t solver_failures = 0;       // maxent refused/diverged (absorbed)
  uint64_t warm_solves = 0;
  uint64_t cold_solves = 0;
  uint64_t cold_restarts = 0;
  uint64_t iteration_capped = 0;
  uint64_t atomic_screen_hits = 0;

  void MergeFrom(const RouterStats& other) {
    queries += other.queries;
    moments_answers += other.moments_answers;
    kll_answers += other.kll_answers;
    atomic_answers += other.atomic_answers;
    bounds_fallbacks += other.bounds_fallbacks;
    degenerate_answers += other.degenerate_answers;
    intersected_certificates += other.intersected_certificates;
    conditioning_rejects += other.conditioning_rejects;
    solver_failures += other.solver_failures;
    warm_solves += other.warm_solves;
    cold_solves += other.cold_solves;
    cold_restarts += other.cold_restarts;
    iteration_capped += other.iteration_capped;
    atomic_screen_hits += other.atomic_screen_hits;
  }
};

/// Stateless apart from stats; one instance per query pipeline (not
/// thread-safe — shard like the batch pipeline does).
class SummaryRouter {
 public:
  explicit SummaryRouter(RouterOptions options = {});
  /// Publishes the accumulated RouterStats into the process-wide
  /// metrics registry (msk_router_* counter families) — routers are
  /// per-pipeline objects, so their counters roll up at destruction.
  ~SummaryRouter();

  /// Certified phi-quantile from a cell/group's moments sketch plus its
  /// optional KLL rank sketch (nullptr when the cell has none). The two
  /// summaries must cover the same rows — the router intersects their
  /// certificates. `hint` warm-starts the maxent solve.
  CertifiedQuantile Query(const MomentsSketch& moments, const KllSketch* kll,
                          double phi, const WarmStart* hint = nullptr);

  /// Batch form: one backend decision and (at most) one solve shared by
  /// all phis. Results are parallel to `phis`.
  std::vector<CertifiedQuantile> QueryMany(const MomentsSketch& moments,
                                           const KllSketch* kll,
                                           const std::vector<double>& phis,
                                           const WarmStart* hint = nullptr);

  /// Warm-start exported by the last successful maxent solve (invalid
  /// when the last query routed around the solver). Chains cells the way
  /// the batch pipeline chains groups.
  const WarmStart& last_warm_start() const { return last_warm_; }

  const RouterStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RouterStats{}; }

 private:
  /// Certified interval for one phi: moments bounds, intersected with
  /// the KLL certificate when present.
  QuantileInterval IntervalFor(const MomentsSketch& moments,
                               const KllSketch* kll, double phi);

  RouterOptions opt_;
  RouterStats stats_;
  WarmStart last_warm_;
};

class CubeStore;

/// One group's certified quantile answers (parallel to the phis
/// argument). Unlike GroupQuantiles, `answers[i].status` is non-OK only
/// for an empty group — which GROUP BY never produces — so every entry
/// is a certified interval.
struct GroupQuantilesCertified {
  CubeCoords key;
  uint64_t count = 0;
  std::vector<CertifiedQuantile> answers;
};

/// Certified GROUP BY: merges each group's moment columns (and KLL side
/// column when the store carries one) and routes every group through
/// the degradation chain. Groups are visited in ascending key order and
/// warm-start chained like the batch pipeline. `stats` (optional)
/// accumulates the router's decision counters.
std::vector<GroupQuantilesCertified> GroupByQuantilesCertified(
    const CubeStore& store, const std::vector<size_t>& group_dims,
    const std::vector<double>& phis, const RouterOptions& options = {},
    RouterStats* stats = nullptr);

}  // namespace msketch

#endif  // MSKETCH_CUBE_SUMMARY_ROUTER_H_
