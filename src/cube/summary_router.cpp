#include "cube/summary_router.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/atomic_fit.h"
#include "cube/cube_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msketch {
namespace {

double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

obs::Counter* BackendCounter(const char* backend) {
  return obs::GlobalRegistry().GetCounter(
      "msk_router_answers_total", {{"backend", backend}},
      "Certified answers by producing backend");
}

// Rolls a router's accumulated decision counters into the global
// registry. Called from the destructor: routers are per-pipeline
// objects, so this runs once per query pipeline, not per answer.
void PublishRouterStats(const RouterStats& s) {
  if (s.queries == 0) return;
  obs::MetricsRegistry& reg = obs::GlobalRegistry();
  static obs::Counter* const queries = reg.GetCounter(
      "msk_router_queries_total", {}, "Quantile answers routed");
  static obs::Counter* const moments = BackendCounter("moments");
  static obs::Counter* const kll = BackendCounter("kll");
  static obs::Counter* const atomic_c = BackendCounter("atomic");
  static obs::Counter* const bounds = BackendCounter("bounds");
  static obs::Counter* const degenerate = BackendCounter("degenerate");
  static obs::Counter* const intersected = reg.GetCounter(
      "msk_router_intersected_certificates_total", {},
      "Certificates tightened by moments ∩ KLL intersection");
  static obs::Counter* const cond_rejects = reg.GetCounter(
      "msk_router_conditioning_rejects_total", {},
      "Solves skipped by the Hankel conditioning pre-screen");
  static obs::Counter* const solver_failures = reg.GetCounter(
      "msk_router_solver_failures_total", {},
      "Maxent refusals/divergences absorbed by the degradation chain");
  static obs::Counter* const warm = reg.GetCounter(
      "msk_router_warm_solves_total", {}, "Warm-started maxent solves");
  static obs::Counter* const cold = reg.GetCounter(
      "msk_router_cold_solves_total", {}, "Cold maxent solves");
  static obs::Counter* const cold_restarts = reg.GetCounter(
      "msk_router_cold_restarts_total", {},
      "Cold restarts inside warm solves");
  static obs::Counter* const iter_capped = reg.GetCounter(
      "msk_router_iteration_capped_total", {},
      "Solves that hit the Newton iteration cap");
  static obs::Counter* const atomic_screen = reg.GetCounter(
      "msk_router_atomic_screen_hits_total", {},
      "Solver refusals due to the atomic (near-discrete) screen");
  queries->Add(s.queries);
  moments->Add(s.moments_answers);
  kll->Add(s.kll_answers);
  atomic_c->Add(s.atomic_answers);
  bounds->Add(s.bounds_fallbacks);
  degenerate->Add(s.degenerate_answers);
  intersected->Add(s.intersected_certificates);
  cond_rejects->Add(s.conditioning_rejects);
  solver_failures->Add(s.solver_failures);
  warm->Add(s.warm_solves);
  cold->Add(s.cold_solves);
  cold_restarts->Add(s.cold_restarts);
  iter_capped->Add(s.iteration_capped);
  atomic_screen->Add(s.atomic_screen_hits);
}

}  // namespace

const char* QuantileBackendName(QuantileBackend backend) {
  switch (backend) {
    case QuantileBackend::kMoments:
      return "moments";
    case QuantileBackend::kKll:
      return "kll";
    case QuantileBackend::kAtomic:
      return "atomic";
    case QuantileBackend::kBounds:
      return "bounds";
    case QuantileBackend::kDegenerate:
      return "degenerate";
  }
  return "unknown";
}

SummaryRouter::SummaryRouter(RouterOptions options) : opt_(options) {}

SummaryRouter::~SummaryRouter() { PublishRouterStats(stats_); }

QuantileInterval SummaryRouter::IntervalFor(const MomentsSketch& moments,
                                            const KllSketch* kll,
                                            double phi) {
  QuantileInterval iv = CertifiedQuantileInterval(moments, phi,
                                                  opt_.interval_steps);
  if (kll != nullptr && kll->count() > 0) {
    auto kiv = kll->CertifiedInterval(phi);
    if (kiv.ok()) {
      // Both enclosures contain the true quantile, so so does their
      // intersection. An empty intersection can only arise from the two
      // summaries covering different rows (caller contract violation) or
      // a floating-point sliver; keep the moments certificate, which is
      // sound on its own.
      const double lo = std::max(iv.lower, kiv.value().lower);
      const double hi = std::min(iv.upper, kiv.value().upper);
      if (lo <= hi) {
        if (lo > iv.lower || hi < iv.upper) ++stats_.intersected_certificates;
        iv.lower = lo;
        iv.upper = hi;
      }
    }
  }
  return iv;
}

CertifiedQuantile SummaryRouter::Query(const MomentsSketch& moments,
                                       const KllSketch* kll, double phi,
                                       const WarmStart* hint) {
  std::vector<CertifiedQuantile> out =
      QueryMany(moments, kll, std::vector<double>{phi}, hint);
  return out.front();
}

std::vector<CertifiedQuantile> SummaryRouter::QueryMany(
    const MomentsSketch& moments, const KllSketch* kll,
    const std::vector<double>& phis, const WarmStart* hint) {
  obs::Span span("query.router");
  std::vector<CertifiedQuantile> out(phis.size());
  stats_.queries += phis.size();

  if (moments.count() == 0) {
    for (auto& r : out) {
      r.status = Status::InvalidArgument("SummaryRouter: empty cell");
    }
    return out;
  }

  // Point-mass cell: the answer is exact; no backend needed.
  if (moments.min() >= moments.max()) {
    for (auto& r : out) {
      r.estimate = moments.min();
      r.interval = {moments.min(), moments.min()};
      r.backend = QuantileBackend::kDegenerate;
      r.certified = true;
      ++stats_.degenerate_answers;
    }
    return out;
  }

  // Certificates first: they hold no matter which estimator answers.
  // Certified-interval widths feed a mergeable histogram — the width
  // distribution is the router's accuracy story, and a mean would hide
  // the wide-interval tail exactly where degradation kicks in.
  static obs::Histogram* const width_hist =
      obs::GlobalRegistry().GetHistogram(
          "msk_router_interval_width", {},
          "Certified-interval widths (upper - lower) per answer",
          obs::HistogramUnit::kValue);
  for (size_t i = 0; i < phis.size(); ++i) {
    out[i].interval = IntervalFor(moments, kll, phis[i]);
    out[i].certified = true;
    width_hist->Observe(out[i].interval.upper - out[i].interval.lower);
  }

  const bool kll_usable = kll != nullptr && kll->count() > 0;

  // Conditioning pre-screen: a moment vector near the boundary of the
  // moment cone makes the maxent solve diverge or fit garbage. When a
  // rank sketch exists, skip the solve instead of paying for its failure.
  if (kll_usable) {
    const double cond = HankelConditionNumber(moments);
    if (!(cond <= opt_.kappa_route)) {
      ++stats_.conditioning_rejects;
      for (size_t i = 0; i < phis.size(); ++i) {
        auto est = kll->EstimateQuantile(phis[i]);
        out[i].estimate = Clamp(est.ok() ? est.value()
                                         : 0.5 * (out[i].interval.lower +
                                                  out[i].interval.upper),
                                out[i].interval.lower, out[i].interval.upper);
        out[i].backend = QuantileBackend::kKll;
        ++stats_.kll_answers;
      }
      return out;
    }
  }

  // Primary path: maximum entropy solve (warm -> cold -> drop-moments
  // backoff happen inside SolveMaxEnt; we only see success or refusal).
  const WarmStart* seed = hint != nullptr && hint->valid() ? hint : nullptr;
  auto solved = SolveMaxEnt(moments, opt_.maxent, seed);
  if (solved.ok()) {
    const MaxEntDistribution& dist = solved.value();
    const MaxEntDiagnostics& diag = dist.diagnostics();
    if (diag.warm_started) {
      ++stats_.warm_solves;
    } else {
      ++stats_.cold_solves;
    }
    stats_.cold_restarts += static_cast<uint64_t>(diag.cold_restarts);
    stats_.iteration_capped += static_cast<uint64_t>(diag.iteration_capped);
    last_warm_ = dist.warm_start();
    for (size_t i = 0; i < phis.size(); ++i) {
      out[i].estimate = Clamp(dist.Quantile(phis[i]), out[i].interval.lower,
                              out[i].interval.upper);
      out[i].backend = QuantileBackend::kMoments;
      ++stats_.moments_answers;
    }
    return out;
  }

  // Solver refused or diverged past its own retries. Absorb the failure
  // and degrade: the certificates above already hold.
  ++stats_.solver_failures;
  if (solved.status().message().find("atomic") != std::string::npos) {
    ++stats_.atomic_screen_hits;
  }

  auto atomic = FitAtomicDistribution(moments);
  if (atomic.ok()) {
    for (size_t i = 0; i < phis.size(); ++i) {
      out[i].estimate = Clamp(atomic.value().Quantile(phis[i]),
                              out[i].interval.lower, out[i].interval.upper);
      out[i].backend = QuantileBackend::kAtomic;
      ++stats_.atomic_answers;
    }
    return out;
  }

  if (kll_usable) {
    for (size_t i = 0; i < phis.size(); ++i) {
      auto est = kll->EstimateQuantile(phis[i]);
      out[i].estimate = Clamp(est.ok() ? est.value()
                                       : 0.5 * (out[i].interval.lower +
                                                out[i].interval.upper),
                              out[i].interval.lower, out[i].interval.upper);
      out[i].backend = QuantileBackend::kKll;
      ++stats_.kll_answers;
    }
    return out;
  }

  // Last resort: the certificate's own midpoint. Worst-case error is half
  // the interval width — still bounded, still certified.
  for (auto& r : out) {
    r.estimate = 0.5 * (r.interval.lower + r.interval.upper);
    r.backend = QuantileBackend::kBounds;
    ++stats_.bounds_fallbacks;
  }
  return out;
}

std::vector<GroupQuantilesCertified> GroupByQuantilesCertified(
    const CubeStore& store, const std::vector<size_t>& group_dims,
    const std::vector<double>& phis, const RouterOptions& options,
    RouterStats* stats) {
  // Ascending-key group map: deterministic visit order makes the
  // warm-start chain (and therefore the stats) reproducible.
  std::map<CubeCoords, std::vector<uint32_t>> groups;
  const uint32_t num_cells = static_cast<uint32_t>(store.num_cells());
  for (uint32_t id = 0; id < num_cells; ++id) {
    const CubeCoords& coords = store.CoordsOf(id);
    CubeCoords key(group_dims.size());
    for (size_t g = 0; g < group_dims.size(); ++g) {
      key[g] = coords[group_dims[g]];
    }
    groups[key].push_back(id);
  }

  SummaryRouter router(options);
  std::vector<GroupQuantilesCertified> out;
  out.reserve(groups.size());
  bool have_warm = false;
  for (const auto& [key, ids] : groups) {
    GroupQuantilesCertified g;
    g.key = key;
    const MomentsSketch moments = store.MergeCells(ids.data(), ids.size());
    g.count = moments.count();
    KllSketch kll;
    const KllSketch* kll_ptr = nullptr;
    if (store.kll_enabled()) {
      Result<KllSketch> merged = store.MergeKllCells(ids.data(), ids.size());
      if (merged.ok()) {
        kll = std::move(merged).value();
        kll_ptr = &kll;
      }
    }
    const WarmStart* hint =
        have_warm && router.last_warm_start().valid() ? &router.last_warm_start()
                                                      : nullptr;
    g.answers = router.QueryMany(moments, kll_ptr, phis, hint);
    have_warm = true;
    out.push_back(std::move(g));
  }
  if (stats != nullptr) stats->MergeFrom(router.stats());
  return out;
}

}  // namespace msketch
