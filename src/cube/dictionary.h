// String dictionary for dimension-value encoding (Druid-style).
#ifndef MSKETCH_CUBE_DICTIONARY_H_
#define MSKETCH_CUBE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace msketch {

class Dictionary {
 public:
  /// Returns the id for `value`, interning it on first sight.
  uint32_t Intern(const std::string& value) {
    auto it = ids_.find(value);
    if (it != ids_.end()) return it->second;
    const uint32_t id = static_cast<uint32_t>(values_.size());
    values_.push_back(value);
    ids_.emplace(value, id);
    return id;
  }

  /// Lookup without interning.
  Result<uint32_t> Find(const std::string& value) const {
    auto it = ids_.find(value);
    if (it == ids_.end()) {
      return Status::InvalidArgument("unknown dimension value: " + value);
    }
    return it->second;
  }

  const std::string& ValueOf(uint32_t id) const { return values_.at(id); }
  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> values_;
};

}  // namespace msketch

#endif  // MSKETCH_CUBE_DICTIONARY_H_
