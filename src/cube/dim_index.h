// Per-dimension inverted indexes for the columnar cube engine.
//
// Each dimension keeps one postings list per distinct value id: the
// sorted cell ids whose coordinate takes that value. A filtered query
// intersects the postings of its constrained dimensions, so the merge
// kernel visits only matching cells instead of scanning the whole cube
// (the Druid-style bitmap-index plan from Section 7.1 of the paper,
// specialized to sorted id lists).
//
// Cell ids are assigned in ingest order and only ever appended, so
// postings stay sorted without any re-sorting.
#ifndef MSKETCH_CUBE_DIM_INDEX_H_
#define MSKETCH_CUBE_DIM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace msketch {

/// Inverted index for one cube dimension: value id -> sorted cell ids.
class DimIndex {
 public:
  /// Records that `cell_id` has value `value` in this dimension. Cell ids
  /// must arrive in increasing order (they do: ids are assigned
  /// sequentially on first touch), keeping each postings list sorted.
  void Add(uint32_t value, uint32_t cell_id);

  /// The sorted cell ids carrying `value`; empty for unseen values.
  const std::vector<uint32_t>& Postings(uint32_t value) const;

  /// Number of distinct values seen.
  size_t num_values() const { return postings_.size(); }

  /// Total ids across all postings lists (== number of cells indexed).
  size_t total_postings() const { return total_; }

  /// Visits every (value, postings) pair in unspecified order (the
  /// rollup builder walks all values; nothing query-path depends on the
  /// iteration order).
  template <typename Fn>
  void ForEachValue(Fn&& fn) const {
    for (const auto& [value, list] : postings_) fn(value, list);
  }

 private:
  // Keyed by value id (not a dense array) so sparse or adversarial ids
  // cost memory proportional to distinct values, like the hash-keyed
  // cube this index accelerates. Neither Add (once per new cell) nor
  // Postings (once per query per constrained dim) is on the merge path.
  std::unordered_map<uint32_t, std::vector<uint32_t>> postings_;
  size_t total_ = 0;
};

/// Intersects sorted postings lists into one sorted id list. With a
/// single list the result is a copy; with several, the smallest list
/// drives and every other list keeps a monotone cursor: because probe
/// ids ascend, each cursor only moves forward, advanced by galloping
/// (exponential then binary) search when the list is >8x longer than the
/// probe — cost O(p log(gap)) — and by a linear scan when lengths are
/// comparable, where the cursors degrade to an O(sum of lengths)
/// multiway merge instead of p binary searches from scratch.
std::vector<uint32_t> IntersectPostings(
    const std::vector<const std::vector<uint32_t>*>& lists);

/// First index >= `from` with list[index] >= target (list.size() when
/// none): exponential probe doubling from `from`, then binary search in
/// the bracketed window. Cost O(log(answer - from)) — cheap when the
/// cursor is near, which is exactly the skewed-list intersection case.
size_t GallopLowerBound(const std::vector<uint32_t>& list, size_t from,
                        uint32_t target);

}  // namespace msketch

#endif  // MSKETCH_CUBE_DIM_INDEX_H_
