// Batched estimation over cube groups: the query-side complement of the
// columnar merge engine.
//
// A high-cardinality GROUP BY pays one maximum entropy solve per group
// (Section 4.3, ~1 ms each), which dominates end-to-end latency past a
// few thousand groups. The batch pipeline amortizes that work three ways:
//
//   1. groups from a chain that selected the same moment subset are
//      packed eight-wide into the lane-batched SIMD Newton solver
//      (core/batch_solver.h), which runs their solves simultaneously
//      over one shared quadrature grid;
//   2. groups are ordered by moment similarity, so solves warm-start
//      from their neighbors' solutions (fewer Newton iterations) and
//      same-subset groups land in the same lane bucket;
//   3. a SolverCache keyed on quantized scaled moments lets repeated and
//      identical-moment groups skip the solve entirely (in-flight
//      duplicates coalesce onto one pending lane);
//   4. threshold queries run the cascade's bound stages first, so most
//      groups never reach the solver at all (Section 5.2) — survivors
//      stream into the lane buckets.
//
// Chains are contiguous slices of the similarity order, sharded across
// threads via parallel/parallel_for.h; the (lock-striped) cache is
// shared.
#ifndef MSKETCH_CUBE_BATCH_QUERY_H_
#define MSKETCH_CUBE_BATCH_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/batch_solver.h"
#include "core/cascade.h"
#include "core/maxent_solver.h"
#include "core/solver_cache.h"
#include "cube/cube_types.h"

namespace msketch {

struct BatchOptions {
  MaxEntOptions maxent;
  /// Stage switches for GroupByThreshold's per-batch cascade.
  CascadeOptions cascade;
  /// Worker threads; each gets a contiguous chain of similar groups.
  int threads = 1;
  /// Seed each solve from the previous solution in its chain. Warm and
  /// cold solves converge to the same grad_tol moment match, but may pick
  /// slightly different moment subsets; disable for bit-exact parity with
  /// per-group SolveMaxEnt.
  bool use_warm_start = true;
  /// Pack same-subset groups into the lane-batched SIMD Newton solver
  /// (core/batch_solver.h) — the default estimation engine. Lane solves
  /// agree with scalar solves to Newton tolerance but not bit-for-bit
  /// (the vectorized exp kernel differs from libm by ~1 ulp); disable
  /// for bit-exact parity with per-group SolveMaxEnt.
  bool use_lane_solver = true;
  /// Consult/populate a solver cache. Uses `cache` when set, else a
  /// per-batch cache of `cache_capacity` entries.
  bool use_cache = true;
  SolverCache* cache = nullptr;
  size_t cache_capacity = 1024;
};

/// Per-batch estimation diagnostics (surfaced by the fig5/fig6 benches).
struct BatchStats {
  uint64_t groups = 0;
  uint64_t cold_solves = 0;
  uint64_t warm_solves = 0;
  uint64_t cache_hits = 0;
  uint64_t failed_solves = 0;     // solver + atomic fallback both failed
  uint64_t atomic_fallbacks = 0;  // answered by the atomic-fit estimator
  uint64_t newton_iterations = 0;  // summed over warm + cold solves
  /// Degradation counters, aggregated across both solve engines (these
  /// used to be dropped inside the solvers):
  uint64_t cold_restarts = 0;      // warm seeds that failed to transfer
  uint64_t iteration_capped = 0;   // Newton runs stopped at the cap
  uint64_t atomic_screen_hits = 0;  // groups refused by the atomic screen
  /// Bound-stage counters (GroupByThreshold only).
  CascadeStats cascade;
  /// Lane-solver counters (packed solves, occupancy, fallbacks); all
  /// zero when use_lane_solver is off.
  LaneSolverStats lane;

  /// Mean fraction of solver lanes occupied per packed Newton run.
  double LaneOccupancy() const { return lane.LaneOccupancy(); }

  double MeanNewtonIterations() const {
    const uint64_t solves = cold_solves + warm_solves;
    return solves == 0
               ? 0.0
               : static_cast<double>(newton_iterations) /
                     static_cast<double>(solves);
  }
  uint64_t CascadePruned() const {
    return cascade.resolved_simple + cascade.resolved_markov +
           cascade.resolved_rtt;
  }
  void MergeFrom(const BatchStats& other) {
    groups += other.groups;
    cold_solves += other.cold_solves;
    warm_solves += other.warm_solves;
    cache_hits += other.cache_hits;
    failed_solves += other.failed_solves;
    atomic_fallbacks += other.atomic_fallbacks;
    newton_iterations += other.newton_iterations;
    cold_restarts += other.cold_restarts;
    iteration_capped += other.iteration_capped;
    atomic_screen_hits += other.atomic_screen_hits;
    cascade.MergeFrom(other.cascade);
    lane.MergeFrom(other.lane);
  }
};

/// One group's quantile estimates. `status` is non-OK only when both the
/// solver and the atomic-fit fallback failed; `used_atomic` marks
/// estimates from the fallback (near-discrete groups, Section 6.2.3).
struct GroupQuantiles {
  CubeCoords key;
  uint64_t count = 0;
  std::vector<double> quantiles;  // parallel to the phis argument
  bool used_atomic = false;
  /// Moment subset the solve fitted (from MaxEntDiagnostics; 0/0 for
  /// atomic fallbacks). Lets callers tell a tolerance miss from a warm
  /// solve that legitimately fitted a different subset.
  int k1 = 0;
  int k2 = 0;
  Status status = Status::OK();
};

/// One group's threshold decision ("is the phi-quantile above t?").
struct GroupThreshold {
  CubeCoords key;
  uint64_t count = 0;
  bool exceeds = false;
};

class CubeStore;

/// Store-level batch GROUP BY entry points. The DataCube<MomentsSummary>
/// members and the streaming ingest engine's snapshot queries both route
/// here, so a published CubeSnapshot runs the identical similarity-order
/// + warm-start + cache pipeline as a static cube. Defined in
/// batch_query.cpp.
std::vector<GroupQuantiles> GroupByQuantiles(const CubeStore& store,
                                             const std::vector<size_t>& group_dims,
                                             const std::vector<double>& phis,
                                             const BatchOptions& options = {},
                                             BatchStats* stats = nullptr);
std::vector<GroupThreshold> GroupByThreshold(const CubeStore& store,
                                             const std::vector<size_t>& group_dims,
                                             double phi, double t,
                                             const BatchOptions& options = {},
                                             BatchStats* stats = nullptr);

}  // namespace msketch

#endif  // MSKETCH_CUBE_BATCH_QUERY_H_
