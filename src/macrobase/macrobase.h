// MacroBase-style anomalous-subgroup search (Section 7.2.1): find the
// dimension values whose subpopulation quantile exceeds a threshold
// derived from the global distribution. With the paper's deployment,
// outliers are values above the global 99th percentile t99 and a subgroup
// is reported when its outlier rate is >= 30x the global rate — i.e. its
// 70th percentile exceeds t99.
#ifndef MSKETCH_MACROBASE_MACROBASE_H_
#define MSKETCH_MACROBASE_MACROBASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cascade.h"
#include "core/moments_summary.h"
#include "cube/data_cube.h"

namespace msketch {

struct MacroBaseOptions {
  /// Global percentile defining outliers (paper: 0.99).
  double global_phi = 0.99;
  /// Subgroup percentile compared against the global threshold (paper:
  /// outlier-rate ratio r = 30x on a 1% base rate => 0.7).
  double subgroup_phi = 0.7;
  /// Search single dimensions and optionally all dimension pairs.
  bool include_pairs = false;
  /// Cascade stage switches (Figure 12's Baseline/+Simple/+Markov/+RTT).
  CascadeOptions cascade;
};

struct Subgroup {
  std::vector<size_t> dims;     // grouped dimension indexes
  CubeCoords values;            // dimension value ids (parallel to dims)
  uint64_t count = 0;
};

struct MacroBaseReport {
  double global_threshold = 0.0;  // t99
  std::vector<Subgroup> flagged;
  uint64_t groups_examined = 0;
  CascadeStats cascade_stats;
  double merge_seconds = 0.0;       // time in summary merges
  double estimation_seconds = 0.0;  // time in bounds + maxent
};

/// Runs the subgroup search over a cube of moments sketches.
Result<MacroBaseReport> FindAnomalousSubgroups(
    const DataCube<MomentsSummary>& cube, const MacroBaseOptions& options);

}  // namespace msketch

#endif  // MSKETCH_MACROBASE_MACROBASE_H_
