#include "macrobase/macrobase.h"

#include <chrono>

namespace msketch {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

Result<MacroBaseReport> FindAnomalousSubgroups(
    const DataCube<MomentsSummary>& cube, const MacroBaseOptions& options) {
  if (cube.num_rows() == 0) {
    return Status::InvalidArgument("MacroBase: empty cube");
  }
  MacroBaseReport report;

  // Global threshold: merge everything, estimate the global percentile.
  auto t0 = Clock::now();
  MomentsSummary global = cube.MergeAll();
  auto t1 = Clock::now();
  report.merge_seconds += Seconds(t0, t1);
  MSKETCH_ASSIGN_OR_RETURN(double threshold,
                           global.EstimateQuantile(options.global_phi));
  auto t2 = Clock::now();
  report.estimation_seconds += Seconds(t1, t2);
  report.global_threshold = threshold;

  ThresholdCascade cascade(options.cascade);
  auto examine_grouping = [&](const std::vector<size_t>& dims) {
    auto g0 = Clock::now();
    std::vector<std::pair<CubeCoords, MomentsSummary>> groups;
    cube.ForEachGroup(dims, [&](const CubeCoords& key,
                                const MomentsSummary& summary) {
      groups.emplace_back(key, summary);
    });
    auto g1 = Clock::now();
    report.merge_seconds += Seconds(g0, g1);
    for (auto& [key, summary] : groups) {
      ++report.groups_examined;
      if (cascade.Threshold(summary.sketch(), options.subgroup_phi,
                            threshold)) {
        Subgroup sg;
        sg.dims = dims;
        sg.values = key;
        sg.count = summary.count();
        report.flagged.push_back(std::move(sg));
      }
    }
    auto g2 = Clock::now();
    report.estimation_seconds += Seconds(g1, g2);
  };

  for (size_t d = 0; d < cube.num_dims(); ++d) {
    examine_grouping({d});
  }
  if (options.include_pairs) {
    for (size_t a = 0; a < cube.num_dims(); ++a) {
      for (size_t b = a + 1; b < cube.num_dims(); ++b) {
        examine_grouping({a, b});
      }
    }
  }
  report.cascade_stats = cascade.stats();
  return report;
}

}  // namespace msketch
