// Two-phase dense simplex for small linear programs.
//
// Used by the "cvx-min" lesion estimator (Section 6.3): minimize the maximum
// density of a discretized distribution subject to moment-matching equality
// constraints. Stands in for the generic SOCP solver (ECOS) the paper used.
#ifndef MSKETCH_NUMERICS_SIMPLEX_H_
#define MSKETCH_NUMERICS_SIMPLEX_H_

#include <vector>

#include "common/status.h"
#include "numerics/matrix.h"

namespace msketch {

/// Solves:  minimize c^T x  subject to  A x = b,  x >= 0.
/// Rows of A with negative b are flipped internally. Bland's rule guards
/// against cycling.
struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

Result<LpSolution> SolveStandardFormLp(const Matrix& a,
                                       const std::vector<double>& b,
                                       const std::vector<double>& c,
                                       int max_iter = 200000);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_SIMPLEX_H_
