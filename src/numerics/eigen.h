// Symmetric eigensolvers and SVD.
//
// - Cyclic Jacobi for dense symmetric matrices: condition numbers of maxent
//   Hessians (Section 4.3.1 uses kappa_max = 1e4 to pick k1, k2).
// - Implicit-shift QL for symmetric tridiagonal matrices: Golub-Welsch
//   quadrature nodes/weights inside the RTT moment bounds.
// - One-sided Jacobi SVD: the "svd" lesion estimator's minimum-norm solve.
#ifndef MSKETCH_NUMERICS_EIGEN_H_
#define MSKETCH_NUMERICS_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "numerics/matrix.h"

namespace msketch {

struct EigenDecomposition {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column j pairs with values[j]
};

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64);

/// Condition number (|lambda|_max / |lambda|_min) of a symmetric matrix;
/// returns infinity when the smallest magnitude eigenvalue is ~0.
double SymmetricConditionNumber(const Matrix& a);

/// Eigenvalues/vectors of a symmetric tridiagonal matrix with diagonal d
/// and off-diagonal e (e[i] couples i and i+1; e.size() == d.size()-1).
/// `first_components`, if non-null, receives the first row of the
/// eigenvector matrix (used for Golub-Welsch quadrature weights).
Result<std::vector<double>> TridiagonalEigen(
    std::vector<double> d, std::vector<double> e,
    std::vector<double>* first_components = nullptr, int max_iter = 64);

struct SvdDecomposition {
  Matrix u;                      // rows x min(rows, cols)... here rows x cols
  std::vector<double> singular;  // descending
  Matrix v;                      // cols x cols, columns are right vectors
};

/// Thin SVD via one-sided Jacobi: A (m x n, m >= n) = U diag(s) V^T.
Result<SvdDecomposition> Svd(const Matrix& a, int max_sweeps = 96);

/// Minimum-norm least squares solve of A x = b via SVD with relative
/// singular value cutoff `rcond`.
Result<std::vector<double>> SvdLeastSquares(const Matrix& a,
                                            const std::vector<double>& b,
                                            double rcond = 1e-12);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_EIGEN_H_
