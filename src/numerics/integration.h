// Numerical quadrature: Clenshaw-Curtis rules on the Chebyshev-Lobatto grid
// and adaptive Romberg integration.
//
// Clenshaw-Curtis is what makes the maximum entropy solve fast: one shared
// grid of N+1 nodes turns every gradient/Hessian entry into a weighted dot
// product (footnote 1 in the paper). Romberg is used by the "newton" lesion
// estimator, which deliberately skips this optimization.
#ifndef MSKETCH_NUMERICS_INTEGRATION_H_
#define MSKETCH_NUMERICS_INTEGRATION_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace msketch {

/// Weights w_j for the (n+1)-point Clenshaw-Curtis rule on [-1, 1] at the
/// Lobatto nodes x_j = cos(pi j / n):  int_{-1}^{1} f ~= sum w_j f(x_j).
/// Exact for polynomials of degree <= n (n even). n must be >= 2.
std::vector<double> ClenshawCurtisWeights(int n);

/// Adaptive Romberg integration of f over [a, b] to relative tolerance
/// `rel_tol` (falls back to absolute tolerance `abs_tol` near zero).
/// Returns NotConverged if the tableau fails to settle within `max_levels`.
Result<double> RombergIntegrate(const std::function<double(double)>& f,
                                double a, double b, double rel_tol = 1e-10,
                                double abs_tol = 1e-14, int max_levels = 22);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_INTEGRATION_H_
