// Scalar root finding (Brent's method) and root bracketing helpers.
//
// Quantile extraction inverts the estimated CDF with Brent's method
// (Section 4.2); the RTT bound locates the real roots of kernel polynomials
// by sampling-based bracketing followed by Brent refinement.
#ifndef MSKETCH_NUMERICS_ROOT_FINDING_H_
#define MSKETCH_NUMERICS_ROOT_FINDING_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace msketch {

/// Brent's method on [a, b]; requires f(a) and f(b) of opposite sign (or one
/// of them zero). Converges to |interval| <= `tol` or |f| == 0.
Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, double tol = 1e-12, int max_iter = 200);

/// Finds all sign-change brackets of f on [a, b] using `samples` uniform
/// probes, then polishes each with Brent. Intended for functions with a
/// modest number of simple real roots (e.g. kernel polynomials).
std::vector<double> FindRealRoots(const std::function<double(double)>& f,
                                  double a, double b, int samples = 512,
                                  double tol = 1e-12);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_ROOT_FINDING_H_
