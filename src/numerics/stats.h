// Descriptive statistics, quantile utilities, and special functions used
// across the evaluation harness.
#ifndef MSKETCH_NUMERICS_STATS_H_
#define MSKETCH_NUMERICS_STATS_H_

#include <cstdint>
#include <vector>

namespace msketch {

struct Descriptive {
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double skew = 0.0;
};

/// One-pass descriptive statistics (population stddev / skewness).
Descriptive DescribeData(const std::vector<double>& data);

/// phi-quantile of *sorted* data with rank floor(phi * n), matching the
/// paper's Section 3.1 definition.
double QuantileOfSorted(const std::vector<double>& sorted, double phi);

/// rank(x) = number of elements < x in sorted data (binary search).
uint64_t RankOfSorted(const std::vector<double>& sorted, double x);

/// Quantile error epsilon = |rank(q_hat) - floor(phi n)| / n  (Eq. 1).
double QuantileError(const std::vector<double>& sorted, double phi,
                     double estimate);

/// Mean quantile error over `num_phis` equally spaced phis in
/// [phi_lo, phi_hi] (the paper uses 21 phis in [0.01, 0.99]).
double MeanQuantileError(const std::vector<double>& sorted,
                         const std::vector<double>& estimates,
                         const std::vector<double>& phis);

/// 21 equally spaced phi values in [0.01, 0.99] (the paper's grid).
std::vector<double> DefaultPhiGrid();

/// Inverse standard normal CDF (Acklam's rational approximation, |eps| ~
/// 1e-9; sufficient for the "gaussian" lesion estimator).
double NormalQuantile(double p);

/// ln Gamma(x) (Lanczos); used by generators and closed-form estimators.
double LogGamma(double x);

/// Binomial coefficient as double (exact for n <= 50-ish).
double BinomialCoefficient(int n, int k);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_STATS_H_
