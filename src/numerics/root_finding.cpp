#include "numerics/root_finding.h"

#include <cmath>

namespace msketch {

Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, double tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) {
    return Status::InvalidArgument("BrentRoot: endpoints do not bracket");
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 =
        2.0 * 2.220446049250313e-16 * std::fabs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) return b;
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < (min1 < min2 ? min1 : min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::fabs(d) > tol1) {
      b += d;
    } else {
      b += (xm >= 0.0 ? tol1 : -tol1);
    }
    fb = f(b);
    if (fb * fc > 0.0) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return Status::NotConverged("BrentRoot: max iterations");
}

std::vector<double> FindRealRoots(const std::function<double(double)>& f,
                                  double a, double b, int samples,
                                  double tol) {
  std::vector<double> roots;
  if (samples < 2 || !(a < b)) return roots;
  const double h = (b - a) / static_cast<double>(samples);
  double x0 = a;
  double f0 = f(x0);
  for (int i = 1; i <= samples; ++i) {
    const double x1 = (i == samples) ? b : a + h * i;
    const double f1 = f(x1);
    if (f0 == 0.0) {
      roots.push_back(x0);
    } else if (f0 * f1 < 0.0) {
      Result<double> r = BrentRoot(f, x0, x1, tol);
      if (r.ok()) roots.push_back(r.value());
    }
    x0 = x1;
    f0 = f1;
  }
  if (f0 == 0.0) roots.push_back(x0);
  return roots;
}

}  // namespace msketch
