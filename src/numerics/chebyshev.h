// Chebyshev polynomials of the first kind: evaluation, basis conversion,
// interpolation, and calculus on Chebyshev series.
//
// The maximum entropy solver works entirely in the Chebyshev basis
// (Section 4.3.1 of the paper) because the monomial basis produces Hessians
// with condition numbers around 1e31 for k ~ 8; rebasing brings that down to
// O(10).
#ifndef MSKETCH_NUMERICS_CHEBYSHEV_H_
#define MSKETCH_NUMERICS_CHEBYSHEV_H_

#include <functional>
#include <vector>

namespace msketch {

/// Evaluates T_n(x) by the three-term recurrence. Valid for any real x
/// (values outside [-1,1] grow like |2x|^n).
double ChebyshevT(int n, double x);

/// Evaluates all of T_0(x) .. T_n(x) into `out` (size n+1).
void ChebyshevTAll(int n, double x, double* out);

/// Evaluates the series sum_i coeffs[i] * T_i(x) by Clenshaw's algorithm.
double ChebyshevEval(const std::vector<double>& coeffs, double x);

/// Evaluates the series at n points: out[j] = sum_i coeffs[i] * T_i(xs[j]).
/// Point-blocked Clenshaw — the recurrence runs over coefficients while
/// eight points advance in independent lanes, so the compiler can keep
/// the whole block in vector registers. This is the estimator's CDF
/// tabulation hot path (~500 evaluations per maxent solve).
void ChebyshevEvalMany(const std::vector<double>& coeffs, const double* xs,
                       size_t n, double* out);

/// Batched basis tabulation: fills out[i * m + j] = T_i(xs[j]) for
/// i = 0..n, j = 0..m-1 (row-major by order). The three-term recurrence
/// runs point-parallel — each point is an independent lane — so the
/// maxent grid builds (solver and lane-batched solver) get one
/// vectorizable pass instead of m ChebyshevTAll calls.
void ChebyshevTAllMany(int n, const double* xs, size_t m, double* out);

/// Length of the shortest coefficient prefix that keeps every dropped
/// tail coefficient below rel_tol * max|c| (at least 1; coeffs.size()
/// when nothing can be dropped). Chebyshev series of smooth densities
/// decay geometrically, so evaluating only the significant prefix cuts
/// the CDF tabulation cost without measurable error: the dropped mass
/// is bounded by n * rel_tol * max|c|.
size_t ChebyshevSignificantPrefix(const std::vector<double>& coeffs,
                                  double rel_tol);

/// Row i of the returned matrix holds the monomial coefficients of T_i:
///   T_i(x) = sum_j M[i][j] x^j,  for i, j in 0..n.
/// Integer-valued but returned as doubles; coefficients grow like 2^n so
/// n <= ~40 stays exactly representable.
std::vector<std::vector<double>> ChebyshevToMonomialMatrix(int n);

/// Chebyshev-Lobatto points x_j = cos(pi * j / n), j = 0..n (descending
/// from +1 to -1).
std::vector<double> ChebyshevLobattoPoints(int n);

/// Chebyshev interpolation: given samples f(x_j) at the n+1 Lobatto points
/// (as produced by ChebyshevLobattoPoints), returns coefficients c_0..c_n
/// with f(x) ~= sum c_i T_i(x). Exact for polynomials of degree <= n.
std::vector<double> ChebyshevFit(const std::vector<double>& samples);

/// Integral of a Chebyshev series over [-1, 1]:
///   int T_k = 0 for odd k, 2/(1-k^2) for even k.
double ChebyshevIntegrate(const std::vector<double>& coeffs);

/// Antiderivative series: returns d with sum d_i T_i(x) = int_{-1}^{x} f.
/// (d_0 fixed so the antiderivative vanishes at x = -1.)
std::vector<double> ChebyshevAntiderivative(const std::vector<double>& coeffs);

/// Product of two Chebyshev series via T_a T_b = (T_{a+b} + T_{|a-b|}) / 2.
std::vector<double> ChebyshevMultiply(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_CHEBYSHEV_H_
