#include "numerics/matrix.h"

#include <cmath>

#include "common/macros.h"

namespace msketch {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  MSKETCH_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVec(const std::vector<double>& v) const {
  MSKETCH_CHECK(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Result<std::vector<double>> LuSolve(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("LuSolve: dimension mismatch");
  }
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) return Status::Singular("LuSolve: zero pivot");
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (size_t j = col + 1; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
    x[i] = acc / a(i, i);
  }
  return x;
}

Result<Matrix> CholeskyFactor(const Matrix& a, double min_pivot) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Cholesky: matrix not square");
  }
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > min_pivot)) {
      return Status::Singular("Cholesky: non-positive pivot");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc * inv;
    }
  }
  return l;
}

std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  const size_t n = l.rows();
  MSKETCH_CHECK(b.size() == n);
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    y[i] = acc / l(i, i);
  }
  return y;
}

std::vector<double> BackSubstituteTranspose(const Matrix& l,
                                            const std::vector<double>& y) {
  const size_t n = l.rows();
  MSKETCH_CHECK(y.size() == n);
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (size_t j = i + 1; j < n; ++j) acc -= l(j, i) * x[j];
    x[i] = acc / l(i, i);
  }
  return x;
}

std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  return BackSubstituteTranspose(l, ForwardSubstitute(l, b));
}

}  // namespace msketch
