#include "numerics/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace msketch {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SymmetricEigen: matrix not square");
  }
  Matrix m = a;
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (off < 1e-30) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply rotation to rows/cols p and q.
        for (size_t i = 0; i < n; ++i) {
          const double mip = m(i, p);
          const double miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i);
          const double mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  EigenDecomposition out;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) out.values[i] = m(i, i);
  // Sort ascending, permuting vectors accordingly.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return out.values[x] < out.values[y];
  });
  EigenDecomposition sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted.values[j] = out.values[order[j]];
    for (size_t i = 0; i < n; ++i) sorted.vectors(i, j) = v(i, order[j]);
  }
  return sorted;
}

double SymmetricConditionNumber(const Matrix& a) {
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  if (!eig.ok()) return std::numeric_limits<double>::infinity();
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double v : eig->values) {
    const double m = std::fabs(v);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

Result<std::vector<double>> TridiagonalEigen(
    std::vector<double> d, std::vector<double> e,
    std::vector<double>* first_components, int max_iter) {
  const size_t n = d.size();
  if (n == 0) return Status::InvalidArgument("TridiagonalEigen: empty");
  if (e.size() + 1 != n && n != 1) {
    return Status::InvalidArgument("TridiagonalEigen: bad off-diagonal size");
  }
  // z tracks the first row of the accumulated rotation product; enough for
  // Golub-Welsch weights (w_j = z_j^2 * mu_0) without storing full vectors.
  std::vector<double> z(n, 0.0);
  z[0] = 1.0;
  e.push_back(0.0);  // sentinel

  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == max_iter) {
          return Status::NotConverged("TridiagonalEigen: too many iterations");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // Accumulate effect on first-row components.
          f = z[i + 1];
          z[i + 1] = s * z[i] + c * f;
          z[i] = c * z[i] - s * f;
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  // Sort ascending along with z.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return d[a] < d[b]; });
  std::vector<double> vals(n), zs(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = d[order[i]];
    zs[i] = z[order[i]];
  }
  if (first_components != nullptr) *first_components = std::move(zs);
  return vals;
}

Result<SvdDecomposition> Svd(const Matrix& a, int max_sweeps) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    // Handle wide matrices by transposing and swapping U/V.
    MSKETCH_ASSIGN_OR_RETURN(SvdDecomposition t, Svd(a.Transpose(), max_sweeps));
    SvdDecomposition out;
    out.u = std::move(t.v);
    out.v = std::move(t.u);
    out.singular = std::move(t.singular);
    return out;
  }
  Matrix u = a;  // columns orthogonalized in place
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          alpha += u(i, p) * u(i, p);
          beta += u(i, q) * u(i, q);
          gamma += u(i, p) * u(i, q);
        }
        if (std::fabs(gamma) <= 1e-15 * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double up = u(i, p);
          const double uq = u(i, q);
          u(i, p) = c * up - s * uq;
          u(i, q) = s * up + c * uq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
  SvdDecomposition out;
  out.singular.resize(n);
  out.u = Matrix(m, n);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += u(i, j) * u(i, j);
    norm = std::sqrt(norm);
    out.singular[j] = norm;
    if (norm > 0.0) {
      for (size_t i = 0; i < m; ++i) out.u(i, j) = u(i, j) / norm;
    }
  }
  // Sort singular values descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return out.singular[x] > out.singular[y];
  });
  SvdDecomposition sorted;
  sorted.singular.resize(n);
  sorted.u = Matrix(m, n);
  sorted.v = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted.singular[j] = out.singular[order[j]];
    for (size_t i = 0; i < m; ++i) sorted.u(i, j) = out.u(i, order[j]);
    for (size_t i = 0; i < n; ++i) sorted.v(i, j) = v(i, order[j]);
  }
  return sorted;
}

Result<std::vector<double>> SvdLeastSquares(const Matrix& a,
                                            const std::vector<double>& b,
                                            double rcond) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SvdLeastSquares: dimension mismatch");
  }
  MSKETCH_ASSIGN_OR_RETURN(SvdDecomposition svd, Svd(a));
  const size_t n = a.cols();
  const double cutoff = svd.singular.empty()
                            ? 0.0
                            : rcond * svd.singular[0];
  std::vector<double> x(n, 0.0);
  for (size_t j = 0; j < svd.singular.size(); ++j) {
    if (svd.singular[j] <= cutoff) continue;
    double dot = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) dot += svd.u(i, j) * b[i];
    const double coef = dot / svd.singular[j];
    for (size_t i = 0; i < n; ++i) x[i] += coef * svd.v(i, j);
  }
  return x;
}

}  // namespace msketch
