#include "numerics/simplex.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace msketch {

namespace {

constexpr double kEps = 1e-9;

// Tableau-based simplex core. Columns 0..ncols-1 are variables, last column
// is the RHS. Row nrows-1 is the objective row (reduced costs). `basis[r]`
// is the variable basic in row r.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                      t_(rows * cols, 0.0) {}
  double& at(size_t r, size_t c) { return t_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return t_[r * cols_ + c]; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pr, size_t pc) {
    const double pivot = at(pr, pc);
    MSKETCH_DCHECK(std::fabs(pivot) > kEps);
    const double inv = 1.0 / pivot;
    for (size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      at(r, pc) = 0.0;  // keep the column numerically clean
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> t_;
};

// Runs simplex iterations on the tableau until optimal/unbounded/iteration
// cap. `nvars` = number of eligible entering columns. Returns OK when the
// objective row has no negative reduced cost.
Status RunSimplex(Tableau* tab, std::vector<size_t>* basis, size_t nvars,
                  int max_iter) {
  const size_t obj = tab->rows() - 1;
  const size_t rhs = tab->cols() - 1;
  for (int iter = 0; iter < max_iter; ++iter) {
    // Entering column: most negative reduced cost; Bland's rule on ties /
    // after long runs to guarantee termination.
    const bool bland = iter > max_iter / 2;
    size_t enter = nvars;
    double best = -kEps;
    for (size_t c = 0; c < nvars; ++c) {
      const double rc = tab->at(obj, c);
      if (rc < -kEps) {
        if (bland) {
          enter = c;
          break;
        }
        if (rc < best) {
          best = rc;
          enter = c;
        }
      }
    }
    if (enter == nvars) return Status::OK();  // optimal

    // Leaving row: min ratio test.
    size_t leave = obj;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < obj; ++r) {
      const double a = tab->at(r, enter);
      if (a > kEps) {
        const double ratio = tab->at(r, rhs) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leave != obj &&
             (*basis)[r] < (*basis)[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == obj) {
      return Status::Infeasible("simplex: problem unbounded");
    }
    tab->Pivot(leave, enter);
    (*basis)[leave] = enter;
  }
  return Status::NotConverged("simplex: iteration cap reached");
}

}  // namespace

Result<LpSolution> SolveStandardFormLp(const Matrix& a,
                                       const std::vector<double>& b,
                                       const std::vector<double>& c,
                                       int max_iter) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m || c.size() != n) {
    return Status::InvalidArgument("LP: dimension mismatch");
  }

  // Phase 1: artificial variables, minimize their sum.
  const size_t total = n + m;  // original + artificial
  Tableau tab(m + 1, total + 1);
  std::vector<size_t> basis(m);
  for (size_t r = 0; r < m; ++r) {
    const double sign = (b[r] < 0.0) ? -1.0 : 1.0;
    for (size_t cidx = 0; cidx < n; ++cidx) {
      tab.at(r, cidx) = sign * a(r, cidx);
    }
    tab.at(r, n + r) = 1.0;
    tab.at(r, total) = sign * b[r];
    basis[r] = n + r;
  }
  // Phase-1 objective: sum of artificials => reduced costs.
  for (size_t cidx = 0; cidx <= total; ++cidx) {
    double acc = 0.0;
    for (size_t r = 0; r < m; ++r) acc -= tab.at(r, cidx);
    tab.at(m, cidx) = acc;
  }
  for (size_t r = 0; r < m; ++r) tab.at(m, n + r) = 0.0;

  MSKETCH_RETURN_NOT_OK(RunSimplex(&tab, &basis, total, max_iter));
  if (tab.at(m, total) < -1e-6) {
    return Status::Infeasible("LP: phase 1 objective positive");
  }

  // Drive leftover artificial variables out of the basis when possible.
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] >= n) {
      size_t enter = n;
      for (size_t cidx = 0; cidx < n; ++cidx) {
        if (std::fabs(tab.at(r, cidx)) > kEps) {
          enter = cidx;
          break;
        }
      }
      if (enter < n) {
        tab.Pivot(r, enter);
        basis[r] = enter;
      }
      // Otherwise the row is redundant; keep the artificial at value ~0.
    }
  }

  // Phase 2: real objective. Rebuild the objective row.
  for (size_t cidx = 0; cidx <= total; ++cidx) tab.at(m, cidx) = 0.0;
  for (size_t cidx = 0; cidx < n; ++cidx) tab.at(m, cidx) = c[cidx];
  // Make reduced costs consistent with current basis.
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n && std::fabs(tab.at(m, basis[r])) > 0.0) {
      const double factor = tab.at(m, basis[r]);
      for (size_t cidx = 0; cidx <= total; ++cidx) {
        tab.at(m, cidx) -= factor * tab.at(r, cidx);
      }
    }
  }
  // Artificial columns are no longer eligible.
  MSKETCH_RETURN_NOT_OK(RunSimplex(&tab, &basis, n, max_iter));

  LpSolution sol;
  sol.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.x[basis[r]] = tab.at(r, total);
  }
  sol.objective = 0.0;
  for (size_t i = 0; i < n; ++i) sol.objective += c[i] * sol.x[i];
  return sol;
}

}  // namespace msketch
