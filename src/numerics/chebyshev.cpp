#include "numerics/chebyshev.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "numerics/fft.h"

namespace msketch {

double ChebyshevT(int n, double x) {
  MSKETCH_DCHECK(n >= 0);
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double tkm1 = 1.0, tk = x;
  for (int i = 2; i <= n; ++i) {
    double tkp1 = 2.0 * x * tk - tkm1;
    tkm1 = tk;
    tk = tkp1;
  }
  return tk;
}

void ChebyshevTAll(int n, double x, double* out) {
  out[0] = 1.0;
  if (n == 0) return;
  out[1] = x;
  for (int i = 2; i <= n; ++i) {
    out[i] = 2.0 * x * out[i - 1] - out[i - 2];
  }
}

double ChebyshevEval(const std::vector<double>& coeffs, double x) {
  if (coeffs.empty()) return 0.0;
  // Clenshaw recurrence.
  double b1 = 0.0, b2 = 0.0;
  for (size_t i = coeffs.size(); i-- > 1;) {
    double b0 = 2.0 * x * b1 - b2 + coeffs[i];
    b2 = b1;
    b1 = b0;
  }
  return x * b1 - b2 + coeffs[0];
}

void ChebyshevEvalMany(const std::vector<double>& coeffs, const double* xs,
                       size_t n, double* out) {
  if (coeffs.empty()) {
    for (size_t j = 0; j < n; ++j) out[j] = 0.0;
    return;
  }
  constexpr size_t kLanes = 8;
  size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    double b1[kLanes] = {0.0}, b2[kLanes] = {0.0}, x2[kLanes];
    for (size_t l = 0; l < kLanes; ++l) x2[l] = 2.0 * xs[j + l];
    for (size_t i = coeffs.size(); i-- > 1;) {
      const double c = coeffs[i];
      for (size_t l = 0; l < kLanes; ++l) {
        const double b0 = x2[l] * b1[l] - b2[l] + c;
        b2[l] = b1[l];
        b1[l] = b0;
      }
    }
    for (size_t l = 0; l < kLanes; ++l) {
      out[j + l] = xs[j + l] * b1[l] - b2[l] + coeffs[0];
    }
  }
  for (; j < n; ++j) out[j] = ChebyshevEval(coeffs, xs[j]);
}

void ChebyshevTAllMany(int n, const double* xs, size_t m, double* out) {
  MSKETCH_CHECK(n >= 0);
  for (size_t j = 0; j < m; ++j) out[j] = 1.0;
  if (n == 0) return;
  double* MSKETCH_GCC_RESTRICT row1 = out + m;
  for (size_t j = 0; j < m; ++j) row1[j] = xs[j];
  for (int i = 2; i <= n; ++i) {
    const double* MSKETCH_GCC_RESTRICT prev = out + (i - 1) * m;
    const double* MSKETCH_GCC_RESTRICT prev2 = out + (i - 2) * m;
    double* MSKETCH_GCC_RESTRICT row = out + i * m;
    for (size_t j = 0; j < m; ++j) {
      row[j] = 2.0 * xs[j] * prev[j] - prev2[j];
    }
  }
}

size_t ChebyshevSignificantPrefix(const std::vector<double>& coeffs,
                                  double rel_tol) {
  double cmax = 0.0;
  for (double c : coeffs) cmax = std::max(cmax, std::fabs(c));
  if (cmax == 0.0) return 1;
  const double cut = rel_tol * cmax;
  size_t len = coeffs.size();
  while (len > 1 && std::fabs(coeffs[len - 1]) <= cut) --len;
  return len;
}

std::vector<std::vector<double>> ChebyshevToMonomialMatrix(int n) {
  MSKETCH_CHECK(n >= 0);
  std::vector<std::vector<double>> m(n + 1,
                                     std::vector<double>(n + 1, 0.0));
  m[0][0] = 1.0;
  if (n == 0) return m;
  m[1][1] = 1.0;
  for (int i = 2; i <= n; ++i) {
    // T_i = 2 x T_{i-1} - T_{i-2}
    for (int j = 1; j <= i; ++j) m[i][j] = 2.0 * m[i - 1][j - 1];
    for (int j = 0; j <= i - 2; ++j) m[i][j] -= m[i - 2][j];
  }
  return m;
}

std::vector<double> ChebyshevLobattoPoints(int n) {
  MSKETCH_CHECK(n >= 1);
  std::vector<double> pts(n + 1);
  for (int j = 0; j <= n; ++j) {
    pts[j] = std::cos(M_PI * static_cast<double>(j) / static_cast<double>(n));
  }
  return pts;
}

std::vector<double> ChebyshevFit(const std::vector<double>& samples) {
  const size_t n1 = samples.size();
  MSKETCH_CHECK(n1 >= 2);
  const size_t n = n1 - 1;
  std::vector<double> c = DctI(samples);
  const double scale = 2.0 / static_cast<double>(n);
  for (size_t k = 0; k <= n; ++k) c[k] *= scale;
  c[0] *= 0.5;
  c[n] *= 0.5;
  return c;
}

double ChebyshevIntegrate(const std::vector<double>& coeffs) {
  double acc = 0.0;
  for (size_t k = 0; k < coeffs.size(); k += 2) {
    acc += coeffs[k] * 2.0 / (1.0 - static_cast<double>(k) *
                                        static_cast<double>(k));
  }
  return acc;
}

std::vector<double> ChebyshevAntiderivative(
    const std::vector<double>& coeffs) {
  const size_t n = coeffs.size();
  std::vector<double> d(n + 1, 0.0);
  // Standard relation: int T_k = T_{k+1}/(2(k+1)) - T_{k-1}/(2(k-1)), k>=2;
  // int T_0 = T_1; int T_1 = T_2/4 (+ const).
  for (size_t k = 0; k < n; ++k) {
    double c = coeffs[k];
    if (k == 0) {
      d[1] += c;
    } else if (k == 1) {
      d[0] += c * 0.25;  // T_1^2 = (1 + T_2)/2, antiderivative x^2/2
      d[2] += c * 0.25;
    } else {
      d[k + 1] += c / (2.0 * static_cast<double>(k + 1));
      d[k - 1] -= c / (2.0 * static_cast<double>(k - 1));
    }
  }
  // Fix constant so the antiderivative vanishes at x = -1:
  // T_k(-1) = (-1)^k.
  double at_minus1 = 0.0;
  for (size_t k = 0; k < d.size(); ++k) {
    at_minus1 += d[k] * ((k % 2 == 0) ? 1.0 : -1.0);
  }
  d[0] -= at_minus1;
  return d;
}

std::vector<double> ChebyshevMultiply(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      const double half = 0.5 * a[i] * b[j];
      out[i + j] += half;
      out[static_cast<size_t>(
          std::abs(static_cast<long>(i) - static_cast<long>(j)))] += half;
    }
  }
  return out;
}

}  // namespace msketch
