#include "numerics/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace msketch {

Descriptive DescribeData(const std::vector<double>& data) {
  Descriptive d;
  d.count = data.size();
  if (data.empty()) return d;
  d.min = data[0];
  d.max = data[0];
  double sum = 0.0;
  for (double x : data) {
    d.min = std::min(d.min, x);
    d.max = std::max(d.max, x);
    sum += x;
  }
  d.mean = sum / static_cast<double>(d.count);
  double m2 = 0.0, m3 = 0.0;
  for (double x : data) {
    const double c = x - d.mean;
    m2 += c * c;
    m3 += c * c * c;
  }
  m2 /= static_cast<double>(d.count);
  m3 /= static_cast<double>(d.count);
  d.stddev = std::sqrt(m2);
  d.skew = (m2 > 0.0) ? m3 / (m2 * std::sqrt(m2)) : 0.0;
  return d;
}

double QuantileOfSorted(const std::vector<double>& sorted, double phi) {
  MSKETCH_CHECK(!sorted.empty());
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::floor(phi * n));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

uint64_t RankOfSorted(const std::vector<double>& sorted, double x) {
  return static_cast<uint64_t>(
      std::lower_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
}

double QuantileError(const std::vector<double>& sorted, double phi,
                     double estimate) {
  MSKETCH_CHECK(!sorted.empty());
  const double n = static_cast<double>(sorted.size());
  const double target = std::floor(phi * n);
  const double rank = static_cast<double>(RankOfSorted(sorted, estimate));
  return std::fabs(rank - target) / n;
}

double MeanQuantileError(const std::vector<double>& sorted,
                         const std::vector<double>& estimates,
                         const std::vector<double>& phis) {
  MSKETCH_CHECK(estimates.size() == phis.size());
  double acc = 0.0;
  for (size_t i = 0; i < phis.size(); ++i) {
    acc += QuantileError(sorted, phis[i], estimates[i]);
  }
  return phis.empty() ? 0.0 : acc / static_cast<double>(phis.size());
}

std::vector<double> DefaultPhiGrid() {
  std::vector<double> phis(21);
  for (int i = 0; i < 21; ++i) {
    phis[i] = 0.01 + (0.99 - 0.01) * static_cast<double>(i) / 20.0;
  }
  return phis;
}

double NormalQuantile(double p) {
  MSKETCH_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double LogGamma(double x) {
  // Lanczos approximation (g = 7, n = 9).
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

double BinomialCoefficient(int n, int k) {
  MSKETCH_CHECK(n >= 0 && k >= 0);
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 0; i < k; ++i) {
    result = result * static_cast<double>(n - i) /
             static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace msketch
