// Small dense linear algebra: row-major Matrix, LU and Cholesky
// factorizations, and solvers.
//
// Problem sizes here are tiny (k <= ~20 moment constraints), so the
// implementations favor clarity and numerical robustness over blocking.
#ifndef MSKETCH_NUMERICS_MATRIX_H_
#define MSKETCH_NUMERICS_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace msketch {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }
  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVec(const std::vector<double>& v) const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b by LU with partial pivoting. A must be square.
Result<std::vector<double>> LuSolve(Matrix a, std::vector<double> b);

/// Cholesky factorization of symmetric positive definite A: returns lower
/// triangular L with A = L L^T, or Singular if a pivot drops below
/// `min_pivot`.
Result<Matrix> CholeskyFactor(const Matrix& a, double min_pivot = 0.0);

/// Solves A x = b given the Cholesky factor L of A.
std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b);

/// Solves L y = b (forward substitution, L lower triangular).
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b);

/// Solves L^T x = y (back substitution with the transpose of lower L).
std::vector<double> BackSubstituteTranspose(const Matrix& l,
                                            const std::vector<double>& y);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_MATRIX_H_
