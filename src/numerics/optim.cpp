#include "numerics/optim.h"

#include <cmath>
#include <cstdio>
#include <deque>

#include "common/macros.h"

namespace msketch {

namespace {

double MaxAbs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

Result<OptimResult> NewtonMinimize(const ObjectiveFn& objective,
                                   std::vector<double> x0,
                                   const NewtonOptions& options) {
  const size_t n = x0.size();
  ObjectiveEval eval;
  objective(x0, /*need_hessian=*/true, &eval);
  if (!std::isfinite(eval.value)) {
    return Status::InvalidArgument("NewtonMinimize: objective not finite at x0");
  }

  OptimResult result;
  result.x = std::move(x0);
  result.value = eval.value;
  result.hessian_evals = 1;
  double prev_step = 1.0;

  for (int iter = 0; iter < options.max_iter; ++iter) {
    result.grad_norm = MaxAbs(eval.gradient);
    result.iterations = iter;
    if (result.grad_norm <= options.grad_tol) return result;

    // Newton direction with escalating Tikhonov ridge if H is not PD.
    std::vector<double> neg_grad(n);
    for (size_t i = 0; i < n; ++i) neg_grad[i] = -eval.gradient[i];
    std::vector<double> direction;
    double ridge = 0.0;
    for (int attempt = 0; attempt < 40; ++attempt) {
      Matrix h = eval.hessian;
      if (ridge > 0.0) {
        for (size_t i = 0; i < n; ++i) h(i, i) += ridge;
      }
      Result<Matrix> chol = CholeskyFactor(h);
      if (chol.ok()) {
        direction = CholeskySolve(chol.value(), neg_grad);
        bool finite = true;
        for (double d : direction) finite = finite && std::isfinite(d);
        if (finite && Dot(direction, eval.gradient) < 0.0) break;
        direction.clear();
      }
      ridge = (ridge == 0.0) ? options.ridge0 : ridge * 10.0;
      if (ridge > 1e12) break;
    }
    if (direction.empty()) {
      // Last resort: steepest descent.
      direction = neg_grad;
    }

    // Armijo backtracking. Trial points are evaluated without the
    // Hessian (it costs O(d^2 N) per evaluation); the Hessian is computed
    // once at the accepted point. See NewtonOptions::adaptive_initial_step
    // for the warm-start opening-step policy.
    const double slope = Dot(eval.gradient, direction);
    double step = options.adaptive_initial_step
                      ? std::min(1.0, 4.0 * prev_step)
                      : 1.0;
    std::vector<double> x_new(n);
    ObjectiveEval eval_new;
    bool accepted = false;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      for (size_t i = 0; i < n; ++i) {
        x_new[i] = result.x[i] + step * direction[i];
      }
      objective(x_new, /*need_hessian=*/false, &eval_new);
      ++result.function_evals;
      if (std::isfinite(eval_new.value) &&
          eval_new.value <=
              result.value + options.armijo_c * step * slope) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3e", result.grad_norm);
      return Status::NotConverged(
          std::string("NewtonMinimize: line search failed (gradient ") + buf +
          ")");
    }
    prev_step = step;
    objective(x_new, /*need_hessian=*/true, &eval_new);
    ++result.hessian_evals;
    result.x = x_new;
    result.value = eval_new.value;
    eval = std::move(eval_new);
  }
  result.grad_norm = MaxAbs(eval.gradient);
  if (result.grad_norm <= options.grad_tol) return result;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", result.grad_norm);
  return Status::NotConverged(std::string("NewtonMinimize: max iterations, gradient ") + buf);
}

Result<OptimResult> LbfgsMinimize(const ObjectiveFn& objective,
                                  std::vector<double> x0,
                                  const LbfgsOptions& options) {
  const size_t n = x0.size();
  ObjectiveEval eval;
  objective(x0, /*need_hessian=*/false, &eval);
  if (!std::isfinite(eval.value)) {
    return Status::InvalidArgument("LbfgsMinimize: objective not finite at x0");
  }

  OptimResult result;
  result.x = std::move(x0);
  result.value = eval.value;

  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  for (int iter = 0; iter < options.max_iter; ++iter) {
    result.grad_norm = MaxAbs(eval.gradient);
    result.iterations = iter;
    if (result.grad_norm <= options.grad_tol) return result;

    // Two-loop recursion.
    std::vector<double> q = eval.gradient;
    std::vector<double> alphas(s_hist.size());
    for (size_t i = s_hist.size(); i-- > 0;) {
      alphas[i] = rho_hist[i] * Dot(s_hist[i], q);
      for (size_t j = 0; j < n; ++j) q[j] -= alphas[i] * y_hist[i][j];
    }
    if (!s_hist.empty()) {
      const double ys = Dot(y_hist.back(), s_hist.back());
      const double yy = Dot(y_hist.back(), y_hist.back());
      const double gamma = (yy > 0) ? ys / yy : 1.0;
      for (size_t j = 0; j < n; ++j) q[j] *= gamma;
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * Dot(y_hist[i], q);
      for (size_t j = 0; j < n; ++j) {
        q[j] += s_hist[i][j] * (alphas[i] - beta);
      }
    }
    std::vector<double> direction(n);
    for (size_t j = 0; j < n; ++j) direction[j] = -q[j];
    double slope = Dot(eval.gradient, direction);
    if (slope >= 0.0) {
      // Reset to steepest descent if curvature information went bad.
      for (size_t j = 0; j < n; ++j) direction[j] = -eval.gradient[j];
      slope = Dot(eval.gradient, direction);
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
    }

    double step = 1.0;
    std::vector<double> x_new(n);
    ObjectiveEval eval_new;
    bool accepted = false;
    for (int bt = 0; bt < options.max_backtracks; ++bt) {
      for (size_t j = 0; j < n; ++j) {
        x_new[j] = result.x[j] + step * direction[j];
      }
      objective(x_new, /*need_hessian=*/false, &eval_new);
      if (std::isfinite(eval_new.value) &&
          eval_new.value <=
              result.value + options.armijo_c * step * slope) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3e", result.grad_norm);
      return Status::NotConverged(
          std::string("LbfgsMinimize: line search failed (gradient ") + buf +
          ")");
    }

    std::vector<double> s(n), y(n);
    for (size_t j = 0; j < n; ++j) {
      s[j] = x_new[j] - result.x[j];
      y[j] = eval_new.gradient[j] - eval.gradient[j];
    }
    const double ys = Dot(y, s);
    if (ys > 1e-14) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / ys);
      if (static_cast<int>(s_hist.size()) > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    result.x = x_new;
    result.value = eval_new.value;
    eval = std::move(eval_new);
  }
  result.grad_norm = MaxAbs(eval.gradient);
  if (result.grad_norm <= options.grad_tol) return result;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", result.grad_norm);
  return Status::NotConverged(std::string("LbfgsMinimize: max iterations, gradient ") + buf);
}

}  // namespace msketch
