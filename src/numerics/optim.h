// Unconstrained smooth convex minimization: damped Newton with backtracking
// line search, and limited-memory BFGS.
//
// The maximum entropy potential L(theta) (Eq. 5 in the paper) is smooth and
// convex; Newton with an exact (cheaply computed) Hessian is the paper's
// "opt" solver, and L-BFGS is the first-order comparison in the lesion
// study (Section 6.3).
#ifndef MSKETCH_NUMERICS_OPTIM_H_
#define MSKETCH_NUMERICS_OPTIM_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "numerics/matrix.h"

namespace msketch {

/// Objective oracle for second-order methods: fills value, gradient, and
/// (for Newton) the Hessian at x.
struct ObjectiveEval {
  double value = 0.0;
  std::vector<double> gradient;
  Matrix hessian;  // empty unless requested
};

using ObjectiveFn =
    std::function<void(const std::vector<double>& x, bool need_hessian,
                       ObjectiveEval* out)>;

struct NewtonOptions {
  int max_iter = 200;
  double grad_tol = 1e-9;         // max-norm of gradient at convergence
  double armijo_c = 1e-4;         // sufficient-decrease constant
  double backtrack = 0.5;         // step shrink factor
  int max_backtracks = 60;
  double ridge0 = 1e-10;          // initial ridge when Cholesky fails
  /// Open each line search at min(1, 4x the previously accepted step)
  /// instead of always at 1. When consecutive iterations need similar
  /// damping — typical for warm-started solves landing in exp-overflow
  /// territory — this saves several objective evaluations per iteration;
  /// the 4x recovery restores full steps within two clean iterations.
  /// Off by default so cold solves keep their exact historical paths.
  bool adaptive_initial_step = false;
};

struct OptimResult {
  std::vector<double> x;
  double value = 0.0;
  double grad_norm = 0.0;
  int iterations = 0;
  /// Objective-oracle calls without / with the Hessian. Line-search
  /// backtracks show up here, not in `iterations`.
  int function_evals = 0;
  int hessian_evals = 0;
};

/// Damped Newton: solve H d = -g (Cholesky, escalating ridge on failure),
/// then Armijo backtracking. Converges when ||g||_inf <= grad_tol.
Result<OptimResult> NewtonMinimize(const ObjectiveFn& objective,
                                   std::vector<double> x0,
                                   const NewtonOptions& options = {});

struct LbfgsOptions {
  int max_iter = 2000;
  int history = 10;
  double grad_tol = 1e-9;
  double armijo_c = 1e-4;
  double backtrack = 0.5;
  int max_backtracks = 60;
};

/// L-BFGS with two-loop recursion and Armijo backtracking. The oracle is
/// called with need_hessian = false.
Result<OptimResult> LbfgsMinimize(const ObjectiveFn& objective,
                                  std::vector<double> x0,
                                  const LbfgsOptions& options = {});

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_OPTIM_H_
