#include "numerics/fft.h"

#include <cmath>

#include "common/macros.h"

namespace msketch {

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  std::vector<std::complex<double>>& a = *data;
  const size_t n = a.size();
  MSKETCH_CHECK((n & (n - 1)) == 0);
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        std::complex<double> u = a[i + j];
        std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> DctINaive(const std::vector<double>& x) {
  const size_t n1 = x.size();
  MSKETCH_CHECK(n1 >= 2);
  const size_t n = n1 - 1;
  std::vector<double> out(n1, 0.0);
  for (size_t k = 0; k <= n; ++k) {
    double acc = 0.5 * (x[0] + ((k % 2 == 0) ? x[n] : -x[n]));
    for (size_t j = 1; j < n; ++j) {
      acc += x[j] * std::cos(M_PI * static_cast<double>(j * k) /
                             static_cast<double>(n));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> DctI(const std::vector<double>& x) {
  const size_t n1 = x.size();
  MSKETCH_CHECK(n1 >= 2);
  const size_t n = n1 - 1;
  MSKETCH_CHECK((n & (n - 1)) == 0);
  if (n < 8) return DctINaive(x);

  // Even extension of length 2N: y = [x0, x1, .., xN, x_{N-1}, .., x1];
  // DCT-I(x)[k] = Re(FFT(y)[k]) / 2.
  std::vector<std::complex<double>> y(2 * n);
  for (size_t j = 0; j <= n; ++j) y[j] = x[j];
  for (size_t j = 1; j < n; ++j) y[2 * n - j] = x[j];
  Fft(&y, /*inverse=*/false);
  std::vector<double> out(n1);
  for (size_t k = 0; k <= n; ++k) out[k] = 0.5 * y[k].real();
  return out;
}

}  // namespace msketch
