#include "numerics/integration.h"

#include <cmath>

#include "common/macros.h"

namespace msketch {

std::vector<double> ClenshawCurtisWeights(int n) {
  MSKETCH_CHECK(n >= 2);
  // Weights via the cosine-series formula (Waldvogel 2006, explicit form):
  //   w_j = (c_j / n) * (1 - sum_{k=1}^{n/2} b_k / (4k^2 - 1) * 2 cos(2k j pi / n))
  // with c_j = 1 for endpoints and 2 otherwise, b_k = 1 for k = n/2, else 2.
  // Direct O(n^2) evaluation; called once per grid size and cached upstream.
  std::vector<double> w(n + 1, 0.0);
  const int half = n / 2;
  for (int j = 0; j <= n; ++j) {
    double acc = 1.0;
    for (int k = 1; k <= half; ++k) {
      const double bk = (2 * k == n) ? 1.0 : 2.0;
      acc -= bk / (4.0 * k * k - 1.0) *
             std::cos(2.0 * M_PI * static_cast<double>(k * j) /
                      static_cast<double>(n));
    }
    const double cj = (j == 0 || j == n) ? 1.0 : 2.0;
    w[j] = cj * acc / static_cast<double>(n);
  }
  return w;
}

Result<double> RombergIntegrate(const std::function<double(double)>& f,
                                double a, double b, double rel_tol,
                                double abs_tol, int max_levels) {
  if (!(a < b)) {
    if (a == b) return 0.0;
    return Status::InvalidArgument("Romberg: a > b");
  }
  std::vector<double> row(max_levels, 0.0);
  std::vector<double> prev(max_levels, 0.0);
  double h = b - a;
  prev[0] = 0.5 * h * (f(a) + f(b));
  long npts = 1;
  for (int level = 1; level < max_levels; ++level) {
    // Trapezoid refinement: add midpoints.
    double sum = 0.0;
    double x = a + 0.5 * h;
    for (long i = 0; i < npts; ++i) {
      sum += f(x);
      x += h;
    }
    row[0] = 0.5 * (prev[0] + h * sum);
    // Richardson extrapolation.
    double factor = 4.0;
    for (int m = 1; m <= level; ++m) {
      row[m] = row[m - 1] + (row[m - 1] - prev[m - 1]) / (factor - 1.0);
      factor *= 4.0;
    }
    if (level >= 3) {
      const double err = std::fabs(row[level] - prev[level - 1]);
      if (err <= rel_tol * std::fabs(row[level]) + abs_tol) {
        return row[level];
      }
    }
    std::swap(row, prev);
    h *= 0.5;
    npts *= 2;
  }
  return Status::NotConverged("Romberg integration did not converge");
}

}  // namespace msketch
