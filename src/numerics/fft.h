// Radix-2 FFT and the type-I discrete cosine transform.
//
// The DCT-I is the workhorse behind Chebyshev interpolation: the Chebyshev
// coefficients of a function sampled at the N+1 Chebyshev-Lobatto points
// cos(pi*j/N) are (up to scaling) the DCT-I of the samples. The maximum
// entropy solver calls this once per Newton iteration, which is why the
// paper identifies the cosine transform as the estimation bottleneck.
#ifndef MSKETCH_NUMERICS_FFT_H_
#define MSKETCH_NUMERICS_FFT_H_

#include <complex>
#include <vector>

namespace msketch {

/// In-place iterative radix-2 complex FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform *without* the 1/N scaling.
void Fft(std::vector<std::complex<double>>* data, bool inverse);

/// DCT-I of `x` (length N+1, N a power of two):
///   out[k] = x[0]/2 + (-1)^k x[N]/2 + sum_{j=1}^{N-1} x[j] cos(pi j k / N).
/// Uses an O(N log N) FFT of the even extension for N >= 8, and the direct
/// O(N^2) sum below that.
std::vector<double> DctI(const std::vector<double>& x);

/// Direct O(N^2) DCT-I reference implementation (used for testing).
std::vector<double> DctINaive(const std::vector<double>& x);

}  // namespace msketch

#endif  // MSKETCH_NUMERICS_FFT_H_
