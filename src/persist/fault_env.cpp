#include "persist/fault_env.h"

#include <algorithm>

#include "common/macros.h"

namespace msketch {

// Not in an anonymous namespace: the env's friend declaration names
// msketch::FaultWritableFile.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const uint8_t* data, size_t n) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

Status FaultWritableFile::Append(const uint8_t* data, size_t n) {
  size_t landed = n;
  const auto verdict = env_->BeforeMutation(n, &landed);
  if (verdict == FaultInjectingEnv::WriteVerdict::kTransientFail) {
    return Status::IOError("injected transient append failure");
  }
  const bool crashing =
      verdict == FaultInjectingEnv::WriteVerdict::kCrash;
  if (landed > 0) {
    // Copy so a scheduled bit flip can corrupt the outgoing bytes.
    std::vector<uint8_t> buf(data, data + landed);
    env_->OnBytesWritten(&buf);
    const Status st = base_->Append(buf.data(), buf.size());
    if (!st.ok()) return st;
  }
  if (crashing) {
    return Status::IOError("injected crash: write torn at " +
                           std::to_string(landed) + "/" +
                           std::to_string(n) + " bytes");
  }
  return Status::OK();
}

Status FaultWritableFile::Sync() {
  const Status st = env_->SyncVerdict();
  if (!st.ok()) return st;
  return base_->Sync();
}

void FaultInjectingEnv::CrashAfterOps(uint64_t n, size_t short_write_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  ops_until_crash_ = static_cast<int64_t>(n);
  crash_short_write_ = short_write_bytes;
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultInjectingEnv::FailNextAppends(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_appends_ = n;
}

void FaultInjectingEnv::FailNextSyncs(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_syncs_ = n;
}

void FaultInjectingEnv::FlipBitAtWrittenByte(uint64_t offset, int bit) {
  std::lock_guard<std::mutex> lock(mu_);
  flip_offset_ = static_cast<int64_t>(offset);
  flip_bit_ = bit & 7;
}

uint64_t FaultInjectingEnv::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mutating_ops_;
}

uint64_t FaultInjectingEnv::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

FaultInjectingEnv::WriteVerdict FaultInjectingEnv::BeforeMutation(
    size_t append_bytes, size_t* landed) {
  std::lock_guard<std::mutex> lock(mu_);
  *landed = append_bytes;
  if (crashed_) {
    *landed = 0;
    return WriteVerdict::kCrash;
  }
  if (fail_appends_ > 0 && append_bytes > 0) {
    --fail_appends_;
    *landed = 0;
    return WriteVerdict::kTransientFail;
  }
  if (ops_until_crash_ == 0) {
    crashed_ = true;
    *landed = std::min(crash_short_write_, append_bytes);
    return WriteVerdict::kCrash;
  }
  if (ops_until_crash_ > 0) --ops_until_crash_;
  ++mutating_ops_;
  return WriteVerdict::kOk;
}

void FaultInjectingEnv::OnBytesWritten(std::vector<uint8_t>* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t start_offset = bytes_written_;
  if (flip_offset_ >= 0 &&
      static_cast<uint64_t>(flip_offset_) >= start_offset &&
      static_cast<uint64_t>(flip_offset_) < start_offset + buf->size()) {
    (*buf)[static_cast<size_t>(flip_offset_ - start_offset)] ^=
        static_cast<uint8_t>(1u << flip_bit_);
    flip_offset_ = -1;
  }
  bytes_written_ += buf->size();
}

Status FaultInjectingEnv::SyncVerdict() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError("injected crash: fsync after death");
  if (fail_syncs_ > 0) {
    --fail_syncs_;
    return Status::IOError("injected fsync failure");
  }
  return Status::OK();
}

Status FaultInjectingEnv::FlipBitInFile(Env* env, const std::string& path,
                                        uint64_t byte_offset, int bit) {
  Result<std::vector<uint8_t>> data = env->ReadFile(path);
  if (!data.ok()) return data.status();
  std::vector<uint8_t> bytes = std::move(data).value();
  if (byte_offset >= bytes.size()) {
    return Status::InvalidArgument("FlipBitInFile: offset past EOF");
  }
  bytes[byte_offset] ^= static_cast<uint8_t>(1u << (bit & 7));
  Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  MSKETCH_RETURN_IF_ERROR((*file)->Append(bytes.data(), bytes.size()));
  MSKETCH_RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  size_t landed = 0;
  if (BeforeMutation(0, &landed) != WriteVerdict::kOk) {
    return Status::IOError("injected crash: cannot create " + path);
  }
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(std::move(base).value(), this));
}

Result<std::vector<uint8_t>> FaultInjectingEnv::ReadFile(
    const std::string& path) {
  return base_->ReadFile(path);  // reads survive the crash (recovery path)
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  size_t landed = 0;
  if (BeforeMutation(0, &landed) != WriteVerdict::kOk) {
    return Status::IOError("injected crash: rename not applied");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  size_t landed = 0;
  if (BeforeMutation(0, &landed) != WriteVerdict::kOk) {
    return Status::IOError("injected crash: delete not applied");
  }
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  size_t landed = 0;
  if (BeforeMutation(0, &landed) != WriteVerdict::kOk) {
    return Status::IOError("injected crash: mkdir not applied");
  }
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  const Status st = SyncVerdict();
  if (!st.ok()) return st;
  return base_->SyncDir(path);
}

}  // namespace msketch
